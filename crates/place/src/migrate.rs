//! The background migration engine: a deterministic, rate-limited queue
//! of extent moves.
//!
//! A *move* relocates one extent replica: read the extent off the source
//! device, write it to the destination, then commit the holder change in
//! the catalog. The engine owns the move lifecycle and the rate limit;
//! the cluster layer issues the actual IOs through the fleet runner and
//! reports completions back, so migration traffic shares queues, power,
//! and breaker caps with tenant IO instead of bypassing them.
//!
//! Rate limiting is a token allowance computed from absolute sim time:
//! `allowance(t) = rate_bps * t / 1s`, with `spent` bytes charged as moves
//! start. Because the allowance is a pure function of `t` and `spent` is
//! snapshotted, a restored run admits exactly the moves the straight run
//! would have. Unused allowance is clamped to one `burst_bytes` window so
//! a long-idle engine cannot unleash a migration storm.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use powadapt_sim::SimTime;
use powadapt_snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

/// Lifecycle phase of a move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Enqueued; no IO issued yet.
    Queued,
    /// Source read in flight.
    Reading,
    /// Destination write in flight.
    Writing,
}

impl MigrationPhase {
    fn to_u8(self) -> u8 {
        match self {
            MigrationPhase::Queued => 0,
            MigrationPhase::Reading => 1,
            MigrationPhase::Writing => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, SnapError> {
        match v {
            0 => Ok(MigrationPhase::Queued),
            1 => Ok(MigrationPhase::Reading),
            2 => Ok(MigrationPhase::Writing),
            b => Err(SnapError::InvalidValue(format!("migration phase byte {b}"))),
        }
    }
}

/// One extent move, from enqueue to commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// Engine-wide move id, never reused.
    pub id: u64,
    /// Extent being moved.
    pub extent: u64,
    /// Flat device index of the replica being vacated.
    pub from: u32,
    /// Flat device index of the new replica.
    pub to: u32,
    /// Device offset of the extent's data (pre-clamp).
    pub offset: u64,
    /// Bytes to move.
    pub len: u64,
    /// Current phase.
    pub phase: MigrationPhase,
}

impl Snapshot for Migration {
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.id);
        w.u64(self.extent);
        w.u32(self.from);
        w.u32(self.to);
        w.u64(self.offset);
        w.u64(self.len);
        w.u8(self.phase.to_u8());
        Ok(())
    }
}

impl Restore for Migration {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.id = r.u64()?;
        self.extent = r.u64()?;
        self.from = r.u32()?;
        self.to = r.u32()?;
        self.offset = r.u64()?;
        self.len = r.u64()?;
        self.phase = MigrationPhase::from_u8(r.u8()?)?;
        Ok(())
    }
}

/// One migration IO the cluster layer must issue on the engine's behalf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationIo {
    /// The move this IO belongs to.
    pub migration: u64,
    /// Flat device index to submit against.
    pub dev: u32,
    /// True for the destination write, false for the source read.
    pub write: bool,
    /// Device offset (pre-clamp).
    pub offset: u64,
    /// Transfer length in bytes.
    pub len: u64,
}

/// The deterministic move queue + token allowance.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationEngine {
    /// Move ids awaiting start, in enqueue order.
    queue: VecDeque<u64>,
    /// Every unfinished move (queued or in flight), by id.
    moves: BTreeMap<u64, Migration>,
    /// Next move id to assign.
    next_id: u64,
    /// Sustained migration rate in bytes/second; 0 disables migration.
    rate_bps: u64,
    /// Allowance cap: at most this many unspent bytes accumulate.
    burst_bytes: u64,
    /// Cumulative bytes charged against the allowance.
    spent_bytes: u64,
    /// Moves with an IO currently in flight.
    inflight: usize,
    /// Cap on concurrently in-flight moves.
    max_active: usize,
    /// Moves started, lifetime.
    started: u64,
    /// Moves committed, lifetime.
    completed: u64,
}

impl MigrationEngine {
    /// A new engine with the given rate limit and concurrency cap.
    pub fn new(rate_bps: u64, burst_bytes: u64, max_active: usize) -> Self {
        MigrationEngine {
            queue: VecDeque::new(),
            moves: BTreeMap::new(),
            next_id: 0,
            rate_bps,
            burst_bytes,
            spent_bytes: 0,
            inflight: 0,
            max_active,
            started: 0,
            completed: 0,
        }
    }

    /// Bytes of allowance available at `now`.
    fn available(&self, now: SimTime) -> u64 {
        let allowance =
            (u128::from(self.rate_bps) * u128::from(now.as_nanos()) / 1_000_000_000) as u64;
        allowance
            .saturating_sub(self.spent_bytes)
            .min(self.burst_bytes)
    }

    /// Enqueues a move and returns its id.
    pub fn enqueue(&mut self, extent: u64, from: u32, to: u32, offset: u64, len: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.moves.insert(
            id,
            Migration {
                id,
                extent,
                from,
                to,
                offset,
                len,
                phase: MigrationPhase::Queued,
            },
        );
        self.queue.push_back(id);
        id
    }

    /// True when any unfinished move touches device `dev` as source or
    /// destination — such a device must not be parked in standby.
    pub fn busy(&self, dev: u32) -> bool {
        self.moves.values().any(|m| m.from == dev || m.to == dev)
    }

    /// True when an extent already has an unfinished move (no double
    /// moves of the same extent).
    pub fn moving(&self, extent: u64) -> bool {
        self.moves.values().any(|m| m.extent == extent)
    }

    /// Starts every queued move the allowance, the concurrency cap, and
    /// the per-device gate permit, in enqueue order; returns the source
    /// reads to issue. Moves whose endpoints `allowed` rejects stay
    /// queued in order for a later round (breaker-cap coordination).
    pub fn start_ready(&mut self, now: SimTime, allowed: &[bool]) -> Vec<MigrationIo> {
        let mut out = Vec::new();
        let mut budget = self.available(now);
        let mut deferred: VecDeque<u64> = VecDeque::new();
        while let Some(id) = self.queue.pop_front() {
            if self.inflight >= self.max_active || budget == 0 {
                deferred.push_back(id);
                continue;
            }
            let Some(m) = self.moves.get_mut(&id) else {
                continue;
            };
            let gate_ok = |d: u32| allowed.get(d as usize).copied().unwrap_or(false);
            if !gate_ok(m.from) || !gate_ok(m.to) || m.len > budget {
                deferred.push_back(id);
                continue;
            }
            budget -= m.len;
            self.spent_bytes += m.len;
            self.inflight += 1;
            self.started += 1;
            m.phase = MigrationPhase::Reading;
            out.push(MigrationIo {
                migration: id,
                dev: m.from,
                write: false,
                offset: m.offset,
                len: m.len,
            });
        }
        self.queue = deferred;
        out
    }

    /// The source read of move `id` completed: returns the destination
    /// write to issue. `None` for unknown or out-of-phase ids.
    pub fn read_done(&mut self, id: u64) -> Option<MigrationIo> {
        let m = self.moves.get_mut(&id)?;
        if m.phase != MigrationPhase::Reading {
            return None;
        }
        m.phase = MigrationPhase::Writing;
        Some(MigrationIo {
            migration: id,
            dev: m.to,
            write: true,
            offset: m.offset,
            len: m.len,
        })
    }

    /// The destination write of move `id` completed: the move is done and
    /// removed; the caller commits the holder change. `None` for unknown
    /// or out-of-phase ids.
    pub fn write_done(&mut self, id: u64) -> Option<Migration> {
        if self.moves.get(&id)?.phase != MigrationPhase::Writing {
            return None;
        }
        let m = self.moves.remove(&id)?;
        self.inflight -= 1;
        self.completed += 1;
        Some(m)
    }

    /// Unfinished moves (queued + in flight).
    pub fn pending(&self) -> usize {
        self.moves.len()
    }

    /// The unfinished move with `id`, if any.
    pub fn get(&self, id: u64) -> Option<&Migration> {
        self.moves.get(&id)
    }

    /// Iterates every unfinished move in id order.
    pub fn moves(&self) -> impl Iterator<Item = &Migration> {
        self.moves.values()
    }

    /// Moves started over the engine's lifetime.
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Moves committed over the engine's lifetime.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

impl Snapshot for MigrationEngine {
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        // rate_bps / burst_bytes / max_active are spec-derived and are
        // serialized anyway so a resume cannot silently run under a
        // different rate than the run that wrote the checkpoint.
        w.u64(self.rate_bps);
        w.u64(self.burst_bytes);
        w.usize(self.max_active);
        w.u64(self.next_id);
        w.u64(self.spent_bytes);
        w.usize(self.inflight);
        w.u64(self.started);
        w.u64(self.completed);
        w.seq_len(self.moves.len());
        for m in self.moves.values() {
            m.write_state(w)?;
        }
        w.seq_len(self.queue.len());
        for &id in &self.queue {
            w.u64(id);
        }
        Ok(())
    }
}

impl Restore for MigrationEngine {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rate_bps = r.u64()?;
        self.burst_bytes = r.u64()?;
        self.max_active = r.usize()?;
        self.next_id = r.u64()?;
        self.spent_bytes = r.u64()?;
        self.inflight = r.usize()?;
        self.started = r.u64()?;
        self.completed = r.u64()?;
        let n = r.seq_len()?;
        self.moves.clear();
        for _ in 0..n {
            let mut m = Migration {
                id: 0,
                extent: 0,
                from: 0,
                to: 0,
                offset: 0,
                len: 0,
                phase: MigrationPhase::Queued,
            };
            m.read_state(r)?;
            if m.id >= self.next_id {
                return Err(SnapError::InvalidValue(format!(
                    "migration id {} is not below next_id {}",
                    m.id, self.next_id
                )));
            }
            if self.moves.insert(m.id, m).is_some() {
                return Err(SnapError::InvalidValue(
                    "duplicate migration id".to_string(),
                ));
            }
        }
        let q = r.seq_len()?;
        self.queue.clear();
        for _ in 0..q {
            let id = r.u64()?;
            match self.moves.get(&id) {
                Some(m) if m.phase == MigrationPhase::Queued => self.queue.push_back(id),
                _ => {
                    return Err(SnapError::InvalidValue(format!(
                        "queued migration id {id} is unknown or not in the queued phase"
                    )))
                }
            }
        }
        let queued = self
            .moves
            .values()
            .filter(|m| m.phase == MigrationPhase::Queued)
            .count();
        let live = self.moves.len() - queued;
        if queued != self.queue.len() || live != self.inflight {
            return Err(SnapError::InvalidValue(format!(
                "migration phase accounting mismatch: {queued} queued vs queue len {}, \
                 {live} in flight vs recorded {}",
                self.queue.len(),
                self.inflight
            )));
        }
        Ok(())
    }
}

// Tests unwrap and compare floats freely; assertion panics are the point.
#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::float_cmp)]
mod tests {
    use super::*;

    fn engine() -> MigrationEngine {
        MigrationEngine::new(1_000, 2_000, 2)
    }

    const ALL: &[bool] = &[true; 8];

    #[test]
    fn rate_limit_defers_moves() {
        let mut e = engine();
        e.enqueue(0, 0, 1, 0, 1_000);
        e.enqueue(1, 0, 1, 0, 1_000);
        // At t=1s the allowance is 1000 bytes: exactly one move starts.
        let t1 = SimTime::ZERO + powadapt_sim::SimDuration::from_secs(1);
        let started = e.start_ready(t1, ALL);
        assert_eq!(started.len(), 1);
        assert!(!started[0].write);
        assert_eq!(started[0].dev, 0);
        assert_eq!(e.pending(), 2);
        // A second later the other move's bytes have accrued.
        let t2 = SimTime::ZERO + powadapt_sim::SimDuration::from_secs(2);
        assert_eq!(e.start_ready(t2, ALL).len(), 1);
    }

    #[test]
    fn burst_clamp_prevents_storms() {
        let mut e = engine();
        for i in 0..10 {
            e.enqueue(i, 0, 1, 0, 1_000);
        }
        // Hours of idle allowance, but the burst cap holds it to 2000
        // bytes (and max_active to 2 moves anyway).
        let late = SimTime::ZERO + powadapt_sim::SimDuration::from_secs(3_600);
        assert_eq!(e.start_ready(late, ALL).len(), 2);
    }

    #[test]
    fn gated_endpoints_stay_queued_in_order() {
        let mut e = engine();
        let a = e.enqueue(0, 3, 1, 0, 100);
        let b = e.enqueue(1, 0, 1, 0, 100);
        let mut allowed = vec![true; 8];
        allowed[3] = false;
        let t = SimTime::ZERO + powadapt_sim::SimDuration::from_secs(1);
        let started = e.start_ready(t, &allowed);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].migration, b);
        allowed[3] = true;
        let started = e.start_ready(t, &allowed);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].migration, a);
    }

    #[test]
    fn full_lifecycle_and_counters() {
        let mut e = engine();
        let id = e.enqueue(7, 0, 1, 4096, 100);
        let t = SimTime::ZERO + powadapt_sim::SimDuration::from_secs(1);
        assert_eq!(e.start_ready(t, ALL).len(), 1);
        assert!(e.busy(0) && e.busy(1) && !e.busy(2));
        assert!(e.moving(7));
        let wr = e.read_done(id).unwrap();
        assert!(wr.write);
        assert_eq!(wr.dev, 1);
        assert_eq!(wr.offset, 4096);
        assert!(e.read_done(id).is_none());
        let done = e.write_done(id).unwrap();
        assert_eq!(done.extent, 7);
        assert_eq!((e.started(), e.completed()), (1, 1));
        assert_eq!(e.pending(), 0);
        assert!(!e.busy(0));
    }

    #[test]
    fn snapshot_roundtrip_mid_move() {
        let mut e = engine();
        let id = e.enqueue(0, 0, 1, 0, 500);
        e.enqueue(1, 2, 3, 0, 500);
        let t = SimTime::ZERO + powadapt_sim::SimDuration::from_secs(1);
        let _ = e.start_ready(t, ALL);
        let _ = e.read_done(id);
        let mut w = SnapWriter::new();
        e.write_state(&mut w).unwrap();
        let payload = w.into_payload();
        let mut fresh = MigrationEngine::new(0, 0, 0);
        let mut r = SnapReader::new(&payload);
        fresh.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh, e);
    }

    #[test]
    fn restore_rejects_inconsistent_queue() {
        let mut e = engine();
        e.enqueue(0, 0, 1, 0, 500);
        let mut w = SnapWriter::new();
        e.write_state(&mut w).unwrap();
        let mut payload = w.into_payload();
        // Flip the queued id to an unknown one (last 8 bytes).
        let n = payload.len();
        payload[n - 8] = 0xFF;
        let mut fresh = MigrationEngine::new(0, 0, 0);
        let mut r = SnapReader::new(&payload);
        assert!(fresh.read_state(&mut r).is_err());
    }
}
