//! `powadapt-place` — the energy-aware data placement & migration tier.
//!
//! The paper's §4 design implications argue that device standby only pays
//! off when a system *concentrates* cold data so whole devices can sleep.
//! This crate supplies the machinery: an extent catalog with per-extent
//! sim-time temperature EWMAs ([`Temperature`]), capacity-aware replica
//! placement with rack anti-affinity ([`PlacementTier`]), a deterministic
//! rate-limited background migration engine ([`MigrationEngine`]), and a
//! spin-down consolidation policy that drains cold extents to designated
//! cold targets (the Exos HDDs) and pins them into standby between batch
//! windows.
//!
//! The tier is deliberately device-free: it decides *where* data should
//! live and *what* should move; the cluster layer owns the devices,
//! issues the migration IOs through the ordinary fleet runner (so
//! migration traffic shares queues, power, and breaker caps with tenant
//! IO), and reports completions back. Every decision is a pure function
//! of catalog state and sim time, and the whole tier implements
//! [`Snapshot`](powadapt_snap::Snapshot)/[`Restore`](powadapt_snap::Restore),
//! so mid-migration checkpoints resume bit-exact.

pub mod catalog;
pub mod migrate;
pub mod temperature;
pub mod tier;

pub use catalog::{Extent, ExtentCatalog, ExtentKey};
pub use migrate::{Migration, MigrationEngine, MigrationIo, MigrationPhase};
pub use temperature::Temperature;
pub use tier::{DeviceSlot, Placed, PlacementConfig, PlacementMode, PlacementTier};
