//! The placement tier: capacity-aware replica placement, temperature
//! bookkeeping, and the spin-down consolidation policy, glued to the
//! migration engine.
//!
//! The tier is pure bookkeeping — it never touches a device. The cluster
//! layer asks it where reads and writes should land, drives `tick` once
//! per control round, issues the migration IOs it hands back through the
//! ordinary fleet runner, and reports completions. Keeping the tier
//! device-free makes every decision a deterministic function of the
//! catalog state, so the whole subsystem snapshots cleanly.

use powadapt_sim::{SimDuration, SimTime};
use powadapt_snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

use crate::catalog::ExtentCatalog;
use crate::migrate::{Migration, MigrationEngine, MigrationIo};

/// Heat contributed per 4 KiB page accessed: temperatures read as "pages
/// touched per window", decayed by half each window.
const PAGE_BYTES: f64 = 4096.0;

/// How the placer ranks devices for fresh extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMode {
    /// Energy-aware: fresh (presumed-warm) extents prefer devices that
    /// are not cold targets; consolidation later drains cold extents to
    /// the cold tier.
    TempDriven,
    /// Capacity-only spread across every device, blind to device class —
    /// the static baseline the paper's §4 argues against.
    StaticSpread,
}

/// One routable device as the placer sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSlot {
    /// Rack index — the anti-affinity domain for replica placement.
    pub rack: u32,
    /// Advertised capacity in bytes.
    pub capacity: u64,
    /// True for devices meant to absorb cold data and spin down between
    /// batch windows (the Exos HDDs).
    pub cold_target: bool,
}

/// Static configuration of the placement tier.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementConfig {
    /// Unit of placement and migration, in bytes.
    pub extent_bytes: u64,
    /// Replicas per extent (primary included), capped by device count.
    pub replicas: u8,
    /// Temperature window: heat halves once per elapsed window.
    pub temp_window: SimDuration,
    /// Extents at or below this temperature count as cold.
    pub cold_threshold: f64,
    /// Consolidation cadence: cold extents are drained once per batch
    /// window, and cold targets may sleep between windows.
    pub batch_window: SimDuration,
    /// Sustained migration rate limit, bytes/second.
    pub migration_rate_bps: u64,
    /// Allowance clamp for the migration token bucket, in bytes.
    pub migration_burst_bytes: u64,
    /// Cap on concurrently in-flight moves.
    pub max_active_migrations: usize,
    /// Fresh-extent ranking mode.
    pub mode: PlacementMode,
    /// Whether the migration engine actually issues moves.
    pub migrate: bool,
    /// Whether the consolidation policy plans moves and pins cold
    /// targets into standby.
    pub consolidate: bool,
}

impl PlacementConfig {
    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.extent_bytes == 0 {
            return Err("extent_bytes must be positive".to_string());
        }
        if self.replicas == 0 {
            return Err("replicas must be at least 1".to_string());
        }
        if self.temp_window.as_nanos() == 0 {
            return Err("temp_window must be positive".to_string());
        }
        if self.batch_window.as_nanos() == 0 {
            return Err("batch_window must be positive".to_string());
        }
        if !self.cold_threshold.is_finite() || self.cold_threshold < 0.0 {
            return Err(format!(
                "cold_threshold {} must be finite and non-negative",
                self.cold_threshold
            ));
        }
        if self.migrate && self.migration_rate_bps == 0 {
            return Err("migration_rate_bps must be positive when migrate is on".to_string());
        }
        if self.consolidate && !self.migrate {
            return Err("consolidation requires the migration engine".to_string());
        }
        Ok(())
    }
}

/// Where a write landed: the extent and its primary, plus whether this
/// write allocated the extent (a placement decision worth an obs event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placed {
    /// Extent id.
    pub extent: u64,
    /// Flat device index of the primary holder.
    pub primary: u32,
    /// Holder count.
    pub replicas: u8,
    /// True when this write allocated the extent.
    pub newly_placed: bool,
}

/// The placement tier.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementTier {
    /// Static configuration (spec-derived, not serialized).
    cfg: PlacementConfig,
    /// Device table (spec-derived, not serialized).
    slots: Vec<DeviceSlot>,
    /// Bytes charged per device: live replicas plus reserved migration
    /// destinations.
    used: Vec<u64>,
    /// The extent catalog.
    catalog: ExtentCatalog,
    /// The background migration engine.
    engine: MigrationEngine,
    /// Next batch-window index whose consolidation pass has not run yet.
    next_batch: u64,
    /// Cold-target devices currently parked: the controller must plan
    /// them as standby and never wake them.
    pinned: Vec<bool>,
    /// Cumulative bytes of committed moves (the ledger's system-tenant
    /// usage signal).
    moved_bytes: u64,
}

impl PlacementTier {
    /// Builds a tier over `slots`. The configuration must be valid
    /// ([`PlacementConfig::validate`]).
    pub fn new(cfg: PlacementConfig, slots: Vec<DeviceSlot>) -> Self {
        let n = slots.len();
        let engine = MigrationEngine::new(
            cfg.migration_rate_bps,
            cfg.migration_burst_bytes,
            cfg.max_active_migrations,
        );
        PlacementTier {
            cfg,
            slots,
            used: vec![0; n],
            catalog: ExtentCatalog::new(),
            engine,
            next_batch: 0,
            pinned: vec![false; n],
            moved_bytes: 0,
        }
    }

    /// The temperature window index at `now`.
    fn window(&self, now: SimTime) -> u64 {
        now.as_nanos() / self.cfg.temp_window.as_nanos()
    }

    /// Utilization of device `d` in parts per million (integer, so ranking
    /// is deterministic and capacity-weighted across unequal devices).
    fn utilization_ppm(&self, d: usize) -> u64 {
        let cap = self.slots[d].capacity.max(1);
        (u128::from(self.used[d]) * 1_000_000 / u128::from(cap)) as u64
    }

    /// Chooses a holder list for a fresh extent: capacity-ranked, class
    /// aware in [`PlacementMode::TempDriven`], racks pairwise distinct
    /// while distinct racks remain.
    fn choose_holders(&self) -> Vec<u32> {
        let want = (self.cfg.replicas as usize).min(self.slots.len());
        let mut ranked: Vec<usize> = (0..self.slots.len()).collect();
        ranked.sort_by_key(|&d| {
            let fits = self.used[d] + self.cfg.extent_bytes <= self.slots[d].capacity;
            let class_penalty = match self.cfg.mode {
                PlacementMode::TempDriven => u8::from(self.slots[d].cold_target),
                PlacementMode::StaticSpread => 0,
            };
            (!fits, class_penalty, self.utilization_ppm(d), d)
        });
        let mut holders: Vec<u32> = Vec::with_capacity(want);
        let mut racks: Vec<u32> = Vec::with_capacity(want);
        for relax_rack in [false, true] {
            for &d in &ranked {
                if holders.len() == want {
                    break;
                }
                let dev = d as u32;
                if holders.contains(&dev) {
                    continue;
                }
                if !relax_rack && racks.contains(&self.slots[d].rack) {
                    continue;
                }
                holders.push(dev);
                racks.push(self.slots[d].rack);
            }
        }
        holders
    }

    /// Resolves a write: the extent's primary holder, allocating (and
    /// capacity-charging) the extent on first touch.
    pub fn route_write(&mut self, tenant: u32, offset: u64, len: u64, now: SimTime) -> Placed {
        let index = offset / self.cfg.extent_bytes;
        let window = self.window(now);
        let weight = len as f64 / PAGE_BYTES;
        if let Some(id) = self.catalog.id_at((tenant, index)) {
            // Existing extent: heat it and return its primary. The
            // catalog entry is guaranteed present for a live id.
            let mut primary = 0;
            let mut replicas = 0;
            if let Some(e) = self.catalog.get_mut(id) {
                e.temp.touch(window, weight);
                primary = e.holders[0];
                replicas = e.holders.len() as u8;
            }
            return Placed {
                extent: id,
                primary,
                replicas,
                newly_placed: false,
            };
        }
        let holders = self.choose_holders();
        for &h in &holders {
            self.used[h as usize] += self.cfg.extent_bytes;
        }
        let primary = holders[0];
        let replicas = holders.len() as u8;
        let id = self.catalog.insert(tenant, index, holders);
        if let Some(e) = self.catalog.get_mut(id) {
            e.temp.touch(window, weight);
        }
        Placed {
            extent: id,
            primary,
            replicas,
            newly_placed: true,
        }
    }

    /// Resolves a read: fills `out` with the extent's holders in
    /// preference order (primary first) and returns true, or returns
    /// false for an extent that was never written (the caller falls back
    /// to its legacy routing).
    pub fn read_holders(
        &mut self,
        tenant: u32,
        offset: u64,
        len: u64,
        now: SimTime,
        out: &mut Vec<u32>,
    ) -> bool {
        let index = offset / self.cfg.extent_bytes;
        let Some(id) = self.catalog.id_at((tenant, index)) else {
            return false;
        };
        let window = self.window(now);
        let weight = len as f64 / PAGE_BYTES;
        match self.catalog.get_mut(id) {
            Some(e) => {
                e.temp.touch(window, weight);
                out.clear();
                out.extend_from_slice(&e.holders);
                true
            }
            None => false,
        }
    }

    /// Plans one consolidation pass: every cold extent whose primary sits
    /// on a non-cold-target device is queued to move to the least-utilized
    /// cold target with room, coldest first. Destinations are reserved
    /// immediately so concurrent plans cannot overcommit a device.
    fn plan_consolidation(&mut self, window: u64) {
        let mut candidates: Vec<(u64, f64)> = self
            .catalog
            .iter()
            .filter(|e| {
                let primary = e.holders[0] as usize;
                !self.slots[primary].cold_target
                    && e.temp.value_at(window) <= self.cfg.cold_threshold
                    && !self.engine.moving(e.id)
            })
            .map(|e| (e.id, e.temp.value_at(window)))
            .collect();
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        for (id, _) in candidates {
            let Some(e) = self.catalog.get(id) else {
                continue;
            };
            let from = e.holders[0];
            let offset = e.index * self.cfg.extent_bytes;
            // Racks already covered by the extent's *other* replicas stay
            // off limits so the move preserves rack anti-affinity.
            let other_racks: Vec<u32> = e.holders[1..]
                .iter()
                .map(|&h| self.slots[h as usize].rack)
                .collect();
            let holders = e.holders.clone();
            let target = (0..self.slots.len())
                .filter(|&d| {
                    self.slots[d].cold_target
                        && !holders.contains(&(d as u32))
                        && !other_racks.contains(&self.slots[d].rack)
                        && self.used[d] + self.cfg.extent_bytes <= self.slots[d].capacity
                })
                .min_by_key(|&d| (self.utilization_ppm(d), d));
            let Some(to) = target else { continue };
            self.used[to] += self.cfg.extent_bytes;
            self.engine
                .enqueue(id, from, to as u32, offset, self.cfg.extent_bytes);
        }
    }

    /// Recomputes which cold targets may sleep: a device is pinned into
    /// standby when consolidation is on, no unfinished move touches it,
    /// and no extent it serves as primary is currently hot.
    fn recompute_pins(&mut self, window: u64) {
        let n = self.slots.len();
        let mut hot_primary = vec![false; n];
        for e in self.catalog.iter() {
            if e.temp.value_at(window) > self.cfg.cold_threshold {
                hot_primary[e.holders[0] as usize] = true;
            }
        }
        for (d, hot) in hot_primary.iter().enumerate() {
            self.pinned[d] = self.cfg.consolidate
                && self.slots[d].cold_target
                && !self.engine.busy(d as u32)
                && !hot;
        }
    }

    /// One control-round tick: runs the consolidation planner at batch
    /// boundaries, starts rate-limited moves whose endpoints `allowed`
    /// clears (devices outside their breaker headroom stay untouched),
    /// and refreshes the standby pin set. Returns the source reads to
    /// issue.
    pub fn tick(&mut self, now: SimTime, allowed: &[bool]) -> Vec<MigrationIo> {
        let window = self.window(now);
        if self.cfg.consolidate {
            let batch = now.as_nanos() / self.cfg.batch_window.as_nanos();
            if batch >= self.next_batch {
                self.plan_consolidation(window);
                self.next_batch = batch + 1;
            }
        }
        let starts = if self.cfg.migrate {
            self.engine.start_ready(now, allowed)
        } else {
            Vec::new()
        };
        self.recompute_pins(window);
        starts
    }

    /// Forwards a completed migration source read; returns the
    /// destination write to issue.
    pub fn migration_read_done(&mut self, id: u64) -> Option<MigrationIo> {
        self.engine.read_done(id)
    }

    /// Forwards a completed migration destination write; commits the
    /// holder change and releases the source's capacity. Returns the
    /// committed move.
    pub fn migration_write_done(&mut self, id: u64) -> Option<Migration> {
        let m = self.engine.write_done(id)?;
        self.catalog.replace_holder(m.extent, m.from, m.to);
        self.used[m.from as usize] = self.used[m.from as usize].saturating_sub(m.len);
        self.moved_bytes += m.len;
        Some(m)
    }

    /// The current standby pin set, indexed by flat device.
    pub fn pinned(&self) -> &[bool] {
        &self.pinned
    }

    /// Cumulative committed migration bytes (system-tenant usage).
    pub fn moved_bytes(&self) -> u64 {
        self.moved_bytes
    }

    /// Live extents in the catalog.
    pub fn extents(&self) -> usize {
        self.catalog.len()
    }

    /// Bytes charged per device.
    pub fn used(&self) -> &[u64] {
        &self.used
    }

    /// Lifetime (started, completed) move counts.
    pub fn migrations(&self) -> (u64, u64) {
        (self.engine.started(), self.engine.completed())
    }

    /// Unfinished moves (queued + in flight).
    pub fn pending_migrations(&self) -> usize {
        self.engine.pending()
    }

    /// The unfinished move with `id`, if any.
    pub fn migration(&self, id: u64) -> Option<&Migration> {
        self.engine.get(id)
    }
}

impl Snapshot for PlacementTier {
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        // cfg and slots are rebuilt from the spec on resume; everything
        // dynamic is serialized and cross-checked against them on read.
        w.seq_len(self.used.len());
        for &u in &self.used {
            w.u64(u);
        }
        self.catalog.write_state(w)?;
        self.engine.write_state(w)?;
        w.u64(self.next_batch);
        w.seq_len(self.pinned.len());
        for &p in &self.pinned {
            w.bool(p);
        }
        w.u64(self.moved_bytes);
        Ok(())
    }
}

impl Restore for PlacementTier {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = self.slots.len();
        let used_n = r.seq_len()?;
        if used_n != n {
            return Err(SnapError::InvalidValue(format!(
                "placement used-bytes count {used_n} does not match {n} devices"
            )));
        }
        for u in &mut self.used {
            *u = r.u64()?;
        }
        self.catalog.read_state(r)?;
        self.engine.read_state(r)?;
        self.next_batch = r.u64()?;
        let pinned_n = r.seq_len()?;
        if pinned_n != n {
            return Err(SnapError::InvalidValue(format!(
                "placement pin count {pinned_n} does not match {n} devices"
            )));
        }
        for p in &mut self.pinned {
            *p = r.bool()?;
        }
        self.moved_bytes = r.u64()?;
        // Cross-check the restored charges against the catalog plus
        // reserved migration destinations, which also validates every
        // holder index against the device table.
        let mut expect: Vec<u64> = vec![0; n];
        for e in self.catalog.iter() {
            for &h in &e.holders {
                let slot = expect.get_mut(h as usize).ok_or_else(|| {
                    SnapError::InvalidValue(format!(
                        "extent {} holder {h} is out of range for {n} devices",
                        e.id
                    ))
                })?;
                *slot += self.cfg.extent_bytes;
            }
        }
        for m in self.engine.moves() {
            let slot = expect.get_mut(m.to as usize).ok_or_else(|| {
                SnapError::InvalidValue(format!(
                    "migration {} destination {} is out of range for {n} devices",
                    m.id, m.to
                ))
            })?;
            *slot += m.len;
        }
        if expect != self.used {
            return Err(SnapError::InvalidValue(
                "placement capacity charges do not match the restored catalog".to_string(),
            ));
        }
        Ok(())
    }
}

// Tests unwrap and compare floats freely; assertion panics are the point.
#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::float_cmp)]
mod tests {
    use super::*;

    fn cfg(mode: PlacementMode, replicas: u8) -> PlacementConfig {
        PlacementConfig {
            extent_bytes: 1 << 20,
            replicas,
            temp_window: SimDuration::from_secs(1),
            cold_threshold: 0.5,
            batch_window: SimDuration::from_secs(4),
            migration_rate_bps: 64 << 20,
            migration_burst_bytes: 64 << 20,
            max_active_migrations: 2,
            mode,
            migrate: true,
            consolidate: true,
        }
    }

    /// Two SSD-ish slots on rack 0, two cold targets on racks 1 and 2.
    fn slots() -> Vec<DeviceSlot> {
        vec![
            DeviceSlot {
                rack: 0,
                capacity: 64 << 20,
                cold_target: false,
            },
            DeviceSlot {
                rack: 0,
                capacity: 64 << 20,
                cold_target: false,
            },
            DeviceSlot {
                rack: 1,
                capacity: 256 << 20,
                cold_target: true,
            },
            DeviceSlot {
                rack: 2,
                capacity: 256 << 20,
                cold_target: true,
            },
        ]
    }

    const ALL: &[bool] = &[true; 4];

    #[test]
    fn config_validation_catches_nonsense() {
        let mut c = cfg(PlacementMode::TempDriven, 1);
        assert!(c.validate().is_ok());
        c.extent_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = cfg(PlacementMode::TempDriven, 1);
        c.consolidate = true;
        c.migrate = false;
        assert!(c.validate().is_err());
    }

    #[test]
    fn temp_driven_prefers_warm_tier_and_spreads_by_capacity() {
        let mut tier = PlacementTier::new(cfg(PlacementMode::TempDriven, 1), slots());
        let a = tier.route_write(0, 0, 4096, SimTime::ZERO);
        let b = tier.route_write(0, 1 << 20, 4096, SimTime::ZERO);
        assert!(a.newly_placed && b.newly_placed);
        // Both land on the non-cold tier, least-utilized first.
        assert_eq!(a.primary, 0);
        assert_eq!(b.primary, 1);
        // A rewrite resolves to the same extent without reallocating.
        let again = tier.route_write(0, 4096, 4096, SimTime::ZERO);
        assert_eq!(again.extent, a.extent);
        assert!(!again.newly_placed);
        assert_eq!(tier.extents(), 2);
    }

    #[test]
    fn replicas_land_on_distinct_racks() {
        let mut tier = PlacementTier::new(cfg(PlacementMode::TempDriven, 2), slots());
        let p = tier.route_write(0, 0, 4096, SimTime::ZERO);
        assert_eq!(p.replicas, 2);
        let mut holders = Vec::new();
        assert!(tier.read_holders(0, 0, 4096, SimTime::ZERO, &mut holders));
        assert_eq!(holders[0], p.primary);
        // Primary on rack 0 (warm tier), secondary forced off rack 0.
        assert_eq!(holders.len(), 2);
        assert_ne!(holders[1] as usize, 0);
        assert_ne!(holders[1] as usize, 1);
    }

    #[test]
    fn capacity_pressure_overflows_to_cold_tier() {
        let mut tier = PlacementTier::new(cfg(PlacementMode::TempDriven, 1), slots());
        // 64 extents of 1 MiB fill both 64 MiB warm devices.
        for i in 0..128 {
            tier.route_write(0, i << 20, 4096, SimTime::ZERO);
        }
        let overflow = tier.route_write(0, 128 << 20, 4096, SimTime::ZERO);
        assert!(tier.used()[0] == 64 << 20 && tier.used()[1] == 64 << 20);
        assert!(overflow.primary == 2 || overflow.primary == 3);
    }

    #[test]
    fn consolidation_moves_cold_extents_and_pins_quiet_targets() {
        let mut tier = PlacementTier::new(cfg(PlacementMode::TempDriven, 1), slots());
        let p = tier.route_write(0, 0, 4096, SimTime::ZERO);
        assert_eq!(p.primary, 0);
        // Tick inside the first batch window: extent is still warm, so
        // nothing moves and the cold targets (untouched) are pinned.
        let starts = tier.tick(SimTime::ZERO + SimDuration::from_millis(500), ALL);
        assert!(starts.is_empty());
        assert_eq!(tier.pinned(), &[false, false, true, true]);
        // Two batch windows later the extent has fully cooled: the next
        // tick plans its move, starts the source read, and unpins the
        // destination for the drain.
        let t = SimTime::ZERO + SimDuration::from_secs(8);
        let starts = tier.tick(t, ALL);
        assert_eq!(starts.len(), 1);
        let io = starts[0];
        assert!(!io.write);
        assert_eq!(io.dev, 0);
        let dest = {
            let wr = tier.migration_read_done(io.migration).unwrap();
            assert!(wr.write);
            wr.dev
        };
        assert!(!tier.pinned()[0] && !tier.pinned()[dest as usize]);
        let done = tier.migration_write_done(io.migration).unwrap();
        assert_eq!(done.from, 0);
        assert_eq!(done.to, dest);
        // Capacity followed the move and the system moved-bytes account
        // saw the traffic.
        assert_eq!(tier.used()[0], 0);
        assert_eq!(tier.used()[dest as usize], 1 << 20);
        assert_eq!(tier.moved_bytes(), 1 << 20);
        // With the move committed the target may sleep again.
        let _ = tier.tick(t + SimDuration::from_millis(1), ALL);
        assert!(tier.pinned()[dest as usize]);
        // Reads now resolve to the cold target.
        let mut holders = Vec::new();
        assert!(tier.read_holders(0, 0, 4096, t, &mut holders));
        assert_eq!(holders, vec![dest]);
    }

    #[test]
    fn static_spread_never_consolidates() {
        let mut c = cfg(PlacementMode::StaticSpread, 1);
        c.migrate = false;
        c.consolidate = false;
        let mut tier = PlacementTier::new(c, slots());
        // Capacity-only ranking ignores device class: the big cold
        // devices fill first per ppm utilization (all tie at 0 -> index
        // order), then spread stays balanced by ppm.
        let p = tier.route_write(0, 0, 4096, SimTime::ZERO);
        assert_eq!(p.primary, 0);
        let t = SimTime::ZERO + SimDuration::from_secs(60);
        assert!(tier.tick(t, ALL).is_empty());
        assert_eq!(tier.pinned(), &[false; 4]);
    }

    #[test]
    fn snapshot_roundtrip_mid_migration() {
        let mut tier = PlacementTier::new(cfg(PlacementMode::TempDriven, 1), slots());
        for i in 0..4 {
            tier.route_write(0, i << 20, 4096, SimTime::ZERO);
        }
        let t = SimTime::ZERO + SimDuration::from_secs(8);
        let starts = tier.tick(t, ALL);
        assert!(!starts.is_empty());
        // One move advanced to the write phase, others queued/reading.
        let _ = tier.migration_read_done(starts[0].migration).unwrap();
        let mut w = SnapWriter::new();
        tier.write_state(&mut w).unwrap();
        let payload = w.into_payload();
        let mut fresh = PlacementTier::new(cfg(PlacementMode::TempDriven, 1), slots());
        let mut r = SnapReader::new(&payload);
        fresh.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh, tier);
    }

    #[test]
    fn restore_rejects_mismatched_charges() {
        let tier = PlacementTier::new(cfg(PlacementMode::TempDriven, 1), slots());
        let mut w = SnapWriter::new();
        tier.write_state(&mut w).unwrap();
        let mut payload = w.into_payload();
        // Corrupt the first used-bytes entry (bytes 8..16 after the seq
        // length prefix).
        payload[8] = 1;
        let mut fresh = PlacementTier::new(cfg(PlacementMode::TempDriven, 1), slots());
        let mut r = SnapReader::new(&payload);
        assert!(fresh.read_state(&mut r).is_err());
    }
}
