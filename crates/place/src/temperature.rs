//! Per-extent access-temperature EWMAs on sim-time windows.
//!
//! The decay is a *binary halving per elapsed window*: after `k` windows
//! with no touches an extent's temperature is `value * 2^-k`. Multiplying
//! by 0.5 is exact in IEEE-754 (it only decrements the exponent), so the
//! decayed value is bit-identical on every platform — no `exp`/`ln`
//! anywhere near a result path. The half-life therefore *is* the window
//! length, which keeps the knob count at one.

use powadapt_snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

/// Halvings after which any finite temperature is indistinguishable from
/// zero at the thresholds this tier uses; past this the value is clamped
/// to exactly 0.0 so long-idle extents compare equal everywhere.
const DEAD_WINDOWS: u64 = 64;

/// One extent's exponentially-decayed access heat, advanced lazily: the
/// stored value is exact as of `last_window`, and observers decay it on
/// the fly to the window they ask about.
#[derive(Debug, Clone, PartialEq)]
pub struct Temperature {
    /// Accumulated heat as of `last_window`.
    value: f64,
    /// Window index (sim-time / window length) of the last touch.
    last_window: u64,
}

/// `value * 2^-elapsed`, exact, clamped to 0.0 past [`DEAD_WINDOWS`].
fn decay(value: f64, elapsed: u64) -> f64 {
    if elapsed >= DEAD_WINDOWS {
        return 0.0;
    }
    let mut v = value;
    for _ in 0..elapsed {
        v *= 0.5;
    }
    v
}

impl Temperature {
    /// A stone-cold extent (no accesses yet).
    pub fn new() -> Self {
        Temperature {
            value: 0.0,
            last_window: 0,
        }
    }

    /// Records an access of `weight` heat units in window `window`.
    /// Windows never run backwards in a deterministic sim; a stale window
    /// is treated as the current one rather than un-decaying.
    pub fn touch(&mut self, window: u64, weight: f64) {
        if window > self.last_window {
            self.value = decay(self.value, window - self.last_window);
            self.last_window = window;
        }
        self.value += weight;
    }

    /// The decayed temperature as seen from `window`, without mutating.
    pub fn value_at(&self, window: u64) -> f64 {
        if window > self.last_window {
            decay(self.value, window - self.last_window)
        } else {
            self.value
        }
    }
}

impl Default for Temperature {
    fn default() -> Self {
        Temperature::new()
    }
}

impl Snapshot for Temperature {
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.f64(self.value);
        w.u64(self.last_window);
        Ok(())
    }
}

impl Restore for Temperature {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let value = r.f64()?;
        if !value.is_finite() || value < 0.0 {
            return Err(SnapError::InvalidValue(format!(
                "temperature value {value} is not a finite non-negative number"
            )));
        }
        self.value = value;
        self.last_window = r.u64()?;
        Ok(())
    }
}

// Tests unwrap and compare floats freely; assertion panics are the point.
#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn decay_halves_per_window() {
        let mut t = Temperature::new();
        t.touch(10, 8.0);
        assert_eq!(t.value_at(10), 8.0);
        assert_eq!(t.value_at(11), 4.0);
        assert_eq!(t.value_at(13), 1.0);
    }

    #[test]
    fn touch_accumulates_after_decay() {
        let mut t = Temperature::new();
        t.touch(0, 4.0);
        t.touch(2, 1.0);
        // 4.0 halved twice = 1.0, plus the new unit.
        assert_eq!(t.value_at(2), 2.0);
    }

    #[test]
    fn long_idle_is_exactly_zero() {
        let mut t = Temperature::new();
        t.touch(0, 1.0e300);
        assert_eq!(t.value_at(DEAD_WINDOWS), 0.0);
        assert_eq!(t.value_at(DEAD_WINDOWS + 100), 0.0);
    }

    #[test]
    fn stale_window_does_not_undecay() {
        let mut t = Temperature::new();
        t.touch(5, 2.0);
        t.touch(3, 1.0);
        assert_eq!(t.value_at(5), 3.0);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut t = Temperature::new();
        t.touch(7, 3.25);
        let mut w = SnapWriter::new();
        t.write_state(&mut w).unwrap();
        let payload = w.into_payload();
        let mut fresh = Temperature::new();
        let mut r = SnapReader::new(&payload);
        fresh.read_state(&mut r).unwrap();
        assert_eq!(fresh, t);
    }

    #[test]
    fn restore_rejects_nan() {
        let mut w = SnapWriter::new();
        w.f64(f64::NAN);
        w.u64(0);
        let payload = w.into_payload();
        let mut t = Temperature::new();
        let mut r = SnapReader::new(&payload);
        assert!(t.read_state(&mut r).is_err());
    }
}
