//! The extent catalog: which device holds which slice of which tenant's
//! address space, and how hot that slice currently is.
//!
//! Tenant address spaces are chopped into fixed-size *extents*; an extent
//! is the unit of placement, temperature tracking, and migration. Each
//! extent carries an ordered holder list — `holders[0]` is the primary
//! that serves writes; reads may be served by any holder. All maps are
//! `BTreeMap` so iteration order (and therefore every placement and
//! consolidation decision derived from it) is deterministic.

use std::collections::BTreeMap;

use powadapt_snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

use crate::temperature::Temperature;

/// Catalog key of an extent: `(tenant index, extent index)`, where the
/// extent index is `offset / extent_bytes` within the tenant's space.
pub type ExtentKey = (u32, u64);

/// One placed extent.
#[derive(Debug, Clone, PartialEq)]
pub struct Extent {
    /// Catalog-wide id, assigned at first write, never reused.
    pub id: u64,
    /// Owning tenant (index into the cluster's tenant list).
    pub tenant: u32,
    /// Extent index within the tenant's address space.
    pub index: u64,
    /// Flat device indices holding a replica; `holders[0]` is primary.
    pub holders: Vec<u32>,
    /// Access-temperature EWMA.
    pub temp: Temperature,
}

impl Snapshot for Extent {
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.id);
        w.u32(self.tenant);
        w.u64(self.index);
        w.seq_len(self.holders.len());
        for &h in &self.holders {
            w.u32(h);
        }
        self.temp.write_state(w)
    }
}

impl Restore for Extent {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.id = r.u64()?;
        self.tenant = r.u32()?;
        self.index = r.u64()?;
        let n = r.seq_len()?;
        if n == 0 {
            return Err(SnapError::InvalidValue(format!(
                "extent {} has an empty holder list",
                self.id
            )));
        }
        self.holders.clear();
        for _ in 0..n {
            self.holders.push(r.u32()?);
        }
        self.temp.read_state(r)
    }
}

/// The extent catalog: extents by id, plus the key index resolving
/// `(tenant, extent index)` lookups on the IO path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExtentCatalog {
    /// All live extents, by id.
    extents: BTreeMap<u64, Extent>,
    /// Key index; rebuilt on restore, always consistent with `extents`.
    by_key: BTreeMap<ExtentKey, u64>,
    /// Next extent id to assign.
    next_id: u64,
}

impl ExtentCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        ExtentCatalog::default()
    }

    /// Number of live extents.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// True when no extent has been placed yet.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// The extent id at `key`, if placed.
    pub fn id_at(&self, key: ExtentKey) -> Option<u64> {
        self.by_key.get(&key).copied()
    }

    /// The extent with `id`.
    pub fn get(&self, id: u64) -> Option<&Extent> {
        self.extents.get(&id)
    }

    /// Mutable access to the extent with `id`.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut Extent> {
        self.extents.get_mut(&id)
    }

    /// Inserts a freshly placed extent and returns its id. The caller has
    /// already chosen (and capacity-charged) the holder list.
    pub fn insert(&mut self, tenant: u32, index: u64, holders: Vec<u32>) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.by_key.insert((tenant, index), id);
        self.extents.insert(
            id,
            Extent {
                id,
                tenant,
                index,
                holders,
                temp: Temperature::new(),
            },
        );
        id
    }

    /// Rewrites holder `from` of extent `id` to `to` (migration commit).
    /// Returns false when `id` is unknown or `from` is not a holder.
    pub fn replace_holder(&mut self, id: u64, from: u32, to: u32) -> bool {
        let Some(e) = self.extents.get_mut(&id) else {
            return false;
        };
        match e.holders.iter().position(|&h| h == from) {
            Some(i) => {
                e.holders[i] = to;
                true
            }
            None => false,
        }
    }

    /// Iterates all extents in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Extent> {
        self.extents.values()
    }
}

impl Snapshot for ExtentCatalog {
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        // by_key is derived from extents and rebuilt on restore.
        w.u64(self.next_id);
        w.seq_len(self.extents.len());
        for e in self.extents.values() {
            e.write_state(w)?;
        }
        Ok(())
    }
}

impl Restore for ExtentCatalog {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_id = r.u64()?;
        let n = r.seq_len()?;
        self.extents.clear();
        self.by_key.clear();
        for _ in 0..n {
            let mut e = Extent {
                id: 0,
                tenant: 0,
                index: 0,
                holders: Vec::new(),
                temp: Temperature::new(),
            };
            e.read_state(r)?;
            if e.id >= self.next_id {
                return Err(SnapError::InvalidValue(format!(
                    "extent id {} is not below next_id {}",
                    e.id, self.next_id
                )));
            }
            if self.by_key.insert((e.tenant, e.index), e.id).is_some() {
                return Err(SnapError::InvalidValue(format!(
                    "duplicate extent key ({}, {})",
                    e.tenant, e.index
                )));
            }
            if self.extents.insert(e.id, e).is_some() {
                return Err(SnapError::InvalidValue("duplicate extent id".to_string()));
            }
        }
        Ok(())
    }
}

// Tests unwrap and compare floats freely; assertion panics are the point.
#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut c = ExtentCatalog::new();
        let id = c.insert(1, 7, vec![2, 5]);
        assert_eq!(c.id_at((1, 7)), Some(id));
        assert_eq!(c.id_at((1, 8)), None);
        assert_eq!(c.get(id).unwrap().holders, vec![2, 5]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_holder_commits_a_move() {
        let mut c = ExtentCatalog::new();
        let id = c.insert(0, 0, vec![1, 3]);
        assert!(c.replace_holder(id, 1, 9));
        assert_eq!(c.get(id).unwrap().holders, vec![9, 3]);
        assert!(!c.replace_holder(id, 1, 9));
        assert!(!c.replace_holder(id + 1, 9, 1));
    }

    #[test]
    fn snapshot_roundtrip_rebuilds_key_index() {
        let mut c = ExtentCatalog::new();
        c.insert(0, 0, vec![1]);
        let id = c.insert(2, 5, vec![0, 3]);
        c.get_mut(id).unwrap().temp.touch(3, 1.5);
        let mut w = SnapWriter::new();
        c.write_state(&mut w).unwrap();
        let payload = w.into_payload();
        let mut fresh = ExtentCatalog::new();
        let mut r = SnapReader::new(&payload);
        fresh.read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh, c);
        assert_eq!(fresh.id_at((2, 5)), Some(id));
    }

    #[test]
    fn restore_rejects_corrupt_catalogs() {
        let mut w = SnapWriter::new();
        w.u64(1); // next_id
        w.seq_len(1);
        // extent with id == next_id (out of range)
        w.u64(1);
        w.u32(0);
        w.u64(0);
        w.seq_len(1);
        w.u32(0);
        w.f64(0.0);
        w.u64(0);
        let payload = w.into_payload();
        let mut c = ExtentCatalog::new();
        let mut r = SnapReader::new(&payload);
        assert!(c.read_state(&mut r).is_err());
    }
}
