//! Power states and standby machinery shared by all device models.

use std::fmt;

use powadapt_sim::{SimDuration, SimTime};

/// Identifier of an NVMe-style power state (ps0 is the highest-power state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PowerStateId(pub u8);

impl fmt::Display for PowerStateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ps{}", self.0)
    }
}

/// Descriptor of one power state: a cap on the device's average power over
/// any [`cap window`](crate::ssd::SsdConfig::cap_window) (10 s per the NVMe
/// specification).
///
/// # Examples
///
/// ```
/// use powadapt_device::{PowerStateDesc, PowerStateId};
///
/// let ps1 = PowerStateDesc::new(PowerStateId(1), 12.0);
/// assert_eq!(ps1.cap_w, 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerStateDesc {
    /// State identifier.
    pub id: PowerStateId,
    /// Maximum average power in watts. `f64::INFINITY` means unconstrained.
    pub cap_w: f64,
}

impl PowerStateDesc {
    /// Creates a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `cap_w` is not positive.
    pub fn new(id: PowerStateId, cap_w: f64) -> Self {
        assert!(cap_w > 0.0, "power cap must be positive");
        PowerStateDesc { id, cap_w }
    }

    /// An unconstrained state (used for ps0 on devices whose ps0 cap never
    /// binds, and for devices without power capping).
    pub fn unconstrained(id: PowerStateId) -> Self {
        PowerStateDesc {
            id,
            cap_w: f64::INFINITY,
        }
    }
}

/// Depth of a low-power link/standby state, mirroring the SATA ALPM
/// ladder: PARTIAL is shallow (fast exit, modest savings), SLUMBER is deep
/// (slow exit, maximal savings). Devices with a single standby mode (HDD
/// spin-down, NVMe autonomous power states modeled as standby) treat it as
/// [`StandbyDepth::Slumber`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StandbyDepth {
    /// Shallow low-power state (SATA PARTIAL): microsecond-scale exit.
    Partial,
    /// Deep low-power state (SATA SLUMBER / HDD spin-down): millisecond-
    /// to-second-scale exit.
    Slumber,
}

impl fmt::Display for StandbyDepth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StandbyDepth::Partial => "partial",
            StandbyDepth::Slumber => "slumber",
        };
        write!(f, "{s}")
    }
}

/// Externally visible standby status of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StandbyState {
    /// Fully operational (includes idle).
    Active,
    /// Transitioning into standby.
    EnteringStandby,
    /// In low-power standby (SATA SLUMBER, or HDD spun down).
    Standby,
    /// Transitioning back to active.
    ExitingStandby,
}

impl StandbyState {
    /// True while the device can start new media work immediately.
    pub fn is_active(self) -> bool {
        matches!(self, StandbyState::Active)
    }
}

impl fmt::Display for StandbyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StandbyState::Active => "active",
            StandbyState::EnteringStandby => "entering-standby",
            StandbyState::Standby => "standby",
            StandbyState::ExitingStandby => "exiting-standby",
        };
        write!(f, "{s}")
    }
}

/// Internal standby phase tracker with transition deadlines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum StandbyPhase {
    Active,
    Entering { until: SimTime },
    Standby,
    Exiting { until: SimTime },
}

impl StandbyPhase {
    pub(crate) fn state(self) -> StandbyState {
        match self {
            StandbyPhase::Active => StandbyState::Active,
            StandbyPhase::Entering { .. } => StandbyState::EnteringStandby,
            StandbyPhase::Standby => StandbyState::Standby,
            StandbyPhase::Exiting { .. } => StandbyState::ExitingStandby,
        }
    }
}

/// Configuration of a device's low-power standby mode.
///
/// For SATA SSDs this models ALPM SLUMBER; for HDDs, spin-down. The
/// transition draws `transition_w` for its duration (entering) and
/// `wake_spike_w` while waking, reproducing the spikes in Figure 7 of the
/// paper.
#[derive(Debug, Clone, PartialEq)]
pub struct StandbyConfig {
    /// Steady-state standby power in watts.
    pub standby_w: f64,
    /// Time to enter standby.
    pub enter: SimDuration,
    /// Time to exit standby.
    pub exit: SimDuration,
    /// Power drawn while entering standby.
    pub transition_w: f64,
    /// Power drawn while exiting standby (wake spike).
    pub wake_spike_w: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_construction() {
        let d = PowerStateDesc::new(PowerStateId(2), 10.0);
        assert_eq!(d.id, PowerStateId(2));
        assert_eq!(d.cap_w, 10.0);
        let u = PowerStateDesc::unconstrained(PowerStateId(0));
        assert!(u.cap_w.is_infinite());
    }

    #[test]
    #[should_panic(expected = "power cap must be positive")]
    fn zero_cap_rejected() {
        let _ = PowerStateDesc::new(PowerStateId(0), 0.0);
    }

    #[test]
    fn standby_state_predicates() {
        assert!(StandbyState::Active.is_active());
        assert!(!StandbyState::Standby.is_active());
        assert_eq!(
            StandbyState::EnteringStandby.to_string(),
            "entering-standby"
        );
    }

    #[test]
    fn phase_maps_to_state() {
        assert_eq!(StandbyPhase::Active.state(), StandbyState::Active);
        assert_eq!(StandbyPhase::Standby.state(), StandbyState::Standby);
        let t = SimTime::from_millis(5);
        assert_eq!(
            StandbyPhase::Entering { until: t }.state(),
            StandbyState::EnteringStandby
        );
        assert_eq!(
            StandbyPhase::Exiting { until: t }.state(),
            StandbyState::ExitingStandby
        );
    }

    #[test]
    fn standby_depth_display_and_order() {
        assert_eq!(StandbyDepth::Partial.to_string(), "partial");
        assert_eq!(StandbyDepth::Slumber.to_string(), "slumber");
        assert!(StandbyDepth::Partial < StandbyDepth::Slumber);
    }

    #[test]
    fn power_state_id_display() {
        assert_eq!(PowerStateId(0).to_string(), "ps0");
        assert_eq!(PowerStateId(2).to_string(), "ps2");
    }
}
