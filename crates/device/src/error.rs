//! Error types for device operations.

use std::error::Error;
use std::fmt;

use crate::power::PowerStateId;
use crate::spec::Protocol;

/// Errors returned by [`StorageDevice`](crate::StorageDevice) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// The requested power state does not exist on this device.
    UnknownPowerState(PowerStateId),
    /// The device does not support a low-power standby mode.
    StandbyUnsupported,
    /// The operation conflicts with an in-progress standby transition.
    StandbyTransitionInProgress,
    /// An IO request fell outside the device capacity.
    OutOfRange {
        /// First byte past the requested range.
        end: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// An IO request had zero length.
    ZeroLength,
    /// A request id was reused while still in flight.
    DuplicateRequest(u64),
    /// An admin facade was attached to a device speaking a different
    /// protocol (e.g. NVMe admin commands against a SATA drive).
    ProtocolMismatch {
        /// Protocol the facade speaks.
        expected: Protocol,
        /// Protocol the device implements.
        actual: Protocol,
    },
    /// A transient IO-path error: the device could not accept or complete
    /// the request (media error, internal retry exhaustion). The request
    /// id, if the failure is tied to one, is carried for diagnostics.
    Io {
        /// Id of the failed request, when known.
        request: Option<u64>,
    },
    /// An admin command did not complete within the device's internal
    /// deadline (e.g. a power-state transition that wedged).
    Timeout {
        /// The command that timed out.
        op: &'static str,
    },
    /// The device is temporarily unreachable (link dropout, controller
    /// reset). Retrying after the dropout window may succeed.
    Unavailable,
    /// A device configuration failed validation (see
    /// [`SsdConfig::validate`](crate::SsdConfig::validate) and
    /// [`HddConfig::validate`](crate::HddConfig::validate)); the message
    /// names the offending field.
    InvalidConfig(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnknownPowerState(ps) => {
                write!(f, "power state {ps} is not supported by this device")
            }
            DeviceError::StandbyUnsupported => {
                write!(f, "device does not support a standby mode")
            }
            DeviceError::StandbyTransitionInProgress => {
                write!(f, "a standby transition is already in progress")
            }
            DeviceError::OutOfRange { end, capacity } => {
                write!(f, "request end {end} exceeds device capacity {capacity}")
            }
            DeviceError::ZeroLength => write!(f, "request length must be non-zero"),
            DeviceError::DuplicateRequest(id) => {
                write!(f, "request id {id} is already in flight")
            }
            DeviceError::ProtocolMismatch { expected, actual } => {
                write!(f, "expected a {expected} device, found {actual}")
            }
            DeviceError::Io { request: Some(id) } => {
                write!(f, "io error on request {id}")
            }
            DeviceError::Io { request: None } => write!(f, "io error"),
            DeviceError::Timeout { op } => write!(f, "{op} timed out"),
            DeviceError::Unavailable => write!(f, "device temporarily unavailable"),
            DeviceError::InvalidConfig(detail) => {
                write!(f, "invalid device configuration: {detail}")
            }
        }
    }
}

impl DeviceError {
    /// True for fault-injected / environmental errors that a control plane
    /// should retry or route around ([`Io`](DeviceError::Io),
    /// [`Timeout`](DeviceError::Timeout),
    /// [`Unavailable`](DeviceError::Unavailable)), as opposed to request
    /// or wiring bugs that retrying cannot fix.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DeviceError::Io { .. } | DeviceError::Timeout { .. } | DeviceError::Unavailable
        )
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
        assert!(!DeviceError::ZeroLength.to_string().is_empty());
        assert!(!DeviceError::OutOfRange {
            end: 10,
            capacity: 5
        }
        .to_string()
        .is_empty());
    }

    #[test]
    fn transient_classification() {
        assert!(DeviceError::Io { request: Some(3) }.is_transient());
        assert!(DeviceError::Timeout {
            op: "set_power_state"
        }
        .is_transient());
        assert!(DeviceError::Unavailable.is_transient());
        assert!(!DeviceError::ZeroLength.is_transient());
        assert!(!DeviceError::StandbyUnsupported.is_transient());
    }

    #[test]
    fn new_variants_display() {
        assert!(DeviceError::Io { request: Some(7) }
            .to_string()
            .contains('7'));
        assert!(DeviceError::Timeout {
            op: "request_standby"
        }
        .to_string()
        .contains("request_standby"));
        assert!(!DeviceError::Unavailable.to_string().is_empty());
    }
}
