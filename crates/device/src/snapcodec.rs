//! Crate-internal snapshot codecs for the small types shared by every
//! device's `write_state`/`read_state`: IO records, standby phases. Each
//! helper reads exactly what its writer produced and fails closed with
//! [`SnapError::InvalidValue`] on bad discriminants.

use powadapt_sim::snapshot::{read_time, write_time};
use powadapt_snap::{SnapError, SnapReader, SnapWriter};

use crate::io::{IoCompletion, IoId, IoKind};
use crate::power::{StandbyDepth, StandbyPhase};

pub(crate) fn write_io_kind(w: &mut SnapWriter, k: IoKind) {
    w.u8(match k {
        IoKind::Read => 0,
        IoKind::Write => 1,
    });
}

pub(crate) fn read_io_kind(r: &mut SnapReader<'_>) -> Result<IoKind, SnapError> {
    match r.u8()? {
        0 => Ok(IoKind::Read),
        1 => Ok(IoKind::Write),
        b => Err(SnapError::InvalidValue(format!("io kind byte {b}"))),
    }
}

pub(crate) fn write_completion(w: &mut SnapWriter, c: &IoCompletion) {
    w.u64(c.id.0);
    write_io_kind(w, c.kind);
    w.u64(c.len);
    write_time(w, c.submitted);
    write_time(w, c.completed);
}

pub(crate) fn read_completion(r: &mut SnapReader<'_>) -> Result<IoCompletion, SnapError> {
    Ok(IoCompletion {
        id: IoId(r.u64()?),
        kind: read_io_kind(r)?,
        len: r.u64()?,
        submitted: read_time(r)?,
        completed: read_time(r)?,
    })
}

pub(crate) fn write_completions(w: &mut SnapWriter, cs: &[IoCompletion]) {
    w.seq_len(cs.len());
    for c in cs {
        write_completion(w, c);
    }
}

pub(crate) fn read_completions(r: &mut SnapReader<'_>) -> Result<Vec<IoCompletion>, SnapError> {
    let n = r.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_completion(r)?);
    }
    Ok(out)
}

pub(crate) fn write_standby_phase(w: &mut SnapWriter, p: StandbyPhase) {
    match p {
        StandbyPhase::Active => w.u8(0),
        StandbyPhase::Entering { until } => {
            w.u8(1);
            write_time(w, until);
        }
        StandbyPhase::Standby => w.u8(2),
        StandbyPhase::Exiting { until } => {
            w.u8(3);
            write_time(w, until);
        }
    }
}

pub(crate) fn read_standby_phase(r: &mut SnapReader<'_>) -> Result<StandbyPhase, SnapError> {
    match r.u8()? {
        0 => Ok(StandbyPhase::Active),
        1 => Ok(StandbyPhase::Entering {
            until: read_time(r)?,
        }),
        2 => Ok(StandbyPhase::Standby),
        3 => Ok(StandbyPhase::Exiting {
            until: read_time(r)?,
        }),
        b => Err(SnapError::InvalidValue(format!("standby phase byte {b}"))),
    }
}

pub(crate) fn write_standby_depth(w: &mut SnapWriter, d: StandbyDepth) {
    w.u8(match d {
        StandbyDepth::Partial => 0,
        StandbyDepth::Slumber => 1,
    });
}

pub(crate) fn read_standby_depth(r: &mut SnapReader<'_>) -> Result<StandbyDepth, SnapError> {
    match r.u8()? {
        0 => Ok(StandbyDepth::Partial),
        1 => Ok(StandbyDepth::Slumber),
        b => Err(SnapError::InvalidValue(format!("standby depth byte {b}"))),
    }
}
