//! Simulated storage devices for the `powadapt` suite.
//!
//! This crate is the hardware substitute for the measurement study in
//! *"Can Storage Devices be Power Adaptive?"* (HotStorage '24): event-driven
//! models of the paper's evaluated drives, exposing the same control
//! surfaces the paper exercises —
//!
//! - **NVMe power states** ([`StorageDevice::set_power_state`]) that cap
//!   average power, throttling writes far more than reads,
//! - **low-power standby** ([`StorageDevice::request_standby`]) — the full
//!   SATA ALPM PARTIAL/SLUMBER ladder on the 860 EVO model, spin-down on
//!   the HDD model,
//! - **IO shaping** — chunk size and queue depth modulate how many NAND
//!   dies (or how much seek activity) is live, and with it the power draw.
//!
//! Devices are deterministic given a seed and are driven by an external
//! event loop (see [`StorageDevice`]).
//!
//! # Examples
//!
//! ```
//! use powadapt_device::{catalog, drain, IoId, IoKind, IoRequest, StorageDevice, MIB};
//!
//! let mut ssd = catalog::ssd2_d7_p5510(42);
//! ssd.submit(IoRequest::new(IoId(0), IoKind::Write, 0, 8 * MIB))?;
//! let completions = drain(&mut ssd);
//! assert_eq!(completions.len(), 1);
//! # Ok::<(), powadapt_device::DeviceError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Tests assert on exact expected values: unwraps and bit-exact float
// comparisons are the point there, not a hazard (see workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod catalog;
mod device;
mod error;
mod fault;
pub mod hdd;
mod io;
mod nvme;
mod power;
mod sata;
mod snapcodec;
mod spec;
pub mod ssd;

pub use device::{drain, StorageDevice};
pub use error::DeviceError;
pub use fault::{FaultInjector, FaultPlan, FaultStats, FaultWindow, FaultWindowKind};
pub use hdd::{Hdd, HddConfig};
pub use io::{IoCompletion, IoId, IoKind, IoRequest, GIB, KIB, MIB};
pub use nvme::{IdentifyController, NvmeAdmin, NvmePowerStateDescriptor, FEATURE_POWER_MANAGEMENT};
pub use power::{PowerStateDesc, PowerStateId, StandbyConfig, StandbyDepth, StandbyState};
pub use sata::{AhciLink, LinkPowerState};
pub use spec::{DeviceClass, DeviceSpec, Protocol};
pub use ssd::{Ssd, SsdConfig};
