//! SATA Aggressive Link Power Management (ALPM) facade — the mechanism the
//! paper uses to put the 860 EVO into SLUMBER (§3.2.2, Figure 7), extended
//! with the shallow PARTIAL rung so standby policies can trade savings
//! against exit latency across the full ladder.

use crate::device::StorageDevice;
use crate::error::DeviceError;
use crate::power::{StandbyDepth, StandbyState};
use crate::spec::Protocol;

/// SATA link power states (AHCI/ALPM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkPowerState {
    /// Full-power link.
    Active,
    /// Intermediate low-power link state (~µs exit): small savings, fast
    /// recovery — the shallow rung of the ALPM ladder.
    Partial,
    /// Deepest link state — the paper's 0.17 W EVO measurement.
    Slumber,
}

impl std::fmt::Display for LinkPowerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LinkPowerState::Active => "ACTIVE",
            LinkPowerState::Partial => "PARTIAL",
            LinkPowerState::Slumber => "SLUMBER",
        };
        write!(f, "{s}")
    }
}

/// ALPM control over a SATA device.
///
/// # Examples
///
/// ```
/// use powadapt_device::{catalog, AhciLink, LinkPowerState};
///
/// let mut evo = catalog::evo_860(1);
/// let mut link = AhciLink::new(&mut evo)?;
/// link.set_link_pm(LinkPowerState::Slumber)?;
/// # Ok::<(), powadapt_device::DeviceError>(())
/// ```
#[derive(Debug)]
pub struct AhciLink<'a> {
    device: &'a mut dyn StorageDevice,
}

impl<'a> AhciLink<'a> {
    /// Attaches to a device.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ProtocolMismatch`] for non-SATA devices.
    pub fn new(device: &'a mut dyn StorageDevice) -> Result<Self, DeviceError> {
        if device.spec().protocol() != Protocol::Sata {
            return Err(DeviceError::ProtocolMismatch {
                expected: Protocol::Sata,
                actual: device.spec().protocol(),
            });
        }
        Ok(AhciLink { device })
    }

    /// Requests a link power state.
    ///
    /// `Partial` and `Slumber` map to the corresponding
    /// [`StandbyDepth`](crate::StandbyDepth) of the device's standby
    /// machinery; `Active` wakes it.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::StandbyUnsupported`] if the device does not
    /// implement the requested low-power state (data-center SATA SSDs like
    /// SSD3 implement neither, per the paper's §3.2.2 survey).
    pub fn set_link_pm(&mut self, state: LinkPowerState) -> Result<(), DeviceError> {
        match state {
            LinkPowerState::Active => self.device.request_wake(),
            LinkPowerState::Partial => self.device.request_standby_depth(StandbyDepth::Partial),
            LinkPowerState::Slumber => self.device.request_standby_depth(StandbyDepth::Slumber),
        }
    }

    /// The current link power state, derived from the device's standby
    /// status and depth (transitions report the state being entered).
    pub fn link_state(&self) -> LinkPowerState {
        match self.device.standby_state() {
            StandbyState::Active | StandbyState::ExitingStandby => LinkPowerState::Active,
            StandbyState::Standby | StandbyState::EnteringStandby => {
                match self.device.standby_depth() {
                    StandbyDepth::Partial => LinkPowerState::Partial,
                    StandbyDepth::Slumber => LinkPowerState::Slumber,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::device::drain;

    #[test]
    fn slumber_round_trip_on_the_evo() {
        let mut dev = catalog::evo_860(2);
        let mut link = AhciLink::new(&mut dev).expect("SATA device");
        assert_eq!(link.link_state(), LinkPowerState::Active);
        link.set_link_pm(LinkPowerState::Slumber)
            .expect("EVO supports SLUMBER");
        assert_eq!(link.link_state(), LinkPowerState::Slumber);
        drain(&mut dev);
        assert!((dev.power_w() - 0.17).abs() < 1e-9);

        let mut link = AhciLink::new(&mut dev).expect("SATA device");
        link.set_link_pm(LinkPowerState::Active)
            .expect("wake accepted");
        drain(&mut dev);
        assert!((dev.power_w() - 0.35).abs() < 1e-9);
    }

    #[test]
    fn partial_round_trip_on_the_evo() {
        let mut dev = catalog::evo_860(2);
        let mut link = AhciLink::new(&mut dev).expect("SATA device");
        link.set_link_pm(LinkPowerState::Partial)
            .expect("EVO supports PARTIAL");
        assert_eq!(link.link_state(), LinkPowerState::Partial);
        drain(&mut dev);
        assert!((dev.power_w() - 0.26).abs() < 1e-9);

        let mut link = AhciLink::new(&mut dev).expect("SATA device");
        link.set_link_pm(LinkPowerState::Active)
            .expect("wake accepted");
        drain(&mut dev);
        assert!((dev.power_w() - 0.35).abs() < 1e-9);
    }

    #[test]
    fn partial_is_unsupported_on_dc_drives() {
        // SSD3 implements neither rung of the ladder, like most
        // data-center SATA SSDs the paper surveyed.
        let mut dev = catalog::ssd3_d3_p4510(2);
        let mut link = AhciLink::new(&mut dev).expect("SATA device");
        assert_eq!(
            link.set_link_pm(LinkPowerState::Partial),
            Err(DeviceError::StandbyUnsupported)
        );
    }

    #[test]
    fn enterprise_sata_ssd_rejects_slumber() {
        // SSD3 has no standby mode ("standby is rarely supported in data
        // center SSDs", §3.2.2).
        let mut dev = catalog::ssd3_d3_p4510(2);
        let mut link = AhciLink::new(&mut dev).expect("SATA device");
        assert_eq!(
            link.set_link_pm(LinkPowerState::Slumber),
            Err(DeviceError::StandbyUnsupported)
        );
    }

    #[test]
    fn nvme_devices_are_rejected() {
        let mut dev = catalog::ssd1_pm9a3(2);
        assert!(matches!(
            AhciLink::new(&mut dev),
            Err(DeviceError::ProtocolMismatch { .. })
        ));
    }

    #[test]
    fn hdd_spindown_via_the_link_facade() {
        let mut dev = catalog::hdd_exos_7e2000(2);
        let mut link = AhciLink::new(&mut dev).expect("SATA device");
        link.set_link_pm(LinkPowerState::Slumber)
            .expect("HDD spins down");
        drain(&mut dev);
        assert!((dev.power_w() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(LinkPowerState::Slumber.to_string(), "SLUMBER");
        assert_eq!(LinkPowerState::Partial.to_string(), "PARTIAL");
    }
}
