//! The [`StorageDevice`] trait implemented by every simulated device.

use std::fmt;

use powadapt_obs::RecorderHandle;
use powadapt_sim::SimTime;
use powadapt_snap::{SnapError, SnapReader, SnapWriter};

use crate::error::DeviceError;
use crate::io::{IoCompletion, IoRequest};
use crate::power::{PowerStateDesc, PowerStateId, StandbyDepth, StandbyState};
use crate::spec::DeviceSpec;

/// A simulated storage device driven by an external event loop.
///
/// Devices are *pull-based*: the caller asks for the device's next internal
/// event time ([`StorageDevice::next_event`]) and advances it
/// ([`StorageDevice::advance_to`]), collecting completions. Power draw is
/// observable at the device's current time via [`StorageDevice::power_w`].
///
/// The trait is object-safe; experiment runners hold `Box<dyn
/// StorageDevice>`.
///
/// # Examples
///
/// ```
/// use powadapt_device::{catalog, IoId, IoKind, IoRequest, StorageDevice, KIB};
/// use powadapt_sim::SimTime;
///
/// let mut dev = catalog::ssd2_d7_p5510(7);
/// dev.submit(IoRequest::new(IoId(0), IoKind::Read, 0, 4 * KIB))?;
/// let mut done = Vec::new();
/// while done.is_empty() {
///     let t = dev.next_event().expect("read completes eventually");
///     done.extend(dev.advance_to(t));
/// }
/// assert_eq!(done[0].id, IoId(0));
/// # Ok::<(), powadapt_device::DeviceError>(())
/// ```
pub trait StorageDevice: fmt::Debug {
    /// Static description of the device.
    fn spec(&self) -> &DeviceSpec;

    /// The device's current simulated time.
    fn now(&self) -> SimTime;

    /// Submits an IO request at the device's current time.
    ///
    /// Submitting to a device in standby triggers an automatic wake; the
    /// request then incurs the wake latency.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`], [`DeviceError::ZeroLength`], or
    /// [`DeviceError::DuplicateRequest`] for invalid requests.
    fn submit(&mut self, req: IoRequest) -> Result<(), DeviceError>;

    /// Time of the device's next internal event, if any work is pending.
    fn next_event(&mut self) -> Option<SimTime>;

    /// Advances the device to time `t`, processing all internal events up to
    /// and including `t`, and returns the completions that occurred.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than [`StorageDevice::now`].
    fn advance_to(&mut self, t: SimTime) -> Vec<IoCompletion>;

    /// Advances the device to time `t` like [`StorageDevice::advance_to`],
    /// appending completions to `out` instead of returning a fresh vector.
    ///
    /// Experiment loops call this once per event step, so the in-repo
    /// devices override it to drain their internal completion arena
    /// without allocating; the caller's buffer is reused across steps.
    /// The default delegates to `advance_to`, keeping third-party device
    /// types valid.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than [`StorageDevice::now`].
    fn advance_to_into(&mut self, t: SimTime, out: &mut Vec<IoCompletion>) {
        out.extend(self.advance_to(t));
    }

    /// Instantaneous power draw in watts at the device's current time.
    fn power_w(&self) -> f64;

    /// Selects an NVMe-style power state.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownPowerState`] if the device does not
    /// implement the state.
    fn set_power_state(&mut self, ps: PowerStateId) -> Result<(), DeviceError>;

    /// Currently selected power state.
    fn power_state(&self) -> PowerStateId;

    /// Power states implemented by the device (always non-empty; `ps0`
    /// first).
    fn power_states(&self) -> &[PowerStateDesc];

    /// Requests a transition into low-power standby.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::StandbyUnsupported`] if the device has no
    /// standby mode, or [`DeviceError::StandbyTransitionInProgress`] if a
    /// transition is already underway.
    fn request_standby(&mut self) -> Result<(), DeviceError>;

    /// Requests a wake from standby.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::StandbyUnsupported`] if the device has no
    /// standby mode.
    fn request_wake(&mut self) -> Result<(), DeviceError>;

    /// Requests a transition into low-power standby at the given depth.
    ///
    /// Devices with a single standby mode map it to
    /// [`StandbyDepth::Slumber`] and reject [`StandbyDepth::Partial`]; the
    /// default implementation encodes exactly that, so only devices with a
    /// genuine PARTIAL/SLUMBER ladder (SATA ALPM) need to override it.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::StandbyUnsupported`] if the device does not
    /// implement the requested depth, or
    /// [`DeviceError::StandbyTransitionInProgress`] if a transition is
    /// already underway.
    fn request_standby_depth(&mut self, depth: StandbyDepth) -> Result<(), DeviceError> {
        match depth {
            StandbyDepth::Slumber => self.request_standby(),
            StandbyDepth::Partial => Err(DeviceError::StandbyUnsupported),
        }
    }

    /// Depth of the standby state the device is in or transitioning
    /// toward. Meaningful only while [`StorageDevice::standby_state`] is
    /// not [`StandbyState::Active`]; single-mode devices always report
    /// [`StandbyDepth::Slumber`].
    fn standby_depth(&self) -> StandbyDepth {
        StandbyDepth::Slumber
    }

    /// Current standby status.
    fn standby_state(&self) -> StandbyState;

    /// Steady-state standby power in watts, or `None` if the device has no
    /// standby mode. Planners use this to weigh sleeping a device against
    /// reshaping its IO.
    fn standby_power_w(&self) -> Option<f64>;

    /// Number of submitted-but-not-completed requests.
    fn inflight(&self) -> usize;

    /// Attaches a telemetry recorder and names this device's event track.
    ///
    /// Devices capture the process-global recorder
    /// (`powadapt_obs::current()`) at construction; runners call this to
    /// override the sink or to assign fleet-positional track names
    /// (`device0`, `device1`, ...). The default implementation is a no-op
    /// so uninstrumented device types remain valid.
    fn set_recorder(&mut self, rec: RecorderHandle, track: &'static str) {
        let _ = (rec, track);
    }

    /// Serializes the device's complete dynamic state — event queue,
    /// in-flight IOs, RNG stream position, power accounting — for a
    /// checkpoint. Configuration (spec, power states, geometry) is *not*
    /// written: restore rebuilds the device from its spec and overlays
    /// this state via [`StorageDevice::read_state`].
    ///
    /// The default errors with [`SnapError::Unsupported`], keeping
    /// third-party device types valid; every device in this workspace
    /// implements it.
    ///
    /// # Errors
    ///
    /// [`SnapError::Unsupported`] when the device cannot be snapshotted.
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        let _ = w;
        Err(SnapError::Unsupported(
            "this device type does not implement snapshotting",
        ))
    }

    /// Overlays dynamic state written by [`StorageDevice::write_state`]
    /// onto a freshly built device of the same spec and configuration.
    /// Must not emit observability events: a restored run's trace
    /// continues the original's rather than replaying it.
    ///
    /// # Errors
    ///
    /// [`SnapError::Unsupported`] by default; any [`SnapError`] on
    /// malformed input. A device that returned an error may be partially
    /// overwritten and must be discarded.
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Err(SnapError::Unsupported(
            "this device type does not implement snapshotting",
        ))
    }
}

/// Runs a device until it has no pending work, returning all completions.
///
/// Convenience for tests and simple examples; experiment runners interleave
/// metering and submission instead.
pub fn drain(device: &mut dyn StorageDevice) -> Vec<IoCompletion> {
    let mut out = Vec::new();
    while let Some(t) = device.next_event() {
        out.extend(device.advance_to(t));
    }
    out
}
