//! Deterministic fault injection for any [`StorageDevice`].
//!
//! The paper's §4.1 transition-safety requirement — "local failures of the
//! storage system to control power can safely be identified" — means the
//! control plane must be exercised against *misbehaving* devices, not just
//! healthy ones. [`FaultInjector`] wraps an inner device and injects a
//! reproducible fault stream on top of it:
//!
//! - **IO errors** — submissions rejected with [`DeviceError::Io`],
//! - **latency spikes** — completions held back by a fixed tail inflation,
//!   modeling media-retry storms,
//! - **admin failures** — `set_power_state` / `request_standby` /
//!   `request_wake` rejected probabilistically,
//! - **stuck power-state transitions** — a scheduled window in which every
//!   `set_power_state` times out and the device stays in its old state,
//! - **dropout** — a scheduled window in which the device is unreachable
//!   ([`DeviceError::Unavailable`]) for IO and admin alike.
//!
//! Probabilistic faults draw from a [`SimRng`] owned by the injector, so a
//! run is bit-for-bit reproducible given the same seed and the same
//! request sequence; scheduled faults are pure functions of simulated
//! time. An all-zero [`FaultPlan`] makes the injector fully transparent:
//! it consumes no random draws and perturbs no completion.
//!
//! # Examples
//!
//! ```
//! use powadapt_device::{catalog, FaultInjector, FaultPlan, StorageDevice};
//! use powadapt_sim::SimRng;
//!
//! let plan = FaultPlan::none().io_errors(0.5);
//! let mut dev = FaultInjector::new(
//!     Box::new(catalog::ssd2_d7_p5510(7)),
//!     plan,
//!     SimRng::seed_from(42),
//! );
//! assert_eq!(dev.spec().label(), "SSD2");
//! ```

use std::fmt;

use powadapt_obs::{emit, EventKind, RecorderHandle};
use powadapt_sim::{SimDuration, SimRng, SimTime};
use powadapt_snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

use crate::device::StorageDevice;
use crate::error::DeviceError;
use crate::io::{IoCompletion, IoRequest};
use crate::power::{PowerStateDesc, PowerStateId, StandbyDepth, StandbyState};
use crate::snapcodec;
use crate::spec::DeviceSpec;

/// What a scheduled [`FaultWindow`] does while it is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultWindowKind {
    /// The device is unreachable: IO and admin commands fail with
    /// [`DeviceError::Unavailable`].
    Dropout,
    /// Power-state transitions wedge: `set_power_state` fails with
    /// [`DeviceError::Timeout`] and the device stays in its old state.
    StuckPowerState,
    /// The admin queue is down: admin commands fail with
    /// [`DeviceError::Io`]; the IO path is unaffected.
    AdminOutage,
}

/// A scheduled fault active over `[from, until)` in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// What fails during the window.
    pub kind: FaultWindowKind,
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub until: SimTime,
}

impl FaultWindow {
    /// True while `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// A deterministic fault schedule: probabilistic per-operation fault rates
/// plus scheduled fault windows.
///
/// Built fluently from [`FaultPlan::none`]; all rates default to zero and
/// the window list to empty, which makes the plan fully transparent.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability a submission fails with [`DeviceError::Io`].
    io_error_rate: f64,
    /// Probability a completion's latency is inflated by `latency_spike`.
    latency_spike_rate: f64,
    /// Tail inflation added to spiked completions.
    latency_spike: SimDuration,
    /// Probability an admin command fails with [`DeviceError::Io`].
    admin_failure_rate: f64,
    /// Scheduled fault windows.
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The transparent plan: no faults.
    pub fn none() -> Self {
        FaultPlan {
            io_error_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike: SimDuration::ZERO,
            admin_failure_rate: 0.0,
            windows: Vec::new(),
        }
    }

    /// Fails each submission with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn io_errors(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "io error rate {rate} out of range"
        );
        self.io_error_rate = rate;
        self
    }

    /// Inflates each completion's latency by `extra` with probability
    /// `rate` (media-retry tail inflation).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn latency_spikes(mut self, rate: f64, extra: SimDuration) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "spike rate {rate} out of range"
        );
        self.latency_spike_rate = rate;
        self.latency_spike = extra;
        self
    }

    /// Fails each admin command (`set_power_state`, `request_standby`,
    /// `request_wake`) with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn admin_failures(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "admin failure rate {rate} out of range"
        );
        self.admin_failure_rate = rate;
        self
    }

    /// Schedules a window of the given kind over `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until`.
    pub fn window(mut self, kind: FaultWindowKind, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "fault window must be non-empty");
        self.windows.push(FaultWindow { kind, from, until });
        self
    }

    /// Schedules a [`FaultWindowKind::Dropout`] window.
    pub fn dropout(self, from: SimTime, until: SimTime) -> Self {
        self.window(FaultWindowKind::Dropout, from, until)
    }

    /// Schedules a [`FaultWindowKind::StuckPowerState`] window.
    pub fn stuck_power_state(self, from: SimTime, until: SimTime) -> Self {
        self.window(FaultWindowKind::StuckPowerState, from, until)
    }

    /// Schedules a [`FaultWindowKind::AdminOutage`] window.
    pub fn admin_outage(self, from: SimTime, until: SimTime) -> Self {
        self.window(FaultWindowKind::AdminOutage, from, until)
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    fn active(&self, kind: FaultWindowKind, t: SimTime) -> bool {
        self.windows.iter().any(|w| w.kind == kind && w.contains(t))
    }
}

/// Counters of every fault the injector has materialized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Submissions rejected with [`DeviceError::Io`].
    pub io_errors: u64,
    /// Operations rejected with [`DeviceError::Unavailable`] (dropout).
    pub unavailable: u64,
    /// Admin commands rejected (probabilistic, outage, or stuck window).
    pub admin_failures: u64,
    /// Completions whose latency was inflated.
    pub latency_spikes: u64,
}

impl FaultStats {
    /// Total injected faults across all categories.
    pub fn total(&self) -> u64 {
        self.io_errors + self.unavailable + self.admin_failures + self.latency_spikes
    }
}

/// A decorator that injects a seeded, scheduled fault stream into any
/// [`StorageDevice`]. See the [module docs](self) for the fault taxonomy.
pub struct FaultInjector {
    inner: Box<dyn StorageDevice>,
    // powadapt-lint: allow(d6, reason = "static fault schedule; rebuilt from configuration on resume")
    plan: FaultPlan,
    rng: SimRng,
    /// Spiked completions not yet released: `(release time, completion)`
    /// with `completion.completed` already set to the release time.
    held: Vec<IoCompletion>,
    stats: FaultStats,
    // powadapt-lint: allow(d6, reason = "telemetry sink; re-captured from the global slot at construction")
    rec: RecorderHandle,
    // powadapt-lint: allow(d6, reason = "telemetry label; re-derived at construction")
    track: &'static str,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("inner", &self.inner.spec().label())
            .field("plan", &self.plan)
            .field("held", &self.held.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FaultInjector {
    /// Wraps `inner`, injecting faults per `plan`, drawing probabilistic
    /// faults from `rng`.
    pub fn new(inner: Box<dyn StorageDevice>, plan: FaultPlan, rng: SimRng) -> Self {
        let track = powadapt_obs::intern(inner.spec().label());
        FaultInjector {
            inner,
            plan,
            rng,
            held: Vec::new(),
            stats: FaultStats::default(),
            rec: powadapt_obs::current(),
            track,
        }
    }

    fn note_fault(&self, fault: &str) {
        emit!(
            self.rec,
            self.inner.now(),
            self.track,
            EventKind::FaultInjected {
                fault: fault.to_string(),
            }
        );
    }

    /// Convenience constructor seeding the fault stream from `seed`.
    pub fn seeded(inner: Box<dyn StorageDevice>, plan: FaultPlan, seed: u64) -> Self {
        FaultInjector::new(inner, plan, SimRng::seed_from(seed))
    }

    /// Counters of the faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped device.
    pub fn inner(&self) -> &dyn StorageDevice {
        self.inner.as_ref()
    }

    /// Unwraps the injector, returning the inner device.
    pub fn into_inner(self) -> Box<dyn StorageDevice> {
        self.inner
    }

    /// Gate shared by every admin command. `stuck` marks commands that the
    /// [`FaultWindowKind::StuckPowerState`] window also wedges.
    fn admin_gate(&mut self, op: &'static str, stuck: bool) -> Result<(), DeviceError> {
        let now = self.inner.now();
        if self.plan.active(FaultWindowKind::Dropout, now) {
            self.stats.unavailable += 1;
            self.note_fault("dropout");
            return Err(DeviceError::Unavailable);
        }
        if stuck && self.plan.active(FaultWindowKind::StuckPowerState, now) {
            self.stats.admin_failures += 1;
            self.note_fault("stuck_power_state");
            return Err(DeviceError::Timeout { op });
        }
        if self.plan.active(FaultWindowKind::AdminOutage, now) {
            self.stats.admin_failures += 1;
            self.note_fault("admin_outage");
            return Err(DeviceError::Io { request: None });
        }
        if self.plan.admin_failure_rate > 0.0 && self.rng.chance(self.plan.admin_failure_rate) {
            self.stats.admin_failures += 1;
            self.note_fault("admin_failure");
            return Err(DeviceError::Io { request: None });
        }
        Ok(())
    }

    /// Moves held completions due at or before `t` into `out`, in
    /// deterministic (release time, id) order.
    fn release_due(&mut self, t: SimTime, out: &mut Vec<IoCompletion>) {
        if self.held.is_empty() {
            return;
        }
        let mut due: Vec<IoCompletion> = Vec::new();
        self.held.retain(|c| {
            if c.completed <= t {
                due.push(*c);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|c| (c.completed, c.id));
        out.extend(due);
    }
}

impl StorageDevice for FaultInjector {
    fn spec(&self) -> &DeviceSpec {
        self.inner.spec()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn submit(&mut self, req: IoRequest) -> Result<(), DeviceError> {
        let now = self.inner.now();
        if self.plan.active(FaultWindowKind::Dropout, now) {
            self.stats.unavailable += 1;
            self.note_fault("dropout");
            return Err(DeviceError::Unavailable);
        }
        if self.plan.io_error_rate > 0.0 && self.rng.chance(self.plan.io_error_rate) {
            self.stats.io_errors += 1;
            self.note_fault("io_error");
            return Err(DeviceError::Io {
                request: Some(req.id.0),
            });
        }
        self.inner.submit(req)
    }

    fn next_event(&mut self) -> Option<SimTime> {
        let held_min = self.held.iter().map(|c| c.completed).min();
        match (self.inner.next_event(), held_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn advance_to(&mut self, t: SimTime) -> Vec<IoCompletion> {
        let mut out = Vec::new();
        self.advance_to_into(t, &mut out);
        out
    }

    // powadapt-lint: hot
    fn advance_to_into(&mut self, t: SimTime, out: &mut Vec<IoCompletion>) {
        // powadapt-lint: allow(d9, reason = "spike-release path allocates only when spiked completions are held; rare by construction")
        self.release_due(t, out);
        let start = out.len();
        self.inner.advance_to_into(t, out);
        // Walk the completions the inner device just appended, drawing the
        // spike chance per completion in arrival order (the RNG sequence
        // is part of the deterministic contract). Spiked completions that
        // land beyond `t` move to `held`; a single compaction pass keeps
        // the rest in order without re-shifting the tail per removal.
        let mut write = start;
        for read in start..out.len() {
            let mut c = out[read];
            if self.plan.latency_spike_rate > 0.0 && self.rng.chance(self.plan.latency_spike_rate) {
                self.stats.latency_spikes += 1;
                emit!(
                    self.rec,
                    c.completed,
                    self.track,
                    EventKind::FaultInjected {
                        fault: "latency_spike".to_string(),
                    }
                );
                c.completed += self.plan.latency_spike;
                if c.completed > t {
                    // powadapt-lint: allow(d9, reason = "held buffer is recycled; growth bounded by in-flight spiked completions")
                    self.held.push(c);
                    continue;
                }
            }
            out[write] = c;
            write += 1;
        }
        out.truncate(write);
    }

    fn power_w(&self) -> f64 {
        self.inner.power_w()
    }

    fn set_power_state(&mut self, ps: PowerStateId) -> Result<(), DeviceError> {
        self.admin_gate("set_power_state", true)?;
        self.inner.set_power_state(ps)
    }

    fn power_state(&self) -> PowerStateId {
        self.inner.power_state()
    }

    fn power_states(&self) -> &[PowerStateDesc] {
        self.inner.power_states()
    }

    fn request_standby(&mut self) -> Result<(), DeviceError> {
        self.admin_gate("request_standby", false)?;
        self.inner.request_standby()
    }

    fn request_standby_depth(&mut self, depth: StandbyDepth) -> Result<(), DeviceError> {
        self.admin_gate("request_standby_depth", false)?;
        self.inner.request_standby_depth(depth)
    }

    fn standby_depth(&self) -> StandbyDepth {
        self.inner.standby_depth()
    }

    fn request_wake(&mut self) -> Result<(), DeviceError> {
        self.admin_gate("request_wake", false)?;
        self.inner.request_wake()
    }

    fn standby_state(&self) -> StandbyState {
        self.inner.standby_state()
    }

    fn standby_power_w(&self) -> Option<f64> {
        self.inner.standby_power_w()
    }

    fn inflight(&self) -> usize {
        self.inner.inflight() + self.held.len()
    }

    fn set_recorder(&mut self, rec: RecorderHandle, track: &'static str) {
        self.rec = rec.clone();
        self.track = track;
        self.inner.set_recorder(rec, track);
    }

    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        // The plan is configuration: a restored injector is rebuilt with the
        // same plan, so only the stochastic and in-flight state travels.
        self.inner.write_state(w)?;
        Snapshot::write_state(&self.rng, w)?;
        snapcodec::write_completions(w, &self.held);
        w.u64(self.stats.io_errors);
        w.u64(self.stats.unavailable);
        w.u64(self.stats.admin_failures);
        w.u64(self.stats.latency_spikes);
        Ok(())
    }

    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.inner.read_state(r)?;
        Restore::read_state(&mut self.rng, r)?;
        self.held = snapcodec::read_completions(r)?;
        self.stats.io_errors = r.u64()?;
        self.stats.unavailable = r.u64()?;
        self.stats.admin_failures = r.u64()?;
        self.stats.latency_spikes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::device::drain;
    use crate::io::{IoId, IoKind, KIB};

    fn injected(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector::seeded(Box::new(catalog::ssd2_d7_p5510(1)), plan, seed)
    }

    fn req(id: u64) -> IoRequest {
        IoRequest::new(IoId(id), IoKind::Read, id * 64 * KIB, 4 * KIB)
    }

    #[test]
    fn transparent_plan_perturbs_nothing() {
        let mut plain = catalog::ssd2_d7_p5510(1);
        let mut wrapped = injected(FaultPlan::none(), 9);
        for i in 0..16 {
            plain.submit(req(i)).unwrap();
            wrapped.submit(req(i)).unwrap();
        }
        let a = drain(&mut plain);
        let b = drain(&mut wrapped);
        assert_eq!(a, b, "zero-rate injector must be bit-transparent");
        assert_eq!(wrapped.stats().total(), 0);
    }

    #[test]
    fn io_error_rate_one_rejects_every_submit() {
        let mut dev = injected(FaultPlan::none().io_errors(1.0), 3);
        for i in 0..8 {
            match dev.submit(req(i)) {
                Err(DeviceError::Io { request }) => assert_eq!(request, Some(i)),
                other => panic!("expected io error, got {other:?}"),
            }
        }
        assert_eq!(dev.stats().io_errors, 8);
        assert_eq!(dev.inflight(), 0);
    }

    #[test]
    fn io_errors_are_deterministic_per_seed() {
        let run = |seed| {
            let mut dev = injected(FaultPlan::none().io_errors(0.3), seed);
            (0..64)
                .map(|i| dev.submit(req(i)).is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(
            run(5),
            run(6),
            "different seeds give different fault streams"
        );
    }

    #[test]
    fn latency_spikes_inflate_and_account_all_completions() {
        let extra = SimDuration::from_millis(50);
        let mut spiked = injected(FaultPlan::none().latency_spikes(1.0, extra), 11);
        let mut plain = catalog::ssd2_d7_p5510(1);
        for i in 0..8 {
            spiked.submit(req(i)).unwrap();
            plain.submit(req(i)).unwrap();
        }
        let base = drain(&mut plain);
        let got = drain(&mut spiked);
        assert_eq!(got.len(), base.len(), "no completion is lost");
        assert_eq!(spiked.stats().latency_spikes, 8);
        for (s, b) in got.iter().zip(&base) {
            assert_eq!(s.id, b.id);
            assert_eq!(s.completed, b.completed + extra);
        }
        assert_eq!(spiked.inflight(), 0);
    }

    #[test]
    fn dropout_window_rejects_then_recovers() {
        let plan = FaultPlan::none().dropout(SimTime::ZERO, SimTime::from_millis(10));
        let mut dev = injected(plan, 1);
        assert_eq!(dev.submit(req(0)), Err(DeviceError::Unavailable));
        assert_eq!(
            dev.set_power_state(PowerStateId(1)),
            Err(DeviceError::Unavailable)
        );
        // Advance past the window: the device is reachable again.
        dev.advance_to(SimTime::from_millis(10));
        dev.submit(req(1)).expect("window over");
        dev.set_power_state(PowerStateId(1)).expect("window over");
        assert_eq!(dev.stats().unavailable, 2);
    }

    #[test]
    fn stuck_window_wedges_power_state_but_not_io() {
        let plan = FaultPlan::none().stuck_power_state(SimTime::ZERO, SimTime::from_millis(5));
        let mut dev = injected(plan, 1);
        match dev.set_power_state(PowerStateId(1)) {
            Err(DeviceError::Timeout { op }) => assert_eq!(op, "set_power_state"),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(dev.power_state(), PowerStateId(0), "state unchanged");
        dev.submit(req(0)).expect("io path unaffected");
        dev.advance_to(SimTime::from_millis(5));
        dev.set_power_state(PowerStateId(1)).expect("window over");
        assert_eq!(dev.power_state(), PowerStateId(1));
    }

    #[test]
    fn admin_outage_fails_admin_only() {
        let plan = FaultPlan::none().admin_outage(SimTime::ZERO, SimTime::from_millis(5));
        let mut dev = injected(plan, 1);
        assert_eq!(
            dev.set_power_state(PowerStateId(1)),
            Err(DeviceError::Io { request: None })
        );
        assert_eq!(
            dev.request_standby(),
            Err(DeviceError::Io { request: None })
        );
        dev.submit(req(0)).expect("io path unaffected");
    }

    #[test]
    fn held_completions_count_as_inflight() {
        let extra = SimDuration::from_secs(5);
        let mut dev = injected(FaultPlan::none().latency_spikes(1.0, extra), 2);
        dev.submit(req(0)).unwrap();
        // Advance only to the inner completion time: the spike holds it.
        while dev.inner().inflight() > 0 {
            let t = dev.next_event().expect("completion pending");
            let done = dev.advance_to(t);
            if dev.inner().inflight() == 0 {
                assert!(done.is_empty(), "completion must be held, not delivered");
            }
        }
        assert_eq!(dev.inflight(), 1, "held completion still counts");
        let done = drain(&mut dev);
        assert_eq!(done.len(), 1);
        assert_eq!(dev.inflight(), 0);
    }

    #[test]
    fn plan_validation_rejects_bad_inputs() {
        assert!(std::panic::catch_unwind(|| FaultPlan::none().io_errors(1.5)).is_err());
        assert!(std::panic::catch_unwind(|| {
            FaultPlan::none().dropout(SimTime::from_millis(5), SimTime::from_millis(5))
        })
        .is_err());
    }
}
