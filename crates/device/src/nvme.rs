//! NVMe admin-command facade: the host-side interface the paper uses to
//! control SSD power ("The host selects a power state through the NVMe
//! power control interface", §2).
//!
//! Mirrors the `nvme-cli` workflow: `identify-ctrl` lists the power-state
//! descriptors; Get/Set Features with feature id `0x02` (Power Management)
//! reads and selects the state.

use crate::device::StorageDevice;
use crate::error::DeviceError;
use crate::power::PowerStateId;
use crate::spec::Protocol;

/// NVMe Power Management feature id (Set/Get Features).
pub const FEATURE_POWER_MANAGEMENT: u8 = 0x02;

/// One power-state descriptor as reported by Identify Controller.
///
/// Power is reported in centiwatts with the `MXPS` convention fixed to
/// 0.01 W units, as typical enterprise drives do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmePowerStateDescriptor {
    /// The state this descriptor describes.
    pub ps: PowerStateId,
    /// Maximum power in centiwatts (`0` when the state is unconstrained —
    /// the spec reserves 0 for "not reported").
    pub max_power_cw: u32,
    /// Entry latency in microseconds.
    pub entry_latency_us: u32,
    /// Exit latency in microseconds.
    pub exit_latency_us: u32,
    /// True for non-operational states (none of the modeled drives
    /// implement one; kept for structural fidelity).
    pub non_operational: bool,
}

/// A subset of the Identify Controller data structure: the fields the
/// paper's methodology reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentifyController {
    /// Model number (`MN`).
    pub model_number: String,
    /// Number of power states supported (`NPSS` is zero-based in the spec;
    /// this is the count).
    pub power_state_count: u8,
    /// Power-state descriptors, `ps0` first.
    pub power_states: Vec<NvmePowerStateDescriptor>,
}

/// Admin-command facade over an NVMe device.
///
/// # Examples
///
/// ```
/// use powadapt_device::{catalog, NvmeAdmin};
///
/// let mut dev = catalog::ssd2_d7_p5510(1);
/// let mut admin = NvmeAdmin::new(&mut dev)?;
/// let id = admin.identify_controller();
/// assert_eq!(id.power_state_count, 3);
/// // Select ps2 (cap 10 W), as the paper does before a capped run.
/// admin.set_feature_power_management(2)?;
/// assert_eq!(admin.get_feature_power_management(), 2);
/// # Ok::<(), powadapt_device::DeviceError>(())
/// ```
#[derive(Debug)]
pub struct NvmeAdmin<'a> {
    device: &'a mut dyn StorageDevice,
}

impl<'a> NvmeAdmin<'a> {
    /// Attaches to a device.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ProtocolMismatch`] for non-NVMe devices.
    pub fn new(device: &'a mut dyn StorageDevice) -> Result<Self, DeviceError> {
        if device.spec().protocol() != Protocol::Nvme {
            return Err(DeviceError::ProtocolMismatch {
                expected: Protocol::Nvme,
                actual: device.spec().protocol(),
            });
        }
        Ok(NvmeAdmin { device })
    }

    /// Identify Controller: model and power-state descriptors.
    pub fn identify_controller(&self) -> IdentifyController {
        let spec = self.device.spec();
        let descriptors: Vec<NvmePowerStateDescriptor> = self
            .device
            .power_states()
            .iter()
            .map(|d| NvmePowerStateDescriptor {
                ps: d.id,
                max_power_cw: if d.cap_w.is_finite() {
                    (d.cap_w * 100.0).round() as u32
                } else {
                    0
                },
                // The modeled NVMe drives transition in microseconds; the
                // figures here follow typical datasheet values.
                entry_latency_us: 5,
                exit_latency_us: 5,
                non_operational: false,
            })
            .collect();
        IdentifyController {
            model_number: spec.model().to_string(),
            power_state_count: descriptors.len() as u8,
            power_states: descriptors,
        }
    }

    /// Get Features (Power Management): the current power state in the low
    /// five bits, as the spec encodes it.
    pub fn get_feature_power_management(&self) -> u32 {
        u32::from(self.device.power_state().0) & 0x1f
    }

    /// Set Features (Power Management): selects the power state in the low
    /// five bits of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownPowerState`] for unimplemented states.
    pub fn set_feature_power_management(&mut self, value: u32) -> Result<(), DeviceError> {
        let ps = PowerStateId((value & 0x1f) as u8);
        self.device.set_power_state(ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn identify_reports_the_paper_power_states() {
        let mut dev = catalog::ssd2_d7_p5510(1);
        let admin = NvmeAdmin::new(&mut dev).expect("NVMe device");
        let id = admin.identify_controller();
        assert_eq!(id.model_number, "Intel D7-P5510");
        assert_eq!(id.power_state_count, 3);
        let caps: Vec<u32> = id.power_states.iter().map(|d| d.max_power_cw).collect();
        assert_eq!(caps, vec![2500, 1200, 1000]);
        assert_eq!(id.power_states[1].ps, PowerStateId(1));
    }

    #[test]
    fn unconstrained_states_report_zero_centiwatts() {
        let mut dev = catalog::ssd1_pm9a3(1);
        let admin = NvmeAdmin::new(&mut dev).expect("NVMe device");
        let id = admin.identify_controller();
        // SSD1's ps0 has a finite 25 W envelope in our model.
        assert_eq!(id.power_states[0].max_power_cw, 2500);
    }

    #[test]
    fn feature_roundtrip_changes_device_state() {
        let mut dev = catalog::ssd2_d7_p5510(1);
        let mut admin = NvmeAdmin::new(&mut dev).expect("NVMe device");
        assert_eq!(admin.get_feature_power_management(), 0);
        admin.set_feature_power_management(1).expect("ps1 exists");
        assert_eq!(admin.get_feature_power_management(), 1);
        assert!(admin.set_feature_power_management(9).is_err());
        // High bits outside the PS field are ignored per the spec encoding.
        admin.set_feature_power_management(0x40 | 2).expect("ps2");
        assert_eq!(admin.get_feature_power_management(), 2);
    }

    #[test]
    fn sata_devices_are_rejected() {
        let mut dev = catalog::ssd3_d3_p4510(1);
        let err = NvmeAdmin::new(&mut dev).unwrap_err();
        assert!(matches!(err, DeviceError::ProtocolMismatch { .. }));
        assert!(err.to_string().contains("NVMe"));
    }
}
