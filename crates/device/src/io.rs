//! IO request and completion types.

use std::fmt;

use powadapt_sim::{SimDuration, SimTime};

/// One kibibyte, in bytes.
pub const KIB: u64 = 1024;
/// One mebibyte, in bytes.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte, in bytes.
pub const GIB: u64 = 1024 * MIB;

/// Identifier of an in-flight IO request, assigned by the submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IoId(pub u64);

impl fmt::Display for IoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "io#{}", self.0)
    }
}

/// Direction of an IO request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Data flows device → host.
    Read,
    /// Data flows host → device.
    Write,
}

impl IoKind {
    /// True for writes.
    pub fn is_write(self) -> bool {
        matches!(self, IoKind::Write)
    }

    /// The telemetry-schema direction for this kind.
    pub fn obs_dir(self) -> powadapt_obs::IoDir {
        match self {
            IoKind::Read => powadapt_obs::IoDir::Read,
            IoKind::Write => powadapt_obs::IoDir::Write,
        }
    }
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoKind::Read => write!(f, "read"),
            IoKind::Write => write!(f, "write"),
        }
    }
}

/// An IO request submitted to a [`StorageDevice`](crate::StorageDevice).
///
/// # Examples
///
/// ```
/// use powadapt_device::{IoId, IoKind, IoRequest, KIB};
///
/// let req = IoRequest::new(IoId(1), IoKind::Write, 0, 256 * KIB);
/// assert_eq!(req.len, 256 * KIB);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Submitter-assigned id, echoed in the completion.
    pub id: IoId,
    /// Read or write.
    pub kind: IoKind,
    /// Byte offset on the device.
    pub offset: u64,
    /// Length in bytes. Must be non-zero.
    pub len: u64,
}

impl IoRequest {
    /// Creates a request.
    pub fn new(id: IoId, kind: IoKind, offset: u64, len: u64) -> Self {
        IoRequest {
            id,
            kind,
            offset,
            len,
        }
    }

    /// First byte past the requested range.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Completion record for a finished IO request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCompletion {
    /// Id of the completed request.
    pub id: IoId,
    /// Read or write.
    pub kind: IoKind,
    /// Length in bytes.
    pub len: u64,
    /// When the request was submitted to the device.
    pub submitted: SimTime,
    /// When the device completed it.
    pub completed: SimTime,
}

impl IoCompletion {
    /// End-to-end device latency of the request.
    pub fn latency(&self) -> SimDuration {
        self.completed.duration_since(self.submitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_end() {
        let r = IoRequest::new(IoId(0), IoKind::Read, 4096, 8192);
        assert_eq!(r.end(), 12288);
    }

    #[test]
    fn completion_latency() {
        let c = IoCompletion {
            id: IoId(3),
            kind: IoKind::Write,
            len: KIB,
            submitted: SimTime::from_micros(10),
            completed: SimTime::from_micros(95),
        };
        assert_eq!(c.latency().as_micros(), 85);
    }

    #[test]
    fn unit_constants() {
        assert_eq!(KIB, 1024);
        assert_eq!(MIB, 1024 * 1024);
        assert_eq!(GIB, 1024 * 1024 * 1024);
    }

    #[test]
    fn kind_helpers_and_display() {
        assert!(IoKind::Write.is_write());
        assert!(!IoKind::Read.is_write());
        assert_eq!(IoKind::Read.to_string(), "read");
        assert_eq!(IoId(7).to_string(), "io#7");
    }
}
