//! Calibrated device models for the paper's evaluated drives (Table 1).
//!
//! Each constructor returns a device whose component model is tuned so the
//! paper's headline numbers emerge from the simulation rather than being
//! looked up:
//!
//! | Label | Model               | Paper's measured range | Key anchors |
//! |-------|---------------------|------------------------|-------------|
//! | SSD1  | Samsung PM9A3       | 3.5–13.5 W | randwrite 256 KiB QD64 ≈ 3.3 GiB/s @ ≈8.2 W (§3.3) |
//! | SSD2  | Intel D7-P5510      | 5–15.1 W   | ps0/ps1/ps2 caps 25/12/10 W; seq-write ps1 ≈ 74 %, ps2 ≈ 55 % of ps0 (Fig. 4) |
//! | SSD3  | Intel D3-P4510      | 1–3.5 W    | SATA 530 MB/s interface bound |
//! | HDD   | Seagate Exos 7E2000 | 1–5.3 W    | idle 3.76 W, standby 1.1 W, spin-up ≈ 6 s (§3.2.2) |
//! | EVO   | Samsung 860 EVO     | 0.17–~2.5 W| idle 0.35 W → SLUMBER 0.17 W in <0.5 s (Fig. 7) |
//!
//! The `seed` argument controls the device's internal noise stream; the same
//! seed reproduces the same run bit-for-bit.

use powadapt_sim::SimDuration;

use crate::hdd::{Hdd, HddConfig};
use crate::io::{GIB, KIB, MIB};
use crate::power::{PowerStateDesc, PowerStateId, StandbyConfig};
use crate::spec::{DeviceClass, DeviceSpec, Protocol};
use crate::ssd::{Ssd, SsdConfig};

/// SSD1 — Samsung PM9A3 (NVMe). High die count, low per-die power: a
/// PCIe-4 drive bottlenecked by the testbed's PCIe-3 host link.
pub fn ssd1_pm9a3(seed: u64) -> Ssd {
    let spec = DeviceSpec::new(
        "SSD1",
        "Samsung PM9A3",
        Protocol::Nvme,
        DeviceClass::Ssd,
        1920 * GIB,
    );
    let cfg = SsdConfig {
        dies: 64,
        page_bytes: 16 * KIB,
        program_unit_bytes: 64 * KIB,
        read_op: SimDuration::from_micros(70),
        program_op: SimDuration::from_micros(560),
        cmd_read: SimDuration::from_micros(2),
        cmd_write: SimDuration::from_micros(3),
        read_post: SimDuration::from_micros(8),
        write_commit: SimDuration::from_micros(40),
        interface_bw: 3.6e9, // PCIe 3 x4 host limit
        write_buffer_bytes: 64 * MIB,
        flush_watermark_bytes: 4 * MIB,
        idle_flush_after: SimDuration::from_millis(5),
        waf_min: 1.05,
        waf_max: 1.7,
        read_cache_pages: 64,
        idle_w: 3.5,
        ctrl_active_w: 0.2,
        die_read_w: 0.08,
        die_prog_w: 0.10,
        iface_active_w: 0.85,
        noise_sd_w: 0.35,
        power_states: vec![
            PowerStateDesc::new(PowerStateId(0), 25.0),
            PowerStateDesc::new(PowerStateId(1), 6.5),
            PowerStateDesc::new(PowerStateId(2), 5.4),
        ],
        cap_window: SimDuration::from_millis(50),
        burst_factor: 1.1,
        standby: None, // enterprise NVMe: no host-visible standby (§3.2.2)
        partial: None,
    };
    Ssd::new(spec, cfg, seed)
}

/// SSD2 — Intel D7-P5510 (NVMe). The paper's power-state workhorse:
/// ps0 caps at 25 W (never binds), ps1 at 12 W, ps2 at 10 W.
pub fn ssd2_d7_p5510(seed: u64) -> Ssd {
    let spec = DeviceSpec::new(
        "SSD2",
        "Intel D7-P5510",
        Protocol::Nvme,
        DeviceClass::Ssd,
        3840 * GIB,
    );
    let cfg = SsdConfig {
        dies: 32,
        page_bytes: 16 * KIB,
        program_unit_bytes: 64 * KIB,
        read_op: SimDuration::from_micros(70),
        program_op: SimDuration::from_micros(560),
        cmd_read: SimDuration::from_micros(2),
        cmd_write: SimDuration::from_micros(3),
        read_post: SimDuration::from_micros(8),
        write_commit: SimDuration::from_micros(40),
        interface_bw: 3.5e9,
        write_buffer_bytes: 64 * MIB,
        flush_watermark_bytes: 4 * MIB,
        idle_flush_after: SimDuration::from_millis(5),
        waf_min: 1.05,
        waf_max: 1.6,
        read_cache_pages: 64,
        idle_w: 5.0,
        ctrl_active_w: 0.2,
        die_read_w: 0.07,
        die_prog_w: 0.29,
        iface_active_w: 0.85,
        noise_sd_w: 0.2,
        power_states: vec![
            PowerStateDesc::new(PowerStateId(0), 25.0),
            PowerStateDesc::new(PowerStateId(1), 12.0),
            PowerStateDesc::new(PowerStateId(2), 10.0),
        ],
        cap_window: SimDuration::from_millis(25),
        burst_factor: 1.1,
        standby: None,
        partial: None,
    };
    Ssd::new(spec, cfg, seed)
}

/// SSD3 — Intel D3-P4510 as evaluated over SATA in the paper: a 530 MB/s
/// interface-bound, low-power drive with no NVMe power states.
pub fn ssd3_d3_p4510(seed: u64) -> Ssd {
    let spec = DeviceSpec::new(
        "SSD3",
        "Intel D3-P4510",
        Protocol::Sata,
        DeviceClass::Ssd,
        1920 * GIB,
    );
    let cfg = SsdConfig {
        dies: 16,
        page_bytes: 16 * KIB,
        program_unit_bytes: 64 * KIB,
        read_op: SimDuration::from_micros(75),
        program_op: SimDuration::from_micros(600),
        cmd_read: SimDuration::from_micros(4),
        cmd_write: SimDuration::from_micros(20),
        read_post: SimDuration::from_micros(15),
        write_commit: SimDuration::from_micros(60),
        interface_bw: 0.53e9, // SATA 6 Gb/s effective
        write_buffer_bytes: 32 * MIB,
        flush_watermark_bytes: 2 * MIB,
        idle_flush_after: SimDuration::from_millis(5),
        waf_min: 1.05,
        waf_max: 1.6,
        read_cache_pages: 64,
        idle_w: 1.0,
        ctrl_active_w: 0.1,
        die_read_w: 0.10,
        die_prog_w: 0.40,
        iface_active_w: 0.30,
        noise_sd_w: 0.1,
        // SATA drives have no host-selectable power states, but the firmware
        // still paces flush bursts within the drive's 3.5 W envelope.
        power_states: vec![PowerStateDesc::new(PowerStateId(0), 3.5)],
        cap_window: SimDuration::from_millis(50),
        burst_factor: 1.05,
        standby: None,
        partial: None,
    };
    Ssd::new(spec, cfg, seed)
}

/// HDD — Seagate Exos 7E2000 (SATA, 7200 rpm). Idle 3.76 W, standby 1.1 W,
/// seconds-scale spin transitions.
pub fn hdd_exos_7e2000(seed: u64) -> Hdd {
    let spec = DeviceSpec::new(
        "HDD",
        "Seagate Exos 7E2000",
        Protocol::Sata,
        DeviceClass::Hdd,
        2048 * GIB,
    );
    let cfg = HddConfig {
        media_bw: 180e6,
        inner_bw_frac: 0.55,
        min_seek: SimDuration::from_micros(500),
        max_seek: SimDuration::from_millis(16),
        rpm: 7200,
        cmd_overhead: SimDuration::from_micros(50),
        write_cache_bytes: 4 * MIB,
        ncq_window: 32,
        max_op_age: SimDuration::from_millis(100),
        electronics_w: 0.46,
        spindle_w: 3.3,
        seek_w: 1.3,
        xfer_w: 0.25,
        noise_sd_w: 0.05,
        standby_w: 1.1,
        spin_down: SimDuration::from_millis(1500),
        spin_down_w: 2.5,
        spin_up: SimDuration::from_secs(6),
        spin_up_w: 5.2,
    };
    Hdd::new(spec, cfg, seed)
}

/// 860 EVO — Samsung 860 EVO (SATA, desktop): the standby demonstrator of
/// §3.2.2 / Figure 7. Idle 0.35 W; ALPM SLUMBER 0.17 W; transitions within
/// 0.5 s with a visible power excursion.
pub fn evo_860(seed: u64) -> Ssd {
    let spec = DeviceSpec::new(
        "860EVO",
        "Samsung 860 EVO",
        Protocol::Sata,
        DeviceClass::Ssd,
        1024 * GIB,
    );
    let cfg = SsdConfig {
        dies: 8,
        page_bytes: 16 * KIB,
        program_unit_bytes: 64 * KIB,
        read_op: SimDuration::from_micros(80),
        program_op: SimDuration::from_micros(700),
        cmd_read: SimDuration::from_micros(5),
        cmd_write: SimDuration::from_micros(12),
        read_post: SimDuration::from_micros(15),
        write_commit: SimDuration::from_micros(60),
        interface_bw: 0.53e9,
        write_buffer_bytes: 16 * MIB,
        flush_watermark_bytes: MIB,
        idle_flush_after: SimDuration::from_millis(5),
        waf_min: 1.05,
        waf_max: 1.6,
        read_cache_pages: 64,
        idle_w: 0.35,
        ctrl_active_w: 0.15,
        die_read_w: 0.08,
        die_prog_w: 0.25,
        iface_active_w: 0.25,
        noise_sd_w: 0.03,
        power_states: vec![PowerStateDesc::new(PowerStateId(0), 2.8)],
        cap_window: SimDuration::from_millis(50),
        burst_factor: 1.1,
        standby: Some(StandbyConfig {
            standby_w: 0.17,
            enter: SimDuration::from_millis(300),
            exit: SimDuration::from_millis(400),
            transition_w: 0.55,
            wake_spike_w: 1.25,
        }),
        // ALPM PARTIAL: modest savings below idle, but a microsecond-scale
        // exit — the shallow rung of the ladder (§3.2.2).
        partial: Some(StandbyConfig {
            standby_w: 0.26,
            enter: SimDuration::from_micros(30),
            exit: SimDuration::from_micros(120),
            transition_w: 0.4,
            wake_spike_w: 0.7,
        }),
    };
    Ssd::new(spec, cfg, seed)
}

/// PM1743 — Samsung PM1743 (PCIe 5 NVMe): the §2 sizing example. Idle 5 W;
/// typical read power 23 W and write power 21.1 W; can be capped to 9 W
/// (~40 % of its uncapped maximum, 1.8× idle).
pub fn pm1743(seed: u64) -> Ssd {
    let spec = DeviceSpec::new(
        "PM1743",
        "Samsung PM1743",
        Protocol::Nvme,
        DeviceClass::Ssd,
        7680 * GIB,
    );
    let cfg = SsdConfig {
        dies: 64,
        page_bytes: 16 * KIB,
        program_unit_bytes: 64 * KIB,
        read_op: SimDuration::from_micros(70),
        program_op: SimDuration::from_micros(560),
        cmd_read: SimDuration::from_micros(1),
        cmd_write: SimDuration::from_micros(2),
        read_post: SimDuration::from_micros(6),
        write_commit: SimDuration::from_micros(30),
        interface_bw: 13.0e9, // PCIe 5 x4
        write_buffer_bytes: 128 * MIB,
        flush_watermark_bytes: 8 * MIB,
        idle_flush_after: SimDuration::from_millis(5),
        waf_min: 1.05,
        waf_max: 1.6,
        read_cache_pages: 128,
        idle_w: 5.0,
        ctrl_active_w: 0.3,
        die_read_w: 0.245, // 14 GB/s reads -> ~61 busy dies -> ~23 W total
        die_prog_w: 0.225, // NAND-limited writes -> ~21.1 W total
        iface_active_w: 2.6,
        noise_sd_w: 0.4,
        power_states: vec![
            PowerStateDesc::new(PowerStateId(0), 25.0),
            PowerStateDesc::new(PowerStateId(1), 14.0),
            PowerStateDesc::new(PowerStateId(2), 9.0),
        ],
        cap_window: SimDuration::from_millis(25),
        burst_factor: 1.1,
        standby: None,
        partial: None,
    };
    Ssd::new(spec, cfg, seed)
}

/// The four Table 1 devices (SSD1, SSD2, SSD3, HDD), boxed, in paper order.
pub fn table1_devices(seed: u64) -> Vec<Box<dyn crate::StorageDevice>> {
    vec![
        Box::new(ssd1_pm9a3(seed)),
        Box::new(ssd2_d7_p5510(seed.wrapping_add(1))),
        Box::new(ssd3_d3_p4510(seed.wrapping_add(2))),
        Box::new(hdd_exos_7e2000(seed.wrapping_add(3))),
    ]
}

/// Builds a Table 1 device by its paper label ("SSD1", "SSD2", "SSD3",
/// "HDD", or "860EVO"). Returns `None` for unknown labels.
pub fn by_label(label: &str, seed: u64) -> Option<Box<dyn crate::StorageDevice>> {
    Some(match label {
        "SSD1" => Box::new(ssd1_pm9a3(seed)) as Box<dyn crate::StorageDevice>,
        "SSD2" => Box::new(ssd2_d7_p5510(seed)),
        "SSD3" => Box::new(ssd3_d3_p4510(seed)),
        "HDD" => Box::new(hdd_exos_7e2000(seed)),
        "860EVO" => Box::new(evo_860(seed)),
        "PM1743" => Box::new(pm1743(seed)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StorageDevice;

    #[test]
    fn catalog_configs_are_valid() {
        // Constructors panic on invalid configs, so building is the test.
        let _ = ssd1_pm9a3(1);
        let _ = ssd2_d7_p5510(1);
        let _ = ssd3_d3_p4510(1);
        let _ = hdd_exos_7e2000(1);
        let _ = evo_860(1);
    }

    #[test]
    fn idle_power_matches_table1_floors() {
        assert!((ssd1_pm9a3(1).power_w() - 3.5).abs() < 1e-9);
        assert!((ssd2_d7_p5510(1).power_w() - 5.0).abs() < 1e-9);
        assert!((ssd3_d3_p4510(1).power_w() - 1.0).abs() < 1e-9);
        assert!((hdd_exos_7e2000(1).power_w() - 3.76).abs() < 1e-9);
        assert!((evo_860(1).power_w() - 0.35).abs() < 1e-9);
    }

    #[test]
    fn ssd2_has_paper_power_states() {
        let dev = ssd2_d7_p5510(1);
        let caps: Vec<f64> = dev.power_states().iter().map(|d| d.cap_w).collect();
        assert_eq!(caps, vec![25.0, 12.0, 10.0]);
    }

    #[test]
    fn table1_returns_four_devices_in_order() {
        let devs = table1_devices(9);
        let labels: Vec<&str> = devs.iter().map(|d| d.spec().label()).collect();
        assert_eq!(labels, vec!["SSD1", "SSD2", "SSD3", "HDD"]);
    }

    #[test]
    fn by_label_resolves_known_and_rejects_unknown() {
        for l in ["SSD1", "SSD2", "SSD3", "HDD", "860EVO", "PM1743"] {
            assert_eq!(by_label(l, 1).unwrap().spec().label(), l);
        }
        assert!(by_label("SSD9", 1).is_none());
    }

    #[test]
    fn pm1743_matches_its_datasheet_anchors() {
        let dev = pm1743(1);
        assert!((dev.power_w() - 5.0).abs() < 1e-9, "idle 5 W");
        let caps: Vec<f64> = dev.power_states().iter().map(|d| d.cap_w).collect();
        assert_eq!(caps, vec![25.0, 14.0, 9.0]);
        // The paper's arithmetic: the 9 W cap is 1.8x the 5 W idle.
        assert!((caps[2] / 5.0 - 1.8).abs() < 1e-9);
    }

    #[test]
    fn only_evo_and_hdd_support_standby() {
        assert!(ssd1_pm9a3(1).config().standby.is_none());
        assert!(ssd2_d7_p5510(1).config().standby.is_none());
        assert!(ssd3_d3_p4510(1).config().standby.is_none());
        assert!(evo_860(1).config().standby.is_some());
        let mut hdd = hdd_exos_7e2000(1);
        assert!(hdd.request_standby().is_ok());
    }

    #[test]
    fn only_evo_implements_the_full_alpm_ladder() {
        use crate::power::StandbyDepth;
        let evo = evo_860(1);
        let ladder = evo.config().partial.as_ref().expect("EVO has PARTIAL");
        let slumber = evo.config().standby.as_ref().expect("EVO has SLUMBER");
        // The ladder is ordered: PARTIAL saves less but exits far faster.
        assert!(ladder.standby_w > slumber.standby_w);
        assert!(ladder.exit < slumber.exit);
        assert!(ssd1_pm9a3(1).config().partial.is_none());
        assert!(ssd3_d3_p4510(1).config().partial.is_none());
        // HDDs expose only the deep (spin-down) rung via the default.
        let mut hdd = hdd_exos_7e2000(1);
        assert_eq!(
            hdd.request_standby_depth(StandbyDepth::Partial),
            Err(crate::DeviceError::StandbyUnsupported)
        );
    }
}
