//! Event-driven SSD simulator.
//!
//! The model decomposes the drive into the components that dominate power:
//!
//! - a **controller** that processes one command at a time,
//! - a **host interface** that serializes data transfers at a fixed
//!   bandwidth,
//! - an array of **NAND dies** that execute page reads and multi-plane
//!   programs, each drawing power while busy,
//! - a **DRAM write buffer** that acknowledges writes early and is drained
//!   by background program operations (with write amplification), and
//! - a **power-cap governor** that delays new work whenever the trailing
//!   window average would exceed the selected power state's cap.
//!
//! The interplay of these components reproduces the paper's findings
//! organically: caps throttle writes much more than reads (programs draw
//! more power than reads), deep queues activate more dies (more power),
//! small chunks bottleneck on the controller (less power, less throughput),
//! and capped flush bursts delay command processing (latency tails).

mod config;

pub use config::SsdConfig;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use powadapt_obs::{emit, span, EventKind, RecorderHandle};
use powadapt_sim::snapshot::{read_time, write_time};
use powadapt_sim::{EventQueue, RollingMean, SimDuration, SimRng, SimTime, Slab};
use powadapt_snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

use crate::device::StorageDevice;
use crate::error::DeviceError;
use crate::io::{IoCompletion, IoId, IoKind, IoRequest, MIB};
use crate::power::{
    PowerStateDesc, PowerStateId, StandbyConfig, StandbyDepth, StandbyPhase, StandbyState,
};
use crate::snapcodec;
use crate::spec::DeviceSpec;

/// Governor retry cadence when starts are blocked by a power cap.
const RETRY_INTERVAL: SimDuration = SimDuration::from_micros(200);
/// Chunk length treated as "large" for write-amplification purposes.
const LARGE_WRITE: u64 = MIB;
/// Smallest chunk of the paper's sweep; anchors the WAF interpolation.
const SMALL_WRITE: u64 = 4 * 1024;

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: IoId,
    kind: IoKind,
    offset: u64,
    len: u64,
    submitted: SimTime,
    /// Write amplification assigned when the command executed.
    waf: f64,
}

impl Pending {
    fn end(&self) -> u64 {
        self.offset + self.len
    }
}

#[derive(Debug, Clone, Copy)]
enum DieWork {
    /// One page read belonging to the in-flight read at this `reads`-slab
    /// slot. Slots are O(1) to resolve on the hot completion path;
    /// snapshots translate them back to stable [`IoId`]s.
    Read(usize),
    /// One (possibly partial) program unit of buffer drain.
    Program,
}

#[derive(Debug, Clone, Copy)]
struct Transfer {
    pending: Pending,
}

#[derive(Debug)]
enum Ev {
    CmdDone(Pending),
    IfaceDone(Transfer),
    Complete(Pending),
    DieDone { die: usize, work: DieWork },
    StandbyDone,
    NoiseTick,
    RetryTick,
    IdleFlush,
}

#[derive(Debug)]
struct ReadState {
    pending: Pending,
    remaining: usize,
}

/// LRU set of recently read page indices (controller read cache).
#[derive(Debug, Default)]
struct PageCache {
    order: VecDeque<u64>,
    set: BTreeSet<u64>,
    capacity: usize,
}

impl PageCache {
    fn new(capacity: usize) -> Self {
        PageCache {
            order: VecDeque::with_capacity(capacity),
            set: BTreeSet::new(),
            capacity,
        }
    }

    fn contains(&self, page: u64) -> bool {
        self.set.contains(&page)
    }

    fn insert(&mut self, page: u64) {
        if self.capacity == 0 || self.set.contains(&page) {
            return;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        self.order.push_back(page);
        self.set.insert(page);
    }
}

/// A simulated SSD. See the [module docs](self) for the model.
///
/// # Examples
///
/// ```
/// use powadapt_device::{catalog, StorageDevice};
///
/// let dev = catalog::ssd1_pm9a3(1);
/// assert_eq!(dev.spec().label(), "SSD1");
/// assert!(dev.power_w() > 0.0);
/// ```
#[derive(Debug)]
pub struct Ssd {
    // powadapt-lint: allow(d6, reason = "static device spec; the restorer constructs the device from it")
    spec: DeviceSpec,
    cfg: SsdConfig,
    now: SimTime,
    events: EventQueue<Ev>,
    rng: SimRng,

    // Power accounting.
    power_now: f64,
    rolling: RollingMean,
    ps_index: usize,
    phase: StandbyPhase,
    /// Depth of the standby state in force or most recently requested;
    /// meaningful only while `phase` is not `Active`.
    depth: StandbyDepth,
    standby_requested: bool,
    noise_w: f64,
    noise_scheduled: bool,

    // Controller.
    ctrl_busy: bool,
    cmd_queue: VecDeque<Pending>,

    // Host interface.
    iface_busy: bool,
    iface_queue: VecDeque<Transfer>,

    // NAND dies. Die queues carry `reads`-slab slots so the per-page
    // completion path never walks an ordered map.
    die_busy: Vec<bool>,
    die_q: Vec<VecDeque<usize>>,
    busy_read: usize,
    busy_prog: usize,

    // Write path.
    buffer_used: u64,
    nand_debt: u64,
    flushing: bool,
    buffer_waiters: VecDeque<Pending>,
    last_write_end: u64,

    // Read path: in-flight reads live in a freelist arena keyed by slot.
    reads: Slab<ReadState>,
    cache: PageCache,

    inflight_ids: BTreeSet<u64>,
    done: Vec<IoCompletion>,
    retry_pending: bool,
    idle_flush_pending: bool,

    // Telemetry sink (captured from the global slot at construction;
    // write-only, never feeds back into device behavior).
    // powadapt-lint: allow(d6, reason = "telemetry sink; re-captured from the global slot at construction")
    rec: RecorderHandle,
    // powadapt-lint: allow(d6, reason = "telemetry label; re-derived at construction")
    track: &'static str,
    // Precomputed per-die span labels ("die{i}.program" / "die{i}.read"):
    // span emission clones a refcount instead of formatting per event.
    // powadapt-lint: allow(d6, reason = "telemetry labels; re-derived from the die count at construction")
    die_labels: Vec<DieLabels>,
}

/// Prebuilt span labels for one die.
#[derive(Debug, Clone)]
struct DieLabels {
    program: &'static str,
    read: &'static str,
}

fn die_labels(dies: usize) -> Vec<DieLabels> {
    (0..dies)
        .map(|d| DieLabels {
            program: powadapt_obs::intern(&format!("die{d}.program")),
            read: powadapt_obs::intern(&format!("die{d}.read")),
        })
        .collect()
}

impl Ssd {
    /// Creates an SSD from a spec and configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SsdConfig::validate`]);
    /// [`Ssd::try_new`] is the fallible equivalent.
    pub fn new(spec: DeviceSpec, cfg: SsdConfig, seed: u64) -> Self {
        match Ssd::try_new(spec, cfg, seed) {
            Ok(ssd) => ssd,
            // powadapt-lint: allow(D5, reason = "documented panic-on-invalid-config constructor; the error path is try_new")
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: returns [`DeviceError::InvalidConfig`] instead
    /// of panicking when the configuration fails [`SsdConfig::validate`].
    pub fn try_new(spec: DeviceSpec, cfg: SsdConfig, seed: u64) -> Result<Self, DeviceError> {
        if let Err(e) = cfg.validate() {
            return Err(DeviceError::InvalidConfig(e));
        }
        let idle = cfg.idle_w;
        let window = cfg.cap_window;
        let dies = cfg.dies;
        let cache = PageCache::new(cfg.read_cache_pages);
        let track = powadapt_obs::intern(spec.label());
        let die_labels = die_labels(dies);
        Ok(Ssd {
            spec,
            cfg,
            now: SimTime::ZERO,
            events: EventQueue::new(),
            rng: SimRng::seed_from(seed),
            power_now: idle,
            rolling: RollingMean::new(window, idle),
            ps_index: 0,
            phase: StandbyPhase::Active,
            depth: StandbyDepth::Slumber,
            standby_requested: false,
            noise_w: 0.0,
            noise_scheduled: false,
            ctrl_busy: false,
            cmd_queue: VecDeque::new(),
            iface_busy: false,
            iface_queue: VecDeque::new(),
            die_busy: vec![false; dies],
            die_q: (0..dies).map(|_| VecDeque::new()).collect(),
            busy_read: 0,
            busy_prog: 0,
            buffer_used: 0,
            nand_debt: 0,
            flushing: false,
            buffer_waiters: VecDeque::new(),
            last_write_end: u64::MAX, // first write is never "sequential"
            reads: Slab::new(),
            cache,
            inflight_ids: BTreeSet::new(),
            done: Vec::new(),
            retry_pending: false,
            idle_flush_pending: false,
            rec: powadapt_obs::current(),
            track,
            die_labels,
        })
    }

    /// The configuration the device was built with.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Current write-buffer fill in bytes (diagnostic).
    pub fn buffer_used(&self) -> u64 {
        self.buffer_used
    }

    /// Outstanding NAND program debt in bytes (diagnostic).
    pub fn nand_debt(&self) -> u64 {
        self.nand_debt
    }

    fn cap_w(&self) -> f64 {
        self.cfg.power_states[self.ps_index].cap_w
    }

    fn need_retry(&mut self) {
        if !self.retry_pending {
            self.retry_pending = true;
            emit!(
                self.rec,
                self.now,
                self.track,
                EventKind::CapApplied {
                    cap_w: self.cap_w(),
                    power_w: self.power_now,
                }
            );
            self.events
                .schedule(self.now + RETRY_INTERVAL, Ev::RetryTick);
        }
    }

    /// May a command start now? Command processing itself draws little
    /// power, so it is gated only on instantaneous headroom — die work is
    /// what the average-power governor paces.
    fn gov_allows_cmd(&mut self) -> bool {
        let cap = self.cap_w();
        if cap.is_infinite() {
            return true;
        }
        if self.power_now > cap * self.cfg.burst_factor {
            self.need_retry();
            return false;
        }
        true
    }

    /// May new die work drawing `add_w` start now without violating the cap?
    ///
    /// A start is allowed while instantaneous power is at or below the cap
    /// (so the overshoot is bounded by one op's power) and the trailing
    /// window average has headroom. `add_w` is accepted for interface
    /// symmetry; the instant bound intentionally excludes it.
    fn gov_allows(&mut self, add_w: f64) -> bool {
        let _ = add_w;
        let cap = self.cap_w();
        if cap.is_infinite() {
            return true;
        }
        if self.power_now > cap {
            self.need_retry();
            return false;
        }
        if self.rolling.mean_at(self.now) >= cap {
            self.need_retry();
            return false;
        }
        true
    }

    fn any_activity(&self) -> bool {
        self.ctrl_busy || self.iface_busy || self.busy_read > 0 || self.busy_prog > 0
    }

    /// No host-facing work pending (buffered writes may still be dirty).
    fn host_idle(&self) -> bool {
        !self.ctrl_busy
            && self.cmd_queue.is_empty()
            && self.buffer_waiters.is_empty()
            && self.reads.is_empty()
            && self.iface_queue.is_empty()
            && !self.iface_busy
    }

    fn is_fully_idle(&self) -> bool {
        !self.any_activity()
            && self.cmd_queue.is_empty()
            && self.iface_queue.is_empty()
            && self.buffer_waiters.is_empty()
            && self.reads.is_empty()
            && self.nand_debt == 0
    }

    /// Standby parameters for the depth in force.
    fn standby_cfg(&self) -> Option<&StandbyConfig> {
        match self.depth {
            StandbyDepth::Partial => self.cfg.partial.as_ref(),
            StandbyDepth::Slumber => self.cfg.standby.as_ref(),
        }
    }

    fn compute_power(&self) -> f64 {
        match self.phase {
            StandbyPhase::Entering { .. } => self
                .standby_cfg()
                .map_or(self.cfg.idle_w, |s| s.transition_w),
            StandbyPhase::Standby => self.standby_cfg().map_or(self.cfg.idle_w, |s| s.standby_w),
            StandbyPhase::Exiting { .. } => self
                .standby_cfg()
                .map_or(self.cfg.idle_w, |s| s.wake_spike_w),
            StandbyPhase::Active => {
                let mut p = self.cfg.idle_w;
                if self.any_activity() {
                    p += self.cfg.ctrl_active_w + self.noise_w;
                }
                p += self.busy_read as f64 * self.cfg.die_read_w;
                p += self.busy_prog as f64 * self.cfg.die_prog_w;
                if self.iface_busy {
                    p += self.cfg.iface_active_w;
                }
                p.max(0.0)
            }
        }
    }

    fn update_power(&mut self) {
        let p = self.compute_power();
        if (p - self.power_now).abs() > 1e-12 {
            self.power_now = p;
            self.rolling.push(self.now, p);
        }
    }

    fn schedule_noise(&mut self) {
        if self.cfg.noise_sd_w > 0.0 && !self.noise_scheduled {
            self.noise_scheduled = true;
            let dwell = SimDuration::from_micros(self.rng.u64_range(4_000, 12_000));
            self.events.schedule(self.now + dwell, Ev::NoiseTick);
        }
    }

    fn waf_for(&self, offset: u64, len: u64) -> f64 {
        if offset == self.last_write_end || len >= LARGE_WRITE {
            return self.cfg.waf_min;
        }
        let len = len.clamp(SMALL_WRITE, LARGE_WRITE) as f64;
        let t = (len.ln() - (SMALL_WRITE as f64).ln())
            / ((LARGE_WRITE as f64).ln() - (SMALL_WRITE as f64).ln());
        self.cfg.waf_max + t * (self.cfg.waf_min - self.cfg.waf_max)
    }

    fn begin_enter_standby(&mut self) {
        // powadapt-lint: allow(D5, reason = "callers transition here only after request_standby verified standby support")
        let enter = self.standby_cfg().expect("standby config").enter;
        let until = self.now + enter;
        self.phase = StandbyPhase::Entering { until };
        emit!(self.rec, self.now, self.track, EventKind::SpinDown);
        self.events.schedule(until, Ev::StandbyDone);
    }

    fn begin_wake(&mut self) {
        // powadapt-lint: allow(D5, reason = "waking is only reachable from standby phases, which require standby config")
        let exit = self.standby_cfg().expect("standby config").exit;
        let until = self.now + exit;
        self.phase = StandbyPhase::Exiting { until };
        self.standby_requested = false;
        emit!(self.rec, self.now, self.track, EventKind::SpinUp);
        self.events.schedule(until, Ev::StandbyDone);
    }

    fn admit_write(&mut self, p: Pending) {
        self.buffer_used += p.len;
        self.nand_debt += (p.len as f64 * p.waf).round() as u64;
        if self.buffer_used >= self.cfg.flush_watermark_bytes {
            self.flushing = true;
        }
        self.iface_queue.push_back(Transfer { pending: p });
    }

    fn buffer_fits(&self, len: u64) -> bool {
        self.buffer_used + len <= self.cfg.write_buffer_bytes
    }

    /// Starts one program op on `die` if there is debt and the governor
    /// allows it. Returns whether an op started.
    fn try_start_program(&mut self, die: usize) -> bool {
        if self.nand_debt == 0 || self.die_busy[die] {
            return false;
        }
        if !self.gov_allows(self.cfg.die_prog_w) {
            return false;
        }
        let unit = self.cfg.program_unit_bytes;
        let chunk = unit.min(self.nand_debt);
        let freed = if self.nand_debt == chunk {
            self.buffer_used
        } else {
            let f = chunk as u128 * self.buffer_used as u128 / self.nand_debt as u128;
            (f as u64).min(self.buffer_used)
        };
        self.buffer_used -= freed;
        self.nand_debt -= chunk;
        self.die_busy[die] = true;
        self.busy_prog += 1;
        let dur = self
            .cfg
            .program_op
            .mul_f64(chunk as f64 / unit as f64)
            .max(SimDuration::from_nanos(1));
        span!(
            self.rec,
            self.now,
            self.track,
            self.die_labels[die].program,
            dur
        );
        self.events.schedule(
            self.now + dur,
            Ev::DieDone {
                die,
                work: DieWork::Program,
            },
        );
        true
    }

    fn execute_write(&mut self, mut p: Pending) {
        p.waf = self.waf_for(p.offset, p.len);
        self.last_write_end = p.end();
        if self.buffer_fits(p.len) {
            self.admit_write(p);
        } else {
            self.buffer_waiters.push_back(p);
        }
    }

    fn execute_read(&mut self, p: Pending) {
        let page = self.cfg.page_bytes;
        let first = p.offset / page;
        let last = (p.end() - 1) / page;
        let dies = self.cfg.dies as u64;
        // Claim the slot up front so the per-page die work can reference
        // it; a fully cached read releases the slot before anyone sees it.
        let slot = self.reads.insert(ReadState {
            pending: p,
            remaining: 0,
        });
        let mut ops = 0usize;
        for pg in first..=last {
            if !self.cache.contains(pg) {
                let die = (pg % dies) as usize;
                self.die_q[die].push_back(slot);
                ops += 1;
            }
            self.cache.insert(pg);
        }
        if ops == 0 {
            self.reads.remove(slot);
            self.iface_queue.push_back(Transfer { pending: p });
        } else if let Some(rs) = self.reads.get_mut(slot) {
            rs.remaining = ops;
        }
    }

    fn finish(&mut self, p: Pending) {
        self.inflight_ids.remove(&p.id.0);
        emit!(
            self.rec,
            self.now,
            self.track,
            EventKind::IoComplete {
                id: p.id.0,
                dir: p.kind.obs_dir(),
                len: p.len,
                latency: self.now.duration_since(p.submitted),
            }
        );
        self.done.push(IoCompletion {
            id: p.id,
            kind: p.kind,
            len: p.len,
            submitted: p.submitted,
            completed: self.now,
        });
    }

    fn pump(&mut self) {
        match self.phase {
            StandbyPhase::Active => {}
            StandbyPhase::Standby => {
                if !self.cmd_queue.is_empty() {
                    self.begin_wake();
                }
                self.update_power();
                return;
            }
            _ => {
                self.update_power();
                return;
            }
        }

        let mut progress = true;
        while progress {
            progress = false;

            // Enter standby once fully drained, if requested.
            if self.standby_requested && self.is_fully_idle() {
                self.begin_enter_standby();
                self.update_power();
                return;
            }

            // Controller: one command at a time, gated by the cap.
            if !self.ctrl_busy && !self.cmd_queue.is_empty() && self.gov_allows_cmd() {
                if let Some(p) = self.cmd_queue.pop_front() {
                    self.ctrl_busy = true;
                    let dur = match p.kind {
                        IoKind::Read => self.cfg.cmd_read,
                        IoKind::Write => self.cfg.cmd_write,
                    };
                    self.events.schedule(self.now + dur, Ev::CmdDone(p));
                    progress = true;
                }
            }

            // Die reads.
            for die in 0..self.cfg.dies {
                if self.die_busy[die] || self.die_q[die].is_empty() {
                    continue;
                }
                if !self.gov_allows(self.cfg.die_read_w) {
                    break;
                }
                let Some(slot) = self.die_q[die].pop_front() else {
                    continue;
                };
                self.die_busy[die] = true;
                self.busy_read += 1;
                span!(
                    self.rec,
                    self.now,
                    self.track,
                    self.die_labels[die].read,
                    self.cfg.read_op
                );
                self.events.schedule(
                    self.now + self.cfg.read_op,
                    Ev::DieDone {
                        die,
                        work: DieWork::Read(slot),
                    },
                );
                self.update_power();
                progress = true;
            }

            // Flush: drain NAND debt onto free dies.
            if self.flushing {
                for die in 0..self.cfg.dies {
                    if self.nand_debt == 0 {
                        break;
                    }
                    if self.die_busy[die] {
                        continue;
                    }
                    if !self.try_start_program(die) {
                        break;
                    }
                    self.update_power();
                    progress = true;
                }
                if self.nand_debt == 0 {
                    self.flushing = false;
                }
            }

            // Host interface: one transfer at a time, FIFO.
            if !self.iface_busy {
                if let Some(x) = self.iface_queue.pop_front() {
                    self.iface_busy = true;
                    let secs = x.pending.len as f64 / self.cfg.interface_bw;
                    let dur = SimDuration::from_secs_f64(secs).max(SimDuration::from_nanos(1));
                    self.events.schedule(self.now + dur, Ev::IfaceDone(x));
                    progress = true;
                }
            }

            // Admit waiting writes as buffer space frees up.
            while let Some(front) = self.buffer_waiters.front() {
                if !self.buffer_fits(front.len) {
                    break;
                }
                if let Some(p) = self.buffer_waiters.pop_front() {
                    self.admit_write(p);
                    progress = true;
                }
            }
        }

        // Dirty data with an idle host: flush immediately when standby is
        // wanted, otherwise after the idle-flush delay.
        if self.nand_debt > 0 && !self.flushing && self.host_idle() {
            if self.standby_requested {
                self.flushing = true;
                self.pump_flush_only();
            } else if !self.idle_flush_pending {
                self.idle_flush_pending = true;
                self.events
                    .schedule(self.now + self.cfg.idle_flush_after, Ev::IdleFlush);
            }
        }
        self.update_power();
    }

    /// Starts programs for the flush path only (used when flushing begins
    /// outside the main pump loop to avoid recursion).
    fn pump_flush_only(&mut self) {
        for die in 0..self.cfg.dies {
            if self.nand_debt == 0 {
                break;
            }
            if self.die_busy[die] {
                continue;
            }
            if !self.try_start_program(die) {
                break;
            }
        }
        if self.nand_debt == 0 {
            self.flushing = false;
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::CmdDone(p) => {
                self.ctrl_busy = false;
                match p.kind {
                    IoKind::Write => self.execute_write(p),
                    IoKind::Read => self.execute_read(p),
                }
                self.pump();
            }
            Ev::IfaceDone(x) => {
                self.iface_busy = false;
                let p = x.pending;
                let post = match p.kind {
                    IoKind::Read => self.cfg.read_post,
                    IoKind::Write => self.cfg.write_commit,
                };
                if post.is_zero() {
                    self.finish(p);
                } else {
                    self.events.schedule(self.now + post, Ev::Complete(p));
                }
                self.pump();
            }
            Ev::Complete(p) => {
                self.finish(p);
                self.pump();
            }
            Ev::DieDone { die, work } => {
                self.die_busy[die] = false;
                match work {
                    DieWork::Read(slot) => {
                        self.busy_read -= 1;
                        let finished = {
                            let rs = self
                                .reads
                                .get_mut(slot)
                                // powadapt-lint: allow(D5, reason = "every DieDone::Read was scheduled with a ReadState; losing one would silently corrupt completion accounting")
                                .expect("read state exists for in-flight read");
                            rs.remaining -= 1;
                            rs.remaining == 0
                        };
                        if finished {
                            if let Some(rs) = self.reads.remove(slot) {
                                self.iface_queue.push_back(Transfer {
                                    pending: rs.pending,
                                });
                            }
                        }
                    }
                    DieWork::Program => {
                        self.busy_prog -= 1;
                    }
                }
                self.pump();
            }
            Ev::StandbyDone => {
                match self.phase {
                    StandbyPhase::Entering { until } if self.now >= until => {
                        self.phase = StandbyPhase::Standby;
                        // A wake requested mid-transition takes effect now.
                        if !self.standby_requested {
                            self.begin_wake();
                        }
                    }
                    StandbyPhase::Exiting { until } if self.now >= until => {
                        self.phase = StandbyPhase::Active;
                    }
                    _ => {}
                }
                self.pump();
            }
            Ev::NoiseTick => {
                self.noise_scheduled = false;
                if self.any_activity() || !self.cmd_queue.is_empty() {
                    // Background activity (GC bookkeeping, thermal effects)
                    // mostly adds power; clamp the downside tighter.
                    let sd = self.cfg.noise_sd_w;
                    self.noise_w = self.rng.normal(0.0, sd).clamp(-0.5 * sd, 2.0 * sd);
                    self.schedule_noise();
                } else {
                    self.noise_w = 0.0;
                }
                self.update_power();
            }
            Ev::RetryTick => {
                self.retry_pending = false;
                self.pump();
            }
            Ev::IdleFlush => {
                self.idle_flush_pending = false;
                if self.nand_debt > 0 && self.host_idle() {
                    self.flushing = true;
                }
                self.pump();
            }
        }
    }
}

impl StorageDevice for Ssd {
    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn submit(&mut self, req: IoRequest) -> Result<(), DeviceError> {
        if req.len == 0 {
            return Err(DeviceError::ZeroLength);
        }
        if req.end() > self.spec.capacity() {
            return Err(DeviceError::OutOfRange {
                end: req.end(),
                capacity: self.spec.capacity(),
            });
        }
        if !self.inflight_ids.insert(req.id.0) {
            return Err(DeviceError::DuplicateRequest(req.id.0));
        }
        emit!(
            self.rec,
            self.now,
            self.track,
            EventKind::IoSubmit {
                id: req.id.0,
                dir: req.kind.obs_dir(),
                len: req.len,
            }
        );
        self.cmd_queue.push_back(Pending {
            id: req.id,
            kind: req.kind,
            offset: req.offset,
            len: req.len,
            submitted: self.now,
            waf: 1.0,
        });
        self.schedule_noise();
        self.pump();
        Ok(())
    }

    fn next_event(&mut self) -> Option<SimTime> {
        self.events.next_time()
    }

    fn advance_to(&mut self, t: SimTime) -> Vec<IoCompletion> {
        let mut out = Vec::new();
        self.advance_to_into(t, &mut out);
        out
    }

    // powadapt-lint: hot
    fn advance_to_into(&mut self, t: SimTime, out: &mut Vec<IoCompletion>) {
        assert!(
            t >= self.now,
            "advance_to {t} before device time {}",
            self.now
        );
        while let Some((te, ev)) = self.events.pop_at_or_before(t) {
            self.now = te;
            // powadapt-lint: allow(d9, reason = "event handlers append to recycled per-device queues; growth amortized")
            self.handle(ev);
        }
        self.now = t;
        // `append` drains `done` but keeps its allocation for reuse.
        out.append(&mut self.done);
    }

    fn power_w(&self) -> f64 {
        self.power_now
    }

    fn set_power_state(&mut self, ps: PowerStateId) -> Result<(), DeviceError> {
        match self.cfg.power_states.iter().position(|d| d.id == ps) {
            Some(i) => {
                if i != self.ps_index {
                    emit!(
                        self.rec,
                        self.now,
                        self.track,
                        EventKind::PowerStateTransition {
                            from: self.ps_index as u8,
                            to: i as u8,
                        }
                    );
                }
                self.ps_index = i;
                Ok(())
            }
            None => Err(DeviceError::UnknownPowerState(ps)),
        }
    }

    fn power_state(&self) -> PowerStateId {
        self.cfg.power_states[self.ps_index].id
    }

    fn power_states(&self) -> &[PowerStateDesc] {
        &self.cfg.power_states
    }

    fn request_standby(&mut self) -> Result<(), DeviceError> {
        self.request_standby_depth(StandbyDepth::Slumber)
    }

    fn request_standby_depth(&mut self, depth: StandbyDepth) -> Result<(), DeviceError> {
        let supported = match depth {
            StandbyDepth::Partial => self.cfg.partial.is_some(),
            StandbyDepth::Slumber => self.cfg.standby.is_some(),
        };
        if !supported {
            return Err(DeviceError::StandbyUnsupported);
        }
        match self.phase {
            StandbyPhase::Entering { .. } | StandbyPhase::Exiting { .. } => {
                Err(DeviceError::StandbyTransitionInProgress)
            }
            // Changing depth while asleep would need a wake + re-enter
            // cycle; callers do that explicitly via request_wake.
            StandbyPhase::Standby if self.depth != depth => {
                Err(DeviceError::StandbyTransitionInProgress)
            }
            StandbyPhase::Standby => Ok(()),
            StandbyPhase::Active => {
                self.depth = depth;
                self.standby_requested = true;
                self.pump();
                Ok(())
            }
        }
    }

    fn standby_depth(&self) -> StandbyDepth {
        self.depth
    }

    fn request_wake(&mut self) -> Result<(), DeviceError> {
        if self.cfg.standby.is_none() {
            return Err(DeviceError::StandbyUnsupported);
        }
        self.standby_requested = false;
        if self.phase == StandbyPhase::Standby {
            self.begin_wake();
            self.update_power();
        }
        Ok(())
    }

    fn standby_state(&self) -> StandbyState {
        self.phase.state()
    }

    fn standby_power_w(&self) -> Option<f64> {
        self.cfg.standby.as_ref().map(|s| s.standby_w)
    }

    fn inflight(&self) -> usize {
        self.inflight_ids.len()
    }

    fn set_recorder(&mut self, rec: RecorderHandle, track: &'static str) {
        self.rec = rec;
        self.track = track;
    }

    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        write_time(w, self.now);
        // The in-flight read table precedes the event and die queues:
        // those queues reference reads by arena slot, and a restore can
        // only translate the stable ids written here back into slots once
        // the table exists. Entries are ordered by id, not slot, so the
        // byte stream is independent of freelist history.
        let mut reads: Vec<(u64, &ReadState)> = self
            .reads
            .iter()
            .map(|(_, rs)| (rs.pending.id.0, rs))
            .collect();
        reads.sort_unstable_by_key(|&(id, _)| id);
        w.seq_len(reads.len());
        for (id, rs) in reads {
            w.u64(id);
            write_pending(w, &rs.pending);
            w.usize(rs.remaining);
        }
        self.events
            .write_state(w, |w, ev| write_ev(w, ev, &self.reads))?;
        Snapshot::write_state(&self.rng, w)?;
        w.f64(self.power_now);
        Snapshot::write_state(&self.rolling, w)?;
        w.usize(self.ps_index);
        snapcodec::write_standby_phase(w, self.phase);
        snapcodec::write_standby_depth(w, self.depth);
        w.bool(self.standby_requested);
        w.f64(self.noise_w);
        w.bool(self.noise_scheduled);
        w.bool(self.ctrl_busy);
        write_pendings(w, self.cmd_queue.iter());
        w.bool(self.iface_busy);
        w.seq_len(self.iface_queue.len());
        for t in &self.iface_queue {
            write_pending(w, &t.pending);
        }
        w.seq_len(self.die_busy.len());
        for &b in &self.die_busy {
            w.bool(b);
        }
        w.seq_len(self.die_q.len());
        for q in &self.die_q {
            w.seq_len(q.len());
            for &slot in q {
                w.u64(slot_id(&self.reads, slot)?);
            }
        }
        w.usize(self.busy_read);
        w.usize(self.busy_prog);
        w.u64(self.buffer_used);
        w.u64(self.nand_debt);
        w.bool(self.flushing);
        write_pendings(w, self.buffer_waiters.iter());
        w.u64(self.last_write_end);
        w.seq_len(self.cache.order.len());
        for &page in &self.cache.order {
            w.u64(page);
        }
        w.seq_len(self.inflight_ids.len());
        for &id in &self.inflight_ids {
            w.u64(id);
        }
        snapcodec::write_completions(w, &self.done);
        w.bool(self.retry_pending);
        w.bool(self.idle_flush_pending);
        Ok(())
    }

    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.now = read_time(r)?;
        let n = r.seq_len()?;
        self.reads.clear();
        let mut slot_of: BTreeMap<u64, usize> = BTreeMap::new();
        for _ in 0..n {
            let id = r.u64()?;
            let pending = read_pending(r)?;
            let remaining = r.usize()?;
            let slot = self.reads.insert(ReadState { pending, remaining });
            if slot_of.insert(id, slot).is_some() {
                return Err(SnapError::InvalidValue(format!("duplicate read id {id}")));
            }
        }
        self.events.read_state(r, |r| read_ev(r, &slot_of))?;
        Restore::read_state(&mut self.rng, r)?;
        self.power_now = r.f64()?;
        Restore::read_state(&mut self.rolling, r)?;
        let ps_index = r.usize()?;
        if ps_index >= self.cfg.power_states.len() {
            return Err(SnapError::InvalidValue(format!(
                "power state index {ps_index} out of range"
            )));
        }
        self.ps_index = ps_index;
        self.phase = snapcodec::read_standby_phase(r)?;
        self.depth = snapcodec::read_standby_depth(r)?;
        self.standby_requested = r.bool()?;
        self.noise_w = r.f64()?;
        self.noise_scheduled = r.bool()?;
        self.ctrl_busy = r.bool()?;
        self.cmd_queue = read_pendings(r)?;
        self.iface_busy = r.bool()?;
        let n = r.seq_len()?;
        self.iface_queue.clear();
        for _ in 0..n {
            self.iface_queue.push_back(Transfer {
                pending: read_pending(r)?,
            });
        }
        let n = r.seq_len()?;
        if n != self.die_busy.len() {
            return Err(SnapError::InvalidValue(format!(
                "die count {n} does not match configured {}",
                self.die_busy.len()
            )));
        }
        for b in &mut self.die_busy {
            *b = r.bool()?;
        }
        let n = r.seq_len()?;
        if n != self.die_q.len() {
            return Err(SnapError::InvalidValue(format!(
                "die queue count {n} does not match configured {}",
                self.die_q.len()
            )));
        }
        for q in &mut self.die_q {
            let m = r.seq_len()?;
            q.clear();
            for _ in 0..m {
                let id = r.u64()?;
                q.push_back(resolve_slot(&slot_of, id)?);
            }
        }
        self.busy_read = r.usize()?;
        self.busy_prog = r.usize()?;
        self.buffer_used = r.u64()?;
        self.nand_debt = r.u64()?;
        self.flushing = r.bool()?;
        self.buffer_waiters = read_pendings(r)?;
        self.last_write_end = r.u64()?;
        let n = r.seq_len()?;
        if n > self.cache.capacity {
            return Err(SnapError::InvalidValue(format!(
                "cache holds {n} pages, capacity {}",
                self.cache.capacity
            )));
        }
        let mut order = VecDeque::with_capacity(n);
        let mut set = BTreeSet::new();
        for _ in 0..n {
            let page = r.u64()?;
            if !set.insert(page) {
                return Err(SnapError::InvalidValue(format!(
                    "duplicate cached page {page}"
                )));
            }
            order.push_back(page);
        }
        self.cache.order = order;
        self.cache.set = set;
        let n = r.seq_len()?;
        self.inflight_ids.clear();
        for _ in 0..n {
            let id = r.u64()?;
            if !self.inflight_ids.insert(id) {
                return Err(SnapError::InvalidValue(format!(
                    "duplicate inflight id {id}"
                )));
            }
        }
        self.done = snapcodec::read_completions(r)?;
        self.retry_pending = r.bool()?;
        self.idle_flush_pending = r.bool()?;
        Ok(())
    }
}

fn write_pending(w: &mut SnapWriter, p: &Pending) {
    w.u64(p.id.0);
    snapcodec::write_io_kind(w, p.kind);
    w.u64(p.offset);
    w.u64(p.len);
    write_time(w, p.submitted);
    w.f64(p.waf);
}

fn read_pending(r: &mut SnapReader<'_>) -> Result<Pending, SnapError> {
    Ok(Pending {
        id: IoId(r.u64()?),
        kind: snapcodec::read_io_kind(r)?,
        offset: r.u64()?,
        len: r.u64()?,
        submitted: read_time(r)?,
        waf: r.f64()?,
    })
}

fn write_pendings<'a, I>(w: &mut SnapWriter, it: I)
where
    I: ExactSizeIterator<Item = &'a Pending>,
{
    w.seq_len(it.len());
    for p in it {
        write_pending(w, p);
    }
}

fn read_pendings(r: &mut SnapReader<'_>) -> Result<VecDeque<Pending>, SnapError> {
    let n = r.seq_len()?;
    let mut out = VecDeque::with_capacity(n);
    for _ in 0..n {
        out.push_back(read_pending(r)?);
    }
    Ok(out)
}

/// Translates an in-flight read's arena slot back to its stable id for
/// serialization.
fn slot_id(reads: &Slab<ReadState>, slot: usize) -> Result<u64, SnapError> {
    reads
        .get(slot)
        .map(|rs| rs.pending.id.0)
        .ok_or_else(|| SnapError::InvalidValue(format!("vacant read slot {slot} referenced")))
}

/// Translates a serialized read id back to the arena slot it occupies in
/// the restored `reads` table.
fn resolve_slot(slot_of: &BTreeMap<u64, usize>, id: u64) -> Result<usize, SnapError> {
    slot_of
        .get(&id)
        .copied()
        .ok_or_else(|| SnapError::InvalidValue(format!("unknown in-flight read id {id}")))
}

fn write_ev(w: &mut SnapWriter, ev: &Ev, reads: &Slab<ReadState>) -> Result<(), SnapError> {
    match ev {
        Ev::CmdDone(p) => {
            w.u8(0);
            write_pending(w, p);
        }
        Ev::IfaceDone(t) => {
            w.u8(1);
            write_pending(w, &t.pending);
        }
        Ev::Complete(p) => {
            w.u8(2);
            write_pending(w, p);
        }
        Ev::DieDone { die, work } => {
            w.u8(3);
            w.usize(*die);
            match work {
                DieWork::Read(slot) => {
                    w.u8(0);
                    w.u64(slot_id(reads, *slot)?);
                }
                DieWork::Program => w.u8(1),
            }
        }
        Ev::StandbyDone => w.u8(4),
        Ev::NoiseTick => w.u8(5),
        Ev::RetryTick => w.u8(6),
        Ev::IdleFlush => w.u8(7),
    }
    Ok(())
}

fn read_ev(r: &mut SnapReader<'_>, slot_of: &BTreeMap<u64, usize>) -> Result<Ev, SnapError> {
    Ok(match r.u8()? {
        0 => Ev::CmdDone(read_pending(r)?),
        1 => Ev::IfaceDone(Transfer {
            pending: read_pending(r)?,
        }),
        2 => Ev::Complete(read_pending(r)?),
        3 => {
            let die = r.usize()?;
            let work = match r.u8()? {
                0 => DieWork::Read(resolve_slot(slot_of, r.u64()?)?),
                1 => DieWork::Program,
                b => {
                    return Err(SnapError::InvalidValue(format!("die work byte {b}")));
                }
            };
            Ev::DieDone { die, work }
        }
        4 => Ev::StandbyDone,
        5 => Ev::NoiseTick,
        6 => Ev::RetryTick,
        7 => Ev::IdleFlush,
        b => return Err(SnapError::InvalidValue(format!("ssd event byte {b}"))),
    })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::device::drain;
    use crate::io::{GIB, KIB};
    use crate::spec::{DeviceClass, Protocol};
    use powadapt_sim::SimTime;

    fn test_ssd() -> Ssd {
        let spec = DeviceSpec::new("T", "Test SSD", Protocol::Nvme, DeviceClass::Ssd, GIB);
        Ssd::new(spec, SsdConfig::default(), 42)
    }

    fn submit(dev: &mut Ssd, id: u64, kind: IoKind, offset: u64, len: u64) {
        dev.submit(IoRequest::new(IoId(id), kind, offset, len))
            .expect("valid request");
    }

    #[test]
    fn idle_power_is_floor() {
        let dev = test_ssd();
        assert_eq!(dev.power_w(), dev.config().idle_w);
    }

    #[test]
    fn single_read_completes_with_plausible_latency() {
        let mut dev = test_ssd();
        submit(&mut dev, 0, IoKind::Read, 0, 4 * KIB);
        let done = drain(&mut dev);
        assert_eq!(done.len(), 1);
        let lat = done[0].latency();
        // cmd (2 us) + page read (70 us) + transfer (~1 us) + post (8 us).
        assert!(lat.as_micros() >= 70 && lat.as_micros() < 200, "{lat}");
        assert_eq!(dev.inflight(), 0);
    }

    #[test]
    fn single_write_acks_after_transfer_without_waiting_for_nand() {
        let mut dev = test_ssd();
        submit(&mut dev, 0, IoKind::Write, 0, 4 * KIB);
        // Run only until the completion is observed.
        let mut completed_at = None;
        while completed_at.is_none() {
            let t = dev.next_event().expect("events pending");
            for c in dev.advance_to(t) {
                completed_at = Some(c.completed);
            }
        }
        let lat = completed_at.unwrap().duration_since(SimTime::ZERO);
        // cmd (3 us) + transfer (~1.2 us) + commit (40 us) — less than a
        // program op (560 us).
        assert!(lat.as_micros() < 100, "{lat}");
    }

    #[test]
    fn write_leaves_nand_debt_then_drains() {
        let mut dev = test_ssd();
        submit(&mut dev, 0, IoKind::Write, 0, 8 * MIB);
        let done = drain(&mut dev);
        assert_eq!(done.len(), 1);
        assert_eq!(dev.nand_debt(), 0, "flush fully drains");
        assert_eq!(dev.buffer_used(), 0);
        assert_eq!(dev.power_w(), dev.config().idle_w, "returns to idle");
    }

    #[test]
    fn reads_and_writes_report_correct_ids_and_kinds() {
        let mut dev = test_ssd();
        submit(&mut dev, 10, IoKind::Write, 0, 64 * KIB);
        submit(&mut dev, 11, IoKind::Read, 128 * MIB, 64 * KIB);
        let done = drain(&mut dev);
        assert_eq!(done.len(), 2);
        let w = done.iter().find(|c| c.id == IoId(10)).unwrap();
        let r = done.iter().find(|c| c.id == IoId(11)).unwrap();
        assert_eq!(w.kind, IoKind::Write);
        assert_eq!(r.kind, IoKind::Read);
    }

    #[test]
    fn rejects_invalid_requests() {
        let mut dev = test_ssd();
        assert_eq!(
            dev.submit(IoRequest::new(IoId(0), IoKind::Read, 0, 0)),
            Err(DeviceError::ZeroLength)
        );
        assert!(matches!(
            dev.submit(IoRequest::new(IoId(0), IoKind::Read, GIB, 4 * KIB)),
            Err(DeviceError::OutOfRange { .. })
        ));
        submit(&mut dev, 1, IoKind::Read, 0, 4 * KIB);
        assert_eq!(
            dev.submit(IoRequest::new(IoId(1), IoKind::Read, 0, 4 * KIB)),
            Err(DeviceError::DuplicateRequest(1))
        );
    }

    #[test]
    fn power_rises_while_programming() {
        let mut dev = test_ssd();
        submit(&mut dev, 0, IoKind::Write, 0, 16 * MIB);
        let mut peak: f64 = 0.0;
        while let Some(t) = dev.next_event() {
            dev.advance_to(t);
            peak = peak.max(dev.power_w());
        }
        assert!(
            peak > dev.config().idle_w + 2.0,
            "peak {peak} should clearly exceed idle"
        );
    }

    #[test]
    fn sequential_writes_have_lower_waf_than_random_small() {
        let dev = test_ssd();
        // First write never counts as sequential.
        let w_small = dev.waf_for(12345 * 4096, 4 * KIB);
        let w_large = dev.waf_for(999 * MIB, 2 * MIB);
        assert!(w_small > w_large);
        assert!((w_large - dev.config().waf_min).abs() < 1e-9);
        assert!((w_small - dev.config().waf_max).abs() < 1e-9);
    }

    #[test]
    fn power_state_switching() {
        let mut dev = test_ssd();
        assert_eq!(dev.power_state(), PowerStateId(0));
        assert_eq!(
            dev.set_power_state(PowerStateId(9)),
            Err(DeviceError::UnknownPowerState(PowerStateId(9)))
        );
        assert_eq!(dev.power_states().len(), 1);
    }

    #[test]
    fn capped_device_limits_average_power() {
        let spec = DeviceSpec::new("T", "Test SSD", Protocol::Nvme, DeviceClass::Ssd, GIB);
        let mut cfg = SsdConfig::default();
        cfg.power_states = vec![
            PowerStateDesc::new(PowerStateId(0), 25.0),
            PowerStateDesc::new(PowerStateId(1), 8.0),
        ];
        cfg.noise_sd_w = 0.0;
        let mut dev = Ssd::new(spec, cfg, 7);
        dev.set_power_state(PowerStateId(1)).unwrap();
        // Saturate with writes.
        for i in 0..64 {
            submit(&mut dev, i, IoKind::Write, i * 4 * MIB, 4 * MIB);
        }
        // Measure average power over the busy period by sampling.
        let mut samples = Vec::new();
        let mut t = SimTime::ZERO;
        let step = SimDuration::from_micros(100);
        while dev.next_event().is_some() {
            t += step;
            dev.advance_to(t);
            samples.push(dev.power_w());
        }
        let busy: Vec<f64> = samples
            .iter()
            .copied()
            .filter(|&p| p > dev.config().idle_w + 0.01)
            .collect();
        assert!(!busy.is_empty());
        let avg = busy.iter().sum::<f64>() / busy.len() as f64;
        assert!(
            avg <= 8.0 * 1.15,
            "average busy power {avg} should respect the 8 W cap"
        );
    }

    #[test]
    fn uncapped_writes_finish_faster_than_capped() {
        let run = |cap: f64| -> SimTime {
            let spec = DeviceSpec::new("T", "Test SSD", Protocol::Nvme, DeviceClass::Ssd, GIB);
            let mut cfg = SsdConfig::default();
            cfg.power_states = vec![PowerStateDesc::new(PowerStateId(0), cap)];
            cfg.noise_sd_w = 0.0;
            let mut dev = Ssd::new(spec, cfg, 7);
            for i in 0..32 {
                submit(&mut dev, i, IoKind::Write, i * 8 * MIB, 8 * MIB);
            }
            drain(&mut dev);
            dev.now()
        };
        let fast = run(25.0);
        let slow = run(8.0);
        assert!(
            slow > fast,
            "capped run ({slow}) should take longer than uncapped ({fast})"
        );
    }

    #[test]
    fn reads_unaffected_by_cap_that_binds_writes() {
        let run_reads = |cap: f64| -> SimTime {
            let spec = DeviceSpec::new("T", "Test SSD", Protocol::Nvme, DeviceClass::Ssd, GIB);
            let mut cfg = SsdConfig::default();
            cfg.power_states = vec![PowerStateDesc::new(PowerStateId(0), cap)];
            cfg.noise_sd_w = 0.0;
            cfg.read_cache_pages = 0;
            let mut dev = Ssd::new(spec, cfg, 7);
            for i in 0..256 {
                submit(&mut dev, i, IoKind::Read, i * 2 * MIB, 256 * KIB);
            }
            drain(&mut dev);
            dev.now()
        };
        let uncapped = run_reads(25.0);
        let capped = run_reads(10.0);
        let ratio = capped.as_secs_f64() / uncapped.as_secs_f64();
        assert!(
            ratio < 1.1,
            "a 10 W cap should barely affect reads (ratio {ratio})"
        );
    }

    #[test]
    fn standby_unsupported_without_config() {
        let mut dev = test_ssd();
        assert_eq!(dev.request_standby(), Err(DeviceError::StandbyUnsupported));
        assert_eq!(dev.request_wake(), Err(DeviceError::StandbyUnsupported));
        assert_eq!(dev.standby_state(), StandbyState::Active);
    }

    #[test]
    fn standby_cycle_and_auto_wake() {
        use crate::power::StandbyConfig;
        let spec = DeviceSpec::new("E", "EVO", Protocol::Sata, DeviceClass::Ssd, GIB);
        let mut cfg = SsdConfig::default();
        cfg.idle_w = 0.35;
        cfg.noise_sd_w = 0.0;
        cfg.standby = Some(StandbyConfig {
            standby_w: 0.17,
            enter: SimDuration::from_millis(300),
            exit: SimDuration::from_millis(400),
            transition_w: 0.6,
            wake_spike_w: 1.2,
        });
        let mut dev = Ssd::new(spec, cfg, 3);

        dev.request_standby().unwrap();
        // Transition consumes transition power.
        assert_eq!(dev.standby_state(), StandbyState::EnteringStandby);
        assert_eq!(dev.power_w(), 0.6);
        let t = dev.next_event().unwrap();
        dev.advance_to(t);
        assert_eq!(dev.standby_state(), StandbyState::Standby);
        assert_eq!(dev.power_w(), 0.17);

        // Submitting while in standby wakes the device automatically.
        submit(&mut dev, 0, IoKind::Read, 0, 4 * KIB);
        assert_eq!(dev.standby_state(), StandbyState::ExitingStandby);
        assert_eq!(dev.power_w(), 1.2);
        let done = drain(&mut dev);
        assert_eq!(done.len(), 1);
        assert_eq!(dev.standby_state(), StandbyState::Active);
        // Wake latency dominates the request latency.
        assert!(done[0].latency().as_millis() >= 400);
    }

    #[test]
    fn explicit_wake_from_standby() {
        use crate::power::StandbyConfig;
        let spec = DeviceSpec::new("E", "EVO", Protocol::Sata, DeviceClass::Ssd, GIB);
        let mut cfg = SsdConfig::default();
        cfg.standby = Some(StandbyConfig {
            standby_w: 0.17,
            enter: SimDuration::from_millis(100),
            exit: SimDuration::from_millis(100),
            transition_w: 0.6,
            wake_spike_w: 1.2,
        });
        cfg.noise_sd_w = 0.0;
        let mut dev = Ssd::new(spec, cfg, 3);
        dev.request_standby().unwrap();
        while let Some(t) = dev.next_event() {
            dev.advance_to(t);
        }
        assert_eq!(dev.standby_state(), StandbyState::Standby);
        dev.request_wake().unwrap();
        while let Some(t) = dev.next_event() {
            dev.advance_to(t);
        }
        assert_eq!(dev.standby_state(), StandbyState::Active);
    }

    #[test]
    fn standby_waits_for_outstanding_io() {
        use crate::power::StandbyConfig;
        let spec = DeviceSpec::new("E", "EVO", Protocol::Sata, DeviceClass::Ssd, GIB);
        let mut cfg = SsdConfig::default();
        cfg.standby = Some(StandbyConfig {
            standby_w: 0.17,
            enter: SimDuration::from_millis(100),
            exit: SimDuration::from_millis(100),
            transition_w: 0.6,
            wake_spike_w: 1.2,
        });
        cfg.noise_sd_w = 0.0;
        let mut dev = Ssd::new(spec, cfg, 3);
        submit(&mut dev, 0, IoKind::Write, 0, 32 * MIB);
        dev.request_standby().unwrap();
        // Still active: the write (and its flush) must drain first.
        assert_eq!(dev.standby_state(), StandbyState::Active);
        let done = drain(&mut dev);
        assert_eq!(done.len(), 1);
        assert_eq!(dev.standby_state(), StandbyState::Standby);
    }

    #[test]
    fn partial_depth_uses_its_own_parameters() {
        use crate::power::StandbyConfig;
        let spec = DeviceSpec::new("E", "EVO", Protocol::Sata, DeviceClass::Ssd, GIB);
        let mut cfg = SsdConfig::default();
        cfg.idle_w = 0.35;
        cfg.noise_sd_w = 0.0;
        cfg.standby = Some(StandbyConfig {
            standby_w: 0.17,
            enter: SimDuration::from_millis(300),
            exit: SimDuration::from_millis(400),
            transition_w: 0.6,
            wake_spike_w: 1.2,
        });
        cfg.partial = Some(StandbyConfig {
            standby_w: 0.25,
            enter: SimDuration::from_micros(100),
            exit: SimDuration::from_micros(200),
            transition_w: 0.3,
            wake_spike_w: 0.5,
        });
        let mut dev = Ssd::new(spec, cfg, 3);

        dev.request_standby_depth(StandbyDepth::Partial).unwrap();
        assert_eq!(dev.standby_state(), StandbyState::EnteringStandby);
        assert_eq!(dev.standby_depth(), StandbyDepth::Partial);
        assert_eq!(dev.power_w(), 0.3);
        let t = dev.next_event().unwrap();
        dev.advance_to(t);
        assert_eq!(dev.standby_state(), StandbyState::Standby);
        assert_eq!(dev.power_w(), 0.25);

        // A deeper request while parked at PARTIAL needs an explicit wake.
        assert_eq!(
            dev.request_standby_depth(StandbyDepth::Slumber),
            Err(DeviceError::StandbyTransitionInProgress)
        );

        // Auto-wake on submit pays the (short) PARTIAL exit latency.
        submit(&mut dev, 0, IoKind::Read, 0, 4 * KIB);
        assert_eq!(dev.power_w(), 0.5);
        let done = drain(&mut dev);
        assert_eq!(done.len(), 1);
        let lat = done[0].latency();
        assert!(lat.as_micros() >= 200 && lat.as_millis() < 5, "{lat}");
    }

    #[test]
    fn partial_unsupported_without_partial_config() {
        use crate::power::StandbyConfig;
        let spec = DeviceSpec::new("E", "EVO", Protocol::Sata, DeviceClass::Ssd, GIB);
        let mut cfg = SsdConfig::default();
        cfg.standby = Some(StandbyConfig {
            standby_w: 0.17,
            enter: SimDuration::from_millis(100),
            exit: SimDuration::from_millis(100),
            transition_w: 0.6,
            wake_spike_w: 1.2,
        });
        cfg.noise_sd_w = 0.0;
        let mut dev = Ssd::new(spec, cfg, 3);
        assert_eq!(
            dev.request_standby_depth(StandbyDepth::Partial),
            Err(DeviceError::StandbyUnsupported)
        );
        dev.request_standby_depth(StandbyDepth::Slumber).unwrap();
    }

    #[test]
    fn sequential_small_reads_hit_the_page_cache() {
        let mut dev = test_ssd();
        // 16 sequential 4 KiB reads cover 4 pages; 12 of 16 should be hits.
        for i in 0..16u64 {
            submit(&mut dev, i, IoKind::Read, i * 4 * KIB, 4 * KIB);
        }
        let done = drain(&mut dev);
        assert_eq!(done.len(), 16);
        let hits = done.iter().filter(|c| c.latency().as_micros() < 65).count();
        assert!(hits >= 8, "expected most cache hits, got {hits}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut dev = test_ssd();
            for i in 0..64u64 {
                submit(
                    &mut dev,
                    i,
                    IoKind::Write,
                    (i * 977_777) % (GIB / 2),
                    64 * KIB,
                );
            }
            let done = drain(&mut dev);
            (
                dev.now(),
                done.iter().map(|c| c.completed.as_nanos()).sum::<u64>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut dev = test_ssd();
        dev.advance_to(SimTime::from_millis(5));
        assert_eq!(dev.now(), SimTime::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "advance_to")]
    fn advance_backwards_panics() {
        let mut dev = test_ssd();
        dev.advance_to(SimTime::from_millis(5));
        dev.advance_to(SimTime::from_millis(4));
    }
}
