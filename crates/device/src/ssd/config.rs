//! SSD simulator configuration.

use powadapt_sim::SimDuration;

use crate::io::{KIB, MIB};
use crate::power::{PowerStateDesc, PowerStateId, StandbyConfig};

/// Parameters of the simulated SSD.
///
/// The defaults describe a generic enterprise NVMe SSD; the
/// [`catalog`](crate::catalog) module builds configurations calibrated to
/// the paper's devices.
///
/// Power is modeled as a sum of components: an idle floor, a controller
/// activity adder, per-busy-die read/program power, and interface transfer
/// power. Power caps (NVMe power states) gate the start of new work so that
/// the trailing [`cap_window`](SsdConfig::cap_window) average stays at or
/// below the selected state's cap.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// Number of independent NAND dies.
    pub dies: usize,
    /// NAND page size — the unit of a read operation, in bytes.
    pub page_bytes: u64,
    /// Multi-plane program unit — the unit of a program operation, in bytes.
    pub program_unit_bytes: u64,
    /// Latency of one page read on a die.
    pub read_op: SimDuration,
    /// Latency of one program-unit write on a die.
    pub program_op: SimDuration,
    /// Controller occupancy per read command.
    pub cmd_read: SimDuration,
    /// Controller occupancy per write command.
    pub cmd_write: SimDuration,
    /// Non-overlapped completion-posting overhead after a read transfer.
    pub read_post: SimDuration,
    /// Non-overlapped commit overhead after a write transfer (FTL commit,
    /// CRC, completion posting). Dominates queue-depth-1 write latency.
    pub write_commit: SimDuration,
    /// Effective host-interface bandwidth in bytes/second (already the
    /// minimum of the device link and the host's PCIe generation).
    pub interface_bw: f64,
    /// DRAM write-buffer capacity in bytes.
    pub write_buffer_bytes: u64,
    /// Buffer fill level that triggers a flush burst, in bytes.
    pub flush_watermark_bytes: u64,
    /// Host-idle time after which buffered writes are flushed even below
    /// the watermark (drives flush on idle; also what lets a device drain
    /// and honor a standby request under light load).
    pub idle_flush_after: SimDuration,
    /// Write amplification for sequential or large (≥ 1 MiB) writes.
    pub waf_min: f64,
    /// Write amplification for 4 KiB random writes.
    pub waf_max: f64,
    /// Number of recently read pages kept in the controller read cache.
    pub read_cache_pages: usize,
    /// Idle power floor in watts (controller + DRAM, link active).
    pub idle_w: f64,
    /// Additional controller power while any work is in progress.
    pub ctrl_active_w: f64,
    /// Power per die busy with a read, in watts.
    pub die_read_w: f64,
    /// Power per die busy with a program, in watts.
    pub die_prog_w: f64,
    /// Interface power while a transfer is in progress, in watts.
    pub iface_active_w: f64,
    /// Standard deviation of slow controller power noise, in watts.
    pub noise_sd_w: f64,
    /// Implemented power states, `ps0` first.
    pub power_states: Vec<PowerStateDesc>,
    /// Control window for cap enforcement. The NVMe spec bounds average
    /// power over any 10 s window; real firmware enforces much faster, which
    /// is what keeps the 10 s envelope honest. 50 ms by default.
    pub cap_window: SimDuration,
    /// Instantaneous power may exceed the cap by this factor between
    /// control actions (Figure 2: instantaneous differs from average).
    pub burst_factor: f64,
    /// Low-power standby (SATA ALPM SLUMBER style), if supported.
    pub standby: Option<StandbyConfig>,
    /// Shallow low-power state (SATA ALPM PARTIAL style), if supported:
    /// smaller savings than [`SsdConfig::standby`] but a much faster exit.
    pub partial: Option<StandbyConfig>,
}

impl SsdConfig {
    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.dies == 0 {
            return Err("dies must be non-zero".into());
        }
        if self.page_bytes == 0 || self.program_unit_bytes == 0 {
            return Err("page and program unit must be non-zero".into());
        }
        if !self.program_unit_bytes.is_multiple_of(self.page_bytes) {
            return Err("program unit must be a multiple of the page size".into());
        }
        if self.read_op.is_zero() || self.program_op.is_zero() {
            return Err("die op latencies must be non-zero".into());
        }
        if !(self.interface_bw.is_finite() && self.interface_bw > 0.0) {
            return Err("interface bandwidth must be positive".into());
        }
        if self.write_buffer_bytes == 0 {
            return Err("write buffer must be non-zero".into());
        }
        if self.flush_watermark_bytes > self.write_buffer_bytes {
            return Err("flush watermark cannot exceed the buffer size".into());
        }
        if self.waf_min < 1.0 || self.waf_max < self.waf_min {
            return Err("write amplification must satisfy 1 <= waf_min <= waf_max".into());
        }
        if self.idle_w < 0.0
            || self.ctrl_active_w < 0.0
            || self.die_read_w < 0.0
            || self.die_prog_w < 0.0
            || self.iface_active_w < 0.0
            || self.noise_sd_w < 0.0
        {
            return Err("power components must be non-negative".into());
        }
        if self.power_states.is_empty() {
            return Err("at least one power state (ps0) is required".into());
        }
        if self.power_states[0].id != PowerStateId(0) {
            return Err("the first power state must be ps0".into());
        }
        if self.cap_window.is_zero() {
            return Err("cap window must be non-zero".into());
        }
        if self.burst_factor < 1.0 {
            return Err("burst factor must be at least 1".into());
        }
        for sb in self.standby.iter().chain(self.partial.iter()) {
            if sb.standby_w < 0.0 || sb.transition_w < 0.0 || sb.wake_spike_w < 0.0 {
                return Err("standby power levels must be non-negative".into());
            }
        }
        if self.partial.is_some() && self.standby.is_none() {
            return Err("partial (shallow) requires a standby (deep) mode".into());
        }
        Ok(())
    }

    /// Peak NAND program bandwidth in bytes/second (all dies programming).
    pub fn nand_program_bw(&self) -> f64 {
        self.dies as f64 * self.program_unit_bytes as f64 / self.program_op.as_secs_f64()
    }

    /// Peak NAND read bandwidth in bytes/second (all dies reading).
    pub fn nand_read_bw(&self) -> f64 {
        self.dies as f64 * self.page_bytes as f64 / self.read_op.as_secs_f64()
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            dies: 32,
            page_bytes: 16 * KIB,
            program_unit_bytes: 64 * KIB,
            read_op: SimDuration::from_micros(70),
            program_op: SimDuration::from_micros(560),
            cmd_read: SimDuration::from_micros(2),
            cmd_write: SimDuration::from_micros(3),
            read_post: SimDuration::from_micros(8),
            write_commit: SimDuration::from_micros(40),
            interface_bw: 3.5e9,
            write_buffer_bytes: 64 * MIB,
            flush_watermark_bytes: 4 * MIB,
            idle_flush_after: SimDuration::from_millis(5),
            waf_min: 1.05,
            waf_max: 1.8,
            read_cache_pages: 64,
            idle_w: 5.0,
            ctrl_active_w: 0.2,
            die_read_w: 0.2,
            die_prog_w: 0.29,
            iface_active_w: 0.85,
            noise_sd_w: 0.25,
            power_states: vec![PowerStateDesc::new(PowerStateId(0), 25.0)],
            cap_window: SimDuration::from_millis(50),
            burst_factor: 1.1,
            standby: None,
            partial: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SsdConfig::default().validate().expect("default valid");
    }

    #[test]
    fn nand_bandwidths() {
        let cfg = SsdConfig::default();
        // 32 dies * 64 KiB / 560 us = ~3.74 GB/s.
        let bw = cfg.nand_program_bw();
        assert!((bw - 32.0 * 65536.0 / 560e-6).abs() < 1.0);
        assert!(cfg.nand_read_bw() > bw, "reads are faster than programs");
    }

    #[test]
    fn validation_catches_violations() {
        let base = SsdConfig::default();

        let mut c = base.clone();
        c.dies = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.program_unit_bytes = 48 * KIB + 1;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.flush_watermark_bytes = c.write_buffer_bytes + 1;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.waf_min = 0.5;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.power_states.clear();
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.power_states[0].id = PowerStateId(1);
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.burst_factor = 0.9;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.partial = Some(crate::power::StandbyConfig {
            standby_w: 0.25,
            enter: SimDuration::from_micros(50),
            exit: SimDuration::from_micros(100),
            transition_w: 0.4,
            wake_spike_w: 0.8,
        });
        assert!(
            c.validate().is_err(),
            "partial without standby must be rejected"
        );

        let mut c = base;
        c.die_prog_w = -0.1;
        assert!(c.validate().is_err());
    }
}
