//! HDD simulator configuration.

use powadapt_sim::SimDuration;

use crate::io::MIB;

/// Parameters of the simulated hard disk drive.
///
/// The model is a single actuator over a linearized LBA space: each media
/// operation pays a seek (distance-dependent), a rotational delay, and a
/// transfer at the sustained media rate. A small DRAM write cache
/// acknowledges writes early and is drained with shortest-seek-first
/// scheduling, which is also applied to queued reads (NCQ).
///
/// Power is spindle + electronics while spinning, plus a voice-coil adder
/// while seeking and a transfer adder while the head is reading/writing.
/// Spin-down/up reproduce the multi-second standby transitions of §3.2.2.
#[derive(Debug, Clone, PartialEq)]
pub struct HddConfig {
    /// Sustained media transfer rate at the outer diameter, in
    /// bytes/second.
    pub media_bw: f64,
    /// Media rate at the inner diameter as a fraction of `media_bw`
    /// (zoned recording: inner tracks hold fewer sectors per revolution).
    pub inner_bw_frac: f64,
    /// Track-to-track (minimum) seek time.
    pub min_seek: SimDuration,
    /// Full-stroke (maximum) seek time.
    pub max_seek: SimDuration,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Controller overhead per command.
    pub cmd_overhead: SimDuration,
    /// Write cache capacity in bytes.
    pub write_cache_bytes: u64,
    /// Maximum queued operations considered for seek reordering (NCQ).
    pub ncq_window: usize,
    /// A queued operation older than this is served next regardless of seek
    /// distance (starvation guard).
    pub max_op_age: SimDuration,
    /// Board electronics power in watts (always on while not in standby).
    pub electronics_w: f64,
    /// Spindle motor power in watts while the platters rotate.
    pub spindle_w: f64,
    /// Additional voice-coil power while seeking.
    pub seek_w: f64,
    /// Additional head/channel power while transferring.
    pub xfer_w: f64,
    /// Standard deviation of slow electronics power noise, in watts.
    pub noise_sd_w: f64,
    /// Power in standby (spun down).
    pub standby_w: f64,
    /// Time to flush-and-spin-down.
    pub spin_down: SimDuration,
    /// Power while spinning down.
    pub spin_down_w: f64,
    /// Time to spin back up.
    pub spin_up: SimDuration,
    /// Power while spinning up (spindle acceleration).
    pub spin_up_w: f64,
}

impl HddConfig {
    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.media_bw.is_finite() && self.media_bw > 0.0) {
            return Err("media bandwidth must be positive".into());
        }
        if !(0.0 < self.inner_bw_frac && self.inner_bw_frac <= 1.0) {
            return Err("inner bandwidth fraction must be in (0, 1]".into());
        }
        if self.min_seek > self.max_seek {
            return Err("min seek cannot exceed max seek".into());
        }
        if self.rpm == 0 {
            return Err("rpm must be non-zero".into());
        }
        if self.write_cache_bytes == 0 {
            return Err("write cache must be non-zero".into());
        }
        if self.ncq_window == 0 {
            return Err("NCQ window must be non-zero".into());
        }
        if self.electronics_w < 0.0
            || self.spindle_w < 0.0
            || self.seek_w < 0.0
            || self.xfer_w < 0.0
            || self.noise_sd_w < 0.0
            || self.standby_w < 0.0
            || self.spin_down_w < 0.0
            || self.spin_up_w < 0.0
        {
            return Err("power components must be non-negative".into());
        }
        if self.spin_down.is_zero() || self.spin_up.is_zero() {
            return Err("spin transitions must take time".into());
        }
        Ok(())
    }

    /// Duration of one full platter revolution.
    pub fn revolution(&self) -> SimDuration {
        SimDuration::from_secs_f64(60.0 / self.rpm as f64)
    }

    /// Idle power while spun up.
    pub fn idle_w(&self) -> f64 {
        self.electronics_w + self.spindle_w
    }

    /// Media rate at a byte position, for a linearized LBA space of the
    /// given capacity: outer tracks (low LBAs) are fastest.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn media_bw_at(&self, offset: u64, capacity: u64) -> f64 {
        assert!(capacity > 0, "capacity must be non-zero");
        let frac = (offset as f64 / capacity as f64).clamp(0.0, 1.0);
        self.media_bw * (1.0 - (1.0 - self.inner_bw_frac) * frac)
    }
}

impl Default for HddConfig {
    fn default() -> Self {
        HddConfig {
            media_bw: 180e6,
            inner_bw_frac: 0.55,
            min_seek: SimDuration::from_micros(500),
            max_seek: SimDuration::from_millis(16),
            rpm: 7200,
            cmd_overhead: SimDuration::from_micros(50),
            write_cache_bytes: 4 * MIB,
            ncq_window: 32,
            max_op_age: SimDuration::from_millis(100),
            electronics_w: 0.45,
            spindle_w: 3.3,
            seek_w: 1.3,
            xfer_w: 0.25,
            noise_sd_w: 0.05,
            standby_w: 1.1,
            spin_down: SimDuration::from_millis(1500),
            spin_down_w: 2.5,
            spin_up: SimDuration::from_secs(6),
            spin_up_w: 5.2,
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        HddConfig::default().validate().expect("default valid");
    }

    #[test]
    fn revolution_time() {
        let cfg = HddConfig::default();
        // 7200 rpm -> 8.33 ms.
        assert_eq!(cfg.revolution().as_micros(), 8333);
    }

    #[test]
    fn idle_power_is_component_sum() {
        let cfg = HddConfig::default();
        assert!((cfg.idle_w() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn zoned_media_rate_declines_inward() {
        let cfg = HddConfig::default();
        let cap = 1 << 40;
        assert_eq!(cfg.media_bw_at(0, cap), 180e6);
        assert!((cfg.media_bw_at(cap, cap) - 180e6 * 0.55).abs() < 1.0);
        assert!(cfg.media_bw_at(cap / 2, cap) < cfg.media_bw_at(0, cap));
    }

    #[test]
    fn zoning_validation() {
        let mut cfg = HddConfig::default();
        cfg.inner_bw_frac = 0.0;
        assert!(cfg.validate().is_err());
        cfg.inner_bw_frac = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_violations() {
        let base = HddConfig::default();
        let mut c = base.clone();
        c.media_bw = 0.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.min_seek = SimDuration::from_millis(20);
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.rpm = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.ncq_window = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.spin_up = SimDuration::ZERO;
        assert!(c.validate().is_err());
    }
}
