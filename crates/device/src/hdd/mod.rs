//! Event-driven hard-disk-drive simulator.
//!
//! A single actuator serves one media operation at a time. Each operation
//! pays a distance-dependent seek, a rotational delay (reduced when the
//! queue is deep, modeling NCQ rotational-position ordering), and a media
//! transfer. Writes acknowledge from a small cache that is drained with
//! shortest-seek-first scheduling (writes too large for the cache stream
//! straight to media); standby flushes the cache and spins the
//! platters down, and waking pays a multi-second spin-up — the paper's
//! §3.2.2 trade-off.

mod config;

pub use config::HddConfig;

use std::collections::{BTreeSet, VecDeque};

use powadapt_obs::{emit, span, EventKind, RecorderHandle};
use powadapt_sim::snapshot::{read_time, write_time};
use powadapt_sim::{EventQueue, SimDuration, SimRng, SimTime};
use powadapt_snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

use crate::device::StorageDevice;
use crate::error::DeviceError;
use crate::io::{IoCompletion, IoId, IoKind, IoRequest};
use crate::power::{PowerStateDesc, PowerStateId, StandbyPhase, StandbyState};
use crate::snapcodec;
use crate::spec::DeviceSpec;

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: IoId,
    kind: IoKind,
    offset: u64,
    len: u64,
    submitted: SimTime,
}

#[derive(Debug, Clone, Copy)]
enum MediaKind {
    /// A read that completes to the host when the media op finishes.
    ReadReq(Pending),
    /// Background drain of one write-cache entry.
    CacheDrain,
    /// A write larger than the cache can ever hold, streamed straight to
    /// media; completes to the host when the transfer finishes.
    WriteThrough(Pending),
}

#[derive(Debug, Clone, Copy)]
struct MediaOp {
    kind: MediaKind,
    offset: u64,
    len: u64,
    enqueued: SimTime,
}

#[derive(Debug)]
enum Ev {
    CmdDone(Pending),
    MediaPositioned(MediaOp),
    MediaDone(MediaOp),
    SpinDone,
    NoiseTick,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MediaPhase {
    Idle,
    Positioning,
    Transferring,
}

/// A simulated spinning hard disk. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use powadapt_device::{catalog, StorageDevice};
///
/// let hdd = catalog::hdd_exos_7e2000(1);
/// // Idle power: spindle + electronics (3.75 W in the paper).
/// assert!((hdd.power_w() - 3.75).abs() < 0.01);
/// ```
#[derive(Debug)]
pub struct Hdd {
    // powadapt-lint: allow(d6, reason = "static device spec; the restorer constructs the device from it")
    spec: DeviceSpec,
    // powadapt-lint: allow(d6, reason = "static device configuration; the restorer constructs from it")
    cfg: HddConfig,
    now: SimTime,
    events: EventQueue<Ev>,
    rng: SimRng,

    power_now: f64,
    phase: StandbyPhase,
    standby_requested: bool,
    noise_w: f64,
    noise_scheduled: bool,

    ctrl_busy: bool,
    cmd_queue: VecDeque<Pending>,

    media_phase: MediaPhase,
    pending_media: VecDeque<MediaOp>,
    head_pos: u64,

    cache_used: u64,
    cache_waiters: VecDeque<Pending>,

    inflight_ids: BTreeSet<u64>,
    done: Vec<IoCompletion>,

    // Telemetry sink (captured from the global slot at construction;
    // write-only, never feeds back into device behavior).
    // powadapt-lint: allow(d6, reason = "telemetry sink; re-captured from the global slot at construction")
    rec: RecorderHandle,
    // powadapt-lint: allow(d6, reason = "telemetry label; re-derived at construction")
    track: &'static str,
    // Prebuilt media span labels: span emission clones a refcount
    // instead of converting a string per event.
    // powadapt-lint: allow(d6, reason = "telemetry labels; constant")
    lbl_seek: &'static str,
    // powadapt-lint: allow(d6, reason = "telemetry labels; constant")
    lbl_xfer: &'static str,
}

impl Hdd {
    /// Creates an HDD from a spec and configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`HddConfig::validate`]);
    /// [`Hdd::try_new`] is the fallible equivalent.
    pub fn new(spec: DeviceSpec, cfg: HddConfig, seed: u64) -> Self {
        match Hdd::try_new(spec, cfg, seed) {
            Ok(hdd) => hdd,
            // powadapt-lint: allow(D5, reason = "documented panic-on-invalid-config constructor; the error path is try_new")
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: returns [`DeviceError::InvalidConfig`] instead
    /// of panicking when the configuration fails [`HddConfig::validate`].
    pub fn try_new(spec: DeviceSpec, cfg: HddConfig, seed: u64) -> Result<Self, DeviceError> {
        if let Err(e) = cfg.validate() {
            return Err(DeviceError::InvalidConfig(e));
        }
        let idle = cfg.idle_w();
        let track = powadapt_obs::intern(spec.label());
        Ok(Hdd {
            spec,
            cfg,
            now: SimTime::ZERO,
            events: EventQueue::new(),
            rng: SimRng::seed_from(seed),
            power_now: idle,
            phase: StandbyPhase::Active,
            standby_requested: false,
            noise_w: 0.0,
            noise_scheduled: false,
            ctrl_busy: false,
            cmd_queue: VecDeque::new(),
            media_phase: MediaPhase::Idle,
            pending_media: VecDeque::new(),
            head_pos: 0,
            cache_used: 0,
            cache_waiters: VecDeque::new(),
            inflight_ids: BTreeSet::new(),
            done: Vec::new(),
            rec: powadapt_obs::current(),
            track,
            lbl_seek: "media.seek",
            lbl_xfer: "media.xfer",
        })
    }

    /// The configuration the device was built with.
    pub fn config(&self) -> &HddConfig {
        &self.cfg
    }

    /// Bytes currently held in the write cache (diagnostic).
    pub fn cache_used(&self) -> u64 {
        self.cache_used
    }

    fn compute_power(&self) -> f64 {
        match self.phase {
            StandbyPhase::Entering { .. } => self.cfg.spin_down_w,
            StandbyPhase::Standby => self.cfg.standby_w,
            StandbyPhase::Exiting { .. } => self.cfg.spin_up_w,
            StandbyPhase::Active => {
                let mut p = self.cfg.idle_w();
                match self.media_phase {
                    MediaPhase::Positioning => p += self.cfg.seek_w,
                    MediaPhase::Transferring => p += self.cfg.xfer_w,
                    MediaPhase::Idle => {}
                }
                if self.media_phase != MediaPhase::Idle || self.ctrl_busy {
                    p += self.noise_w;
                }
                p.max(0.0)
            }
        }
    }

    fn update_power(&mut self) {
        self.power_now = self.compute_power();
    }

    fn schedule_noise(&mut self) {
        if self.cfg.noise_sd_w > 0.0 && !self.noise_scheduled {
            self.noise_scheduled = true;
            let dwell = SimDuration::from_micros(self.rng.u64_range(4_000, 12_000));
            self.events.schedule(self.now + dwell, Ev::NoiseTick);
        }
    }

    fn cache_fits(&self, len: u64) -> bool {
        self.cache_used + len <= self.cfg.write_cache_bytes
    }

    fn complete(&mut self, p: Pending) {
        self.inflight_ids.remove(&p.id.0);
        emit!(
            self.rec,
            self.now,
            self.track,
            EventKind::IoComplete {
                id: p.id.0,
                dir: p.kind.obs_dir(),
                len: p.len,
                latency: self.now.duration_since(p.submitted),
            }
        );
        self.done.push(IoCompletion {
            id: p.id,
            kind: p.kind,
            len: p.len,
            submitted: p.submitted,
            completed: self.now,
        });
    }

    fn admit_write(&mut self, p: Pending) {
        self.cache_used += p.len;
        self.pending_media.push_back(MediaOp {
            kind: MediaKind::CacheDrain,
            offset: p.offset,
            len: p.len,
            enqueued: self.now,
        });
        // Write-back cache: acknowledge as soon as the data is in DRAM.
        self.complete(p);
    }

    fn seek_time(&self, from: u64, to: u64) -> SimDuration {
        let d = from.abs_diff(to);
        if d == 0 {
            return SimDuration::ZERO;
        }
        let frac = (d as f64 / self.spec.capacity() as f64).clamp(0.0, 1.0);
        let span = self.cfg.max_seek.saturating_sub(self.cfg.min_seek);
        self.cfg.min_seek + span.mul_f64(frac.sqrt())
    }

    /// Picks the next media op: the oldest if it is starving, otherwise the
    /// one with the shortest seek from the current head position, scanning
    /// at most `ncq_window` queued operations.
    fn pick_media_op(&mut self) -> Option<MediaOp> {
        if self.pending_media.is_empty() {
            return None;
        }
        let window = self.cfg.ncq_window.min(self.pending_media.len());
        // Starvation guard: serve the oldest queued op if it has waited too
        // long.
        let oldest = self.pending_media[0];
        if self.now.saturating_duration_since(oldest.enqueued) >= self.cfg.max_op_age {
            return self.pending_media.pop_front();
        }
        let mut best = 0usize;
        let mut best_d = u64::MAX;
        for (i, op) in self.pending_media.iter().take(window).enumerate() {
            let d = op.offset.abs_diff(self.head_pos);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        self.pending_media.remove(best)
    }

    fn start_media_op(&mut self, op: MediaOp) {
        let seek = self.seek_time(self.head_pos, op.offset);
        let rot = if seek.is_zero() {
            SimDuration::ZERO
        } else {
            // NCQ rotational-position ordering: deeper queues land closer.
            let raw = self
                .rng
                .uniform_range(0.0, self.cfg.revolution().as_secs_f64());
            let depth = (self.pending_media.len() + 1) as f64;
            SimDuration::from_secs_f64(raw / (1.0 + 0.5 * depth.ln()))
        };
        let position = seek + rot;
        if position.is_zero() {
            self.begin_transfer(op);
        } else {
            self.media_phase = MediaPhase::Positioning;
            span!(self.rec, self.now, self.track, self.lbl_seek, position);
            self.events
                .schedule(self.now + position, Ev::MediaPositioned(op));
        }
    }

    fn begin_transfer(&mut self, op: MediaOp) {
        self.media_phase = MediaPhase::Transferring;
        let bw = self.cfg.media_bw_at(op.offset, self.spec.capacity());
        let dur = SimDuration::from_secs_f64(op.len as f64 / bw).max(SimDuration::from_nanos(1));
        span!(self.rec, self.now, self.track, self.lbl_xfer, dur);
        self.events.schedule(self.now + dur, Ev::MediaDone(op));
    }

    fn is_fully_idle(&self) -> bool {
        !self.ctrl_busy
            && self.cmd_queue.is_empty()
            && self.media_phase == MediaPhase::Idle
            && self.pending_media.is_empty()
            && self.cache_waiters.is_empty()
            && self.cache_used == 0
    }

    fn begin_spin_down(&mut self) {
        let until = self.now + self.cfg.spin_down;
        self.phase = StandbyPhase::Entering { until };
        emit!(self.rec, self.now, self.track, EventKind::SpinDown);
        self.events.schedule(until, Ev::SpinDone);
    }

    fn begin_spin_up(&mut self) {
        let until = self.now + self.cfg.spin_up;
        self.phase = StandbyPhase::Exiting { until };
        self.standby_requested = false;
        emit!(self.rec, self.now, self.track, EventKind::SpinUp);
        self.events.schedule(until, Ev::SpinDone);
    }

    fn pump(&mut self) {
        match self.phase {
            StandbyPhase::Active => {}
            StandbyPhase::Standby => {
                if !self.cmd_queue.is_empty() {
                    self.begin_spin_up();
                }
                self.update_power();
                return;
            }
            _ => {
                self.update_power();
                return;
            }
        }

        let mut progress = true;
        while progress {
            progress = false;

            if self.standby_requested && self.is_fully_idle() {
                self.begin_spin_down();
                self.update_power();
                return;
            }

            // Controller.
            if !self.ctrl_busy {
                if let Some(p) = self.cmd_queue.pop_front() {
                    self.ctrl_busy = true;
                    self.events
                        .schedule(self.now + self.cfg.cmd_overhead, Ev::CmdDone(p));
                    progress = true;
                }
            }

            // Media.
            if self.media_phase == MediaPhase::Idle {
                if let Some(op) = self.pick_media_op() {
                    self.start_media_op(op);
                    progress = true;
                }
            }
        }
        self.update_power();
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::CmdDone(p) => {
                self.ctrl_busy = false;
                match p.kind {
                    IoKind::Write => {
                        if p.len > self.cfg.write_cache_bytes {
                            // Could never fit the cache: stream it
                            // straight to media instead of waiting for a
                            // drain that cannot make room.
                            self.pending_media.push_back(MediaOp {
                                kind: MediaKind::WriteThrough(p),
                                offset: p.offset,
                                len: p.len,
                                enqueued: self.now,
                            });
                        } else if self.cache_fits(p.len) {
                            self.admit_write(p);
                        } else {
                            self.cache_waiters.push_back(p);
                        }
                    }
                    IoKind::Read => {
                        self.pending_media.push_back(MediaOp {
                            kind: MediaKind::ReadReq(p),
                            offset: p.offset,
                            len: p.len,
                            enqueued: self.now,
                        });
                    }
                }
                self.pump();
            }
            Ev::MediaPositioned(op) => {
                self.begin_transfer(op);
                self.update_power();
            }
            Ev::MediaDone(op) => {
                self.media_phase = MediaPhase::Idle;
                self.head_pos = op.offset + op.len;
                match op.kind {
                    MediaKind::ReadReq(p) | MediaKind::WriteThrough(p) => self.complete(p),
                    MediaKind::CacheDrain => {
                        self.cache_used -= op.len;
                        while let Some(front) = self.cache_waiters.front() {
                            if !self.cache_fits(front.len) {
                                break;
                            }
                            if let Some(p) = self.cache_waiters.pop_front() {
                                self.admit_write(p);
                            }
                        }
                    }
                }
                self.pump();
            }
            Ev::SpinDone => {
                match self.phase {
                    StandbyPhase::Entering { until } if self.now >= until => {
                        self.phase = StandbyPhase::Standby;
                        // A wake requested mid-spin-down takes effect now.
                        if !self.standby_requested {
                            self.begin_spin_up();
                        }
                    }
                    StandbyPhase::Exiting { until } if self.now >= until => {
                        self.phase = StandbyPhase::Active;
                    }
                    _ => {}
                }
                self.pump();
            }
            Ev::NoiseTick => {
                self.noise_scheduled = false;
                let busy = self.media_phase != MediaPhase::Idle
                    || self.ctrl_busy
                    || !self.cmd_queue.is_empty();
                if busy {
                    let sd = self.cfg.noise_sd_w;
                    self.noise_w = self.rng.normal(0.0, sd).clamp(-0.5 * sd, 2.0 * sd);
                    self.schedule_noise();
                } else {
                    self.noise_w = 0.0;
                }
                self.update_power();
            }
        }
    }
}

/// HDDs implement a single, unconstrained power state (no NVMe-style caps).
const HDD_POWER_STATES: [PowerStateDesc; 1] = [PowerStateDesc {
    id: PowerStateId(0),
    cap_w: f64::INFINITY,
}];

impl StorageDevice for Hdd {
    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn submit(&mut self, req: IoRequest) -> Result<(), DeviceError> {
        if req.len == 0 {
            return Err(DeviceError::ZeroLength);
        }
        if req.end() > self.spec.capacity() {
            return Err(DeviceError::OutOfRange {
                end: req.end(),
                capacity: self.spec.capacity(),
            });
        }
        if !self.inflight_ids.insert(req.id.0) {
            return Err(DeviceError::DuplicateRequest(req.id.0));
        }
        emit!(
            self.rec,
            self.now,
            self.track,
            EventKind::IoSubmit {
                id: req.id.0,
                dir: req.kind.obs_dir(),
                len: req.len,
            }
        );
        self.cmd_queue.push_back(Pending {
            id: req.id,
            kind: req.kind,
            offset: req.offset,
            len: req.len,
            submitted: self.now,
        });
        self.schedule_noise();
        self.pump();
        Ok(())
    }

    fn next_event(&mut self) -> Option<SimTime> {
        self.events.next_time()
    }

    fn advance_to(&mut self, t: SimTime) -> Vec<IoCompletion> {
        let mut out = Vec::new();
        self.advance_to_into(t, &mut out);
        out
    }

    // powadapt-lint: hot
    fn advance_to_into(&mut self, t: SimTime, out: &mut Vec<IoCompletion>) {
        assert!(
            t >= self.now,
            "advance_to {t} before device time {}",
            self.now
        );
        while let Some((te, ev)) = self.events.pop_at_or_before(t) {
            self.now = te;
            // powadapt-lint: allow(d9, reason = "event handlers append to recycled per-device queues; growth amortized")
            self.handle(ev);
        }
        self.now = t;
        // `append` drains `done` but keeps its allocation for reuse.
        out.append(&mut self.done);
    }

    fn power_w(&self) -> f64 {
        self.power_now
    }

    fn set_power_state(&mut self, ps: PowerStateId) -> Result<(), DeviceError> {
        if ps == PowerStateId(0) {
            Ok(())
        } else {
            Err(DeviceError::UnknownPowerState(ps))
        }
    }

    fn power_state(&self) -> PowerStateId {
        PowerStateId(0)
    }

    fn power_states(&self) -> &[PowerStateDesc] {
        &HDD_POWER_STATES
    }

    fn request_standby(&mut self) -> Result<(), DeviceError> {
        match self.phase {
            StandbyPhase::Entering { .. } | StandbyPhase::Exiting { .. } => {
                Err(DeviceError::StandbyTransitionInProgress)
            }
            StandbyPhase::Standby => Ok(()),
            StandbyPhase::Active => {
                self.standby_requested = true;
                self.pump();
                Ok(())
            }
        }
    }

    fn request_wake(&mut self) -> Result<(), DeviceError> {
        self.standby_requested = false;
        if self.phase == StandbyPhase::Standby {
            self.begin_spin_up();
            self.update_power();
        }
        Ok(())
    }

    fn standby_state(&self) -> StandbyState {
        self.phase.state()
    }

    fn standby_power_w(&self) -> Option<f64> {
        Some(self.cfg.standby_w)
    }

    fn inflight(&self) -> usize {
        self.inflight_ids.len()
    }

    fn set_recorder(&mut self, rec: RecorderHandle, track: &'static str) {
        self.rec = rec;
        self.track = track;
    }

    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        write_time(w, self.now);
        self.events.write_state(w, write_ev)?;
        Snapshot::write_state(&self.rng, w)?;
        w.f64(self.power_now);
        snapcodec::write_standby_phase(w, self.phase);
        w.bool(self.standby_requested);
        w.f64(self.noise_w);
        w.bool(self.noise_scheduled);
        w.bool(self.ctrl_busy);
        write_pendings(w, self.cmd_queue.iter());
        w.u8(match self.media_phase {
            MediaPhase::Idle => 0,
            MediaPhase::Positioning => 1,
            MediaPhase::Transferring => 2,
        });
        w.seq_len(self.pending_media.len());
        for op in &self.pending_media {
            write_media_op(w, op);
        }
        w.u64(self.head_pos);
        w.u64(self.cache_used);
        write_pendings(w, self.cache_waiters.iter());
        w.seq_len(self.inflight_ids.len());
        for &id in &self.inflight_ids {
            w.u64(id);
        }
        snapcodec::write_completions(w, &self.done);
        Ok(())
    }

    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.now = read_time(r)?;
        self.events.read_state(r, read_ev)?;
        Restore::read_state(&mut self.rng, r)?;
        self.power_now = r.f64()?;
        self.phase = snapcodec::read_standby_phase(r)?;
        self.standby_requested = r.bool()?;
        self.noise_w = r.f64()?;
        self.noise_scheduled = r.bool()?;
        self.ctrl_busy = r.bool()?;
        self.cmd_queue = read_pendings(r)?;
        self.media_phase = match r.u8()? {
            0 => MediaPhase::Idle,
            1 => MediaPhase::Positioning,
            2 => MediaPhase::Transferring,
            b => {
                return Err(SnapError::InvalidValue(format!("media phase byte {b}")));
            }
        };
        let n = r.seq_len()?;
        self.pending_media.clear();
        for _ in 0..n {
            self.pending_media.push_back(read_media_op(r)?);
        }
        self.head_pos = r.u64()?;
        self.cache_used = r.u64()?;
        self.cache_waiters = read_pendings(r)?;
        let n = r.seq_len()?;
        self.inflight_ids.clear();
        for _ in 0..n {
            let id = r.u64()?;
            if !self.inflight_ids.insert(id) {
                return Err(SnapError::InvalidValue(format!(
                    "duplicate inflight id {id}"
                )));
            }
        }
        self.done = snapcodec::read_completions(r)?;
        Ok(())
    }
}

fn write_pending(w: &mut SnapWriter, p: &Pending) {
    w.u64(p.id.0);
    snapcodec::write_io_kind(w, p.kind);
    w.u64(p.offset);
    w.u64(p.len);
    write_time(w, p.submitted);
}

fn read_pending(r: &mut SnapReader<'_>) -> Result<Pending, SnapError> {
    Ok(Pending {
        id: IoId(r.u64()?),
        kind: snapcodec::read_io_kind(r)?,
        offset: r.u64()?,
        len: r.u64()?,
        submitted: read_time(r)?,
    })
}

fn write_pendings<'a, I>(w: &mut SnapWriter, it: I)
where
    I: ExactSizeIterator<Item = &'a Pending>,
{
    w.seq_len(it.len());
    for p in it {
        write_pending(w, p);
    }
}

fn read_pendings(r: &mut SnapReader<'_>) -> Result<VecDeque<Pending>, SnapError> {
    let n = r.seq_len()?;
    let mut out = VecDeque::with_capacity(n);
    for _ in 0..n {
        out.push_back(read_pending(r)?);
    }
    Ok(out)
}

fn write_media_op(w: &mut SnapWriter, op: &MediaOp) {
    match &op.kind {
        MediaKind::ReadReq(p) => {
            w.u8(0);
            write_pending(w, p);
        }
        MediaKind::CacheDrain => w.u8(1),
        MediaKind::WriteThrough(p) => {
            w.u8(2);
            write_pending(w, p);
        }
    }
    w.u64(op.offset);
    w.u64(op.len);
    write_time(w, op.enqueued);
}

fn read_media_op(r: &mut SnapReader<'_>) -> Result<MediaOp, SnapError> {
    let kind = match r.u8()? {
        0 => MediaKind::ReadReq(read_pending(r)?),
        1 => MediaKind::CacheDrain,
        2 => MediaKind::WriteThrough(read_pending(r)?),
        b => {
            return Err(SnapError::InvalidValue(format!("media kind byte {b}")));
        }
    };
    Ok(MediaOp {
        kind,
        offset: r.u64()?,
        len: r.u64()?,
        enqueued: read_time(r)?,
    })
}

fn write_ev(w: &mut SnapWriter, ev: &Ev) -> Result<(), SnapError> {
    match ev {
        Ev::CmdDone(p) => {
            w.u8(0);
            write_pending(w, p);
        }
        Ev::MediaPositioned(op) => {
            w.u8(1);
            write_media_op(w, op);
        }
        Ev::MediaDone(op) => {
            w.u8(2);
            write_media_op(w, op);
        }
        Ev::SpinDone => w.u8(3),
        Ev::NoiseTick => w.u8(4),
    }
    Ok(())
}

fn read_ev(r: &mut SnapReader<'_>) -> Result<Ev, SnapError> {
    Ok(match r.u8()? {
        0 => Ev::CmdDone(read_pending(r)?),
        1 => Ev::MediaPositioned(read_media_op(r)?),
        2 => Ev::MediaDone(read_media_op(r)?),
        3 => Ev::SpinDone,
        4 => Ev::NoiseTick,
        b => return Err(SnapError::InvalidValue(format!("hdd event byte {b}"))),
    })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::device::drain;
    use crate::io::{GIB, KIB, MIB};
    use crate::spec::{DeviceClass, Protocol};

    fn test_hdd() -> Hdd {
        let spec = DeviceSpec::new("H", "Test HDD", Protocol::Sata, DeviceClass::Hdd, 100 * GIB);
        let mut cfg = HddConfig::default();
        cfg.noise_sd_w = 0.0;
        Hdd::new(spec, cfg, 11)
    }

    fn submit(dev: &mut Hdd, id: u64, kind: IoKind, offset: u64, len: u64) {
        dev.submit(IoRequest::new(IoId(id), kind, offset, len))
            .expect("valid request");
    }

    #[test]
    fn idle_power_is_spindle_plus_electronics() {
        let dev = test_hdd();
        assert!((dev.power_w() - 3.75).abs() < 1e-9);
    }

    #[test]
    fn random_read_pays_seek_and_rotation() {
        let mut dev = test_hdd();
        submit(&mut dev, 0, IoKind::Read, 50 * GIB, 4 * KIB);
        let done = drain(&mut dev);
        assert_eq!(done.len(), 1);
        let ms = done[0].latency().as_millis();
        assert!((2..40).contains(&ms), "random read took {ms} ms");
    }

    #[test]
    fn sequential_reads_stream_without_seeking() {
        let mut dev = test_hdd();
        // Prime the head position.
        submit(&mut dev, 0, IoKind::Read, 0, MIB);
        drain(&mut dev);
        // Now sequential reads from the head position.
        let mut off = MIB;
        for i in 1..=20u64 {
            submit(&mut dev, i, IoKind::Read, off, MIB);
            off += MIB;
        }
        let start = dev.now();
        let done = drain(&mut dev);
        assert_eq!(done.len(), 20);
        let elapsed = dev.now().duration_since(start).as_secs_f64();
        let bw = 20.0 * MIB as f64 / elapsed;
        assert!(
            (bw - dev.config().media_bw).abs() / dev.config().media_bw < 0.05,
            "sequential read bandwidth {bw} should approach the media rate"
        );
    }

    #[test]
    fn writes_ack_from_cache_quickly() {
        let mut dev = test_hdd();
        submit(&mut dev, 0, IoKind::Write, 50 * GIB, 4 * KIB);
        // The ack arrives long before the media drain finishes.
        let mut acked_at = None;
        while acked_at.is_none() {
            let t = dev.next_event().expect("pending events");
            for c in dev.advance_to(t) {
                acked_at = Some(c.completed);
            }
        }
        assert!(acked_at.unwrap().as_micros() < 500);
        // Cache still holds the data until drained.
        assert!(dev.cache_used() > 0);
        drain(&mut dev);
        assert_eq!(dev.cache_used(), 0);
    }

    #[test]
    fn oversized_write_streams_through_without_deadlock() {
        let mut dev = test_hdd();
        // 64 MiB against a 4 MiB cache: must bypass the cache entirely
        // and complete when the media transfer lands, not ack-from-cache.
        submit(&mut dev, 0, IoKind::Write, 10 * GIB, 64 * MIB);
        let done = drain(&mut dev);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].len, 64 * MIB);
        assert_eq!(dev.cache_used(), 0);
        // The latency covers at least the full media transfer.
        let media = SimDuration::from_secs_f64(64.0 * MIB as f64 / dev.cfg.media_bw);
        assert!(done[0].completed.duration_since(done[0].submitted) >= media);
    }

    #[test]
    fn cache_backpressure_throttles_writes() {
        let mut dev = test_hdd();
        let n = 16u64;
        for i in 0..n {
            // Large scattered writes exceeding the 4 MiB cache.
            submit(&mut dev, i, IoKind::Write, (i * 7919) % 90 * GIB, 2 * MIB);
        }
        let done = drain(&mut dev);
        assert_eq!(done.len(), n as usize);
        let max_lat = done.iter().map(|c| c.latency().as_millis()).max().unwrap();
        assert!(max_lat > 1, "later writes should wait for cache space");
    }

    #[test]
    fn deeper_queues_improve_random_throughput() {
        let run = |depth: u64| {
            let mut dev = test_hdd();
            let total = 64u64;
            let mut next = 0u64;
            let mut completed = 0u64;
            // Keep `depth` reads in flight.
            let offset_for = |i: u64| (i * 48_271 % 1000) * (90 * GIB / 1000);
            while next < depth.min(total) {
                submit(&mut dev, next, IoKind::Read, offset_for(next), 4 * KIB);
                next += 1;
            }
            while completed < total {
                let t = dev.next_event().expect("events pending");
                for _c in dev.advance_to(t) {
                    completed += 1;
                    if next < total {
                        submit(&mut dev, next, IoKind::Read, offset_for(next), 4 * KIB);
                        next += 1;
                    }
                }
            }
            dev.now().as_secs_f64()
        };
        let qd1 = run(1);
        let qd32 = run(32);
        assert!(
            qd32 < qd1 * 0.75,
            "NCQ should speed up random reads: qd1={qd1}s qd32={qd32}s"
        );
    }

    #[test]
    fn seek_power_shows_up_during_random_io() {
        let mut dev = test_hdd();
        for i in 0..32u64 {
            submit(&mut dev, i, IoKind::Read, (i * 104_729) % 90 * GIB, 4 * KIB);
        }
        let mut peak: f64 = 0.0;
        while let Some(t) = dev.next_event() {
            dev.advance_to(t);
            peak = peak.max(dev.power_w());
        }
        assert!((peak - (3.75 + 1.3)).abs() < 0.2, "peak {peak}");
    }

    #[test]
    fn spin_down_flushes_cache_first() {
        let mut dev = test_hdd();
        submit(&mut dev, 0, IoKind::Write, GIB, 2 * MIB);
        dev.request_standby().unwrap();
        assert_eq!(dev.standby_state(), StandbyState::Active, "flush first");
        drain(&mut dev);
        assert_eq!(dev.standby_state(), StandbyState::Standby);
        assert_eq!(dev.cache_used(), 0);
        assert!((dev.power_w() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn wake_from_standby_takes_seconds_and_draws_spinup_power() {
        let mut dev = test_hdd();
        dev.request_standby().unwrap();
        drain(&mut dev);
        assert_eq!(dev.standby_state(), StandbyState::Standby);
        let slept_until = dev.now();

        submit(&mut dev, 0, IoKind::Read, GIB, 4 * KIB);
        assert_eq!(dev.standby_state(), StandbyState::ExitingStandby);
        assert!((dev.power_w() - 5.2).abs() < 1e-9);
        let done = drain(&mut dev);
        assert_eq!(done.len(), 1);
        let lat = done[0].completed.duration_since(slept_until);
        assert!(
            lat.as_secs_f64() >= 6.0,
            "IO to a spun-down disk waits for spin-up ({lat})"
        );
    }

    #[test]
    fn standby_transition_errors() {
        let mut dev = test_hdd();
        dev.request_standby().unwrap();
        // Entering now (idle): a second request while transitioning fails.
        assert_eq!(
            dev.request_standby(),
            Err(DeviceError::StandbyTransitionInProgress)
        );
        drain(&mut dev);
        // Standby: requesting standby again is a no-op Ok.
        assert_eq!(dev.request_standby(), Ok(()));
        dev.request_wake().unwrap();
        drain(&mut dev);
        assert_eq!(dev.standby_state(), StandbyState::Active);
    }

    #[test]
    fn rejects_invalid_requests() {
        let mut dev = test_hdd();
        assert_eq!(
            dev.submit(IoRequest::new(IoId(0), IoKind::Read, 0, 0)),
            Err(DeviceError::ZeroLength)
        );
        assert!(matches!(
            dev.submit(IoRequest::new(IoId(0), IoKind::Read, 100 * GIB, KIB)),
            Err(DeviceError::OutOfRange { .. })
        ));
    }

    #[test]
    fn power_state_interface_is_trivial() {
        let mut dev = test_hdd();
        assert_eq!(dev.power_state(), PowerStateId(0));
        assert!(dev.set_power_state(PowerStateId(0)).is_ok());
        assert!(dev.set_power_state(PowerStateId(1)).is_err());
        assert_eq!(dev.power_states().len(), 1);
        assert!(dev.power_states()[0].cap_w.is_infinite());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut dev = test_hdd();
            for i in 0..32u64 {
                submit(&mut dev, i, IoKind::Read, (i * 331) % 90 * GIB, 64 * KIB);
            }
            let done = drain(&mut dev);
            done.iter().map(|c| c.completed.as_nanos()).sum::<u64>()
        };
        assert_eq!(run(), run());
    }
}
