//! Static device descriptions (Table 1 of the paper).

use std::fmt;

/// Host interface protocol of a storage device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// NVMe over PCIe.
    Nvme,
    /// Serial ATA.
    Sata,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Nvme => write!(f, "NVMe"),
            Protocol::Sata => write!(f, "SATA"),
        }
    }
}

/// Broad device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Flash solid-state drive.
    Ssd,
    /// Spinning hard disk drive.
    Hdd,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceClass::Ssd => write!(f, "SSD"),
            DeviceClass::Hdd => write!(f, "HDD"),
        }
    }
}

/// Static description of a device: the fields of Table 1 plus capacity.
///
/// # Examples
///
/// ```
/// use powadapt_device::{DeviceClass, DeviceSpec, Protocol};
///
/// let spec = DeviceSpec::new("SSD1", "Samsung PM9A3", Protocol::Nvme, DeviceClass::Ssd, 1 << 40);
/// assert_eq!(spec.label(), "SSD1");
/// assert_eq!(spec.protocol(), Protocol::Nvme);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSpec {
    label: String,
    model: String,
    protocol: Protocol,
    class: DeviceClass,
    capacity: u64,
}

impl DeviceSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(
        label: impl Into<String>,
        model: impl Into<String>,
        protocol: Protocol,
        class: DeviceClass,
        capacity: u64,
    ) -> Self {
        assert!(capacity > 0, "device capacity must be non-zero");
        DeviceSpec {
            label: label.into(),
            model: model.into(),
            protocol,
            class,
            capacity,
        }
    }

    /// Short label used in the paper's tables and figures (e.g. "SSD2").
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Marketing model name (e.g. "Intel D7-P5510").
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Host interface protocol.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Broad device class.
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// Usable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} {})",
            self.label, self.model, self.protocol, self.class
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors() {
        let s = DeviceSpec::new(
            "HDD",
            "Seagate Exos 7E2000",
            Protocol::Sata,
            DeviceClass::Hdd,
            2 << 40,
        );
        assert_eq!(s.label(), "HDD");
        assert_eq!(s.model(), "Seagate Exos 7E2000");
        assert_eq!(s.protocol(), Protocol::Sata);
        assert_eq!(s.class(), DeviceClass::Hdd);
        assert_eq!(s.capacity(), 2 << 40);
        assert!(s.to_string().contains("Exos"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = DeviceSpec::new("X", "Y", Protocol::Nvme, DeviceClass::Ssd, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Protocol::Nvme.to_string(), "NVMe");
        assert_eq!(DeviceClass::Hdd.to_string(), "HDD");
    }
}
