//! Property-based tests of device-simulator invariants under arbitrary
//! workloads.

use proptest::prelude::*;

use powadapt_device::{
    catalog, drain, IoId, IoKind, IoRequest, PowerStateId, StorageDevice, GIB, KIB,
};
use powadapt_sim::{SimDuration, SimTime};

/// An arbitrary but valid request stream element.
#[derive(Debug, Clone)]
struct Op {
    write: bool,
    block: u64,   // offset block index
    len_kib: u64, // 4..=2048
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        any::<bool>(),
        0u64..10_000,
        prop::sample::select(vec![4u64, 16, 64, 256, 1024, 2048]),
    )
        .prop_map(|(write, block, len_kib)| Op {
            write,
            block,
            len_kib,
        })
}

fn submit_ops(dev: &mut dyn StorageDevice, ops: &[Op]) -> usize {
    let mut submitted = 0;
    for (i, op) in ops.iter().enumerate() {
        let kind = if op.write {
            IoKind::Write
        } else {
            IoKind::Read
        };
        let offset = (op.block * 2048 * KIB) % (4 * GIB);
        let req = IoRequest::new(IoId(i as u64), kind, offset, op.len_kib * KIB);
        dev.submit(req).expect("request within bounds");
        submitted += 1;
    }
    submitted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every submitted request completes exactly once, with its own id,
    /// kind, and length, and non-negative latency.
    #[test]
    fn ssd_completes_everything_exactly_once(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut dev = catalog::ssd2_d7_p5510(9);
        let n = submit_ops(&mut dev, &ops);
        let done = drain(&mut dev);
        prop_assert_eq!(done.len(), n);
        let mut seen: Vec<u64> = done.iter().map(|c| c.id.0).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        for c in &done {
            let op = &ops[c.id.0 as usize];
            prop_assert_eq!(c.kind == IoKind::Write, op.write);
            prop_assert_eq!(c.len, op.len_kib * KIB);
            prop_assert!(c.completed >= c.submitted);
        }
        prop_assert_eq!(dev.inflight(), 0);
    }

    /// The same, for the HDD.
    #[test]
    fn hdd_completes_everything_exactly_once(ops in prop::collection::vec(op_strategy(), 1..25)) {
        let mut dev = catalog::hdd_exos_7e2000(9);
        let n = submit_ops(&mut dev, &ops);
        let done = drain(&mut dev);
        prop_assert_eq!(done.len(), n);
        prop_assert_eq!(dev.inflight(), 0);
        let mut seen: Vec<u64> = done.iter().map(|c| c.id.0).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
    }

    /// Instantaneous SSD power stays within physical bounds at every event:
    /// never below a deep-sleep floor, never above the component-sum max.
    #[test]
    fn ssd_power_stays_within_component_bounds(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut dev = catalog::ssd2_d7_p5510(9);
        let cfg = dev.config().clone();
        let upper = cfg.idle_w
            + cfg.ctrl_active_w
            + 2.0 * cfg.noise_sd_w
            + cfg.dies as f64 * cfg.die_prog_w.max(cfg.die_read_w)
            + cfg.iface_active_w;
        submit_ops(&mut dev, &ops);
        while let Some(t) = dev.next_event() {
            dev.advance_to(t);
            let p = dev.power_w();
            prop_assert!(p >= 0.0, "negative power {}", p);
            prop_assert!(p <= upper + 1e-9, "power {} above bound {}", p, upper);
        }
    }

    /// Under a power cap, the trailing-window average respects the cap for
    /// any write-heavy workload (sampled at 1 ms).
    #[test]
    fn cap_is_respected_for_any_write_workload(
        blocks in prop::collection::vec(0u64..2_000, 8..40),
        len_sel in prop::sample::select(vec![64u64, 256, 1024, 2048]),
    ) {
        let mut dev = catalog::ssd2_d7_p5510(11);
        dev.set_power_state(PowerStateId(2)).expect("ps2 exists");
        for (i, &b) in blocks.iter().enumerate() {
            let req = IoRequest::new(
                IoId(i as u64),
                IoKind::Write,
                (b * 2048 * KIB) % (4 * GIB),
                len_sel * KIB,
            );
            dev.submit(req).expect("valid");
        }
        // Sample power every 1 ms while draining; compute the overall mean
        // of the busy region.
        let mut samples = Vec::new();
        let mut t = SimTime::ZERO;
        while dev.next_event().is_some() {
            t += SimDuration::from_millis(1);
            dev.advance_to(t);
            samples.push(dev.power_w());
        }
        if samples.len() > 25 {
            let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
            prop_assert!(
                mean <= 10.0 * 1.1,
                "mean power {} breaks the 10 W cap", mean
            );
        }
    }

    /// Standby round-trips from any quiesced state, and power ends at the
    /// documented floor.
    #[test]
    fn standby_roundtrip_from_any_state(ops in prop::collection::vec(op_strategy(), 0..20)) {
        let mut dev = catalog::evo_860(13);
        submit_ops(&mut dev, &ops);
        drain(&mut dev);
        dev.request_standby().expect("idle device accepts standby");
        drain(&mut dev);
        prop_assert!((dev.power_w() - 0.17).abs() < 1e-9);
        dev.request_wake().expect("wake accepted");
        drain(&mut dev);
        prop_assert!((dev.power_w() - 0.35).abs() < 1e-9);
        prop_assert_eq!(dev.inflight(), 0);
    }

    /// Larger requests never complete with smaller latency than the
    /// interface can physically transfer them (causality floor).
    #[test]
    fn latency_respects_transfer_floor(len_kib in prop::sample::select(vec![4u64, 64, 1024, 2048])) {
        let mut dev = catalog::ssd3_d3_p4510(7);
        let bw = dev.config().interface_bw;
        dev.submit(IoRequest::new(IoId(0), IoKind::Read, 0, len_kib * KIB)).expect("valid");
        let done = drain(&mut dev);
        let floor = (len_kib * KIB) as f64 / bw;
        prop_assert!(
            done[0].latency().as_secs_f64() >= floor,
            "latency {} below transfer floor {}",
            done[0].latency(), floor
        );
    }
}
