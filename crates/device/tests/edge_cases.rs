//! Edge-case tests of device behaviour under control-plane churn: state
//! switches mid-workload, standby requests racing IO, and backpressure
//! ordering.

use powadapt_device::{
    catalog, drain, IoId, IoKind, IoRequest, PowerStateId, StandbyState, StorageDevice, GIB, KIB,
    MIB,
};
use powadapt_sim::{SimDuration, SimTime};

fn submit(dev: &mut dyn StorageDevice, id: u64, kind: IoKind, offset: u64, len: u64) {
    dev.submit(IoRequest::new(IoId(id), kind, offset, len))
        .expect("valid request");
}

#[test]
fn power_state_switch_mid_workload_takes_effect() {
    let mut dev = catalog::ssd2_d7_p5510(3);
    // Saturate with writes at ps0, then downshift to ps2 mid-flight.
    for i in 0..64u64 {
        submit(&mut dev, i, IoKind::Write, i * 8 * MIB, 8 * MIB);
    }
    // Run 5 ms at full power.
    let mut t = SimTime::ZERO;
    let mut peak_before: f64 = 0.0;
    while t < SimTime::from_millis(5) {
        t += SimDuration::from_micros(200);
        dev.advance_to(t);
        peak_before = peak_before.max(dev.power_w());
    }
    dev.set_power_state(PowerStateId(2)).expect("ps2 exists");
    // Give the governor one control window, then observe.
    let settle = t + SimDuration::from_millis(60);
    while t < settle {
        t += SimDuration::from_micros(200);
        dev.advance_to(t);
    }
    let mut sum = 0.0;
    let mut n = 0;
    let window_end = t + SimDuration::from_millis(40);
    while t < window_end {
        t += SimDuration::from_micros(200);
        dev.advance_to(t);
        sum += dev.power_w();
        n += 1;
    }
    let avg_after = sum / n as f64;
    assert!(peak_before > 13.0, "uncapped writes run hot: {peak_before}");
    assert!(
        avg_after <= 10.0 * 1.1,
        "after the switch the 10 W cap must bind: {avg_after:.2}"
    );
    drain(&mut dev);
}

#[test]
fn upshift_restores_full_throughput() {
    let total_time = |switch_up: bool| {
        let mut dev = catalog::ssd2_d7_p5510(3);
        dev.set_power_state(PowerStateId(2)).expect("ps2 exists");
        for i in 0..48u64 {
            submit(&mut dev, i, IoKind::Write, i * 8 * MIB, 8 * MIB);
        }
        if switch_up {
            // Upshift almost immediately.
            dev.advance_to(SimTime::from_millis(2));
            dev.set_power_state(PowerStateId(0)).expect("ps0 exists");
        }
        drain(&mut dev);
        dev.now()
    };
    let capped = total_time(false);
    let upshifted = total_time(true);
    assert!(
        upshifted.as_secs_f64() < capped.as_secs_f64() * 0.85,
        "upshift should finish clearly faster: {upshifted} vs {capped}"
    );
}

#[test]
fn standby_request_during_heavy_io_defers_until_drain() {
    let mut dev = catalog::evo_860(4);
    for i in 0..16u64 {
        submit(&mut dev, i, IoKind::Write, i * 4 * MIB, 4 * MIB);
    }
    dev.request_standby().expect("request accepted");
    // Still active while work is in flight.
    assert_eq!(dev.standby_state(), StandbyState::Active);
    let done = drain(&mut dev);
    assert_eq!(done.len(), 16);
    assert_eq!(dev.standby_state(), StandbyState::Standby);
    // All buffered data was flushed before sleeping.
    assert!((dev.power_w() - 0.17).abs() < 1e-9);
}

#[test]
fn io_submitted_during_spin_down_is_served_after_the_full_cycle() {
    let mut hdd = catalog::hdd_exos_7e2000(4);
    hdd.request_standby().expect("idle disk accepts standby");
    // Mid-spin-down, IO arrives.
    hdd.advance_to(SimTime::from_millis(500));
    assert_eq!(hdd.standby_state(), StandbyState::EnteringStandby);
    submit(&mut hdd, 0, IoKind::Read, GIB, 4 * KIB);
    let done = drain(&mut hdd);
    assert_eq!(done.len(), 1);
    // Latency = remaining spin-down (1 s) + spin-up (6 s) + seek.
    assert!(
        done[0].latency() >= SimDuration::from_secs(6),
        "got {}",
        done[0].latency()
    );
    assert_eq!(hdd.standby_state(), StandbyState::Active);
}

#[test]
fn write_backpressure_preserves_fifo_acknowledgement() {
    // Writes far exceeding the buffer must ack in submission order.
    let mut dev = catalog::ssd3_d3_p4510(4);
    for i in 0..24u64 {
        submit(&mut dev, i, IoKind::Write, i * 16 * MIB, 16 * MIB);
    }
    let done = drain(&mut dev);
    assert_eq!(done.len(), 24);
    let mut order: Vec<u64> = done.iter().map(|c| c.id.0).collect();
    let sorted = {
        let mut v = order.clone();
        v.sort_unstable();
        v
    };
    assert_eq!(order, sorted, "acks must be FIFO under backpressure");
    order.dedup();
    assert_eq!(order.len(), 24);
}

#[test]
fn hdd_starvation_guard_bounds_read_wait_under_hot_cache_drain() {
    // A stream of writes creating drain work, plus one far-away read: the
    // age guard must serve the read within max_op_age-ish time even though
    // shortest-seek-first would starve it.
    let mut hdd = catalog::hdd_exos_7e2000(4);
    // Cluster of writes at low LBAs.
    for i in 0..64u64 {
        submit(&mut hdd, i, IoKind::Write, i * MIB, MIB);
    }
    // One read at the far end of the disk.
    submit(&mut hdd, 999, IoKind::Read, 2000 * GIB - MIB, 4 * KIB);
    let done = drain(&mut hdd);
    let read = done.iter().find(|c| c.id == IoId(999)).expect("served");
    assert!(
        read.latency() <= SimDuration::from_millis(400),
        "far read waited {} despite the starvation guard",
        read.latency()
    );
}

#[test]
fn zero_gap_sequential_writes_detect_as_sequential_waf() {
    // Indirect check: a long sequential write stream sustains higher
    // throughput than the same bytes written randomly (lower WAF -> less
    // NAND work), on a drain-limited device.
    let run = |random: bool| {
        let mut dev = catalog::ssd2_d7_p5510(4);
        for i in 0..128u64 {
            let offset = if random {
                (i * 7_919_777) % (8 * GIB)
            } else {
                i * 256 * KIB
            };
            submit(
                &mut dev,
                i,
                IoKind::Write,
                offset / (256 * KIB) * (256 * KIB),
                256 * KIB,
            );
        }
        drain(&mut dev);
        dev.now().as_secs_f64()
    };
    let seq = run(false);
    let rand = run(true);
    assert!(
        rand >= seq,
        "random writes should take at least as long: seq {seq}s rand {rand}s"
    );
}
