//! Snapshot/restore equivalence at the device level: a device checkpointed
//! mid-flight and overlaid onto a fresh instance of the same spec must
//! behave bit-identically to the original from that point on.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use powadapt_device::{
    catalog, FaultInjector, FaultPlan, IoId, IoKind, IoRequest, StorageDevice, KIB, MIB,
};
use powadapt_sim::SimDuration;
use powadapt_snap::{SnapError, SnapReader, SnapWriter};

/// Submits a mixed workload, advances partway, snapshots, restores into a
/// fresh device from `make`, and asserts the two runs are indistinguishable
/// to the bit from the checkpoint onward.
fn assert_roundtrip_equiv(make: &dyn Fn() -> Box<dyn StorageDevice>) {
    let mut orig = make();
    for i in 0..24u64 {
        let kind = if i % 3 == 0 {
            IoKind::Write
        } else {
            IoKind::Read
        };
        // Injected IO errors are part of some workloads; rejected
        // submissions simply don't join the in-flight set.
        let _ = orig.submit(IoRequest::new(IoId(i), kind, i * 4 * MIB, 256 * KIB));
    }
    // Advance through a prefix of the event stream so the checkpoint lands
    // with commands queued, dies busy, and completions pending.
    for _ in 0..10 {
        if let Some(t) = orig.next_event() {
            orig.advance_to(t);
        }
    }

    let mut w = SnapWriter::new();
    orig.write_state(&mut w).unwrap();
    let payload = w.into_payload();

    let mut restored = make();
    let mut r = SnapReader::new(&payload);
    restored.read_state(&mut r).unwrap();
    r.finish().unwrap();

    assert_eq!(orig.now(), restored.now());
    assert_eq!(orig.inflight(), restored.inflight());
    assert_eq!(orig.power_w().to_bits(), restored.power_w().to_bits());

    loop {
        let (a, b) = (orig.next_event(), restored.next_event());
        assert_eq!(a, b, "event streams diverged after restore");
        let Some(t) = a else { break };
        assert_eq!(
            orig.advance_to(t),
            restored.advance_to(t),
            "completions diverged after restore"
        );
        assert_eq!(
            orig.power_w().to_bits(),
            restored.power_w().to_bits(),
            "power draw diverged after restore"
        );
    }
    assert_eq!(orig.inflight(), 0);
    assert_eq!(restored.inflight(), 0);
}

#[test]
fn ssd_roundtrip_is_bit_exact() {
    for seed in [1u64, 7, 42] {
        assert_roundtrip_equiv(&move || Box::new(catalog::ssd2_d7_p5510(seed)));
        assert_roundtrip_equiv(&move || Box::new(catalog::ssd1_pm9a3(seed)));
    }
}

#[test]
fn hdd_roundtrip_is_bit_exact() {
    for seed in [1u64, 42] {
        assert_roundtrip_equiv(&move || Box::new(catalog::hdd_exos_7e2000(seed)));
    }
}

#[test]
fn fault_injector_roundtrip_is_bit_exact() {
    let make = || {
        let plan = FaultPlan::none()
            .io_errors(0.05)
            .latency_spikes(0.4, SimDuration::from_millis(20));
        Box::new(FaultInjector::seeded(
            Box::new(catalog::ssd2_d7_p5510(3)),
            plan,
            99,
        )) as Box<dyn StorageDevice>
    };
    assert_roundtrip_equiv(&make);
}

#[test]
fn fault_injector_roundtrip_preserves_stats_and_held() {
    let plan = FaultPlan::none().latency_spikes(1.0, SimDuration::from_secs(5));
    let mut orig = FaultInjector::seeded(Box::new(catalog::ssd2_d7_p5510(1)), plan.clone(), 2);
    orig.submit(IoRequest::new(IoId(0), IoKind::Read, 0, 4 * KIB))
        .unwrap();
    // Advance to the inner completion time: the spike holds the completion.
    while orig.inner().inflight() > 0 {
        let t = orig.next_event().unwrap();
        orig.advance_to(t);
    }
    assert_eq!(orig.inflight(), 1, "precondition: one held completion");

    let mut w = SnapWriter::new();
    orig.write_state(&mut w).unwrap();
    let mut restored = FaultInjector::seeded(Box::new(catalog::ssd2_d7_p5510(1)), plan, 2);
    let payload = w.into_payload();
    let mut r = SnapReader::new(&payload);
    restored.read_state(&mut r).unwrap();
    r.finish().unwrap();

    assert_eq!(restored.stats(), orig.stats());
    assert_eq!(restored.inflight(), 1, "held completion survives restore");
    let t = restored.next_event().unwrap();
    assert_eq!(restored.advance_to(t), orig.advance_to(t));
}

#[test]
fn standby_transition_survives_restore() {
    let mut orig = catalog::hdd_exos_7e2000(5);
    orig.request_standby().unwrap();
    // Snapshot mid spin-down, before the transition completes.
    let mut w = SnapWriter::new();
    StorageDevice::write_state(&orig, &mut w).unwrap();
    let mut restored = catalog::hdd_exos_7e2000(5);
    let payload = w.into_payload();
    let mut r = SnapReader::new(&payload);
    StorageDevice::read_state(&mut restored, &mut r).unwrap();
    r.finish().unwrap();

    assert_eq!(orig.standby_state(), restored.standby_state());
    loop {
        let (a, b) = (orig.next_event(), restored.next_event());
        assert_eq!(a, b);
        let Some(t) = a else { break };
        orig.advance_to(t);
        restored.advance_to(t);
        assert_eq!(orig.power_w().to_bits(), restored.power_w().to_bits());
        assert_eq!(orig.standby_state(), restored.standby_state());
    }
}

#[test]
fn truncated_device_state_fails_closed() {
    let orig = catalog::ssd2_d7_p5510(1);
    let mut w = SnapWriter::new();
    StorageDevice::write_state(&orig, &mut w).unwrap();
    let payload = w.into_payload();
    let mut restored = catalog::ssd2_d7_p5510(1);
    let mut r = SnapReader::new(&payload[..payload.len() / 2]);
    match StorageDevice::read_state(&mut restored, &mut r) {
        Err(SnapError::Truncated { .. }) | Err(SnapError::InvalidValue(_)) => {}
        other => panic!("expected typed failure on truncation, got {other:?}"),
    }
}
