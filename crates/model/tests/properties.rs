//! Property-based tests of the model layer: frontier correctness, solver
//! optimality against brute force, and fleet-allocation feasibility.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use proptest::prelude::*;

use powadapt_device::{PowerStateId, KIB};
use powadapt_io::Workload;
use powadapt_model::{
    best_under_power_budget, cheapest_above_throughput, pareto_frontier, ConfigPoint, FleetModel,
    PowerThroughputModel,
};

fn pt(device: &str, power: f64, thr: f64) -> ConfigPoint {
    ConfigPoint::new(
        device,
        Workload::RandWrite,
        PowerStateId(0),
        4 * KIB,
        1,
        power,
        thr,
    )
}

fn point_cloud() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((1.0f64..20.0, 1.0f64..1000.0), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The frontier contains no dominated point and loses no undominated one.
    #[test]
    fn frontier_is_exactly_the_undominated_set(cloud in point_cloud()) {
        let points: Vec<ConfigPoint> =
            cloud.iter().map(|&(p, t)| pt("D", p, t)).collect();
        let frontier = pareto_frontier(&points);
        // Nothing on the frontier is dominated.
        for f in &frontier {
            prop_assert!(!points.iter().any(|q| q.dominates(f)));
        }
        // Every undominated point's coordinates appear on the frontier.
        for p in &points {
            let undominated = !points.iter().any(|q| q.dominates(p));
            if undominated {
                prop_assert!(
                    frontier.iter().any(|f| f.power_w() == p.power_w()
                        && f.throughput_bps() == p.throughput_bps()),
                    "lost undominated point ({}, {})",
                    p.power_w(), p.throughput_bps()
                );
            }
        }
    }

    /// The budget solver is optimal: brute force over all points never
    /// finds a better feasible throughput.
    #[test]
    fn budget_solver_matches_brute_force(cloud in point_cloud(), budget in 1.0f64..25.0) {
        let points: Vec<ConfigPoint> =
            cloud.iter().map(|&(p, t)| pt("D", p, t)).collect();
        let model = PowerThroughputModel::from_points("D", points.clone()).unwrap();
        let solver = best_under_power_budget(&model, budget);
        let brute = points
            .iter()
            .filter(|p| p.power_w() <= budget)
            .map(powadapt_model::ConfigPoint::throughput_bps)
            .fold(f64::NEG_INFINITY, f64::max);
        match solver {
            Some(choice) => {
                prop_assert!(choice.power_w() <= budget);
                prop_assert!((choice.throughput_bps() - brute).abs() < 1e-9);
            }
            None => prop_assert!(brute.is_infinite(), "solver missed a feasible point"),
        }
    }

    /// The floor solver is optimal in the other direction.
    #[test]
    fn floor_solver_matches_brute_force(cloud in point_cloud(), floor in 1.0f64..1200.0) {
        let points: Vec<ConfigPoint> =
            cloud.iter().map(|&(p, t)| pt("D", p, t)).collect();
        let model = PowerThroughputModel::from_points("D", points.clone()).unwrap();
        let solver = cheapest_above_throughput(&model, floor);
        let brute = points
            .iter()
            .filter(|p| p.throughput_bps() >= floor)
            .map(powadapt_model::ConfigPoint::power_w)
            .fold(f64::INFINITY, f64::min);
        match solver {
            Some(choice) => {
                prop_assert!(choice.throughput_bps() >= floor);
                prop_assert!((choice.power_w() - brute).abs() < 1e-9);
            }
            None => prop_assert!(brute.is_infinite(), "solver missed a feasible point"),
        }
    }

    /// Fleet allocation never exceeds the budget and always assigns exactly
    /// one configuration per device.
    #[test]
    fn fleet_allocation_is_feasible(
        clouds in prop::collection::vec(point_cloud(), 2..5),
        budget in 5.0f64..80.0,
    ) {
        let models: Vec<PowerThroughputModel> = clouds
            .iter()
            .enumerate()
            .map(|(i, cloud)| {
                let name = format!("D{i}");
                let pts: Vec<ConfigPoint> =
                    cloud.iter().map(|&(p, t)| pt(&name, p, t)).collect();
                PowerThroughputModel::from_points(name, pts).unwrap()
            })
            .collect();
        let n = models.len();
        let fleet = FleetModel::new(models);
        if let Some(alloc) = fleet.allocate(budget, 0.05) {
            prop_assert_eq!(alloc.choices.len(), n);
            prop_assert!(
                alloc.total_power_w <= budget + 1e-9,
                "allocation {} exceeds budget {}",
                alloc.total_power_w, budget
            );
            let sum: f64 = alloc.choices.iter().map(ConfigPoint::throughput_bps).sum();
            prop_assert!((sum - alloc.total_throughput_bps).abs() < 1e-6);
        } else {
            // Infeasible must mean the minimum powers don't fit.
            prop_assert!(fleet.min_power_w() > budget - 0.25,
                "allocator gave up with floor {} under budget {}",
                fleet.min_power_w(), budget);
        }
    }

    /// Fleet allocation is near-optimal versus brute force on tiny instances
    /// (two devices, few options): within one resolution step.
    #[test]
    fn fleet_allocation_is_near_optimal_on_small_instances(
        a in prop::collection::vec((1.0f64..10.0, 1.0f64..100.0), 1..5),
        b in prop::collection::vec((1.0f64..10.0, 1.0f64..100.0), 1..5),
        budget in 2.0f64..25.0,
    ) {
        let pa: Vec<ConfigPoint> = a.iter().map(|&(p, t)| pt("A", p, t)).collect();
        let pb: Vec<ConfigPoint> = b.iter().map(|&(p, t)| pt("B", p, t)).collect();
        let ma = PowerThroughputModel::from_points("A", pa.clone()).unwrap();
        let mb = PowerThroughputModel::from_points("B", pb.clone()).unwrap();
        let fleet = FleetModel::new(vec![ma, mb]);

        let mut brute = f64::NEG_INFINITY;
        for x in &pa {
            for y in &pb {
                if x.power_w() + y.power_w() <= budget {
                    brute = brute.max(x.throughput_bps() + y.throughput_bps());
                }
            }
        }
        let alloc = fleet.allocate(budget, 0.01);
        match alloc {
            Some(al) => {
                prop_assert!(brute.is_finite());
                // The DP rounds powers up to the resolution, so it may
                // reject a knife-edge combination; allow that slack.
                let slack_budget = budget - 0.03;
                let mut brute_slack = f64::NEG_INFINITY;
                for x in &pa {
                    for y in &pb {
                        if x.power_w() + y.power_w() <= slack_budget {
                            brute_slack = brute_slack.max(x.throughput_bps() + y.throughput_bps());
                        }
                    }
                }
                prop_assert!(
                    al.total_throughput_bps >= brute_slack - 1e-9,
                    "allocator {} vs brute {} (budget {})",
                    al.total_throughput_bps, brute, budget
                );
            }
            None => prop_assert!(
                brute.is_infinite() || fleet.min_power_w() > budget - 0.05,
                "allocator returned None but brute found {brute}"
            ),
        }
    }
}
