//! Pareto frontier extraction over (power ↓, throughput ↑).

use crate::point::ConfigPoint;

/// Returns the Pareto-optimal subset of `points`: configurations for which
/// no other point offers at least the throughput at no more power.
///
/// The result is sorted by ascending power (and therefore ascending
/// throughput). Duplicate coordinates are collapsed to one representative.
///
/// # Examples
///
/// ```
/// use powadapt_model::{pareto_frontier, ConfigPoint};
/// use powadapt_device::{PowerStateId, KIB};
/// use powadapt_io::Workload;
///
/// let mk = |p, t| ConfigPoint::new("D", Workload::RandWrite, PowerStateId(0), 4 * KIB, 1, p, t);
/// let frontier = pareto_frontier(&[mk(5.0, 100.0), mk(6.0, 90.0), mk(8.0, 200.0)]);
/// // (6.0, 90.0) is dominated by (5.0, 100.0).
/// assert_eq!(frontier.len(), 2);
/// ```
pub fn pareto_frontier(points: &[ConfigPoint]) -> Vec<ConfigPoint> {
    let mut sorted: Vec<&ConfigPoint> = points.iter().collect();
    // Ascending power; for equal power, descending throughput so the best
    // representative comes first.
    sorted.sort_by(|a, b| {
        a.power_w()
            .total_cmp(&b.power_w())
            .then(b.throughput_bps().total_cmp(&a.throughput_bps()))
    });
    let mut frontier: Vec<ConfigPoint> = Vec::new();
    let mut best_throughput = f64::NEG_INFINITY;
    for p in sorted {
        if p.throughput_bps() > best_throughput {
            best_throughput = p.throughput_bps();
            frontier.push(p.clone());
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{PowerStateId, KIB};
    use powadapt_io::Workload;

    fn pt(power: f64, thr: f64) -> ConfigPoint {
        ConfigPoint::new(
            "D",
            Workload::RandWrite,
            PowerStateId(0),
            4 * KIB,
            1,
            power,
            thr,
        )
    }

    #[test]
    fn removes_dominated_points() {
        let f = pareto_frontier(&[
            pt(5.0, 100.0),
            pt(6.0, 90.0), // dominated
            pt(7.0, 150.0),
            pt(7.5, 140.0), // dominated
            pt(10.0, 300.0),
        ]);
        let coords: Vec<(f64, f64)> = f
            .iter()
            .map(|p| (p.power_w(), p.throughput_bps()))
            .collect();
        assert_eq!(coords, vec![(5.0, 100.0), (7.0, 150.0), (10.0, 300.0)]);
    }

    #[test]
    fn frontier_is_monotone() {
        let pts: Vec<ConfigPoint> = (0..50)
            .map(|i| pt((i * 7 % 13) as f64 + 1.0, ((i * 11) % 17) as f64 * 10.0))
            .collect();
        let f = pareto_frontier(&pts);
        for w in f.windows(2) {
            assert!(w[0].power_w() < w[1].power_w());
            assert!(w[0].throughput_bps() < w[1].throughput_bps());
        }
    }

    #[test]
    fn equal_power_keeps_best_throughput() {
        let f = pareto_frontier(&[pt(5.0, 100.0), pt(5.0, 120.0)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].throughput_bps(), 120.0);
    }

    #[test]
    fn no_point_on_frontier_is_dominated() {
        let pts: Vec<ConfigPoint> = (0..100)
            .map(|i| {
                let x = (i as f64 * 0.37).sin().abs() * 10.0 + 1.0;
                let y = (i as f64 * 0.73).cos().abs() * 1000.0;
                pt(x, y)
            })
            .collect();
        let f = pareto_frontier(&pts);
        for a in &f {
            assert!(!pts.iter().any(|b| b.dominates(a)), "{a} is dominated");
        }
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        assert_eq!(pareto_frontier(&[pt(5.0, 1.0)]).len(), 1);
    }
}
