//! Combining per-device models into a fleet-level allocation — the paper's
//! "power-throughput models of multiple devices can be combined to derive
//! the performance Pareto frontier of device configurations under a power
//! budget" (§3.3).

use std::fmt;

use crate::model::PowerThroughputModel;
use crate::pareto::pareto_frontier;
use crate::point::ConfigPoint;

/// A set of per-device power-throughput models considered together.
#[derive(Debug, Clone)]
pub struct FleetModel {
    models: Vec<PowerThroughputModel>,
}

/// One fleet configuration: a chosen point per device.
#[derive(Debug, Clone)]
pub struct FleetAllocation {
    /// Chosen configuration for each device, in model order.
    pub choices: Vec<ConfigPoint>,
    /// Sum of per-device powers, in watts.
    pub total_power_w: f64,
    /// Sum of per-device throughputs, in bytes/second.
    pub total_throughput_bps: f64,
}

impl fmt::Display for FleetAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {:.2} W total, {:.0} MiB/s total",
            self.total_power_w,
            self.total_throughput_bps / (1024.0 * 1024.0)
        )?;
        for c in &self.choices {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

impl FleetModel {
    /// Creates a fleet from per-device models.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new(models: Vec<PowerThroughputModel>) -> Self {
        assert!(!models.is_empty(), "fleet needs at least one device model");
        FleetModel { models }
    }

    /// The per-device models.
    pub fn models(&self) -> &[PowerThroughputModel] {
        &self.models
    }

    /// Sum of per-device minimum powers — the lowest budget any allocation
    /// can satisfy.
    pub fn min_power_w(&self) -> f64 {
        self.models
            .iter()
            .map(PowerThroughputModel::min_power_w)
            .sum()
    }

    /// Sum of per-device maximum powers.
    pub fn max_power_w(&self) -> f64 {
        self.models
            .iter()
            .map(PowerThroughputModel::max_power_w)
            .sum()
    }

    /// Finds the throughput-maximizing assignment of one configuration per
    /// device subject to a total power budget (multiple-choice knapsack,
    /// solved by dynamic programming over `resolution_w` power bins).
    ///
    /// Returns `None` if even the minimum-power configurations exceed the
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget_w` or `resolution_w` is not positive.
    pub fn allocate(&self, budget_w: f64, resolution_w: f64) -> Option<FleetAllocation> {
        assert!(budget_w > 0.0, "budget must be positive");
        assert!(resolution_w > 0.0, "resolution must be positive");
        if self.min_power_w() > budget_w {
            return None;
        }

        let bins = (budget_w / resolution_w).floor() as usize + 1;
        // Per-device candidate lists: the Pareto frontier suffices.
        let options: Vec<Vec<ConfigPoint>> = self
            .models
            .iter()
            .map(|m| pareto_frontier(m.points()))
            .collect();
        // Conservative (rounded-up) bin cost per option.
        let cost = |p: &ConfigPoint| -> usize { (p.power_w() / resolution_w).ceil() as usize };

        // dp[b] = best total throughput using at most b bins; choice[j][b] =
        // option index picked for device j at budget b.
        let mut dp = vec![Some(0.0f64); bins];
        let mut choices: Vec<Vec<Option<usize>>> = Vec::with_capacity(options.len());
        for opts in &options {
            let mut next = vec![None::<f64>; bins];
            let mut choice_row = vec![None::<usize>; bins];
            for b in 0..bins {
                for (i, p) in opts.iter().enumerate() {
                    let c = cost(p);
                    if c > b {
                        continue;
                    }
                    if let Some(prev) = dp[b - c] {
                        let total = prev + p.throughput_bps();
                        if next[b].is_none_or(|cur| total > cur) {
                            next[b] = Some(total);
                            choice_row[b] = Some(i);
                        }
                    }
                }
                // Allow carrying a smaller-budget solution forward.
                if b > 0 {
                    if let (Some(prev_b), Some(_)) = (next[b - 1], next[b]) {
                        if prev_b > next[b].expect("checked") {
                            next[b] = next[b - 1];
                            choice_row[b] = choice_row[b - 1];
                        }
                    } else if next[b].is_none() {
                        next[b] = next[b - 1];
                        choice_row[b] = choice_row[b - 1];
                    }
                }
            }
            dp = next;
            choices.push(choice_row);
        }

        // Walk back from the full budget.
        let mut b = bins - 1;
        dp[b]?;
        let mut picked: Vec<ConfigPoint> = Vec::with_capacity(options.len());
        for (j, opts) in options.iter().enumerate().rev() {
            // Find the effective bin this row's choice was recorded at.
            let mut bb = b;
            while choices[j][bb].is_none() && bb > 0 {
                bb -= 1;
            }
            let i = choices[j][bb]?;
            let p = opts[i].clone();
            b = bb - cost(&p).min(bb);
            picked.push(p);
        }
        picked.reverse();
        let total_power_w = picked.iter().map(ConfigPoint::power_w).sum();
        let total_throughput_bps = picked.iter().map(ConfigPoint::throughput_bps).sum();
        Some(FleetAllocation {
            choices: picked,
            total_power_w,
            total_throughput_bps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{PowerStateId, KIB};
    use powadapt_io::Workload;

    fn pt(device: &str, power: f64, thr: f64) -> ConfigPoint {
        ConfigPoint::new(
            device,
            Workload::RandWrite,
            PowerStateId(0),
            4 * KIB,
            1,
            power,
            thr,
        )
    }

    fn two_device_fleet() -> FleetModel {
        let a = PowerThroughputModel::from_points(
            "A",
            vec![
                pt("A", 2.0, 100.0),
                pt("A", 5.0, 500.0),
                pt("A", 10.0, 800.0),
            ],
        )
        .unwrap();
        let b = PowerThroughputModel::from_points(
            "B",
            vec![pt("B", 1.0, 50.0), pt("B", 4.0, 400.0), pt("B", 8.0, 600.0)],
        )
        .unwrap();
        FleetModel::new(vec![a, b])
    }

    #[test]
    fn fleet_bounds() {
        let f = two_device_fleet();
        assert_eq!(f.min_power_w(), 3.0);
        assert_eq!(f.max_power_w(), 18.0);
        assert_eq!(f.models().len(), 2);
    }

    #[test]
    fn generous_budget_picks_peaks() {
        let f = two_device_fleet();
        let alloc = f.allocate(20.0, 0.1).unwrap();
        assert_eq!(alloc.total_throughput_bps, 1400.0);
        assert!((alloc.total_power_w - 18.0).abs() < 1e-9);
    }

    #[test]
    fn tight_budget_allocates_optimally() {
        let f = two_device_fleet();
        // Budget 9.5: optimal is A@5 (500) + B@4 (400) = 900 at 9 W.
        let alloc = f.allocate(9.5, 0.05).unwrap();
        assert_eq!(alloc.total_throughput_bps, 900.0);
        assert!(alloc.total_power_w <= 9.5);
    }

    #[test]
    fn asymmetric_budget_prefers_better_device() {
        let f = two_device_fleet();
        // Budget 7: A@5 (500) + B@1 (50) = 550 beats A@2 (100) + B@4 (400) = 500.
        let alloc = f.allocate(7.0, 0.05).unwrap();
        assert_eq!(alloc.total_throughput_bps, 550.0);
    }

    #[test]
    fn impossible_budget_returns_none() {
        let f = two_device_fleet();
        assert!(f.allocate(2.5, 0.1).is_none());
    }

    #[test]
    fn every_device_gets_exactly_one_choice() {
        let f = two_device_fleet();
        let alloc = f.allocate(12.0, 0.1).unwrap();
        assert_eq!(alloc.choices.len(), 2);
        assert_eq!(alloc.choices[0].device(), "A");
        assert_eq!(alloc.choices[1].device(), "B");
    }

    #[test]
    fn allocation_power_never_exceeds_budget() {
        let f = two_device_fleet();
        for budget in [3.0, 4.0, 6.0, 9.0, 11.0, 15.0, 18.0] {
            if let Some(a) = f.allocate(budget, 0.05) {
                assert!(
                    a.total_power_w <= budget + 1e-9,
                    "budget {budget}: allocated {}",
                    a.total_power_w
                );
            }
        }
    }

    #[test]
    fn display_lists_choices() {
        let f = two_device_fleet();
        let alloc = f.allocate(20.0, 0.1).unwrap();
        let s = alloc.to_string();
        assert!(s.contains("fleet") && s.contains('A') && s.contains('B'));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_panics() {
        let _ = FleetModel::new(vec![]);
    }
}
