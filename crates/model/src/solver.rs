//! Configuration selection under power and performance constraints — the
//! §3.3 use case: "for a power reduction of X %, the model suggests
//! configuration C with a throughput reduction of Y %".

use std::fmt;

use crate::model::PowerThroughputModel;
use crate::pareto::pareto_frontier;
use crate::point::ConfigPoint;

/// A curtailment plan: the configuration change a power-adaptive storage
/// system makes in response to a power-reduction event, and the best-effort
/// load it must shed (§3.3's 1.3 GiB/s example).
#[derive(Debug, Clone)]
pub struct CurtailmentPlan {
    /// The configuration the device operates in before the event.
    pub from: ConfigPoint,
    /// The chosen configuration under the reduced budget.
    pub to: ConfigPoint,
    /// Power budget the plan satisfies, in watts.
    pub budget_w: f64,
}

impl CurtailmentPlan {
    /// Fraction of power saved relative to the starting configuration.
    pub fn power_reduction(&self) -> f64 {
        1.0 - self.to.power_w() / self.from.power_w()
    }

    /// Fraction of throughput lost relative to the starting configuration.
    pub fn throughput_reduction(&self) -> f64 {
        1.0 - self.to.throughput_bps() / self.from.throughput_bps()
    }

    /// Best-effort load to shed, in bytes/second: the throughput delta the
    /// storage system can no longer serve.
    pub fn curtailed_bps(&self) -> f64 {
        (self.from.throughput_bps() - self.to.throughput_bps()).max(0.0)
    }
}

impl fmt::Display for CurtailmentPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "-{:.0}% power (to {:.2} W) via [{}]: -{:.0}% throughput, shed {:.2} GiB/s",
            100.0 * self.power_reduction(),
            self.to.power_w(),
            self.to,
            100.0 * self.throughput_reduction(),
            self.curtailed_bps() / (1024.0 * 1024.0 * 1024.0)
        )
    }
}

/// The highest-throughput configuration whose power does not exceed
/// `budget_w`, or `None` if no configuration fits.
pub fn best_under_power_budget(model: &PowerThroughputModel, budget_w: f64) -> Option<ConfigPoint> {
    pareto_frontier(model.points())
        .into_iter()
        .rfind(|p| p.power_w() <= budget_w)
}

/// The lowest-power configuration whose throughput is at least
/// `floor_bps`, or `None` if the floor is unreachable.
pub fn cheapest_above_throughput(
    model: &PowerThroughputModel,
    floor_bps: f64,
) -> Option<ConfigPoint> {
    pareto_frontier(model.points())
        .into_iter()
        .find(|p| p.throughput_bps() >= floor_bps)
}

/// Plans a response to a fractional power-reduction event: starting from
/// the device's peak-throughput configuration, finds the best configuration
/// under `(1 − reduction) ×` the starting power.
///
/// Returns `None` if no configuration fits the reduced budget (the device
/// would need standby or IO redirection instead).
///
/// # Panics
///
/// Panics if `reduction` is not within `[0, 1)`.
///
/// # Examples
///
/// ```
/// use powadapt_model::{plan_power_reduction, ConfigPoint, PowerThroughputModel};
/// use powadapt_device::{PowerStateId, KIB};
/// use powadapt_io::Workload;
///
/// let mk = |d: usize, p, t| ConfigPoint::new(
///     "SSD1", Workload::RandWrite, PowerStateId(0), 256 * KIB, d, p, t);
/// let model = PowerThroughputModel::from_points(
///     "SSD1",
///     vec![mk(64, 8.19, 3.3e9), mk(1, 6.55, 2.0e9)],
/// ).unwrap();
/// let plan = plan_power_reduction(&model, 0.20).unwrap();
/// assert_eq!(plan.to.depth(), 1);
/// assert!(plan.throughput_reduction() > 0.3);
/// ```
pub fn plan_power_reduction(
    model: &PowerThroughputModel,
    reduction: f64,
) -> Option<CurtailmentPlan> {
    assert!(
        (0.0..1.0).contains(&reduction),
        "reduction {reduction} must be in [0, 1)"
    );
    let from = model.peak_throughput_point().clone();
    let budget_w = from.power_w() * (1.0 - reduction);
    let to = best_under_power_budget(model, budget_w)?;
    Some(CurtailmentPlan { from, to, budget_w })
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{PowerStateId, KIB};
    use powadapt_io::Workload;

    fn pt(depth: usize, power: f64, thr: f64) -> ConfigPoint {
        ConfigPoint::new(
            "D",
            Workload::RandWrite,
            PowerStateId(0),
            256 * KIB,
            depth,
            power,
            thr,
        )
    }

    fn model() -> PowerThroughputModel {
        PowerThroughputModel::from_points(
            "D",
            vec![
                pt(64, 10.0, 1000.0),
                pt(16, 8.0, 800.0),
                pt(4, 7.0, 500.0),
                pt(1, 6.0, 300.0),
                pt(2, 9.5, 100.0), // dominated
            ],
        )
        .unwrap()
    }

    #[test]
    fn budget_selection_maximizes_throughput() {
        let m = model();
        assert_eq!(
            best_under_power_budget(&m, 10.0).unwrap().throughput_bps(),
            1000.0
        );
        assert_eq!(
            best_under_power_budget(&m, 8.5).unwrap().throughput_bps(),
            800.0
        );
        assert_eq!(
            best_under_power_budget(&m, 6.5).unwrap().throughput_bps(),
            300.0
        );
        assert!(best_under_power_budget(&m, 5.0).is_none());
    }

    #[test]
    fn floor_selection_minimizes_power() {
        let m = model();
        assert_eq!(cheapest_above_throughput(&m, 300.0).unwrap().power_w(), 6.0);
        assert_eq!(cheapest_above_throughput(&m, 600.0).unwrap().power_w(), 8.0);
        assert!(cheapest_above_throughput(&m, 2000.0).is_none());
    }

    #[test]
    fn reduction_plan_walks_the_frontier() {
        let m = model();
        // -20% from 10 W -> budget 8 W -> depth-16 point.
        let plan = plan_power_reduction(&m, 0.20).unwrap();
        assert_eq!(plan.to.depth(), 16);
        assert!((plan.power_reduction() - 0.2).abs() < 1e-12);
        assert!((plan.throughput_reduction() - 0.2).abs() < 1e-12);
        assert!((plan.curtailed_bps() - 200.0).abs() < 1e-9);
        assert!((plan.budget_w - 8.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_reduction_returns_none() {
        let m = model();
        assert!(plan_power_reduction(&m, 0.5).is_none(), "below min power");
    }

    #[test]
    fn zero_reduction_keeps_peak() {
        let m = model();
        let plan = plan_power_reduction(&m, 0.0).unwrap();
        assert_eq!(plan.to.throughput_bps(), 1000.0);
        assert_eq!(plan.curtailed_bps(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn out_of_range_reduction_panics() {
        let _ = plan_power_reduction(&model(), 1.0);
    }

    #[test]
    fn plan_display_mentions_power_and_shed() {
        let plan = plan_power_reduction(&model(), 0.2).unwrap();
        let s = plan.to_string();
        assert!(s.contains("power") && s.contains("GiB/s"));
    }
}
