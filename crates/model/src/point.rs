//! Configuration points: one measured (power, throughput) coordinate per
//! combination of power control mechanisms.

use std::fmt;

use powadapt_device::PowerStateId;
use powadapt_io::{SweepPoint, Workload};
use powadapt_sim::units::Micros;

/// One point of a power-throughput model: a device configuration (power
/// state + IO shape) and the power and performance measured under it.
///
/// # Examples
///
/// ```
/// use powadapt_model::ConfigPoint;
/// use powadapt_device::{PowerStateId, KIB};
/// use powadapt_io::Workload;
///
/// let p = ConfigPoint::new(
///     "SSD2",
///     Workload::RandWrite,
///     PowerStateId(1),
///     256 * KIB,
///     64,
///     11.5,
///     2.1e9,
/// );
/// assert_eq!(p.device(), "SSD2");
/// assert_eq!(p.power_w(), 11.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigPoint {
    device: String,
    workload: Workload,
    power_state: PowerStateId,
    chunk: u64,
    depth: usize,
    power_w: f64,
    throughput_bps: f64,
    avg_latency_us: f64,
    p99_latency_us: f64,
}

impl ConfigPoint {
    /// Creates a point from explicit coordinates (latencies default to 0;
    /// use [`ConfigPoint::with_latencies`] to set them).
    ///
    /// # Panics
    ///
    /// Panics if `power_w` or `throughput_bps` is negative or not finite.
    pub fn new(
        device: impl Into<String>,
        workload: Workload,
        power_state: PowerStateId,
        chunk: u64,
        depth: usize,
        power_w: f64,
        throughput_bps: f64,
    ) -> Self {
        assert!(
            power_w.is_finite() && power_w >= 0.0,
            "power must be non-negative, got {power_w}"
        );
        assert!(
            throughput_bps.is_finite() && throughput_bps >= 0.0,
            "throughput must be non-negative, got {throughput_bps}"
        );
        ConfigPoint {
            device: device.into(),
            workload,
            power_state,
            chunk,
            depth,
            power_w,
            throughput_bps,
            avg_latency_us: 0.0,
            p99_latency_us: 0.0,
        }
    }

    /// Attaches latency coordinates (unit-typed; see `powadapt-lint` D4).
    pub fn with_latencies(mut self, avg_us: Micros, p99_us: Micros) -> Self {
        self.avg_latency_us = avg_us.get();
        self.p99_latency_us = p99_us.get();
        self
    }

    /// Paper label of the device.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Workload the point was measured under.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Device power state.
    pub fn power_state(&self) -> PowerStateId {
        self.power_state
    }

    /// IO chunk size in bytes.
    pub fn chunk(&self) -> u64 {
        self.chunk
    }

    /// IO queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Average measured power in watts.
    pub fn power_w(&self) -> f64 {
        self.power_w
    }

    /// Measured throughput in bytes/second.
    pub fn throughput_bps(&self) -> f64 {
        self.throughput_bps
    }

    /// Average latency in microseconds (0 if not recorded).
    pub fn avg_latency_us(&self) -> f64 {
        self.avg_latency_us
    }

    /// p99 latency in microseconds (0 if not recorded).
    pub fn p99_latency_us(&self) -> f64 {
        self.p99_latency_us
    }

    /// True if `self` Pareto-dominates `other`: no more power, no less
    /// throughput, and strictly better in at least one.
    pub fn dominates(&self, other: &ConfigPoint) -> bool {
        let no_worse = self.power_w <= other.power_w && self.throughput_bps >= other.throughput_bps;
        let better = self.power_w < other.power_w || self.throughput_bps > other.throughput_bps;
        no_worse && better
    }
}

impl From<&SweepPoint> for ConfigPoint {
    fn from(sp: &SweepPoint) -> Self {
        ConfigPoint::new(
            sp.result.device_label.clone(),
            sp.workload,
            sp.power_state,
            sp.chunk,
            sp.depth,
            sp.result.avg_power_w(),
            sp.result.io.throughput_bps(),
        )
        .with_latencies(
            Micros::new(sp.result.io.avg_latency_us()),
            Micros::new(sp.result.io.p99_latency_us()),
        )
    }
}

impl fmt::Display for ConfigPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} bs={}KiB qd={}: {:.2} W, {:.0} MiB/s",
            self.device,
            self.workload,
            self.power_state,
            self.chunk / 1024,
            self.depth,
            self.power_w,
            self.throughput_bps / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::KIB;

    fn pt(power: f64, thr: f64) -> ConfigPoint {
        ConfigPoint::new(
            "D",
            Workload::RandWrite,
            PowerStateId(0),
            4 * KIB,
            1,
            power,
            thr,
        )
    }

    #[test]
    fn accessors_round_trip() {
        let p = ConfigPoint::new(
            "SSD1",
            Workload::SeqRead,
            PowerStateId(2),
            64 * KIB,
            16,
            7.5,
            1e9,
        )
        .with_latencies(Micros::new(100.0), Micros::new(900.0));
        assert_eq!(p.device(), "SSD1");
        assert_eq!(p.workload(), Workload::SeqRead);
        assert_eq!(p.power_state(), PowerStateId(2));
        assert_eq!(p.chunk(), 64 * KIB);
        assert_eq!(p.depth(), 16);
        assert_eq!(p.power_w(), 7.5);
        assert_eq!(p.throughput_bps(), 1e9);
        assert_eq!(p.avg_latency_us(), 100.0);
        assert_eq!(p.p99_latency_us(), 900.0);
    }

    #[test]
    fn dominance() {
        assert!(pt(5.0, 100.0).dominates(&pt(6.0, 100.0)));
        assert!(pt(5.0, 120.0).dominates(&pt(5.0, 100.0)));
        assert!(pt(4.0, 120.0).dominates(&pt(5.0, 100.0)));
        assert!(!pt(5.0, 100.0).dominates(&pt(5.0, 100.0)), "equal points");
        assert!(!pt(4.0, 90.0).dominates(&pt(5.0, 100.0)), "trade-off");
    }

    #[test]
    #[should_panic(expected = "power must be non-negative")]
    fn rejects_negative_power() {
        let _ = pt(-1.0, 1.0);
    }

    #[test]
    fn display_contains_coordinates() {
        let s = pt(5.0, 1e9).to_string();
        assert!(s.contains('W') && s.contains("MiB/s"));
    }
}
