//! The per-device power-throughput model (§3.3, Figure 10).

use std::fmt;

use powadapt_io::SweepPoint;

use crate::point::ConfigPoint;

/// A power-throughput model for one device under one workload class: the
/// set of (power, throughput) points reachable by varying power state and
/// IO shape.
///
/// Normalization follows the paper: each point is divided by the device's
/// maximum average power and maximum throughput *within this model*
/// (Figure 10 normalizes per device, per workload).
///
/// # Examples
///
/// ```
/// use powadapt_model::{ConfigPoint, PowerThroughputModel};
/// use powadapt_device::{PowerStateId, KIB};
/// use powadapt_io::Workload;
///
/// let points = vec![
///     ConfigPoint::new("D", Workload::RandWrite, PowerStateId(0), 4 * KIB, 1, 5.0, 1e8),
///     ConfigPoint::new("D", Workload::RandWrite, PowerStateId(0), 4 * KIB, 64, 10.0, 1e9),
/// ];
/// let model = PowerThroughputModel::from_points("D", points).unwrap();
/// assert_eq!(model.max_power_w(), 10.0);
/// // Dynamic range: (10 - 5) / 10.
/// assert!((model.power_dynamic_range() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct PowerThroughputModel {
    device: String,
    points: Vec<ConfigPoint>,
    max_power_w: f64,
    min_power_w: f64,
    max_throughput_bps: f64,
}

impl PowerThroughputModel {
    /// Builds a model from points belonging to one device.
    ///
    /// Returns `None` if `points` is empty, contains a different device
    /// label, or has a non-positive maximum power or throughput.
    pub fn from_points(device: impl Into<String>, points: Vec<ConfigPoint>) -> Option<Self> {
        let device = device.into();
        if points.is_empty() || points.iter().any(|p| p.device() != device) {
            return None;
        }
        let max_power_w = points.iter().map(ConfigPoint::power_w).fold(0.0, f64::max);
        let min_power_w = points
            .iter()
            .map(ConfigPoint::power_w)
            .fold(f64::INFINITY, f64::min);
        let max_throughput_bps = points
            .iter()
            .map(ConfigPoint::throughput_bps)
            .fold(0.0, f64::max);
        if max_power_w <= 0.0 || max_throughput_bps <= 0.0 {
            return None;
        }
        Some(PowerThroughputModel {
            device,
            points,
            max_power_w,
            min_power_w,
            max_throughput_bps,
        })
    }

    /// Builds one model per device from a sweep, grouping points by device
    /// label. Devices whose points cannot form a model are skipped.
    pub fn from_sweep(sweep: &[SweepPoint]) -> Vec<PowerThroughputModel> {
        let mut by_device: Vec<(String, Vec<ConfigPoint>)> = Vec::new();
        for sp in sweep {
            let cp = ConfigPoint::from(sp);
            match by_device.iter_mut().find(|(d, _)| d == cp.device()) {
                Some((_, v)) => v.push(cp),
                None => by_device.push((cp.device().to_string(), vec![cp])),
            }
        }
        by_device
            .into_iter()
            .filter_map(|(d, pts)| PowerThroughputModel::from_points(d, pts))
            .collect()
    }

    /// The device label.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// All points in the model.
    pub fn points(&self) -> &[ConfigPoint] {
        &self.points
    }

    /// Maximum average power across the model, in watts.
    pub fn max_power_w(&self) -> f64 {
        self.max_power_w
    }

    /// Minimum average power across the model, in watts.
    pub fn min_power_w(&self) -> f64 {
        self.min_power_w
    }

    /// Maximum throughput across the model, in bytes/second.
    pub fn max_throughput_bps(&self) -> f64 {
        self.max_throughput_bps
    }

    /// `(max − min) / max` power — the paper's headline dynamic-range
    /// metric (59.4 % for SSD2).
    pub fn power_dynamic_range(&self) -> f64 {
        (self.max_power_w - self.min_power_w) / self.max_power_w
    }

    /// Normalized coordinates `(throughput/max, power/max)` for each point —
    /// the axes of Figure 10.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| {
                (
                    p.throughput_bps() / self.max_throughput_bps,
                    p.power_w() / self.max_power_w,
                )
            })
            .collect()
    }

    /// The point with the highest throughput (ties broken by lower power).
    pub fn peak_throughput_point(&self) -> &ConfigPoint {
        self.points
            .iter()
            .reduce(|a, b| {
                if (b.throughput_bps(), -b.power_w()) > (a.throughput_bps(), -a.power_w()) {
                    b
                } else {
                    a
                }
            })
            .expect("model is non-empty by construction")
    }

    /// The lowest normalized throughput across points — the "throughput can
    /// drop to 4 % of maximum" coordinate for the HDD in §3.3.
    pub fn min_normalized_throughput(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.throughput_bps() / self.max_throughput_bps)
            .fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for PowerThroughputModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} points, power {:.2}-{:.2} W (range {:.1}%), max {:.0} MiB/s",
            self.device,
            self.points.len(),
            self.min_power_w,
            self.max_power_w,
            100.0 * self.power_dynamic_range(),
            self.max_throughput_bps / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{PowerStateId, KIB};
    use powadapt_io::Workload;

    fn pt(device: &str, power: f64, thr: f64) -> ConfigPoint {
        ConfigPoint::new(
            device,
            Workload::RandWrite,
            PowerStateId(0),
            4 * KIB,
            1,
            power,
            thr,
        )
    }

    #[test]
    fn model_statistics() {
        let m = PowerThroughputModel::from_points(
            "X",
            vec![pt("X", 4.0, 1e8), pt("X", 8.0, 5e8), pt("X", 10.0, 1e9)],
        )
        .unwrap();
        assert_eq!(m.max_power_w(), 10.0);
        assert_eq!(m.min_power_w(), 4.0);
        assert_eq!(m.max_throughput_bps(), 1e9);
        assert!((m.power_dynamic_range() - 0.6).abs() < 1e-12);
        assert!((m.min_normalized_throughput() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn normalization_maps_to_unit_square() {
        let m = PowerThroughputModel::from_points("X", vec![pt("X", 5.0, 2e8), pt("X", 10.0, 1e9)])
            .unwrap();
        for (t, p) in m.normalized() {
            assert!((0.0..=1.0).contains(&t));
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(m.normalized().iter().any(|&(t, p)| t == 1.0 && p == 1.0));
    }

    #[test]
    fn peak_point_prefers_high_throughput_then_low_power() {
        let m = PowerThroughputModel::from_points(
            "X",
            vec![pt("X", 9.0, 1e9), pt("X", 8.0, 1e9), pt("X", 10.0, 5e8)],
        )
        .unwrap();
        let peak = m.peak_throughput_point();
        assert_eq!(peak.throughput_bps(), 1e9);
        assert_eq!(peak.power_w(), 8.0);
    }

    #[test]
    fn rejects_empty_or_mixed_devices() {
        assert!(PowerThroughputModel::from_points("X", vec![]).is_none());
        assert!(PowerThroughputModel::from_points("X", vec![pt("Y", 1.0, 1.0)]).is_none());
    }

    #[test]
    fn display_mentions_range() {
        let m = PowerThroughputModel::from_points("X", vec![pt("X", 5.0, 1e9), pt("X", 10.0, 2e9)])
            .unwrap();
        assert!(m.to_string().contains('%'));
    }
}
