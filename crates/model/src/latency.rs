//! The latency analogue of the power-throughput model (§4: "For latency, a
//! similar model can be drawn from the measurement results").
//!
//! Where [`PowerThroughputModel`](crate::PowerThroughputModel) answers
//! "what throughput can I buy with this power?", a [`LatencyModel`] answers
//! the QoS-side questions: what does a power cap do to my tail latency, and
//! what is the least power that still meets a latency SLO at a throughput
//! floor?

use std::fmt;

use powadapt_device::PowerStateId;

use crate::point::ConfigPoint;

/// A per-device latency model over measured configuration points.
///
/// Only points carrying latency data (non-zero `avg`/`p99`) participate.
///
/// # Examples
///
/// ```
/// use powadapt_model::{ConfigPoint, LatencyModel};
/// use powadapt_device::{PowerStateId, KIB};
/// use powadapt_io::Workload;
/// use powadapt_sim::units::Micros;
///
/// let mk = |ps: u8, power, p99: f64| ConfigPoint::new(
///     "D", Workload::RandWrite, PowerStateId(ps), 256 * KIB, 1, power, 1e9)
///     .with_latencies(Micros::new(p99 / 5.0), Micros::new(p99));
/// let model = LatencyModel::from_points(vec![mk(0, 10.0, 500.0), mk(2, 7.0, 3000.0)])
///     .unwrap();
/// // Capping to 7 W sextuples the tail.
/// let blowup = model.p99_ratio_vs(PowerStateId(0), PowerStateId(2)).unwrap();
/// assert!((blowup - 6.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyModel {
    points: Vec<ConfigPoint>,
}

impl LatencyModel {
    /// Builds the model, keeping only points with latency data.
    ///
    /// Returns `None` if no point carries latencies.
    pub fn from_points(points: Vec<ConfigPoint>) -> Option<Self> {
        let points: Vec<ConfigPoint> = points
            .into_iter()
            .filter(|p| p.avg_latency_us() > 0.0 && p.p99_latency_us() > 0.0)
            .collect();
        if points.is_empty() {
            return None;
        }
        Some(LatencyModel { points })
    }

    /// The latency-bearing points.
    pub fn points(&self) -> &[ConfigPoint] {
        &self.points
    }

    /// The lowest-power configuration meeting both a p99 ceiling and a
    /// throughput floor, or `None` if the SLO is unreachable.
    pub fn min_power_within(
        &self,
        p99_us_max: f64,
        throughput_floor_bps: f64,
    ) -> Option<&ConfigPoint> {
        self.points
            .iter()
            .filter(|p| {
                p.p99_latency_us() <= p99_us_max && p.throughput_bps() >= throughput_floor_bps
            })
            .min_by(|a, b| a.power_w().total_cmp(&b.power_w()))
    }

    /// The best achievable p99 at or under a power budget, with a
    /// throughput floor, or `None` if nothing fits.
    pub fn best_p99_under(&self, budget_w: f64, throughput_floor_bps: f64) -> Option<&ConfigPoint> {
        self.points
            .iter()
            .filter(|p| p.power_w() <= budget_w && p.throughput_bps() >= throughput_floor_bps)
            .min_by(|a, b| a.p99_latency_us().total_cmp(&b.p99_latency_us()))
    }

    /// The geometric-mean p99 blowup of moving from power state `from` to
    /// `to` across matched IO shapes (chunk, depth) — the Figure 5 summary
    /// statistic. `None` if the states share no shapes.
    pub fn p99_ratio_vs(&self, from: PowerStateId, to: PowerStateId) -> Option<f64> {
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for base in self.points.iter().filter(|p| p.power_state() == from) {
            if let Some(capped) = self.points.iter().find(|p| {
                p.power_state() == to && p.chunk() == base.chunk() && p.depth() == base.depth()
            }) {
                log_sum += (capped.p99_latency_us() / base.p99_latency_us()).ln();
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some((log_sum / n as f64).exp())
        }
    }

    /// The worst (maximum) p99 blowup from `from` to `to` across matched
    /// shapes — the paper's "up to 6.19×" number. `None` if no shapes match.
    pub fn max_p99_ratio_vs(&self, from: PowerStateId, to: PowerStateId) -> Option<f64> {
        let mut max: Option<f64> = None;
        for base in self.points.iter().filter(|p| p.power_state() == from) {
            if let Some(capped) = self.points.iter().find(|p| {
                p.power_state() == to && p.chunk() == base.chunk() && p.depth() == base.depth()
            }) {
                let r = capped.p99_latency_us() / base.p99_latency_us();
                max = Some(max.map_or(r, |m: f64| m.max(r)));
            }
        }
        max
    }

    /// The Pareto frontier over (power ↓, p99 ↓): configurations where no
    /// other point has both lower power and lower tail latency. Sorted by
    /// ascending power.
    pub fn power_latency_frontier(&self) -> Vec<ConfigPoint> {
        let mut sorted: Vec<&ConfigPoint> = self.points.iter().collect();
        sorted.sort_by(|a, b| {
            a.power_w()
                .total_cmp(&b.power_w())
                .then(a.p99_latency_us().total_cmp(&b.p99_latency_us()))
        });
        let mut frontier: Vec<ConfigPoint> = Vec::new();
        let mut best_p99 = f64::INFINITY;
        for p in sorted {
            if p.p99_latency_us() < best_p99 {
                best_p99 = p.p99_latency_us();
                frontier.push(p.clone());
            }
        }
        frontier
    }
}

impl fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let min = self
            .points
            .iter()
            .map(super::point::ConfigPoint::p99_latency_us)
            .fold(f64::INFINITY, f64::min);
        let max = self
            .points
            .iter()
            .map(super::point::ConfigPoint::p99_latency_us)
            .fold(0.0, f64::max);
        write!(
            f,
            "latency model: {} points, p99 {:.0}-{:.0} us",
            self.points.len(),
            min,
            max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::KIB;
    use powadapt_io::Workload;
    use powadapt_sim::units::Micros;

    fn pt(ps: u8, chunk_kib: u64, power: f64, thr: f64, p99: f64) -> ConfigPoint {
        ConfigPoint::new(
            "D",
            Workload::RandWrite,
            PowerStateId(ps),
            chunk_kib * KIB,
            1,
            power,
            thr,
        )
        .with_latencies(Micros::new(p99 / 4.0), Micros::new(p99))
    }

    fn model() -> LatencyModel {
        LatencyModel::from_points(vec![
            pt(0, 4, 6.0, 0.1e9, 50.0),
            pt(0, 256, 10.0, 1.5e9, 120.0),
            pt(0, 2048, 14.0, 3.0e9, 650.0),
            pt(2, 4, 5.5, 0.1e9, 50.0),
            pt(2, 256, 9.5, 0.9e9, 760.0),
            pt(2, 2048, 9.8, 1.5e9, 1950.0),
        ])
        .unwrap()
    }

    #[test]
    fn filters_points_without_latency_data() {
        let no_lat = ConfigPoint::new(
            "D",
            Workload::RandWrite,
            PowerStateId(0),
            4 * KIB,
            1,
            5.0,
            1e9,
        );
        assert!(LatencyModel::from_points(vec![no_lat]).is_none());
        assert_eq!(model().points().len(), 6);
    }

    #[test]
    fn slo_solver_finds_the_cheapest_compliant_point() {
        let m = model();
        // p99 <= 200 us at >= 1 GB/s: only the ps0/256K point qualifies.
        let p = m.min_power_within(200.0, 1.0e9).expect("feasible");
        assert_eq!(p.power_w(), 10.0);
        // Loosening the latency lets the capped 2 MiB point win on power...
        let p = m.min_power_within(2000.0, 1.0e9).expect("feasible");
        assert_eq!(p.power_w(), 9.8);
        // ...and an impossible combination is rejected.
        assert!(m.min_power_within(100.0, 2.5e9).is_none());
    }

    #[test]
    fn budget_solver_minimizes_tail() {
        let m = model();
        let p = m.best_p99_under(9.9, 0.5e9).expect("feasible");
        assert_eq!(p.p99_latency_us(), 760.0);
        assert!(m.best_p99_under(5.0, 0.5e9).is_none());
    }

    #[test]
    fn p99_ratios_reproduce_the_fig5_summary() {
        let m = model();
        // Worst blowup: 256 KiB, 760/120 = 6.33x (the paper's 6.19x shape).
        let worst = m
            .max_p99_ratio_vs(PowerStateId(0), PowerStateId(2))
            .unwrap();
        assert!((worst - 760.0 / 120.0).abs() < 1e-9);
        // Geometric mean across shapes is smaller than the worst case.
        let geo = m.p99_ratio_vs(PowerStateId(0), PowerStateId(2)).unwrap();
        assert!(geo > 1.0 && geo < worst);
        // No matched shapes -> None.
        assert!(m.p99_ratio_vs(PowerStateId(0), PowerStateId(7)).is_none());
    }

    #[test]
    fn frontier_is_monotone_in_both_objectives() {
        let m = model();
        let f = m.power_latency_frontier();
        assert!(!f.is_empty());
        for w in f.windows(2) {
            assert!(w[0].power_w() < w[1].power_w());
            assert!(w[0].p99_latency_us() > w[1].p99_latency_us());
        }
        // The cheapest point is always on the frontier.
        assert_eq!(f[0].power_w(), 5.5);
    }

    #[test]
    fn display_summarizes_range() {
        let s = model().to_string();
        assert!(s.contains("p99") && s.contains("us"));
    }
}
