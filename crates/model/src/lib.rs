//! Power-throughput models for power-adaptive storage (§3.3 of the paper).
//!
//! Sweeping a device across power states and IO shapes yields a cloud of
//! (power, throughput) points. This crate turns those sweeps into:
//!
//! - [`PowerThroughputModel`] — the per-device model with the paper's
//!   normalization (Figure 10) and dynamic-range metric,
//! - [`pareto_frontier`] — the efficient configurations,
//! - [`plan_power_reduction`] / [`best_under_power_budget`] /
//!   [`cheapest_above_throughput`] — the §3.3 configuration-selection
//!   use case, including best-effort curtailment,
//! - [`FleetModel`] — multi-device combination under a shared budget.
//!
//! # Examples
//!
//! ```
//! use powadapt_device::{PowerStateId, KIB};
//! use powadapt_io::Workload;
//! use powadapt_model::{plan_power_reduction, ConfigPoint, PowerThroughputModel};
//!
//! // §3.3's SSD1 walk-through: QD64 at 3.3 GiB/s and 8.19 W; a 20 % power
//! // cut lands on the QD1 configuration and sheds 40 % of throughput.
//! let gib = 1024.0 * 1024.0 * 1024.0;
//! let mk = |d: usize, p, t: f64| ConfigPoint::new(
//!     "SSD1", Workload::RandWrite, PowerStateId(0), 256 * KIB, d, p, t * gib);
//! let model = PowerThroughputModel::from_points(
//!     "SSD1",
//!     vec![mk(64, 8.19, 3.3), mk(1, 6.55, 2.0)],
//! ).unwrap();
//! let plan = plan_power_reduction(&model, 0.20).unwrap();
//! assert!((plan.curtailed_bps() / gib - 1.3).abs() < 0.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Tests assert on exact expected values: unwraps and bit-exact float
// comparisons are the point there, not a hazard (see workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod fleet;
mod latency;
mod model;
mod pareto;
mod point;
mod solver;

pub use fleet::{FleetAllocation, FleetModel};
pub use latency::LatencyModel;
pub use model::PowerThroughputModel;
pub use pareto::pareto_frontier;
pub use point::ConfigPoint;
pub use solver::{
    best_under_power_budget, cheapest_above_throughput, plan_power_reduction, CurtailmentPlan,
};
