//! Property-based tests of the experiment runner and sweep invariants.

use proptest::prelude::*;

use powadapt_device::{catalog, StorageDevice, GIB, KIB};
use powadapt_io::{run_experiment, JobSpec, Workload};
use powadapt_sim::SimDuration;

fn any_workload() -> impl Strategy<Value = Workload> {
    prop::sample::select(vec![
        Workload::SeqRead,
        Workload::SeqWrite,
        Workload::RandRead,
        Workload::RandWrite,
    ])
}

fn any_chunk() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![
        4 * KIB,
        16 * KIB,
        64 * KIB,
        256 * KIB,
        1024 * KIB,
        2048 * KIB,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every experiment accounts its bytes exactly: completed bytes equal
    /// completed IOs times the block size, and throughput is consistent
    /// with the window.
    #[test]
    fn accounting_is_exact(
        w in any_workload(),
        chunk in any_chunk(),
        depth in prop::sample::select(vec![1usize, 4, 16, 64]),
        seed in 0u64..500,
    ) {
        let mut dev = catalog::ssd2_d7_p5510(seed);
        let job = JobSpec::new(w)
            .block_size(chunk)
            .io_depth(depth)
            .runtime(SimDuration::from_millis(60))
            .size_limit(GIB)
            .seed(seed);
        let r = run_experiment(&mut dev, &job).expect("valid job");
        prop_assert_eq!(r.io.bytes(), r.io.ios() * chunk);
        let expected_bps = r.io.bytes() as f64 / r.io.elapsed().as_secs_f64();
        prop_assert!((r.io.throughput_bps() - expected_bps).abs() < 1.0);
        prop_assert_eq!(r.reads.ios() + r.writes.ios(), r.io.ios());
        prop_assert_eq!(dev.inflight(), 0, "experiment drains the device");
    }

    /// Throughput never exceeds the device's interface bandwidth.
    #[test]
    fn throughput_respects_the_interface(
        w in any_workload(),
        chunk in any_chunk(),
        seed in 0u64..100,
    ) {
        let mut dev = catalog::ssd2_d7_p5510(seed);
        let iface = dev.config().interface_bw;
        let job = JobSpec::new(w)
            .block_size(chunk)
            .io_depth(64)
            .runtime(SimDuration::from_millis(100))
            .size_limit(GIB)
            .ramp(SimDuration::from_millis(20))
            .seed(seed);
        let r = run_experiment(&mut dev, &job).expect("valid job");
        prop_assert!(
            r.io.throughput_bps() <= iface * 1.01,
            "throughput {} exceeds interface {}",
            r.io.throughput_bps(), iface
        );
    }

    /// Power readings over any experiment stay within the device's
    /// catalogued range (with meter-noise margin).
    #[test]
    fn power_trace_stays_in_device_range(
        w in any_workload(),
        chunk in any_chunk(),
        seed in 0u64..100,
    ) {
        let mut dev = catalog::ssd3_d3_p4510(seed);
        let job = JobSpec::new(w)
            .block_size(chunk)
            .io_depth(16)
            .runtime(SimDuration::from_millis(120))
            .size_limit(GIB)
            .seed(seed);
        let r = run_experiment(&mut dev, &job).expect("valid job");
        if let Some(s) = r.power.summary() {
            prop_assert!(s.min() > 0.5, "below the 1 W idle floor: {}", s.min());
            prop_assert!(s.max() < 5.0, "above the 3.5 W envelope: {}", s.max());
        }
    }

    /// Deeper queues never reduce throughput (work conservation).
    #[test]
    fn deeper_queues_do_not_hurt_throughput(
        w in any_workload(),
        seed in 0u64..50,
    ) {
        let run = |depth: usize| {
            let mut dev = catalog::ssd2_d7_p5510(seed);
            let job = JobSpec::new(w)
                .block_size(64 * KIB)
                .io_depth(depth)
                .runtime(SimDuration::from_millis(80))
                .size_limit(GIB)
                .ramp(SimDuration::from_millis(15))
                .seed(seed);
            run_experiment(&mut dev, &job).expect("valid job").io.throughput_mibs()
        };
        let shallow = run(1);
        let deep = run(32);
        prop_assert!(
            deep >= shallow * 0.95,
            "depth 32 ({deep}) slower than depth 1 ({shallow})"
        );
    }

    /// Latency statistics are internally consistent: percentiles are
    /// monotone and the mean lies within [min, max]. (Note `mean <= p99` is
    /// NOT a theorem — one extreme outlier among few samples violates it —
    /// so it is deliberately not asserted.)
    #[test]
    fn latency_percentiles_are_ordered(
        w in any_workload(),
        chunk in any_chunk(),
        seed in 0u64..50,
    ) {
        let mut dev = catalog::ssd1_pm9a3(seed);
        let job = JobSpec::new(w)
            .block_size(chunk)
            .io_depth(8)
            .runtime(SimDuration::from_millis(80))
            .size_limit(GIB)
            .seed(seed);
        let r = run_experiment(&mut dev, &job).expect("valid job");
        if let Some(lat) = r.io.latency_summary() {
            prop_assert!(lat.min() <= lat.mean() + 1e-9);
            prop_assert!(lat.mean() <= lat.max() + 1e-9);
            prop_assert!(lat.median() <= lat.percentile(99.0) + 1e-9);
            prop_assert!(lat.percentile(99.0) <= lat.max() + 1e-9);
            prop_assert!(lat.min() > 0.0, "latency must be positive");
        }
    }
}
