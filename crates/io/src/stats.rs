//! IO statistics collected by the runner.

use std::error::Error;
use std::fmt;

use powadapt_device::{IoCompletion, MIB};
use powadapt_sim::{SimDuration, SimTime, Summary};

/// Error from [`IoStats::from_completions`]: the measurement window ends
/// before it starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvertedWindow {
    /// Claimed start of the window.
    pub from: SimTime,
    /// Claimed end of the window.
    pub to: SimTime,
}

impl fmt::Display for InvertedWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "measurement window inverted: from {} > to {}",
            self.from, self.to
        )
    }
}

impl Error for InvertedWindow {}

/// Aggregate statistics of the completions observed during an experiment's
/// measurement window.
///
/// # Examples
///
/// ```
/// use powadapt_io::IoStats;
/// use powadapt_sim::SimDuration;
///
/// let stats = IoStats::from_latencies_us(&[100.0, 120.0], 8192, SimDuration::from_millis(1));
/// assert_eq!(stats.ios(), 2);
/// assert!((stats.throughput_mibs() - 7.8125).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct IoStats {
    ios: u64,
    bytes: u64,
    elapsed: SimDuration,
    latencies: Option<Summary>,
}

impl IoStats {
    /// Builds stats from completions that fall inside the measurement
    /// window `[from, to]` (inclusive at both ends — the final completion
    /// of an experiment lands exactly on `to`); `elapsed` is `to - from`.
    ///
    /// # Errors
    ///
    /// Returns [`InvertedWindow`] if `from > to`.
    pub fn from_completions(
        completions: &[IoCompletion],
        from: SimTime,
        to: SimTime,
    ) -> Result<Self, InvertedWindow> {
        if from > to {
            return Err(InvertedWindow { from, to });
        }
        let mut bytes = 0u64;
        let mut lats = Vec::new();
        for c in completions {
            if c.completed >= from && c.completed <= to {
                bytes += c.len;
                lats.push(c.latency().as_nanos() as f64 / 1_000.0);
            }
        }
        Ok(IoStats {
            ios: lats.len() as u64,
            bytes,
            elapsed: to.duration_since(from),
            latencies: Summary::from_samples(&lats),
        })
    }

    /// Builds stats directly from a list of latencies (µs), a total byte
    /// count, and the elapsed window. Useful in tests and table builders.
    pub fn from_latencies_us(latencies_us: &[f64], bytes: u64, elapsed: SimDuration) -> Self {
        IoStats {
            ios: latencies_us.len() as u64,
            bytes,
            elapsed,
            latencies: Summary::from_samples(latencies_us),
        }
    }

    /// Number of completed IOs in the window.
    pub fn ios(&self) -> u64 {
        self.ios
    }

    /// Bytes transferred in the window.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Length of the measurement window.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Throughput in bytes per second (0 for an empty window).
    pub fn throughput_bps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        // powadapt-lint: allow(D3, reason = "exact-zero guard for an empty window; secs is a finite duration, never NaN")
        if secs == 0.0 {
            0.0
        } else {
            self.bytes as f64 / secs
        }
    }

    /// Throughput in MiB/s — the unit of the paper's figures.
    pub fn throughput_mibs(&self) -> f64 {
        self.throughput_bps() / MIB as f64
    }

    /// IO operations per second.
    pub fn iops(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        // powadapt-lint: allow(D3, reason = "exact-zero guard for an empty window; secs is a finite duration, never NaN")
        if secs == 0.0 {
            0.0
        } else {
            self.ios as f64 / secs
        }
    }

    /// Latency summary in microseconds, if any IOs completed.
    pub fn latency_summary(&self) -> Option<&Summary> {
        self.latencies.as_ref()
    }

    /// Mean latency in microseconds (0 if no IOs completed).
    pub fn avg_latency_us(&self) -> f64 {
        self.latencies
            .as_ref()
            .map_or(0.0, powadapt_sim::Summary::mean)
    }

    /// 99th-percentile latency in microseconds (0 if no IOs completed).
    pub fn p99_latency_us(&self) -> f64 {
        self.latencies.as_ref().map_or(0.0, |s| s.percentile(99.0))
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} IOs, {:.1} MiB/s, {:.0} IOPS, lat avg {:.1} us p99 {:.1} us",
            self.ios,
            self.throughput_mibs(),
            self.iops(),
            self.avg_latency_us(),
            self.p99_latency_us()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{IoId, IoKind};

    fn completion(id: u64, at_us: u64, lat_us: u64, len: u64) -> IoCompletion {
        IoCompletion {
            id: IoId(id),
            kind: IoKind::Read,
            len,
            submitted: SimTime::from_micros(at_us - lat_us),
            completed: SimTime::from_micros(at_us),
        }
    }

    #[test]
    fn window_filtering() {
        let cs = vec![
            completion(0, 100, 50, 4096),
            completion(1, 1_500, 60, 4096),
            completion(2, 3_000, 70, 4096), // outside window
        ];
        let s = IoStats::from_completions(&cs, SimTime::ZERO, SimTime::from_micros(2_999)).unwrap();
        assert_eq!(s.ios(), 2);
        assert_eq!(s.bytes(), 8192);
        let lat = s.latency_summary().unwrap();
        assert_eq!(lat.min(), 50.0);
        assert_eq!(lat.max(), 60.0);
    }

    #[test]
    fn throughput_and_iops() {
        let s = IoStats::from_latencies_us(&[10.0; 100], 100 * MIB, SimDuration::from_secs(1));
        assert!((s.throughput_mibs() - 100.0).abs() < 1e-9);
        assert!((s.iops() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_window_is_an_error() {
        let err = IoStats::from_completions(&[], SimTime::from_micros(5), SimTime::ZERO)
            .expect_err("inverted window must be rejected");
        assert_eq!(err.from, SimTime::from_micros(5));
        assert_eq!(err.to, SimTime::ZERO);
        assert!(err.to_string().contains("inverted"));
    }

    #[test]
    fn empty_window_is_all_zeros() {
        let s = IoStats::from_completions(&[], SimTime::ZERO, SimTime::ZERO).unwrap();
        assert_eq!(s.ios(), 0);
        assert_eq!(s.throughput_bps(), 0.0);
        assert_eq!(s.iops(), 0.0);
        assert_eq!(s.avg_latency_us(), 0.0);
        assert_eq!(s.p99_latency_us(), 0.0);
        assert!(s.latency_summary().is_none());
    }

    #[test]
    fn display_nonempty() {
        let s = IoStats::from_latencies_us(&[5.0], 4096, SimDuration::from_millis(1));
        assert!(s.to_string().contains("IOs"));
    }
}
