//! The experiment runner: one device + one measurement rig + one job in a
//! single deterministic event loop.

use std::error::Error;
use std::fmt;

use powadapt_device::{
    DeviceError, IoId, IoKind, IoRequest, PowerStateId, Protocol, StorageDevice,
};
use powadapt_meter::{PowerRig, PowerTrace};
use powadapt_sim::{SimRng, SimTime, Zipf};

use crate::job::{AccessPattern, JobSpec};
use crate::stats::{InvertedWindow, IoStats};

/// Errors from running an experiment.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// The job is inconsistent with the device (see [`JobSpec::validate`]).
    InvalidJob(String),
    /// The device rejected a request or control operation.
    Device(DeviceError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::InvalidJob(msg) => write!(f, "invalid job: {msg}"),
            ExperimentError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Device(e) => Some(e),
            ExperimentError::InvalidJob(_) => None,
        }
    }
}

impl From<DeviceError> for ExperimentError {
    fn from(e: DeviceError) -> Self {
        ExperimentError::Device(e)
    }
}

impl From<InvertedWindow> for ExperimentError {
    fn from(e: InvertedWindow) -> Self {
        ExperimentError::InvalidJob(e.to_string())
    }
}

/// Outcome of one experiment: IO statistics plus the recorded power trace,
/// both restricted to the post-ramp measurement window.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Paper label of the device ("SSD1", ...).
    pub device_label: String,
    /// Power state the device ran in.
    pub power_state: PowerStateId,
    /// The job that was run.
    pub job: JobSpec,
    /// IO statistics over the measurement window.
    pub io: IoStats,
    /// Read-only statistics over the window (equals `io` for pure reads).
    pub reads: IoStats,
    /// Write-only statistics over the window (equals `io` for pure writes).
    pub writes: IoStats,
    /// Power trace over the measurement window.
    pub power: PowerTrace,
}

impl ExperimentResult {
    /// Mean measured power over the window, in watts (0 if no samples).
    pub fn avg_power_w(&self) -> f64 {
        if self.power.is_empty() {
            0.0
        } else {
            self.power.mean()
        }
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}: {:.1} MiB/s @ {:.2} W",
            self.device_label,
            self.power_state,
            self.job,
            self.io.throughput_mibs(),
            self.avg_power_w()
        )
    }
}

/// Generates request offsets per the job's access pattern.
#[derive(Debug)]
struct OffsetGen {
    pattern: AccessPattern,
    block: u64,
    region_start: u64,
    blocks: u64,
    cursor: u64,
    zipf: Option<Zipf>,
    rng: SimRng,
}

impl OffsetGen {
    fn new(job: &JobSpec, rng: SimRng) -> Self {
        let (start, len) = job.region_bounds();
        let block = job.block_size_bytes();
        let blocks = (len / block).max(1);
        OffsetGen {
            pattern: job.workload().pattern(),
            block,
            region_start: start,
            blocks,
            cursor: 0,
            zipf: job.zipf_theta().map(|theta| Zipf::new(blocks, theta)),
            rng,
        }
    }

    fn next_offset(&mut self) -> u64 {
        match self.pattern {
            AccessPattern::Sequential => {
                let off = self.region_start + self.cursor * self.block;
                self.cursor = (self.cursor + 1) % self.blocks;
                off
            }
            AccessPattern::Random => {
                let idx = match &self.zipf {
                    // Scramble ranks so hot blocks spread over the address
                    // space instead of clustering at the region head.
                    Some(z) => scramble(z.sample(&mut self.rng), self.blocks),
                    None => self.rng.u64_range(0, self.blocks),
                };
                self.region_start + idx * self.block
            }
        }
    }
}

/// Deterministic rank -> block permutation (multiplicative hash, then
/// reduced into the domain).
fn scramble(rank: u64, blocks: u64) -> u64 {
    rank.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31) % blocks
}

/// Runs `job` against `device`, metering power with the paper's rig.
///
/// The loop keeps `io_depth` requests in flight, stops issuing at the
/// earlier of the runtime and size limits (the paper's stopping rule),
/// drains outstanding IO, and samples device power at 1 kHz throughout.
/// Statistics and the returned trace cover only the post-ramp window.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidJob`] if the job does not fit the
/// device, or [`ExperimentError::Device`] if a request is rejected.
///
/// # Examples
///
/// ```
/// use powadapt_device::{catalog, KIB};
/// use powadapt_io::{run_experiment, JobSpec, Workload};
/// use powadapt_sim::SimDuration;
///
/// let mut dev = catalog::ssd2_d7_p5510(1);
/// let job = JobSpec::new(Workload::RandRead)
///     .block_size(4 * KIB)
///     .io_depth(8)
///     .runtime(SimDuration::from_millis(50))
///     .size_limit(4 * 1024 * KIB);
/// let result = run_experiment(&mut dev, &job)?;
/// assert!(result.io.ios() > 0);
/// assert!(result.avg_power_w() > 0.0);
/// # Ok::<(), powadapt_io::ExperimentError>(())
/// ```
pub fn run_experiment(
    device: &mut dyn StorageDevice,
    job: &JobSpec,
) -> Result<ExperimentResult, ExperimentError> {
    job.validate(device.spec().capacity())
        .map_err(ExperimentError::InvalidJob)?;

    let start = device.now();
    let deadline = start + job.runtime_limit();
    let measure_from = start + job.ramp_duration();

    let mut rng = SimRng::seed_from(job.seed_value() ^ 0x9e37_79b9_7f4a_7c15);
    let bus_v = match device.spec().protocol() {
        Protocol::Nvme => 12.0,
        Protocol::Sata => 5.0,
    };
    let mut rig_rng = rng.fork();
    let mut rig = PowerRig::paper_rig(bus_v, &mut rig_rng);
    rig.restart_at(start);

    let mut offsets = OffsetGen::new(job, rng.fork());
    let mut kind_rng = rng.fork();
    let mut next_id = 0u64;
    let mut issued_bytes = 0u64;
    let mut completions = Vec::new();
    let block = job.block_size_bytes();
    let depth = job.io_depth_value();
    let base_kind = job.workload().kind();
    let read_mix = job.read_mix_fraction();
    let next_kind = move |rng: &mut SimRng| -> IoKind {
        match read_mix {
            Some(f) => {
                if rng.chance(f) {
                    IoKind::Read
                } else {
                    IoKind::Write
                }
            }
            None => base_kind,
        }
    };

    let can_issue = |issued: u64, now: SimTime| -> bool {
        issued + block <= job.size_limit_bytes() && now < deadline
    };

    // Prime the queue.
    while device.inflight() < depth && can_issue(issued_bytes, device.now()) {
        let kind = next_kind(&mut kind_rng);
        let req = IoRequest::new(IoId(next_id), kind, offsets.next_offset(), block);
        device.submit(req)?;
        next_id += 1;
        issued_bytes += block;
    }

    loop {
        let sample_t = rig.next_sample();
        let dev_t = device.next_event();
        let t = match dev_t {
            Some(dt) => dt.min(sample_t),
            None => {
                if device.inflight() == 0 && !can_issue(issued_bytes, device.now()) {
                    break;
                }
                sample_t
            }
        };

        // Completions append straight into the result buffer: no per-step
        // vector allocation on the hot loop.
        device.advance_to_into(t, &mut completions);

        while device.inflight() < depth && can_issue(issued_bytes, device.now()) {
            let kind = next_kind(&mut kind_rng);
            let req = IoRequest::new(IoId(next_id), kind, offsets.next_offset(), block);
            device.submit(req)?;
            next_id += 1;
            issued_bytes += block;
        }

        if t == sample_t {
            rig.sample(t, device.power_w());
        }

        if device.inflight() == 0 && !can_issue(issued_bytes, device.now()) {
            break;
        }
    }

    let end = device.now().max(measure_from);
    let io = IoStats::from_completions(&completions, measure_from, end)?;
    let (rd, wr): (Vec<_>, Vec<_>) = completions
        .iter()
        .copied()
        .partition(|c| c.kind == IoKind::Read);
    let reads = IoStats::from_completions(&rd, measure_from, end)?;
    let writes = IoStats::from_completions(&wr, measure_from, end)?;
    let power = rig.into_trace().between(measure_from, end);

    Ok(ExperimentResult {
        device_label: device.spec().label().to_string(),
        power_state: device.power_state(),
        job: job.clone(),
        io,
        reads,
        writes,
        power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Workload;
    use powadapt_device::{catalog, KIB, MIB};
    use powadapt_sim::SimDuration;

    fn quick_job(w: Workload) -> JobSpec {
        JobSpec::new(w)
            .block_size(64 * KIB)
            .io_depth(8)
            .runtime(SimDuration::from_millis(100))
            .size_limit(64 * MIB)
            .seed(3)
    }

    #[test]
    fn runs_random_reads_and_collects_stats() {
        let mut dev = catalog::ssd2_d7_p5510(1);
        let r = run_experiment(&mut dev, &quick_job(Workload::RandRead)).unwrap();
        assert!(r.io.ios() > 10);
        assert!(r.io.throughput_mibs() > 1.0);
        assert!(r.io.avg_latency_us() > 0.0);
        assert!(!r.power.is_empty());
        assert!(r.avg_power_w() > 4.0, "above idle-ish: {}", r.avg_power_w());
        assert_eq!(r.device_label, "SSD2");
    }

    #[test]
    fn size_limit_stops_the_experiment() {
        let mut dev = catalog::ssd2_d7_p5510(1);
        let job = JobSpec::new(Workload::SeqRead)
            .block_size(MIB)
            .io_depth(4)
            .runtime(SimDuration::from_secs(60))
            .size_limit(16 * MIB);
        let r = run_experiment(&mut dev, &job).unwrap();
        assert_eq!(r.io.bytes(), 16 * MIB);
        assert!(dev.now().as_secs_f64() < 1.0, "finished by size, not time");
    }

    #[test]
    fn runtime_limit_stops_the_experiment() {
        let mut dev = catalog::hdd_exos_7e2000(1);
        let job = JobSpec::new(Workload::RandRead)
            .block_size(4 * KIB)
            .io_depth(1)
            .runtime(SimDuration::from_millis(200))
            .size_limit(4 * powadapt_device::GIB);
        let r = run_experiment(&mut dev, &job).unwrap();
        // An HDD can only do a handful of random reads in 200 ms.
        assert!(r.io.ios() < 100, "{}", r.io.ios());
        assert!(dev.now().as_secs_f64() < 0.5);
    }

    #[test]
    fn ramp_excludes_warmup_from_stats() {
        let mut dev = catalog::ssd2_d7_p5510(1);
        let job = quick_job(Workload::RandRead).ramp(SimDuration::from_millis(50));
        let r = run_experiment(&mut dev, &job).unwrap();
        // The trace starts at the ramp boundary.
        assert_eq!(r.power.start(), SimTime::from_millis(50));
    }

    #[test]
    fn sequential_wraps_within_region() {
        let mut dev = catalog::ssd3_d3_p4510(1);
        let job = JobSpec::new(Workload::SeqRead)
            .block_size(MIB)
            .io_depth(2)
            .region(0, 4 * MIB)
            .runtime(SimDuration::from_millis(50))
            .size_limit(32 * MIB);
        // Would fail with OutOfRange if wrapping were broken.
        let r = run_experiment(&mut dev, &job).unwrap();
        assert!(r.io.ios() > 4);
    }

    #[test]
    fn invalid_job_is_rejected() {
        let mut dev = catalog::ssd2_d7_p5510(1);
        let job = JobSpec::new(Workload::SeqRead).region(0, 100_000 * powadapt_device::GIB);
        assert!(matches!(
            run_experiment(&mut dev, &job),
            Err(ExperimentError::InvalidJob(_))
        ));
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut dev = catalog::ssd1_pm9a3(5);
            let r = run_experiment(&mut dev, &quick_job(Workload::RandWrite)).unwrap();
            (r.io.ios(), r.io.bytes(), r.power.len(), r.avg_power_w())
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert!((a.3 - b.3).abs() < 1e-12);
    }

    #[test]
    fn writes_draw_more_power_than_reads() {
        let read = {
            let mut dev = catalog::ssd2_d7_p5510(1);
            run_experiment(&mut dev, &quick_job(Workload::SeqRead)).unwrap()
        };
        let write = {
            let mut dev = catalog::ssd2_d7_p5510(1);
            run_experiment(&mut dev, &quick_job(Workload::SeqWrite)).unwrap()
        };
        assert!(
            write.avg_power_w() > read.avg_power_w(),
            "write {} W vs read {} W",
            write.avg_power_w(),
            read.avg_power_w()
        );
    }

    #[test]
    fn mixed_workload_produces_both_kinds_in_proportion() {
        let mut dev = catalog::ssd2_d7_p5510(1);
        let job = quick_job(Workload::RandWrite).read_mix(0.7).seed(9);
        let r = run_experiment(&mut dev, &job).unwrap();
        let (reads, writes) = (r.reads.ios(), r.writes.ios());
        assert_eq!(reads + writes, r.io.ios());
        assert!(reads > 0 && writes > 0);
        let frac = reads as f64 / r.io.ios() as f64;
        assert!((frac - 0.7).abs() < 0.1, "read fraction {frac}");
    }

    #[test]
    fn mixed_power_sits_between_pure_read_and_pure_write() {
        let run_mix = |mix: Option<f64>| {
            let mut dev = catalog::ssd2_d7_p5510(1);
            let mut job = JobSpec::new(Workload::RandWrite)
                .block_size(MIB)
                .io_depth(32)
                .runtime(SimDuration::from_millis(300))
                .size_limit(powadapt_device::GIB)
                .ramp(SimDuration::from_millis(60))
                .seed(4);
            if let Some(f) = mix {
                job = job.read_mix(f);
            }
            run_experiment(&mut dev, &job).unwrap().avg_power_w()
        };
        let pure_write = run_mix(None);
        let pure_read = run_mix(Some(1.0));
        let half = run_mix(Some(0.5));
        assert!(
            pure_read < half && half < pure_write,
            "expected {pure_read} < {half} < {pure_write}"
        );
    }

    #[test]
    fn pure_jobs_have_empty_opposite_kind_stats() {
        let mut dev = catalog::ssd2_d7_p5510(1);
        let r = run_experiment(&mut dev, &quick_job(Workload::RandRead)).unwrap();
        assert_eq!(r.writes.ios(), 0);
        assert_eq!(r.reads.ios(), r.io.ios());
    }

    #[test]
    fn zipf_skew_concentrates_io_on_a_hot_set() {
        // With a heavy Zipf skew over a small region, the SSD's page cache
        // absorbs most reads, so latency drops versus uniform random.
        let run = |zipf: Option<f64>| {
            let mut dev = catalog::ssd2_d7_p5510(3);
            let mut job = JobSpec::new(Workload::RandRead)
                .block_size(4 * KIB)
                .io_depth(1)
                .region(0, 16 * MIB)
                .runtime(SimDuration::from_millis(150))
                .size_limit(powadapt_device::GIB)
                .seed(3);
            if let Some(t) = zipf {
                job = job.zipf(t);
            }
            run_experiment(&mut dev, &job).unwrap().io.avg_latency_us()
        };
        let uniform = run(None);
        let skewed = run(Some(1.2));
        assert!(
            skewed < uniform * 0.8,
            "hot-set reads should be visibly faster: zipf {skewed} vs uniform {uniform}"
        );
    }

    #[test]
    fn result_display_is_informative() {
        let mut dev = catalog::ssd2_d7_p5510(1);
        let r = run_experiment(&mut dev, &quick_job(Workload::RandRead)).unwrap();
        let s = r.to_string();
        assert!(s.contains("SSD2") && s.contains("MiB/s"));
    }
}
