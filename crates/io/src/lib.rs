//! fio-like workload generation and experiment running for `powadapt`.
//!
//! This crate replaces the paper's fio 3.28 + data-logger workflow: a
//! [`JobSpec`] describes one microbenchmark (workload mode, chunk size,
//! queue depth, and the paper's 60 s / 4 GiB stopping rule);
//! [`run_experiment`] drives it against a simulated device while sampling
//! power at 1 kHz; [`full_sweep`] runs the cross-product behind the paper's
//! figures.
//!
//! # Examples
//!
//! ```
//! use powadapt_device::{catalog, KIB};
//! use powadapt_io::{run_experiment, JobSpec, Workload};
//! use powadapt_sim::SimDuration;
//!
//! let mut dev = catalog::ssd1_pm9a3(42);
//! let job = JobSpec::new(Workload::RandWrite)
//!     .block_size(256 * KIB)
//!     .io_depth(64)
//!     .runtime(SimDuration::from_millis(100))
//!     .size_limit(64 * 1024 * KIB);
//! let result = run_experiment(&mut dev, &job)?;
//! println!("{result}");
//! # Ok::<(), powadapt_io::ExperimentError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Tests assert on exact expected values: unwraps and bit-exact float
// comparisons are the point there, not a hazard (see workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod breaker;
mod fleet;
mod job;
mod openloop;
mod parallel;
mod runner;
mod stats;
mod sweep;
mod wltrace;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreakerRouter, QuarantineEvent};
pub use fleet::{
    run_fleet, run_fleet_arrivals, run_fleet_trace, DeviceCommand, DeviceOutcome, DeviceStatus,
    FleetResult, LeastLoadedRouter, Route, Router,
};
pub use job::{AccessPattern, JobSpec, Workload};
pub use openloop::{Arrival, ArrivalGen, Arrivals, OpenLoopSpec};
pub use parallel::{
    reset_session_stats, run_cells, run_cells_stats, session_stats, ParallelConfig, SessionStats,
    SweepStats, WorkerStats,
};
pub use runner::{run_experiment, ExperimentError, ExperimentResult};
pub use stats::{InvertedWindow, IoStats};
pub use sweep::{
    enumerate_cells, full_sweep, full_sweep_with, run_fresh, SweepCell, SweepPoint, SweepScale,
    PAPER_CHUNKS, PAPER_DEPTHS,
};
pub use wltrace::{ArrivalTrace, TraceError};
