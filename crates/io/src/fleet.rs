//! Multi-device fleet simulation with pluggable request routing.
//!
//! The paper's §4 policies (power-aware IO redirection, asymmetric IO) act
//! *across* devices. [`run_fleet`] drives an open-loop arrival stream
//! against a set of simulated devices in one lockstep event loop: a
//! [`Router`] picks the device for every request and may issue device
//! control commands (power states, standby) on a periodic control tick,
//! while the fleet's summed power is metered at 1 kHz. This turns the §4
//! policy discussion into something that can be *measured*.

use std::fmt;

use powadapt_device::{
    DeviceError, IoCompletion, IoId, IoKind, IoRequest, PowerStateId, StandbyState, StorageDevice,
};
use powadapt_meter::{PowerRig, PowerTrace};
use powadapt_obs::{emit, EventKind};
use powadapt_sim::{SimDuration, SimRng, SimTime};

use crate::openloop::{Arrival, ArrivalGen, OpenLoopSpec};
use crate::runner::ExperimentError;
use crate::stats::IoStats;
use crate::wltrace::ArrivalTrace;

/// A router's view of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceStatus {
    /// Paper label of the device.
    pub label: String,
    /// Requests submitted but not yet completed.
    pub inflight: usize,
    /// Standby status.
    pub standby: StandbyState,
    /// Selected power state.
    pub power_state: PowerStateId,
    /// Whether the device supports standby at all.
    pub supports_standby: bool,
}

/// A control action a router may issue on its control tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceCommand {
    /// Select a power state on device `device`.
    SetPowerState {
        /// Device index.
        device: usize,
        /// Target state.
        ps: PowerStateId,
    },
    /// Request standby on device `device`.
    Standby {
        /// Device index.
        device: usize,
    },
    /// Request wake on device `device`.
    Wake {
        /// Device index.
        device: usize,
    },
}

/// Where an arrival goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Submit to the device at this index.
    Device(usize),
    /// Serve without touching any device (e.g. a power-aware cache hit —
    /// the point of EXCES-style caching is that the backing device stays in
    /// standby). The request completes after `latency`.
    Absorbed {
        /// Service latency of the absorbing layer.
        latency: SimDuration,
    },
}

impl From<usize> for Route {
    fn from(i: usize) -> Route {
        Route::Device(i)
    }
}

/// Routes arrivals to devices and optionally controls device power.
///
/// Implementations live with the policies (see `powadapt-core`); the io
/// crate ships [`LeastLoadedRouter`] as the policy-free baseline.
pub trait Router: fmt::Debug {
    /// Chooses where an arrival goes.
    ///
    /// A returned [`Route::Device`] index must be within `fleet.len()`.
    fn route(&mut self, arrival: &Arrival, fleet: &[DeviceStatus]) -> Route;

    /// Called every control interval; returned commands are applied to the
    /// devices in order. The default does nothing.
    fn control(&mut self, now: SimTime, fleet: &[DeviceStatus]) -> Vec<DeviceCommand> {
        let _ = (now, fleet);
        Vec::new()
    }

    /// Called when device `device` rejects a submit or a control command
    /// with a transient error ([`DeviceError::is_transient`]). Routers that
    /// track device health (see
    /// [`CircuitBreakerRouter`](crate::CircuitBreakerRouter)) use this to
    /// steer load away from a failing device. The default does nothing.
    fn on_device_error(&mut self, device: usize, error: &DeviceError, now: SimTime) {
        let _ = (device, error, now);
    }

    /// Called for every IO completion device `device` delivers, as evidence
    /// that the device is serving again. The default does nothing.
    fn on_io_complete(&mut self, device: usize, completion: &IoCompletion) {
        let _ = (device, completion);
    }
}

/// The baseline router: sends each request to the least-loaded device,
/// rotating through ties so idle fleets are still balanced. Applies no
/// power control.
#[derive(Debug, Default, Clone)]
pub struct LeastLoadedRouter {
    next: usize,
}

impl Router for LeastLoadedRouter {
    fn route(&mut self, _arrival: &Arrival, fleet: &[DeviceStatus]) -> Route {
        let n = fleet.len();
        let min = fleet
            .iter()
            .map(|d| d.inflight)
            .min()
            // powadapt-lint: allow(D5, reason = "routers are only invoked with a non-empty fleet")
            .expect("fleet is non-empty");
        // First device at the minimum, scanning from the rotation cursor.
        let mut pick = self.next % n;
        for off in 0..n {
            let i = (self.next + off) % n;
            if fleet[i].inflight == min {
                pick = i;
                break;
            }
        }
        self.next = (pick + 1) % n;
        Route::Device(pick)
    }
}

/// Per-device outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct DeviceOutcome {
    /// Paper label.
    pub label: String,
    /// IO statistics for requests served by this device.
    pub io: IoStats,
    /// Requests routed to this device.
    pub routed: u64,
}

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-device outcomes, in device order.
    pub per_device: Vec<DeviceOutcome>,
    /// Aggregate IO statistics across the fleet.
    pub total: IoStats,
    /// Aggregate statistics of read completions only.
    pub reads: IoStats,
    /// Aggregate statistics of write completions only.
    pub writes: IoStats,
    /// Statistics of requests absorbed by the routing layer (e.g. cache
    /// hits) without touching a device. Not included in `total`.
    pub absorbed: IoStats,
    /// Summed fleet power sampled at 1 kHz.
    pub power: PowerTrace,
    /// Total energy over the run, in joules.
    pub energy_j: f64,
    /// Transient submit rejections observed (each arrival may count more
    /// than once if several devices refused it before one accepted).
    pub io_errors: u64,
    /// Arrivals dropped because every device transiently refused them.
    pub dropped: u64,
    /// Router control commands rejected with a transient error.
    pub command_errors: u64,
}

impl FleetResult {
    /// Mean fleet power over the run, in watts.
    pub fn avg_power_w(&self) -> f64 {
        if self.power.is_empty() {
            0.0
        } else {
            self.power.mean()
        }
    }
}

impl fmt::Display for FleetResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} served at {:.1} MiB/s, {:.2} W avg, {:.1} J",
            self.total.ios(),
            self.total.throughput_mibs(),
            self.avg_power_w(),
            self.energy_j
        )?;
        for d in &self.per_device {
            writeln!(f, "  {}: {} routed, {}", d.label, d.routed, d.io)?;
        }
        if self.io_errors + self.dropped + self.command_errors > 0 {
            writeln!(
                f,
                "  faults: {} io errors, {} dropped, {} command errors",
                self.io_errors, self.dropped, self.command_errors
            )?;
        }
        Ok(())
    }
}

/// Advances every device to `t`, appending completions into the
/// per-device reuse buffers and notifying the router of each. This is the
/// innermost per-step loop of every fleet run, so it must stay
/// allocation-free: completions land in buffers owned by the caller and
/// reused across steps.
// powadapt-lint: hot
fn drain_fleet_completions(
    devices: &mut [Box<dyn StorageDevice>],
    completions: &mut [Vec<IoCompletion>],
    router: &mut dyn Router,
    t: SimTime,
) {
    for (i, d) in devices.iter_mut().enumerate() {
        let before = completions[i].len();
        d.advance_to_into(t, &mut completions[i]);
        for c in &completions[i][before..] {
            router.on_io_complete(i, c);
        }
    }
}

fn statuses(devices: &[Box<dyn StorageDevice>]) -> Vec<DeviceStatus> {
    devices
        .iter()
        .map(|d| DeviceStatus {
            label: d.spec().label().to_string(),
            inflight: d.inflight(),
            standby: d.standby_state(),
            power_state: d.power_state(),
            supports_standby: d.standby_power_w().is_some(),
        })
        .collect()
}

fn apply_command(
    devices: &mut [Box<dyn StorageDevice>],
    cmd: DeviceCommand,
) -> Result<(), DeviceError> {
    match cmd {
        DeviceCommand::SetPowerState { device, ps } => devices[device].set_power_state(ps),
        DeviceCommand::Standby { device } => match devices[device].standby_state() {
            StandbyState::Standby | StandbyState::EnteringStandby => Ok(()),
            StandbyState::ExitingStandby => Ok(()), // wake in progress wins
            StandbyState::Active => devices[device].request_standby(),
        },
        DeviceCommand::Wake { device } => devices[device].request_wake(),
    }
}

fn command_target(cmd: &DeviceCommand) -> usize {
    match *cmd {
        DeviceCommand::SetPowerState { device, .. }
        | DeviceCommand::Standby { device }
        | DeviceCommand::Wake { device } => device,
    }
}

/// Runs an open-loop stream against a fleet.
///
/// All devices advance in lockstep so the 1 kHz fleet-power samples are
/// coherent sums. The run ends when the stream is exhausted and every
/// device has drained.
///
/// Transient device errors ([`DeviceError::is_transient`]) do not abort
/// the run: a refused submit is reported to the router
/// ([`Router::on_device_error`]) and re-routed to another device, counting
/// the arrival as dropped only when every device has refused it; a refused
/// control command is reported and skipped. The [`FleetResult`] records
/// these under `io_errors`, `dropped` and `command_errors`.
///
/// # Errors
///
/// Returns [`ExperimentError::InvalidJob`] for a bad stream spec and
/// [`ExperimentError::Device`] if a submit or a router command is rejected
/// with a non-transient (wiring) error.
///
/// # Panics
///
/// Panics if `devices` is empty or the router returns an out-of-range
/// index.
pub fn run_fleet(
    devices: &mut [Box<dyn StorageDevice>],
    router: &mut dyn Router,
    spec: &OpenLoopSpec,
    control_interval: SimDuration,
) -> Result<FleetResult, ExperimentError> {
    let gen = ArrivalGen::new(spec).map_err(ExperimentError::InvalidJob)?;
    run_fleet_arrivals(devices, router, gen, spec.seed, control_interval)
}

/// Replays a recorded [`ArrivalTrace`] against a fleet. See [`run_fleet`].
///
/// # Errors
///
/// Same as [`run_fleet`].
///
/// # Panics
///
/// Same as [`run_fleet`].
pub fn run_fleet_trace(
    devices: &mut [Box<dyn StorageDevice>],
    router: &mut dyn Router,
    trace: &ArrivalTrace,
    meter_seed: u64,
    control_interval: SimDuration,
) -> Result<FleetResult, ExperimentError> {
    run_fleet_arrivals(
        devices,
        router,
        trace.arrivals().iter().copied(),
        meter_seed,
        control_interval,
    )
}

/// Runs an arbitrary arrival stream against a fleet — the generic engine
/// behind [`run_fleet`] (synthetic streams) and [`run_fleet_trace`]
/// (recorded traces).
///
/// # Errors
///
/// Same as [`run_fleet`].
///
/// # Panics
///
/// Same as [`run_fleet`].
pub fn run_fleet_arrivals<I>(
    devices: &mut [Box<dyn StorageDevice>],
    router: &mut dyn Router,
    arrivals: I,
    meter_seed: u64,
    control_interval: SimDuration,
) -> Result<FleetResult, ExperimentError>
where
    I: IntoIterator<Item = Arrival>,
{
    assert!(!devices.is_empty(), "fleet must be non-empty");
    assert!(
        !control_interval.is_zero(),
        "control interval must be non-zero"
    );
    let mut gen = arrivals.into_iter();

    // Shared meter on the summed rail. SATA/NVMe mixes are summed at the
    // logical level; per-rail metering belongs to single-device runs.
    let mut rig_rng = SimRng::seed_from(meter_seed ^ 0xf1ee7);
    let mut rig = PowerRig::paper_rig(12.0, &mut rig_rng);

    // Re-capture the telemetry recorder at run start and put every device
    // on a positional track: paper labels may repeat across a fleet
    // (e.g. three SSD3s), track indices never do.
    let rec = powadapt_obs::current();
    for (i, d) in devices.iter_mut().enumerate() {
        d.set_recorder(rec.clone(), powadapt_obs::intern(&format!("device{i}")));
    }
    rig.set_recorder(rec.clone(), "fleet");

    let start = devices[0].now();
    for d in devices.iter() {
        assert_eq!(d.now(), start, "devices must start at a common time");
    }
    rig.restart_at(start);

    let mut next_control = start + control_interval;
    let mut pending_arrival = gen.next();
    let mut next_id = 0u64;
    let mut routed: Vec<u64> = vec![0; devices.len()];
    let mut completions: Vec<Vec<IoCompletion>> = vec![Vec::new(); devices.len()];
    let mut absorbed: Vec<IoCompletion> = Vec::new();
    // Reused across arrivals; re-routing marks the devices already tried.
    let mut tried = vec![false; devices.len()];
    let mut io_errors = 0u64;
    let mut dropped = 0u64;
    let mut command_errors = 0u64;

    loop {
        // Next event across all sources.
        let mut t = rig.next_sample().min(next_control);
        if let Some(a) = &pending_arrival {
            t = t.min(start.max(a.at));
        }
        let mut device_pending = false;
        for d in devices.iter_mut() {
            if let Some(dt) = d.next_event() {
                device_pending = true;
                t = t.min(dt);
            }
        }
        if pending_arrival.is_none() && !device_pending {
            break;
        }

        // Advance the whole fleet to t. Completions append straight into
        // the per-device buffers; no per-step vector allocation.
        drain_fleet_completions(devices, &mut completions, router, t);

        // Admit any arrivals due at or before t.
        while let Some(a) = pending_arrival {
            if start.max(a.at) > t {
                break;
            }
            // Transiently-refused submits are re-routed; each device gets
            // at most one try per arrival, so a fully-faulted fleet drops
            // the arrival instead of wedging the loop.
            tried.fill(false);
            let mut route = router.route(&a, &statuses(devices));
            loop {
                match route {
                    Route::Device(target) => {
                        assert!(target < devices.len(), "router returned index {target}");
                        let dev = &mut devices[target];
                        let cap = dev.spec().capacity();
                        let offset = a.offset.min(cap - a.len);
                        match dev.submit(IoRequest::new(IoId(next_id), a.kind, offset, a.len)) {
                            Ok(()) => {
                                routed[target] += 1;
                                break;
                            }
                            Err(e) if e.is_transient() => {
                                io_errors += 1;
                                emit!(
                                    rec,
                                    t,
                                    powadapt_obs::intern(&format!("device{target}")),
                                    EventKind::IoError {
                                        id: next_id,
                                        error: e.to_string(),
                                    }
                                );
                                router.on_device_error(target, &e, t);
                                tried[target] = true;
                                // Ask the router again; if it insists on a
                                // device we already tried, fall back to the
                                // first untried one, or give up.
                                route = match router.route(&a, &statuses(devices)) {
                                    Route::Device(d) if tried[d] => {
                                        match tried.iter().position(|&x| !x) {
                                            Some(d2) => Route::Device(d2),
                                            None => {
                                                dropped += 1;
                                                emit!(
                                                    rec,
                                                    t,
                                                    "fleet",
                                                    EventKind::ArrivalDropped { id: next_id }
                                                );
                                                break;
                                            }
                                        }
                                    }
                                    other => other,
                                };
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                    Route::Absorbed { latency } => {
                        let at = start.max(a.at);
                        absorbed.push(IoCompletion {
                            id: IoId(next_id),
                            kind: a.kind,
                            len: a.len,
                            submitted: at,
                            completed: at + latency,
                        });
                        break;
                    }
                }
            }
            next_id += 1;
            pending_arrival = gen.next();
        }

        // Control tick.
        if t >= next_control {
            let statuses = statuses(devices);
            for cmd in router.control(t, &statuses) {
                if let Err(e) = apply_command(devices, cmd) {
                    if e.is_transient() {
                        command_errors += 1;
                        router.on_device_error(command_target(&cmd), &e, t);
                    } else {
                        return Err(e.into());
                    }
                }
            }
            next_control = t + control_interval;
        }

        // Meter tick.
        if t == rig.next_sample() {
            let total: f64 = devices.iter().map(|d| d.power_w()).sum();
            rig.sample(t, total);
        }
    }

    let end = devices[0].now();
    let per_device: Vec<DeviceOutcome> = devices
        .iter()
        .zip(&completions)
        .zip(&routed)
        .map(|((d, cs), &n)| {
            Ok(DeviceOutcome {
                label: d.spec().label().to_string(),
                io: IoStats::from_completions(cs, start, end)?,
                routed: n,
            })
        })
        .collect::<Result<_, crate::stats::InvertedWindow>>()?;
    let all: Vec<IoCompletion> = completions.into_iter().flatten().collect();
    let total = IoStats::from_completions(&all, start, end)?;
    let (rd, wr): (Vec<IoCompletion>, Vec<IoCompletion>) =
        all.iter().partition(|c| c.kind == IoKind::Read);
    let reads = IoStats::from_completions(&rd, start, end)?;
    let writes = IoStats::from_completions(&wr, start, end)?;
    let absorbed = IoStats::from_completions(&absorbed, start, end.max(start))?;
    let power = rig.into_trace();
    let energy_j = power.energy_j();

    // Fleet-level fault counters also feed the global metrics registry so
    // traced runs can audit them without plumbing FleetResult around.
    powadapt_obs::metrics().inc_many(&[
        ("fleet.io_errors", io_errors),
        ("fleet.dropped", dropped),
        ("fleet.command_errors", command_errors),
    ]);

    Ok(FleetResult {
        per_device,
        total,
        reads,
        writes,
        absorbed,
        power,
        energy_j,
        io_errors,
        dropped,
        command_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::AccessPattern;
    use crate::openloop::Arrivals;
    use powadapt_device::{catalog, GIB};

    fn fleet(n: usize) -> Vec<Box<dyn StorageDevice>> {
        (0..n)
            .map(|i| Box::new(catalog::ssd3_d3_p4510(100 + i as u64)) as Box<dyn StorageDevice>)
            .collect()
    }

    fn stream(rate: f64, read_fraction: f64, ms: u64) -> OpenLoopSpec {
        OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: rate },
            block_size: 64 * 1024,
            read_fraction,
            pattern: AccessPattern::Random,
            region: (0, 4 * GIB),
            duration: SimDuration::from_millis(ms),
            seed: 9,
            zipf_theta: None,
        }
    }

    #[test]
    fn all_arrivals_are_served_exactly_once() {
        let mut devices = fleet(3);
        let mut router = LeastLoadedRouter::default();
        let spec = stream(2_000.0, 0.5, 200);
        let expected = ArrivalGen::new(&spec).unwrap().count() as u64;
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(50),
        )
        .expect("fleet runs");
        assert_eq!(r.total.ios(), expected);
        let routed: u64 = r.per_device.iter().map(|d| d.routed).sum();
        assert_eq!(routed, expected);
    }

    #[test]
    fn least_loaded_balances_across_devices() {
        let mut devices = fleet(4);
        let mut router = LeastLoadedRouter::default();
        let spec = stream(4_000.0, 1.0, 200);
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(50),
        )
        .expect("fleet runs");
        let max = r.per_device.iter().map(|d| d.routed).max().unwrap();
        let min = r.per_device.iter().map(|d| d.routed).min().unwrap();
        assert!(
            max - min < max / 2 + 10,
            "imbalance: {:?}",
            r.per_device.iter().map(|d| d.routed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fleet_power_is_coherent_sum() {
        let mut devices = fleet(2);
        let mut router = LeastLoadedRouter::default();
        let spec = stream(500.0, 1.0, 100);
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(50),
        )
        .expect("fleet runs");
        // Two SSD3s idle at ~1 W each; active adds more.
        let mean = r.avg_power_w();
        assert!(mean > 1.9 && mean < 8.0, "fleet mean power {mean}");
        assert!(r.energy_j > 0.0);
    }

    #[test]
    fn commands_from_a_router_are_applied() {
        #[derive(Debug)]
        struct SleepSecond;
        impl Router for SleepSecond {
            fn route(&mut self, _a: &Arrival, _f: &[DeviceStatus]) -> Route {
                Route::Device(0)
            }
            fn control(&mut self, _now: SimTime, fleet: &[DeviceStatus]) -> Vec<DeviceCommand> {
                if fleet[1].standby == StandbyState::Active {
                    vec![DeviceCommand::Standby { device: 1 }]
                } else {
                    Vec::new()
                }
            }
        }
        // Device 1 supports standby only if it's an EVO or HDD; use HDD.
        let mut devices: Vec<Box<dyn StorageDevice>> = vec![
            Box::new(catalog::ssd3_d3_p4510(1)),
            Box::new(catalog::hdd_exos_7e2000(2)),
        ];
        let mut router = SleepSecond;
        let spec = stream(200.0, 1.0, 300);
        let r = run_fleet(
            &mut devices,
            &mut router,
            &spec,
            SimDuration::from_millis(20),
        )
        .expect("fleet runs");
        assert_eq!(r.per_device[1].routed, 0);
        assert_ne!(devices[1].standby_state(), StandbyState::Active);
    }

    #[test]
    fn trace_replay_reproduces_the_generated_run() {
        use crate::wltrace::ArrivalTrace;
        let spec = stream(1_500.0, 0.4, 150);
        let trace = ArrivalTrace::record(crate::openloop::ArrivalGen::new(&spec).unwrap()).unwrap();

        let generated = {
            let mut devices = fleet(2);
            let mut router = LeastLoadedRouter::default();
            run_fleet(
                &mut devices,
                &mut router,
                &spec,
                SimDuration::from_millis(50),
            )
            .unwrap()
        };
        let replayed = {
            let mut devices = fleet(2);
            let mut router = LeastLoadedRouter::default();
            run_fleet_trace(
                &mut devices,
                &mut router,
                &trace,
                spec.seed,
                SimDuration::from_millis(50),
            )
            .unwrap()
        };
        assert_eq!(generated.total.ios(), replayed.total.ios());
        assert_eq!(generated.total.bytes(), replayed.total.bytes());
        assert_eq!(
            generated.energy_j.to_bits(),
            replayed.energy_j.to_bits(),
            "same arrivals + same meter seed = identical measurement"
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut devices = fleet(2);
            let mut router = LeastLoadedRouter::default();
            let spec = stream(1_000.0, 0.3, 150);
            let r = run_fleet(
                &mut devices,
                &mut router,
                &spec,
                SimDuration::from_millis(50),
            )
            .expect("fleet runs");
            (r.total.ios(), r.energy_j.to_bits(), r.power.len())
        };
        assert_eq!(run(), run());
    }
}
