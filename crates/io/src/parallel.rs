//! Work-stealing parallel execution of independent sweep cells.
//!
//! Every figure in the paper is a sweep over independent configurations, so
//! the executor's contract is simple and strict: cells are identified by a
//! stable index, each cell's work is a pure function of `(index, cell)`,
//! and the output vector is ordered by index. Results are therefore
//! **bit-identical regardless of worker count or scheduling order** —
//! parallelism changes wall-clock time and nothing else. Per-cell
//! randomness must be derived from a root seed and the cell index (see
//! [`SimRng::stream_seed`](powadapt_sim::SimRng::stream_seed)), never from
//! shared generator state.
//!
//! The scheduler is a contiguous-range work-stealing design on
//! [`std::thread::scope`] — no external dependencies: the index space is
//! split into one contiguous block per worker; a worker drains its own
//! block from the front in `chunk`-sized bites and, when empty, steals the
//! back half of the largest remaining block. Contiguous ranges keep both
//! the common case (one uncontended lock per bite) and the steal path
//! cheap, and idle workers converge onto whatever work is left.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a sweep is spread across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads (1 = run inline on the calling thread).
    pub workers: usize,
    /// Cells a worker claims from its own queue per bite. Larger chunks
    /// amortize locking; smaller chunks balance heterogeneous cell costs.
    pub chunk: usize,
}

impl ParallelConfig {
    /// Strictly sequential execution on the calling thread.
    pub fn sequential() -> Self {
        ParallelConfig {
            workers: 1,
            chunk: 1,
        }
    }

    /// `workers` threads with the default chunk of 1 (best load balance;
    /// sweep cells are heavy enough that per-bite locking is noise).
    ///
    /// `workers == 0` is normalized to 1.
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig {
            workers: workers.max(1),
            chunk: 1,
        }
    }

    /// Reads the configuration from the environment:
    /// `POWADAPT_WORKERS` sets the worker count (`0` or unset means "one
    /// per available CPU"), `POWADAPT_CHUNK` the claim granularity.
    pub fn from_env() -> Self {
        let workers = match std::env::var("POWADAPT_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        };
        let chunk = std::env::var("POWADAPT_CHUNK")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(1);
        ParallelConfig { workers, chunk }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::from_env()
    }
}

/// What one worker did during a sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Cells this worker executed.
    pub cells: u64,
    /// Steals this worker performed (it ran out and took work from a peer).
    pub steals: u64,
}

/// Execution report of one sweep.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Worker threads used.
    pub workers: usize,
    /// Total cells executed.
    pub cells: usize,
    /// Wall-clock time of the sweep.
    pub elapsed: Duration,
    /// Per-worker breakdown, in worker order.
    pub per_worker: Vec<WorkerStats>,
}

impl SweepStats {
    /// Aggregate throughput in cells per second (0 for an instant sweep).
    pub fn cells_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.cells as f64 / s
        } else {
            0.0
        }
    }

    /// Total steals across all workers.
    pub fn steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals).sum()
    }
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cells on {} workers in {:.2?} ({:.1} cells/s, {} steals)",
            self.cells,
            self.workers,
            self.elapsed,
            self.cells_per_sec(),
            self.steals()
        )
    }
}

// Session-wide counters live in the process-wide metrics registry
// (`powadapt_obs::metrics()`) under the `executor.` prefix, so binaries can
// report cumulative executor work without threading stats through every
// figure function — and so the counters appear in trace snapshots for free.

/// Cumulative executor activity of this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Sweeps executed.
    pub sweeps: u64,
    /// Cells executed across all sweeps.
    pub cells: u64,
    /// Steals across all sweeps.
    pub steals: u64,
    /// Summed wall-clock time of all sweeps.
    pub elapsed: Duration,
}

impl SessionStats {
    /// Aggregate throughput in cells per second (0 if nothing ran).
    pub fn cells_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.cells as f64 / s
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for SessionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sweeps, {} cells in {:.2?} ({:.1} cells/s, {} steals)",
            self.sweeps,
            self.cells,
            self.elapsed,
            self.cells_per_sec(),
            self.steals
        )
    }
}

/// Snapshot of the process-wide executor counters.
///
/// The four counters are read from one registry snapshot, so they are
/// mutually consistent even while sweeps run on other threads — a sweep's
/// whole contribution is either fully visible or not visible at all.
pub fn session_stats() -> SessionStats {
    let snap = powadapt_obs::metrics().snapshot();
    SessionStats {
        sweeps: snap.counter("executor.sweeps"),
        cells: snap.counter("executor.cells"),
        steals: snap.counter("executor.steals"),
        elapsed: Duration::from_nanos(snap.counter("executor.busy_nanos")),
    }
}

/// Resets the process-wide executor counters (tests, repeated benches).
///
/// Atomic with respect to [`session_stats`] and concurrent sweeps: the
/// `executor.` counters are dropped in one registry operation.
pub fn reset_session_stats() {
    powadapt_obs::metrics().remove_prefix("executor.");
}

/// One worker's claim on the shared index space: the half-open range
/// `[lo, hi)` of cell indices it still owns.
#[derive(Debug, Clone, Copy)]
struct Block {
    lo: usize,
    hi: usize,
}

impl Block {
    fn len(&self) -> usize {
        self.hi - self.lo
    }
}

/// Runs `f` over every cell and returns the results in cell order.
///
/// `f(index, &cells[index])` must be a pure function of its arguments (plus
/// any immutable captured state); under that contract the result vector is
/// bit-identical for every `cfg`. Panics in `f` propagate to the caller.
pub fn run_cells<C, T, F>(cells: &[C], cfg: &ParallelConfig, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(usize, &C) -> T + Sync,
{
    run_cells_stats(cells, cfg, f).0
}

/// Like [`run_cells`], also returning the execution report.
pub fn run_cells_stats<C, T, F>(cells: &[C], cfg: &ParallelConfig, f: F) -> (Vec<T>, SweepStats)
where
    C: Sync,
    T: Send,
    F: Fn(usize, &C) -> T + Sync,
{
    let n = cells.len();
    let workers = cfg.workers.max(1).min(n.max(1));
    let chunk = cfg.chunk.max(1);
    let start = Instant::now();

    let (out, per_worker) = if workers <= 1 {
        let out: Vec<T> = cells.iter().enumerate().map(|(i, c)| f(i, c)).collect();
        (
            out,
            vec![WorkerStats {
                cells: n as u64,
                steals: 0,
            }],
        )
    } else {
        run_stealing(cells, workers, chunk, &f)
    };

    let stats = SweepStats {
        workers,
        cells: n,
        elapsed: start.elapsed(),
        per_worker,
    };
    // One registry call so a concurrent session_stats() snapshot sees this
    // sweep's counters all-or-nothing, never a torn mix.
    powadapt_obs::metrics().inc_many(&[
        ("executor.sweeps", 1),
        ("executor.cells", n as u64),
        ("executor.steals", stats.steals()),
        ("executor.busy_nanos", stats.elapsed.as_nanos() as u64),
    ]);
    if std::env::var_os("POWADAPT_PROGRESS").is_some() {
        eprintln!("[powadapt] sweep: {stats}");
    }
    (out, stats)
}

fn run_stealing<C, T, F>(
    cells: &[C],
    workers: usize,
    chunk: usize,
    f: &F,
) -> (Vec<T>, Vec<WorkerStats>)
where
    C: Sync,
    T: Send,
    F: Fn(usize, &C) -> T + Sync,
{
    let n = cells.len();
    // One contiguous block per worker; the remainder spreads over the
    // first `n % workers` blocks so sizes differ by at most one.
    let queues: Vec<Mutex<Block>> = (0..workers)
        .map(|w| {
            let base = n / workers;
            let extra = n % workers;
            let lo = w * base + w.min(extra);
            let hi = lo + base + usize::from(w < extra);
            Mutex::new(Block { lo, hi })
        })
        .collect();

    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let mut stats = vec![WorkerStats::default(); workers];

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let queues = &queues;
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, T)> = Vec::new();
                let mut me = WorkerStats::default();
                loop {
                    // Claim a bite from my own block.
                    let bite = {
                        // powadapt-lint: allow(D5, reason = "a poisoned queue lock means a worker already panicked; propagating is correct")
                        let mut q = queues[w].lock().expect("queue lock");
                        if q.lo < q.hi {
                            let lo = q.lo;
                            q.lo = (lo + chunk).min(q.hi);
                            Some(Block { lo, hi: q.lo })
                        } else {
                            None
                        }
                    };
                    let bite = match bite {
                        Some(b) => b,
                        // Out of local work: steal the back half of the
                        // largest remaining block and make it mine.
                        None => match steal(queues, w) {
                            Some(b) => {
                                me.steals += 1;
                                // powadapt-lint: allow(D5, reason = "a poisoned queue lock means a worker already panicked; propagating is correct")
                                let mut q = queues[w].lock().expect("queue lock");
                                *q = Block {
                                    lo: (b.lo + chunk).min(b.hi),
                                    hi: b.hi,
                                };
                                Block {
                                    lo: b.lo,
                                    hi: (b.lo + chunk).min(b.hi),
                                }
                            }
                            None => break,
                        },
                    };
                    for (i, cell) in cells.iter().enumerate().take(bite.hi).skip(bite.lo) {
                        done.push((i, f(i, cell)));
                        me.cells += 1;
                    }
                }
                (done, me)
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            // powadapt-lint: allow(D5, reason = "join fails only when the worker panicked; re-raising preserves the original panic")
            let (done, me) = h.join().expect("worker panicked");
            stats[w] = me;
            for (i, t) in done {
                results[i] = Some(t);
            }
        }
    });

    let out: Vec<T> = results
        .into_iter()
        .enumerate()
        // powadapt-lint: allow(D5, reason = "executor contract: the blocks partition the index space, so every cell ran; verified by the golden equivalence tests")
        .map(|(i, r)| r.unwrap_or_else(|| panic!("cell {i} never executed")))
        .collect();
    (out, stats)
}

/// Takes the back half (at least one cell) of the largest remaining block
/// owned by any worker other than `thief`. Returns the stolen range.
fn steal(queues: &[Mutex<Block>], thief: usize) -> Option<Block> {
    // Pick the victim with the most remaining work (snapshot scan), then
    // re-check under its lock; retry while any work is visible.
    loop {
        let mut victim = None;
        let mut most = 0usize;
        for (i, q) in queues.iter().enumerate() {
            if i == thief {
                continue;
            }
            // powadapt-lint: allow(D5, reason = "a poisoned queue lock means a worker already panicked; propagating is correct")
            let remaining = q.lock().expect("queue lock").len();
            if remaining > most {
                most = remaining;
                victim = Some(i);
            }
        }
        let v = victim?;
        // powadapt-lint: allow(D5, reason = "a poisoned queue lock means a worker already panicked; propagating is correct")
        let mut q = queues[v].lock().expect("queue lock");
        let remaining = q.len();
        if remaining == 0 {
            // Lost the race; rescan for another victim.
            continue;
        }
        let take = remaining.div_ceil(2);
        let stolen = Block {
            lo: q.hi - take,
            hi: q.hi,
        };
        q.hi = stolen.lo;
        return Some(stolen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_sim::SimRng;

    fn cell_work(index: usize, seed_root: u64) -> u64 {
        // A stand-in for an experiment: a deterministic draw stream seeded
        // by the stable cell index.
        let mut rng = SimRng::for_stream(seed_root, index as u64);
        (0..100).map(|_| rng.next_u64() >> 32).sum()
    }

    #[test]
    fn results_are_in_cell_order_and_complete() {
        let cells: Vec<usize> = (0..37).collect();
        let (out, stats) = run_cells_stats(&cells, &ParallelConfig::with_workers(4), |i, &c| {
            assert_eq!(i, c);
            i * 10
        });
        assert_eq!(out, (0..37).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(stats.cells, 37);
        assert_eq!(stats.per_worker.iter().map(|w| w.cells).sum::<u64>(), 37);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let cells: Vec<u32> = (0..61).collect();
        let run = |workers| {
            run_cells(&cells, &ParallelConfig::with_workers(workers), |i, _| {
                cell_work(i, 99)
            })
        };
        let seq = run(1);
        for workers in [2, 3, 8, 16] {
            assert_eq!(seq, run(workers), "diverged at {workers} workers");
        }
    }

    #[test]
    fn chunking_does_not_change_results() {
        let cells: Vec<u32> = (0..40).collect();
        let run = |chunk| {
            let cfg = ParallelConfig { workers: 4, chunk };
            run_cells(&cells, &cfg, |i, _| cell_work(i, 7))
        };
        assert_eq!(run(1), run(3));
        assert_eq!(run(1), run(64));
    }

    #[test]
    fn empty_and_single_cell_sweeps_work() {
        let none: Vec<u8> = Vec::new();
        let (out, stats) = run_cells_stats(&none, &ParallelConfig::with_workers(8), |_, _| 1);
        assert!(out.is_empty());
        assert_eq!(stats.cells, 0);
        let one = [42u8];
        let out = run_cells(&one, &ParallelConfig::with_workers(8), |_, &c| c as u32);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn uneven_cell_costs_get_stolen() {
        // Front-loaded cost: worker 0's block is far slower, so with chunk
        // 1 the other workers must steal to finish.
        let cells: Vec<u64> = (0..64).map(|i| if i < 8 { 400_000 } else { 100 }).collect();
        let cfg = ParallelConfig {
            workers: 8,
            chunk: 1,
        };
        let (out, stats) = run_cells_stats(&cells, &cfg, |i, &spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            acc
        });
        assert_eq!(out.len(), 64);
        // Steal accounting is exact under contention: every steal recorded
        // corresponds to a real transfer, and all cells ran exactly once.
        assert_eq!(stats.per_worker.iter().map(|w| w.cells).sum::<u64>(), 64);
    }

    #[test]
    fn errors_are_returned_in_cell_order() {
        // Callers that sweep fallible work collect Results; the first error
        // by cell index is deterministic regardless of scheduling.
        let cells: Vec<usize> = (0..20).collect();
        let out = run_cells(&cells, &ParallelConfig::with_workers(4), |i, _| {
            if i % 7 == 3 {
                Err(i)
            } else {
                Ok(i)
            }
        });
        let first_err = out.iter().find_map(|r| r.as_ref().err());
        assert_eq!(first_err, Some(&3));
    }

    #[test]
    fn config_from_env_parses_workers() {
        // Only exercise the pure parts (env manipulation in tests races
        // with other threads): defaults and normalization.
        assert_eq!(ParallelConfig::with_workers(0).workers, 1);
        assert_eq!(ParallelConfig::sequential().workers, 1);
        assert!(ParallelConfig::from_env().workers >= 1);
    }

    #[test]
    fn session_counters_accumulate() {
        let before = session_stats();
        let cells: Vec<u8> = vec![0; 10];
        let _ = run_cells(&cells, &ParallelConfig::sequential(), |i, _| i);
        let after = session_stats();
        assert!(after.cells >= before.cells + 10);
        assert!(after.sweeps > before.sweeps);
    }
}
