//! Trace-driven workloads: record an arrival stream to CSV, or replay one
//! captured elsewhere, against a device fleet.
//!
//! The CSV format is `time_s,kind,offset,len` with a header, `kind` being
//! `R` or `W` — the shape of public block-IO traces after normalization.

use std::io::{BufRead, Write};

use powadapt_device::IoKind;
use powadapt_sim::{SimDuration, SimTime};

use crate::openloop::Arrival;

/// A recorded arrival stream.
///
/// # Examples
///
/// ```
/// use powadapt_io::{Arrival, ArrivalTrace};
/// use powadapt_device::IoKind;
/// use powadapt_sim::SimTime;
///
/// let trace = ArrivalTrace::new(vec![Arrival {
///     at: SimTime::from_millis(1),
///     kind: IoKind::Write,
///     offset: 0,
///     len: 4096,
/// }])?;
/// let mut csv = Vec::new();
/// trace.write_csv(&mut csv)?;
/// let back = ArrivalTrace::from_csv(csv.as_slice())?;
/// assert_eq!(back.arrivals(), trace.arrivals());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

/// Errors from trace parsing and validation.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// The trace violates an invariant (non-monotone times, zero length).
    Invalid(String),
    /// A CSV line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Invalid(m) => write!(f, "invalid trace: {m}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl ArrivalTrace {
    /// Creates a trace from arrivals.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Invalid`] if times are not non-decreasing or
    /// any length is zero.
    pub fn new(arrivals: Vec<Arrival>) -> Result<Self, TraceError> {
        let mut last = SimTime::ZERO;
        for (i, a) in arrivals.iter().enumerate() {
            if a.at < last {
                return Err(TraceError::Invalid(format!(
                    "arrival {i} at {} precedes its predecessor at {last}",
                    a.at
                )));
            }
            if a.len == 0 {
                return Err(TraceError::Invalid(format!("arrival {i} has zero length")));
            }
            last = a.at;
        }
        Ok(ArrivalTrace { arrivals })
    }

    /// The arrivals, in time order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Time of the last arrival ([`SimTime::ZERO`] when empty).
    pub fn duration(&self) -> SimDuration {
        self.arrivals.last().map_or(SimDuration::ZERO, |a| {
            a.at.saturating_duration_since(SimTime::ZERO)
        })
    }

    /// Total bytes across all arrivals.
    pub fn total_bytes(&self) -> u64 {
        self.arrivals.iter().map(|a| a.len).sum()
    }

    /// Parses a CSV trace (`time_s,kind,offset,len`, header required).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] for malformed lines, [`TraceError::Io`]
    /// for reader failures, and [`TraceError::Invalid`] for ordering
    /// violations.
    pub fn from_csv<R: BufRead>(reader: R) -> Result<Self, TraceError> {
        let mut arrivals = Vec::new();
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            let lineno = idx + 1;
            if idx == 0 {
                if line.trim() != "time_s,kind,offset,len" {
                    return Err(TraceError::Parse {
                        line: lineno,
                        message: format!("expected header 'time_s,kind,offset,len', got '{line}'"),
                    });
                }
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 4 {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("expected 4 fields, got {}", fields.len()),
                });
            }
            let secs: f64 = fields[0].trim().parse().map_err(|e| TraceError::Parse {
                line: lineno,
                message: format!("bad time: {e}"),
            })?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("bad time {secs}"),
                });
            }
            let kind = match fields[1].trim() {
                "R" | "r" => IoKind::Read,
                "W" | "w" => IoKind::Write,
                other => {
                    return Err(TraceError::Parse {
                        line: lineno,
                        message: format!("bad kind '{other}' (expected R or W)"),
                    })
                }
            };
            let offset: u64 = fields[2].trim().parse().map_err(|e| TraceError::Parse {
                line: lineno,
                message: format!("bad offset: {e}"),
            })?;
            let len: u64 = fields[3].trim().parse().map_err(|e| TraceError::Parse {
                line: lineno,
                message: format!("bad len: {e}"),
            })?;
            arrivals.push(Arrival {
                at: SimTime::from_secs_f64(secs),
                kind,
                offset,
                len,
            });
        }
        ArrivalTrace::new(arrivals)
    }

    /// Writes the trace as CSV.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "time_s,kind,offset,len")?;
        for a in &self.arrivals {
            writeln!(
                w,
                "{:.6},{},{},{}",
                a.at.as_secs_f64(),
                if a.kind == IoKind::Read { "R" } else { "W" },
                a.offset,
                a.len
            )?;
        }
        Ok(())
    }

    /// Records a trace from any arrival source (e.g. an
    /// [`ArrivalGen`](crate::ArrivalGen)) so a synthetic workload can be
    /// replayed exactly.
    pub fn record<I: Iterator<Item = Arrival>>(source: I) -> Result<Self, TraceError> {
        ArrivalTrace::new(source.collect())
    }
}

impl IntoIterator for ArrivalTrace {
    type Item = Arrival;
    type IntoIter = std::vec::IntoIter<Arrival>;
    fn into_iter(self) -> Self::IntoIter {
        self.arrivals.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::AccessPattern;
    use crate::openloop::{ArrivalGen, Arrivals, OpenLoopSpec};

    fn arrival(ms: u64, kind: IoKind, offset: u64, len: u64) -> Arrival {
        Arrival {
            at: SimTime::from_millis(ms),
            kind,
            offset,
            len,
        }
    }

    #[test]
    fn csv_round_trip() {
        let trace = ArrivalTrace::new(vec![
            arrival(0, IoKind::Write, 0, 4096),
            arrival(3, IoKind::Read, 8192, 65536),
            arrival(3, IoKind::Read, 16384, 4096),
        ])
        .unwrap();
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        let parsed = ArrivalTrace::from_csv(buf.as_slice()).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.total_bytes(), 4096 + 65536 + 4096);
        assert_eq!(parsed.duration().as_millis(), 3);
    }

    #[test]
    fn rejects_out_of_order_times() {
        let err = ArrivalTrace::new(vec![
            arrival(5, IoKind::Read, 0, 4096),
            arrival(4, IoKind::Read, 0, 4096),
        ])
        .unwrap_err();
        assert!(matches!(err, TraceError::Invalid(_)));
        assert!(err.to_string().contains("precedes"));
    }

    #[test]
    fn rejects_zero_length() {
        let err = ArrivalTrace::new(vec![arrival(0, IoKind::Read, 0, 0)]).unwrap_err();
        assert!(err.to_string().contains("zero length"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad_header = "time,kind,offset,len\n";
        let err = ArrivalTrace::from_csv(bad_header.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));

        let bad_kind = "time_s,kind,offset,len\n0.5,X,0,4096\n";
        let err = ArrivalTrace::from_csv(bad_kind.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }));

        let bad_fields = "time_s,kind,offset,len\n0.5,R,0\n";
        let err = ArrivalTrace::from_csv(bad_fields.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("4 fields"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "time_s,kind,offset,len\n0.001,R,0,4096\n\n0.002,W,4096,4096\n";
        let trace = ArrivalTrace::from_csv(csv.as_bytes()).unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn records_a_synthetic_stream_exactly() {
        let spec = OpenLoopSpec {
            arrivals: Arrivals::Poisson { rate_iops: 2000.0 },
            block_size: 4096,
            read_fraction: 0.5,
            pattern: AccessPattern::Random,
            region: (0, 1 << 30),
            duration: SimDuration::from_millis(100),
            seed: 3,
            zipf_theta: None,
        };
        let trace = ArrivalTrace::record(ArrivalGen::new(&spec).unwrap()).unwrap();
        assert!(!trace.is_empty());
        // Replay order and content match a fresh generation.
        let again: Vec<Arrival> = ArrivalGen::new(&spec).unwrap().collect();
        assert_eq!(trace.arrivals(), again.as_slice());
    }
}
