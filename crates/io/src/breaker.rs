//! Circuit-breaker routing: quarantine erroring devices, probe, re-admit.
//!
//! A power-adaptive fleet that reacts to a faulting drive by aborting the
//! whole run has traded availability for a power knob — exactly the
//! trade-off §4.1's incremental-rollout argument says operators will not
//! accept. [`CircuitBreakerRouter`] wraps any [`Router`] and layers the
//! classic breaker state machine on top of its decisions:
//!
//! - **Closed** — traffic flows normally; consecutive transient errors are
//!   counted.
//! - **Open** — after `failure_threshold` consecutive errors the device is
//!   quarantined: arrivals the inner router sends there are deterministically
//!   redirected to the least-loaded non-quarantined device.
//! - **Half-open** — once `cooldown` has elapsed the device is probed:
//!   traffic is admitted again, and `probe_successes` completions close the
//!   breaker while a single error re-opens it.
//!
//! All decisions are pure functions of simulation time and observed
//! error/completion counts — no randomness — so runs stay bit-for-bit
//! reproducible. Every transition is recorded as a [`QuarantineEvent`] for
//! post-run audit.

use std::fmt;

use powadapt_device::{DeviceError, IoCompletion};
use powadapt_obs::{emit, EventKind, RecorderHandle};
use powadapt_sim::{SimDuration, SimTime};

use crate::fleet::{DeviceCommand, DeviceStatus, Route, Router};
use crate::openloop::Arrival;

/// Tuning knobs for [`CircuitBreakerRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transient errors that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker quarantines its device before probing.
    pub cooldown: SimDuration,
    /// Completions a half-open device must deliver to close the breaker.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_millis(500),
            probe_successes: 2,
        }
    }
}

/// Breaker position for one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, consecutive errors counted.
    Closed,
    /// Quarantined: traffic redirected until the cooldown elapses.
    Open,
    /// Probing: traffic admitted; successes close, an error re-opens.
    HalfOpen,
}

/// A breaker state transition, recorded for post-run audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineEvent {
    /// When the transition happened.
    pub at: SimTime,
    /// Device index the breaker guards.
    pub device: usize,
    /// State entered.
    pub entered: BreakerState,
}

#[derive(Debug, Clone, Copy)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    probe_successes: u32,
    open_until: SimTime,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
            open_until: SimTime::ZERO,
        }
    }
}

/// Wraps a [`Router`], quarantining devices whose errors trip a circuit
/// breaker and redirecting their traffic (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use powadapt_io::{BreakerConfig, CircuitBreakerRouter, LeastLoadedRouter};
///
/// let router = CircuitBreakerRouter::new(LeastLoadedRouter::default(), BreakerConfig::default());
/// assert!(router.events().is_empty());
/// ```
#[derive(Debug)]
pub struct CircuitBreakerRouter<R> {
    inner: R,
    cfg: BreakerConfig,
    breakers: Vec<Breaker>,
    events: Vec<QuarantineEvent>,
    rec: RecorderHandle,
}

impl<R> CircuitBreakerRouter<R> {
    /// Wraps `inner` with breaker behavior under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.failure_threshold` or `cfg.probe_successes` is zero,
    /// or `cfg.cooldown` is zero (the breaker could never close again).
    pub fn new(inner: R, cfg: BreakerConfig) -> Self {
        assert!(cfg.failure_threshold >= 1, "failure threshold must be >= 1");
        assert!(cfg.probe_successes >= 1, "probe successes must be >= 1");
        assert!(!cfg.cooldown.is_zero(), "cooldown must be non-zero");
        CircuitBreakerRouter {
            inner,
            cfg,
            breakers: Vec::new(),
            events: Vec::new(),
            rec: powadapt_obs::current(),
        }
    }

    /// Attaches a telemetry recorder; breaker transitions are emitted on
    /// per-device `device{i}` tracks.
    pub fn set_recorder(&mut self, rec: RecorderHandle) {
        self.rec = rec;
    }

    /// The breaker transitions recorded so far, in time order.
    pub fn events(&self) -> &[QuarantineEvent] {
        &self.events
    }

    /// Current breaker state for device `device` ([`BreakerState::Closed`]
    /// if the device has not been seen yet).
    pub fn state(&self, device: usize) -> BreakerState {
        self.breakers
            .get(device)
            .map_or(BreakerState::Closed, |b| b.state)
    }

    /// The wrapped router.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    fn ensure(&mut self, n: usize) {
        while self.breakers.len() < n {
            self.breakers.push(Breaker::new());
        }
    }

    fn transition(&mut self, device: usize, entered: BreakerState, at: SimTime) {
        self.breakers[device].state = entered;
        emit!(
            self.rec,
            at,
            powadapt_obs::intern(&format!("device{device}")),
            match entered {
                BreakerState::Closed => EventKind::BreakerClose,
                BreakerState::Open => EventKind::BreakerOpen,
                BreakerState::HalfOpen => EventKind::BreakerHalfOpen,
            }
        );
        self.events.push(QuarantineEvent {
            at,
            device,
            entered,
        });
    }

    /// Moves any open breaker whose cooldown has elapsed to half-open.
    fn probe_expired(&mut self, now: SimTime) {
        for i in 0..self.breakers.len() {
            let b = self.breakers[i];
            if b.state == BreakerState::Open && now >= b.open_until {
                self.breakers[i].probe_successes = 0;
                self.transition(i, BreakerState::HalfOpen, now);
            }
        }
    }
}

impl<R: Router> Router for CircuitBreakerRouter<R> {
    fn route(&mut self, arrival: &Arrival, fleet: &[DeviceStatus]) -> Route {
        self.ensure(fleet.len());
        // Arrival admission time is the best clock available here; the run
        // loop admits arrivals at `t >= arrival.at`, so this only ever
        // probes late, never early.
        self.probe_expired(arrival.at);

        let route = self.inner.route(arrival, fleet);
        let target = match route {
            Route::Device(d) if d < fleet.len() => d,
            other => return other,
        };
        if self.breakers[target].state != BreakerState::Open {
            return route;
        }
        // Redirect away from the quarantined device: least-loaded among the
        // non-open devices, lowest index on ties. If every breaker is open
        // the inner choice stands — the run loop's own per-arrival retry
        // bound decides whether the arrival is dropped.
        let candidate = fleet
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.breakers[i].state != BreakerState::Open)
            .min_by_key(|&(i, s)| (s.inflight, i))
            .map(|(i, _)| i);
        match candidate {
            Some(i) => Route::Device(i),
            None => route,
        }
    }

    fn control(&mut self, now: SimTime, fleet: &[DeviceStatus]) -> Vec<DeviceCommand> {
        self.ensure(fleet.len());
        // Quiet fleets must still re-admit: probe on the control tick too,
        // not just on arrivals.
        self.probe_expired(now);
        self.inner.control(now, fleet)
    }

    fn on_device_error(&mut self, device: usize, error: &DeviceError, now: SimTime) {
        self.ensure(device + 1);
        let b = self.breakers[device];
        match b.state {
            BreakerState::Closed => {
                self.breakers[device].consecutive_failures += 1;
                if self.breakers[device].consecutive_failures >= self.cfg.failure_threshold {
                    self.breakers[device].open_until = now + self.cfg.cooldown;
                    self.transition(device, BreakerState::Open, now);
                }
            }
            BreakerState::HalfOpen => {
                // One strike during a probe re-opens immediately.
                self.breakers[device].consecutive_failures = self.cfg.failure_threshold;
                self.breakers[device].open_until = now + self.cfg.cooldown;
                self.transition(device, BreakerState::Open, now);
            }
            BreakerState::Open => {}
        }
        self.inner.on_device_error(device, error, now);
    }

    fn on_io_complete(&mut self, device: usize, completion: &IoCompletion) {
        self.ensure(device + 1);
        match self.breakers[device].state {
            BreakerState::Closed => self.breakers[device].consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.breakers[device].probe_successes += 1;
                if self.breakers[device].probe_successes >= self.cfg.probe_successes {
                    self.breakers[device].consecutive_failures = 0;
                    self.transition(device, BreakerState::Closed, completion.completed);
                }
            }
            BreakerState::Open => {}
        }
        self.inner.on_io_complete(device, completion);
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::LeastLoadedRouter;
    use powadapt_device::{IoId, IoKind};

    fn status(inflight: usize) -> DeviceStatus {
        DeviceStatus {
            label: "dev".to_string(),
            inflight,
            standby: powadapt_device::StandbyState::Active,
            power_state: powadapt_device::PowerStateId(0),
            supports_standby: false,
        }
    }

    fn arrival(at_ms: u64) -> Arrival {
        Arrival {
            at: SimTime::from_millis(at_ms),
            kind: IoKind::Read,
            offset: 0,
            len: 4096,
        }
    }

    fn completion(at_ms: u64) -> IoCompletion {
        IoCompletion {
            id: IoId(0),
            kind: IoKind::Read,
            len: 4096,
            submitted: SimTime::from_millis(at_ms),
            completed: SimTime::from_millis(at_ms),
        }
    }

    fn err() -> DeviceError {
        DeviceError::Unavailable
    }

    #[test]
    fn opens_after_threshold_and_redirects() {
        let mut r =
            CircuitBreakerRouter::new(LeastLoadedRouter::default(), BreakerConfig::default());
        let fleet = vec![status(0), status(5)];
        // Device 0 is least loaded: the inner router picks it.
        assert_eq!(r.route(&arrival(0), &fleet), Route::Device(0));
        for _ in 0..3 {
            r.on_device_error(0, &err(), SimTime::from_millis(1));
        }
        assert_eq!(r.state(0), BreakerState::Open);
        // Despite device 0 being least loaded, traffic now goes to 1.
        assert_eq!(r.route(&arrival(2), &fleet), Route::Device(1));
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].entered, BreakerState::Open);
    }

    #[test]
    fn probes_after_cooldown_and_closes_on_successes() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_millis(10),
            probe_successes: 2,
        };
        let mut r = CircuitBreakerRouter::new(LeastLoadedRouter::default(), cfg);
        let fleet = vec![status(0), status(0)];
        r.route(&arrival(0), &fleet);
        r.on_device_error(0, &err(), SimTime::from_millis(1));
        assert_eq!(r.state(0), BreakerState::Open);
        // Before the cooldown: still quarantined.
        r.route(&arrival(5), &fleet);
        assert_eq!(r.state(0), BreakerState::Open);
        // After the cooldown: probing.
        r.route(&arrival(12), &fleet);
        assert_eq!(r.state(0), BreakerState::HalfOpen);
        r.on_io_complete(0, &completion(13));
        assert_eq!(r.state(0), BreakerState::HalfOpen);
        r.on_io_complete(0, &completion(14));
        assert_eq!(r.state(0), BreakerState::Closed);
        let entered: Vec<BreakerState> = r.events().iter().map(|e| e.entered).collect();
        assert_eq!(
            entered,
            vec![
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed
            ]
        );
    }

    #[test]
    fn half_open_error_reopens() {
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_millis(10),
            probe_successes: 1,
        };
        let mut r = CircuitBreakerRouter::new(LeastLoadedRouter::default(), cfg);
        let fleet = vec![status(0), status(0)];
        r.route(&arrival(0), &fleet);
        r.on_device_error(0, &err(), SimTime::from_millis(0));
        r.on_device_error(0, &err(), SimTime::from_millis(1));
        assert_eq!(r.state(0), BreakerState::Open);
        r.route(&arrival(20), &fleet);
        assert_eq!(r.state(0), BreakerState::HalfOpen);
        // A single error during the probe re-opens without a new threshold.
        r.on_device_error(0, &err(), SimTime::from_millis(21));
        assert_eq!(r.state(0), BreakerState::Open);
    }

    #[test]
    fn control_tick_probes_without_traffic() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_millis(10),
            probe_successes: 1,
        };
        let mut r = CircuitBreakerRouter::new(LeastLoadedRouter::default(), cfg);
        let fleet = vec![status(0)];
        r.route(&arrival(0), &fleet);
        r.on_device_error(0, &err(), SimTime::from_millis(0));
        assert_eq!(r.state(0), BreakerState::Open);
        let _ = r.control(SimTime::from_millis(15), &fleet);
        assert_eq!(r.state(0), BreakerState::HalfOpen);
    }

    #[test]
    fn all_open_falls_back_to_inner_choice() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            ..BreakerConfig::default()
        };
        let mut r = CircuitBreakerRouter::new(LeastLoadedRouter::default(), cfg);
        let fleet = vec![status(0), status(0)];
        r.route(&arrival(0), &fleet);
        r.on_device_error(0, &err(), SimTime::from_millis(0));
        r.on_device_error(1, &err(), SimTime::from_millis(0));
        assert_eq!(r.state(0), BreakerState::Open);
        assert_eq!(r.state(1), BreakerState::Open);
        // Nothing healthy to redirect to: the inner pick stands.
        match r.route(&arrival(1), &fleet) {
            Route::Device(_) => {}
            other => panic!("expected a device route, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "cooldown must be non-zero")]
    fn zero_cooldown_rejected() {
        let cfg = BreakerConfig {
            cooldown: SimDuration::ZERO,
            ..BreakerConfig::default()
        };
        let _ = CircuitBreakerRouter::new(LeastLoadedRouter::default(), cfg);
    }
}
