//! Parameter sweeps over chunk sizes, queue depths, workloads, and power
//! states — the cross-product behind the paper's figures.

use powadapt_device::{PowerStateId, StorageDevice, KIB};
use powadapt_sim::SimDuration;

use crate::job::{JobSpec, Workload};
use crate::runner::{run_experiment, ExperimentError, ExperimentResult};

/// The paper's six chunk sizes, 4 KiB – 2 MiB.
pub const PAPER_CHUNKS: [u64; 6] = [
    4 * KIB,
    16 * KIB,
    64 * KIB,
    256 * KIB,
    1024 * KIB,
    2048 * KIB,
];

/// The paper's six IO depths, 1 – 128.
pub const PAPER_DEPTHS: [usize; 6] = [1, 2, 4, 16, 64, 128];

/// One point of a sweep: the swept coordinates plus the experiment result.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Workload mode.
    pub workload: Workload,
    /// Chunk size in bytes.
    pub chunk: u64,
    /// Queue depth.
    pub depth: usize,
    /// Device power state.
    pub power_state: PowerStateId,
    /// The measured result.
    pub result: ExperimentResult,
}

/// Runs one job on a freshly built device in the given power state.
///
/// Using a fresh device per point mirrors the paper's per-experiment reset
/// and keeps points independent.
///
/// # Errors
///
/// Propagates [`ExperimentError`] from the runner or power-state selection.
pub fn run_fresh<F>(
    factory: F,
    power_state: PowerStateId,
    job: &JobSpec,
) -> Result<ExperimentResult, ExperimentError>
where
    F: FnOnce() -> Box<dyn StorageDevice>,
{
    let mut device = factory();
    device.set_power_state(power_state)?;
    run_experiment(device.as_mut(), job)
}

/// Sweep durations trimmed for interactive use; the bench harness overrides
/// these with the paper's full 60 s / 4 GiB rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepScale {
    /// Runtime limit per point.
    pub runtime: SimDuration,
    /// Size limit per point in bytes.
    pub size_limit: u64,
    /// Warm-up excluded from statistics.
    pub ramp: SimDuration,
}

impl SweepScale {
    /// The paper's methodology: 60 s or 4 GiB, whichever first.
    pub fn paper() -> Self {
        SweepScale {
            runtime: SimDuration::from_secs(60),
            size_limit: 4 * powadapt_device::GIB,
            ramp: SimDuration::from_millis(200),
        }
    }

    /// A fast scale for tests and smoke runs (shape-preserving: long enough
    /// to reach steady state on the simulated devices, and sized so the
    /// runtime — not the transfer cap — ends the experiment; otherwise fast
    /// cells measure mostly their queue-drain tail).
    pub fn quick() -> Self {
        SweepScale {
            runtime: SimDuration::from_millis(1000),
            size_limit: 4 * powadapt_device::GIB,
            ramp: SimDuration::from_millis(150),
        }
    }

    fn apply(&self, job: JobSpec) -> JobSpec {
        job.runtime(self.runtime)
            .size_limit(self.size_limit)
            .ramp(self.ramp)
    }
}

/// Runs the full cross-product of `workloads × chunks × depths ×
/// power_states` on fresh devices from `factory`.
///
/// # Errors
///
/// Stops at and returns the first experiment failure.
pub fn full_sweep<F>(
    factory: F,
    workloads: &[Workload],
    chunks: &[u64],
    depths: &[usize],
    power_states: &[PowerStateId],
    scale: SweepScale,
    seed: u64,
) -> Result<Vec<SweepPoint>, ExperimentError>
where
    F: Fn() -> Box<dyn StorageDevice>,
{
    let mut out = Vec::new();
    for &workload in workloads {
        for &chunk in chunks {
            for &depth in depths {
                for &ps in power_states {
                    let job = scale.apply(
                        JobSpec::new(workload)
                            .block_size(chunk)
                            .io_depth(depth)
                            .seed(seed ^ (chunk << 8) ^ depth as u64),
                    );
                    let result = run_fresh(&factory, ps, &job)?;
                    out.push(SweepPoint {
                        workload,
                        chunk,
                        depth,
                        power_state: ps,
                        result,
                    });
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::catalog;

    fn ssd2_factory() -> Box<dyn StorageDevice> {
        Box::new(catalog::ssd2_d7_p5510(17))
    }

    #[test]
    fn paper_constants_match_methodology() {
        assert_eq!(PAPER_CHUNKS.len(), 6);
        assert_eq!(PAPER_CHUNKS[0], 4 * KIB);
        assert_eq!(*PAPER_CHUNKS.last().unwrap(), 2048 * KIB);
        assert_eq!(PAPER_DEPTHS.len(), 6);
        assert_eq!(PAPER_DEPTHS[0], 1);
        assert_eq!(*PAPER_DEPTHS.last().unwrap(), 128);
        let p = SweepScale::paper();
        assert_eq!(p.runtime.as_secs_f64(), 60.0);
        assert_eq!(p.size_limit, 4 * powadapt_device::GIB);
    }

    #[test]
    fn run_fresh_applies_power_state() {
        let job = SweepScale::quick().apply(
            JobSpec::new(Workload::RandRead)
                .block_size(4 * KIB)
                .io_depth(4),
        );
        let r = run_fresh(ssd2_factory, PowerStateId(2), &job).unwrap();
        assert_eq!(r.power_state, PowerStateId(2));
    }

    #[test]
    fn small_sweep_produces_all_points() {
        let points = full_sweep(
            ssd2_factory,
            &[Workload::RandRead],
            &[4 * KIB, 64 * KIB],
            &[1, 8],
            &[PowerStateId(0)],
            SweepScale {
                runtime: SimDuration::from_millis(30),
                size_limit: 8 * powadapt_device::MIB,
                ramp: SimDuration::ZERO,
            },
            1,
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(
                p.result.io.ios() > 0,
                "{:?} produced no IO",
                (p.chunk, p.depth)
            );
        }
        // Deeper queues should not be slower.
        let thr = |c: u64, d: usize| {
            points
                .iter()
                .find(|p| p.chunk == c && p.depth == d)
                .unwrap()
                .result
                .io
                .throughput_mibs()
        };
        assert!(thr(4 * KIB, 8) > thr(4 * KIB, 1));
    }

    #[test]
    fn sweep_rejects_invalid_power_state() {
        let err = full_sweep(
            ssd2_factory,
            &[Workload::RandRead],
            &[4 * KIB],
            &[1],
            &[PowerStateId(7)],
            SweepScale::quick(),
            1,
        );
        assert!(err.is_err());
    }
}
