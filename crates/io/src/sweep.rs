//! Parameter sweeps over chunk sizes, queue depths, workloads, and power
//! states — the cross-product behind the paper's figures.

use powadapt_device::{PowerStateId, StorageDevice, KIB};
use powadapt_sim::{SimDuration, SimRng};

use crate::job::{JobSpec, Workload};
use crate::parallel::{run_cells, ParallelConfig};
use crate::runner::{run_experiment, ExperimentError, ExperimentResult};

/// The paper's six chunk sizes, 4 KiB – 2 MiB.
pub const PAPER_CHUNKS: [u64; 6] = [
    4 * KIB,
    16 * KIB,
    64 * KIB,
    256 * KIB,
    1024 * KIB,
    2048 * KIB,
];

/// The paper's six IO depths, 1 – 128.
pub const PAPER_DEPTHS: [usize; 6] = [1, 2, 4, 16, 64, 128];

/// One point of a sweep: the swept coordinates plus the experiment result.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Workload mode.
    pub workload: Workload,
    /// Chunk size in bytes.
    pub chunk: u64,
    /// Queue depth.
    pub depth: usize,
    /// Device power state.
    pub power_state: PowerStateId,
    /// The measured result.
    pub result: ExperimentResult,
}

/// Runs one job on a freshly built device in the given power state.
///
/// Using a fresh device per point mirrors the paper's per-experiment reset
/// and keeps points independent.
///
/// # Errors
///
/// Propagates [`ExperimentError`] from the runner or power-state selection.
pub fn run_fresh<F>(
    factory: F,
    power_state: PowerStateId,
    job: &JobSpec,
) -> Result<ExperimentResult, ExperimentError>
where
    F: FnOnce() -> Box<dyn StorageDevice>,
{
    let mut device = factory();
    device.set_power_state(power_state)?;
    run_experiment(device.as_mut(), job)
}

/// Sweep durations trimmed for interactive use; the bench harness overrides
/// these with the paper's full 60 s / 4 GiB rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepScale {
    /// Runtime limit per point.
    pub runtime: SimDuration,
    /// Size limit per point in bytes.
    pub size_limit: u64,
    /// Warm-up excluded from statistics.
    pub ramp: SimDuration,
}

impl SweepScale {
    /// The paper's methodology: 60 s or 4 GiB, whichever first.
    pub fn paper() -> Self {
        SweepScale {
            runtime: SimDuration::from_secs(60),
            size_limit: 4 * powadapt_device::GIB,
            ramp: SimDuration::from_millis(200),
        }
    }

    /// A fast scale for tests and smoke runs (shape-preserving: long enough
    /// to reach steady state on the simulated devices, and sized so the
    /// runtime — not the transfer cap — ends the experiment; otherwise fast
    /// cells measure mostly their queue-drain tail).
    pub fn quick() -> Self {
        SweepScale {
            runtime: SimDuration::from_millis(1000),
            size_limit: 4 * powadapt_device::GIB,
            ramp: SimDuration::from_millis(150),
        }
    }

    fn apply(&self, job: JobSpec) -> JobSpec {
        job.runtime(self.runtime)
            .size_limit(self.size_limit)
            .ramp(self.ramp)
    }
}

/// One cell of a sweep's cross-product: the swept coordinates plus the
/// stable index that seeds the cell's random streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Position of this cell in the sweep's enumeration order. The cell's
    /// job seed is `SimRng::stream_seed(root_seed, index)`, making every
    /// cell's randomness independent of which worker runs it and when.
    pub index: u64,
    /// Workload mode.
    pub workload: Workload,
    /// Chunk size in bytes.
    pub chunk: u64,
    /// Queue depth.
    pub depth: usize,
    /// Device power state.
    pub power_state: PowerStateId,
}

/// Enumerates the cross-product `workloads × chunks × depths ×
/// power_states` in canonical (row-major) order with stable indices.
pub fn enumerate_cells(
    workloads: &[Workload],
    chunks: &[u64],
    depths: &[usize],
    power_states: &[PowerStateId],
) -> Vec<SweepCell> {
    let mut cells =
        Vec::with_capacity(workloads.len() * chunks.len() * depths.len() * power_states.len());
    for &workload in workloads {
        for &chunk in chunks {
            for &depth in depths {
                for &ps in power_states {
                    cells.push(SweepCell {
                        index: cells.len() as u64,
                        workload,
                        chunk,
                        depth,
                        power_state: ps,
                    });
                }
            }
        }
    }
    cells
}

/// Runs the full cross-product of `workloads × chunks × depths ×
/// power_states` on fresh devices from `factory`, fanning the cells across
/// the workers configured by the environment (`POWADAPT_WORKERS`, see
/// [`ParallelConfig::from_env`]).
///
/// Each cell's randomness is seeded from `(seed, cell index)` via
/// [`SimRng::stream_seed`], so the returned points are bit-identical for
/// every worker count.
///
/// # Errors
///
/// Returns the first experiment failure in cell order. (Under parallel
/// execution later cells may also have run; their results are discarded so
/// the observable outcome matches a sequential sweep.)
pub fn full_sweep<F>(
    factory: F,
    workloads: &[Workload],
    chunks: &[u64],
    depths: &[usize],
    power_states: &[PowerStateId],
    scale: SweepScale,
    seed: u64,
) -> Result<Vec<SweepPoint>, ExperimentError>
where
    F: Fn() -> Box<dyn StorageDevice> + Sync,
{
    full_sweep_with(
        factory,
        workloads,
        chunks,
        depths,
        power_states,
        scale,
        seed,
        &ParallelConfig::from_env(),
    )
}

/// [`full_sweep`] with an explicit executor configuration.
///
/// # Errors
///
/// Same as [`full_sweep`].
#[allow(clippy::too_many_arguments)]
pub fn full_sweep_with<F>(
    factory: F,
    workloads: &[Workload],
    chunks: &[u64],
    depths: &[usize],
    power_states: &[PowerStateId],
    scale: SweepScale,
    seed: u64,
    cfg: &ParallelConfig,
) -> Result<Vec<SweepPoint>, ExperimentError>
where
    F: Fn() -> Box<dyn StorageDevice> + Sync,
{
    let cells = enumerate_cells(workloads, chunks, depths, power_states);
    let results = run_cells(&cells, cfg, |_, cell| {
        let job = scale.apply(
            JobSpec::new(cell.workload)
                .block_size(cell.chunk)
                .io_depth(cell.depth)
                .seed(SimRng::stream_seed(seed, cell.index)),
        );
        run_fresh(&factory, cell.power_state, &job).map(|result| SweepPoint {
            workload: cell.workload,
            chunk: cell.chunk,
            depth: cell.depth,
            power_state: cell.power_state,
            result,
        })
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::catalog;

    fn ssd2_factory() -> Box<dyn StorageDevice> {
        Box::new(catalog::ssd2_d7_p5510(17))
    }

    #[test]
    fn paper_constants_match_methodology() {
        assert_eq!(PAPER_CHUNKS.len(), 6);
        assert_eq!(PAPER_CHUNKS[0], 4 * KIB);
        assert_eq!(*PAPER_CHUNKS.last().unwrap(), 2048 * KIB);
        assert_eq!(PAPER_DEPTHS.len(), 6);
        assert_eq!(PAPER_DEPTHS[0], 1);
        assert_eq!(*PAPER_DEPTHS.last().unwrap(), 128);
        let p = SweepScale::paper();
        assert_eq!(p.runtime.as_secs_f64(), 60.0);
        assert_eq!(p.size_limit, 4 * powadapt_device::GIB);
    }

    #[test]
    fn run_fresh_applies_power_state() {
        let job = SweepScale::quick().apply(
            JobSpec::new(Workload::RandRead)
                .block_size(4 * KIB)
                .io_depth(4),
        );
        let r = run_fresh(ssd2_factory, PowerStateId(2), &job).unwrap();
        assert_eq!(r.power_state, PowerStateId(2));
    }

    #[test]
    fn small_sweep_produces_all_points() {
        let points = full_sweep(
            ssd2_factory,
            &[Workload::RandRead],
            &[4 * KIB, 64 * KIB],
            &[1, 8],
            &[PowerStateId(0)],
            SweepScale {
                runtime: SimDuration::from_millis(30),
                size_limit: 8 * powadapt_device::MIB,
                ramp: SimDuration::ZERO,
            },
            1,
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(
                p.result.io.ios() > 0,
                "{:?} produced no IO",
                (p.chunk, p.depth)
            );
        }
        // Deeper queues should not be slower.
        let thr = |c: u64, d: usize| {
            points
                .iter()
                .find(|p| p.chunk == c && p.depth == d)
                .unwrap()
                .result
                .io
                .throughput_mibs()
        };
        assert!(thr(4 * KIB, 8) > thr(4 * KIB, 1));
    }

    #[test]
    fn cell_enumeration_is_stable_row_major() {
        let cells = enumerate_cells(
            &[Workload::RandRead, Workload::SeqWrite],
            &[4 * KIB, 64 * KIB],
            &[1, 8],
            &[PowerStateId(0)],
        );
        assert_eq!(cells.len(), 8);
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i as u64));
        assert_eq!(cells[0].workload, Workload::RandRead);
        assert_eq!(cells[4].workload, Workload::SeqWrite);
        assert_eq!(cells[1].depth, 8, "power state is the innermost axis");
    }

    #[test]
    fn worker_count_does_not_change_sweep_results() {
        let scale = SweepScale {
            runtime: SimDuration::from_millis(30),
            size_limit: 8 * powadapt_device::MIB,
            ramp: SimDuration::ZERO,
        };
        let sweep = |workers| {
            full_sweep_with(
                ssd2_factory,
                &[Workload::RandRead, Workload::RandWrite],
                &[4 * KIB, 64 * KIB],
                &[1, 8],
                &[PowerStateId(0), PowerStateId(2)],
                scale,
                11,
                &ParallelConfig::with_workers(workers),
            )
            .unwrap()
        };
        let seq = sweep(1);
        for workers in [2, 8] {
            let par = sweep(workers);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(
                    (a.workload, a.chunk, a.depth),
                    (b.workload, b.chunk, b.depth)
                );
                assert_eq!(a.result.io.ios(), b.result.io.ios());
                assert_eq!(a.result.io.bytes(), b.result.io.bytes());
                assert_eq!(
                    a.result.avg_power_w().to_bits(),
                    b.result.avg_power_w().to_bits(),
                    "power diverged at {workers} workers for {:?}",
                    (a.chunk, a.depth, a.power_state)
                );
            }
        }
    }

    #[test]
    fn sweep_rejects_invalid_power_state() {
        let err = full_sweep(
            ssd2_factory,
            &[Workload::RandRead],
            &[4 * KIB],
            &[1],
            &[PowerStateId(7)],
            SweepScale::quick(),
            1,
        );
        assert!(err.is_err());
    }
}
