//! Open-loop workload generation: requests arrive on their own schedule
//! (Poisson or bursty on/off), independent of completions.
//!
//! The paper's microbenchmarks are closed-loop (fio keeps `iodepth`
//! requests in flight). Evaluating the §4 *system* policies — redirection,
//! write segregation — additionally needs offered load that does not adapt
//! itself to the device, which is what an open-loop arrival process
//! provides.

use powadapt_device::IoKind;
use powadapt_sim::{SimDuration, SimRng, SimTime};

use crate::job::AccessPattern;

/// Inter-arrival process of an open-loop workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Poisson arrivals at the given mean rate (IOs per second).
    Poisson {
        /// Mean arrival rate in IOs per second.
        rate_iops: f64,
    },
    /// Deterministic arrivals at a fixed period.
    Periodic {
        /// Arrival rate in IOs per second.
        rate_iops: f64,
    },
    /// Bursty on/off (interrupted Poisson): alternating exponentially
    /// distributed on and off phases; arrivals occur only during on phases.
    OnOff {
        /// Arrival rate during on phases, in IOs per second.
        burst_rate_iops: f64,
        /// Mean on-phase duration.
        mean_on: SimDuration,
        /// Mean off-phase duration.
        mean_off: SimDuration,
    },
}

impl Arrivals {
    /// Long-run average rate in IOs per second.
    pub fn mean_rate_iops(&self) -> f64 {
        match *self {
            Arrivals::Poisson { rate_iops } | Arrivals::Periodic { rate_iops } => rate_iops,
            Arrivals::OnOff {
                burst_rate_iops,
                mean_on,
                mean_off,
            } => {
                let on = mean_on.as_secs_f64();
                let off = mean_off.as_secs_f64();
                burst_rate_iops * on / (on + off)
            }
        }
    }
}

/// Specification of an open-loop stream.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSpec {
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Bytes per request.
    pub block_size: u64,
    /// Fraction of requests that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Spatial pattern.
    pub pattern: AccessPattern,
    /// Target region `(start, len)` in the fleet's logical space.
    pub region: (u64, u64),
    /// Stream duration; no arrivals after `duration`.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Optional Zipfian skew for random offsets (fio
    /// `random_distribution=zipf:theta`).
    pub zipf_theta: Option<f64>,
}

impl OpenLoopSpec {
    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_size == 0 {
            return Err("block size must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return Err("read fraction must be within [0, 1]".into());
        }
        if self.region.1 < self.block_size {
            return Err("region must hold at least one block".into());
        }
        if self.duration.is_zero() {
            return Err("duration must be non-zero".into());
        }
        if self.arrivals.mean_rate_iops() <= 0.0 {
            return Err("arrival rate must be positive".into());
        }
        if let Some(theta) = self.zipf_theta {
            if !(theta > 0.0 && theta <= 5.0) {
                return Err(format!("zipf theta {theta} out of range (0, 5]"));
            }
        }
        Ok(())
    }
}

/// One generated arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// When the request arrives at the storage system.
    pub at: SimTime,
    /// Read or write.
    pub kind: IoKind,
    /// Logical byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Deterministic generator of an open-loop arrival stream.
///
/// # Examples
///
/// ```
/// use powadapt_io::{AccessPattern, Arrivals, ArrivalGen, OpenLoopSpec};
/// use powadapt_sim::SimDuration;
///
/// let spec = OpenLoopSpec {
///     arrivals: Arrivals::Poisson { rate_iops: 1000.0 },
///     block_size: 4096,
///     read_fraction: 0.5,
///     pattern: AccessPattern::Random,
///     region: (0, 1 << 30),
///     duration: SimDuration::from_millis(100),
///     seed: 1,
///     zipf_theta: None,
/// };
/// let n = ArrivalGen::new(&spec).unwrap().count();
/// assert!((50..200).contains(&n), "~100 arrivals expected, got {n}");
/// ```
#[derive(Debug)]
pub struct ArrivalGen {
    // powadapt-lint: allow(d6, reason = "configuration; the restorer constructs the generator from the same spec")
    spec: OpenLoopSpec,
    rng: SimRng,
    clock: SimTime,
    /// For on/off arrivals: end of the current on phase, if in one.
    phase_end: Option<SimTime>,
    cursor: u64,
    blocks: u64,
    // powadapt-lint: allow(d6, reason = "derived from spec.zipf_theta; rebuilt at construction, not serialized")
    zipf: Option<powadapt_sim::Zipf>,
    done: bool,
}

impl ArrivalGen {
    /// Creates a generator for the stream.
    ///
    /// # Errors
    ///
    /// Returns the spec problem, if any.
    pub fn new(spec: &OpenLoopSpec) -> Result<Self, String> {
        spec.validate()?;
        let blocks = (spec.region.1 / spec.block_size).max(1);
        Ok(ArrivalGen {
            spec: spec.clone(),
            rng: SimRng::seed_from(spec.seed ^ 0x5eed0ff00d),
            clock: SimTime::ZERO,
            phase_end: None,
            cursor: 0,
            blocks,
            zipf: spec.zipf_theta.map(|t| powadapt_sim::Zipf::new(blocks, t)),
            done: false,
        })
    }

    fn next_offset(&mut self) -> u64 {
        let idx = match self.spec.pattern {
            AccessPattern::Sequential => {
                let i = self.cursor;
                self.cursor = (self.cursor + 1) % self.blocks;
                i
            }
            AccessPattern::Random => match &self.zipf {
                Some(z) => {
                    z.sample(&mut self.rng)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .rotate_left(31)
                        % self.blocks
                }
                None => self.rng.u64_range(0, self.blocks),
            },
        };
        self.spec.region.0 + idx * self.spec.block_size
    }

    fn advance_clock(&mut self) {
        match self.spec.arrivals {
            Arrivals::Poisson { rate_iops } => {
                let gap = self.rng.exponential(1.0 / rate_iops);
                self.clock += SimDuration::from_secs_f64(gap);
            }
            Arrivals::Periodic { rate_iops } => {
                self.clock += SimDuration::from_secs_f64(1.0 / rate_iops);
            }
            Arrivals::OnOff {
                burst_rate_iops,
                mean_on,
                mean_off,
            } => loop {
                // Enter an on phase if not in one.
                let end = match self.phase_end {
                    Some(end) => end,
                    None => {
                        let on = self.rng.exponential(mean_on.as_secs_f64());
                        let end = self.clock + SimDuration::from_secs_f64(on);
                        self.phase_end = Some(end);
                        end
                    }
                };
                let gap = self.rng.exponential(1.0 / burst_rate_iops);
                let next = self.clock + SimDuration::from_secs_f64(gap);
                if next <= end {
                    self.clock = next;
                    break;
                }
                // Phase exhausted: jump through the off period and retry.
                let off = self.rng.exponential(mean_off.as_secs_f64());
                self.clock = end + SimDuration::from_secs_f64(off);
                self.phase_end = None;
            },
        }
    }
}

impl powadapt_snap::Snapshot for ArrivalGen {
    /// Dynamic state only: RNG position, clock, on/off phase, sequential
    /// cursor, and the done flag. The spec (and with it `blocks` and the
    /// Zipf table) is configuration the restorer rebuilds from.
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        powadapt_snap::Snapshot::write_state(&self.rng, w)?;
        powadapt_sim::snapshot::write_time(w, self.clock);
        powadapt_sim::snapshot::write_opt_time(w, self.phase_end);
        w.u64(self.cursor);
        w.bool(self.done);
        Ok(())
    }
}

impl powadapt_snap::Restore for ArrivalGen {
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        powadapt_snap::Restore::read_state(&mut self.rng, r)?;
        self.clock = powadapt_sim::snapshot::read_time(r)?;
        self.phase_end = powadapt_sim::snapshot::read_opt_time(r)?;
        let cursor = r.u64()?;
        if cursor >= self.blocks {
            return Err(powadapt_snap::SnapError::InvalidValue(format!(
                "sequential cursor {cursor} outside {} blocks",
                self.blocks
            )));
        }
        self.cursor = cursor;
        self.done = r.bool()?;
        Ok(())
    }
}

impl Iterator for ArrivalGen {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        if self.done {
            return None;
        }
        self.advance_clock();
        if self.clock > SimTime::ZERO + self.spec.duration {
            self.done = true;
            return None;
        }
        let kind = if self.rng.chance(self.spec.read_fraction) {
            IoKind::Read
        } else {
            IoKind::Write
        };
        let offset = self.next_offset();
        Some(Arrival {
            at: self.clock,
            kind,
            offset,
            len: self.spec.block_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::GIB;

    fn spec(arrivals: Arrivals) -> OpenLoopSpec {
        OpenLoopSpec {
            arrivals,
            block_size: 4096,
            read_fraction: 0.7,
            pattern: AccessPattern::Random,
            region: (0, GIB),
            duration: SimDuration::from_secs(1),
            seed: 3,
            zipf_theta: None,
        }
    }

    #[test]
    fn poisson_rate_is_respected() {
        let s = spec(Arrivals::Poisson { rate_iops: 5_000.0 });
        let n = ArrivalGen::new(&s).unwrap().count() as f64;
        assert!((n - 5_000.0).abs() < 300.0, "{n} arrivals");
    }

    #[test]
    fn periodic_is_exact() {
        let s = spec(Arrivals::Periodic { rate_iops: 1_000.0 });
        let arrivals: Vec<Arrival> = ArrivalGen::new(&s).unwrap().collect();
        assert_eq!(arrivals.len(), 1_000);
        let gap = arrivals[1].at - arrivals[0].at;
        assert_eq!(gap.as_micros(), 1_000);
    }

    #[test]
    fn onoff_average_rate_matches_duty_cycle() {
        let a = Arrivals::OnOff {
            burst_rate_iops: 10_000.0,
            mean_on: SimDuration::from_millis(10),
            mean_off: SimDuration::from_millis(30),
        };
        assert!((a.mean_rate_iops() - 2_500.0).abs() < 1.0);
        let s = spec(a);
        let n = ArrivalGen::new(&s).unwrap().count() as f64;
        assert!(
            (n - 2_500.0).abs() < 700.0,
            "{n} arrivals vs ~2500 expected"
        );
    }

    #[test]
    fn onoff_is_actually_bursty() {
        let s = spec(Arrivals::OnOff {
            burst_rate_iops: 50_000.0,
            mean_on: SimDuration::from_millis(5),
            mean_off: SimDuration::from_millis(45),
        });
        let arrivals: Vec<Arrival> = ArrivalGen::new(&s).unwrap().collect();
        assert!(arrivals.len() > 100);
        // Burstiness: the max inter-arrival gap dwarfs the median gap.
        let mut gaps: Vec<u64> = arrivals
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_nanos())
            .collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        let max = *gaps.last().unwrap();
        assert!(max > median * 50, "max {max} vs median {median}");
    }

    #[test]
    fn read_fraction_is_respected() {
        let s = spec(Arrivals::Poisson {
            rate_iops: 10_000.0,
        });
        let arrivals: Vec<Arrival> = ArrivalGen::new(&s).unwrap().collect();
        let reads = arrivals.iter().filter(|a| a.kind == IoKind::Read).count();
        let frac = reads as f64 / arrivals.len() as f64;
        assert!((frac - 0.7).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn arrivals_are_monotone_and_within_region() {
        let s = spec(Arrivals::Poisson { rate_iops: 2_000.0 });
        let mut last = SimTime::ZERO;
        for a in ArrivalGen::new(&s).unwrap() {
            assert!(a.at >= last);
            assert!(a.offset + a.len <= GIB);
            assert!(a.at <= SimTime::from_secs(1));
            last = a.at;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spec(Arrivals::Poisson { rate_iops: 3_000.0 });
        let a: Vec<Arrival> = ArrivalGen::new(&s).unwrap().collect();
        let b: Vec<Arrival> = ArrivalGen::new(&s).unwrap().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_pattern_walks_the_region() {
        let mut s = spec(Arrivals::Periodic { rate_iops: 100.0 });
        s.pattern = AccessPattern::Sequential;
        let arrivals: Vec<Arrival> = ArrivalGen::new(&s).unwrap().collect();
        assert_eq!(arrivals[0].offset, 0);
        assert_eq!(arrivals[1].offset, 4096);
        assert_eq!(arrivals[2].offset, 8192);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = spec(Arrivals::Poisson { rate_iops: 100.0 });
        s.read_fraction = 1.5;
        assert!(ArrivalGen::new(&s).is_err());
        let mut s = spec(Arrivals::Poisson { rate_iops: 100.0 });
        s.block_size = 0;
        assert!(ArrivalGen::new(&s).is_err());
        let mut s = spec(Arrivals::Poisson { rate_iops: 100.0 });
        s.region = (0, 1024);
        assert!(ArrivalGen::new(&s).is_err());
    }

    #[test]
    fn snapshot_mid_stream_resumes_identically() {
        use powadapt_snap::{Restore, SnapReader, SnapWriter, Snapshot};
        for arrivals in [
            Arrivals::Poisson { rate_iops: 2000.0 },
            Arrivals::OnOff {
                burst_rate_iops: 5000.0,
                mean_on: SimDuration::from_millis(50),
                mean_off: SimDuration::from_millis(20),
            },
        ] {
            let s = spec(arrivals);
            let mut gen = ArrivalGen::new(&s).unwrap();
            let _prefix: Vec<Arrival> = gen.by_ref().take(100).collect();

            let mut w = SnapWriter::new();
            gen.write_state(&mut w).unwrap();
            let payload = w.into_payload();
            let mut resumed = ArrivalGen::new(&s).unwrap();
            let mut r = SnapReader::new(&payload);
            resumed.read_state(&mut r).unwrap();
            r.finish().unwrap();

            let rest: Vec<Arrival> = gen.collect();
            let resumed_rest: Vec<Arrival> = resumed.collect();
            assert_eq!(rest, resumed_rest, "{arrivals:?}");
        }
    }
}
