//! fio-like job specifications.

use std::fmt;

use powadapt_device::{IoKind, GIB, KIB};
use powadapt_sim::SimDuration;

/// Spatial access pattern of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Consecutive offsets.
    Sequential,
    /// Uniformly random block-aligned offsets.
    Random,
}

/// The four fio `rw=` modes the paper sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// `rw=read` — sequential reads.
    SeqRead,
    /// `rw=write` — sequential writes.
    SeqWrite,
    /// `rw=randread` — random reads.
    RandRead,
    /// `rw=randwrite` — random writes.
    RandWrite,
}

impl Workload {
    /// All four workloads, in the paper's presentation order.
    pub const ALL: [Workload; 4] = [
        Workload::SeqRead,
        Workload::SeqWrite,
        Workload::RandRead,
        Workload::RandWrite,
    ];

    /// The IO direction.
    pub fn kind(self) -> IoKind {
        match self {
            Workload::SeqRead | Workload::RandRead => IoKind::Read,
            Workload::SeqWrite | Workload::RandWrite => IoKind::Write,
        }
    }

    /// The spatial pattern.
    pub fn pattern(self) -> AccessPattern {
        match self {
            Workload::SeqRead | Workload::SeqWrite => AccessPattern::Sequential,
            Workload::RandRead | Workload::RandWrite => AccessPattern::Random,
        }
    }

    /// The fio `rw=` name.
    pub fn fio_name(self) -> &'static str {
        match self {
            Workload::SeqRead => "read",
            Workload::SeqWrite => "write",
            Workload::RandRead => "randread",
            Workload::RandWrite => "randwrite",
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.fio_name())
    }
}

/// A microbenchmark job: the parameters of one cell in the paper's sweep.
///
/// The defaults mirror the paper's methodology: asynchronous direct IO,
/// one minute of runtime or 4 GiB of traffic, whichever comes first.
///
/// # Examples
///
/// ```
/// use powadapt_io::{JobSpec, Workload};
/// use powadapt_device::KIB;
///
/// let job = JobSpec::new(Workload::RandWrite)
///     .block_size(256 * KIB)
///     .io_depth(64);
/// assert_eq!(job.block_size_bytes(), 256 * KIB);
/// assert_eq!(job.io_depth_value(), 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    workload: Workload,
    block_size: u64,
    io_depth: usize,
    runtime: SimDuration,
    size_limit: u64,
    ramp: SimDuration,
    region_start: u64,
    region_len: u64,
    seed: u64,
    read_mix: Option<f64>,
    zipf_theta: Option<f64>,
}

impl JobSpec {
    /// Creates a job with the paper's default parameters: 4 KiB blocks,
    /// queue depth 1, 60 s runtime, 4 GiB size limit, no ramp, an 8 GiB
    /// target region, seed 0.
    pub fn new(workload: Workload) -> Self {
        JobSpec {
            workload,
            block_size: 4 * KIB,
            io_depth: 1,
            runtime: SimDuration::from_secs(60),
            size_limit: 4 * GIB,
            ramp: SimDuration::ZERO,
            region_start: 0,
            region_len: 8 * GIB,
            seed: 0,
            read_mix: None,
            zipf_theta: None,
        }
    }

    /// Sets the IO chunk size in bytes (fio `bs=`).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn block_size(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "block size must be non-zero");
        self.block_size = bytes;
        self
    }

    /// Sets the queue depth (fio `iodepth=`).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn io_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be non-zero");
        self.io_depth = depth;
        self
    }

    /// Sets the wall-clock runtime limit (fio `runtime=`).
    pub fn runtime(mut self, runtime: SimDuration) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the total transfer limit (fio `size=`). The experiment stops at
    /// the earlier of runtime and size, like the paper's methodology.
    pub fn size_limit(mut self, bytes: u64) -> Self {
        self.size_limit = bytes;
        self
    }

    /// Sets a warm-up period excluded from statistics (fio `ramp_time=`).
    pub fn ramp(mut self, ramp: SimDuration) -> Self {
        self.ramp = ramp;
        self
    }

    /// Restricts IO to `[start, start + len)` on the device.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn region(mut self, start: u64, len: u64) -> Self {
        assert!(len > 0, "region length must be non-zero");
        self.region_start = start;
        self.region_len = len;
        self
    }

    /// Seeds the offset generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Mixes reads and writes (fio `rwmixread=`): each request is a read
    /// with probability `read_fraction`, overriding the workload's
    /// direction. The workload still sets the spatial pattern.
    ///
    /// # Panics
    ///
    /// Panics if `read_fraction` is outside `[0, 1]`.
    pub fn read_mix(mut self, read_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction {read_fraction} out of range"
        );
        self.read_mix = Some(read_fraction);
        self
    }

    /// The workload mode.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Chunk size in bytes.
    pub fn block_size_bytes(&self) -> u64 {
        self.block_size
    }

    /// Queue depth.
    pub fn io_depth_value(&self) -> usize {
        self.io_depth
    }

    /// Runtime limit.
    pub fn runtime_limit(&self) -> SimDuration {
        self.runtime
    }

    /// Transfer size limit in bytes.
    pub fn size_limit_bytes(&self) -> u64 {
        self.size_limit
    }

    /// Warm-up duration.
    pub fn ramp_duration(&self) -> SimDuration {
        self.ramp
    }

    /// Target region as `(start, len)`.
    pub fn region_bounds(&self) -> (u64, u64) {
        (self.region_start, self.region_len)
    }

    /// Offset generator seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The read fraction of a mixed job, if set.
    pub fn read_mix_fraction(&self) -> Option<f64> {
        self.read_mix
    }

    /// Skews random offsets Zipfian (fio `random_distribution=zipf:theta`):
    /// a small set of hot blocks receives most of the IO. Only affects
    /// random workloads.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not in `(0, 5]`.
    pub fn zipf(mut self, theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta <= 5.0,
            "zipf theta {theta} out of range (0, 5]"
        );
        self.zipf_theta = Some(theta);
        self
    }

    /// The Zipf skew, if set.
    pub fn zipf_theta(&self) -> Option<f64> {
        self.zipf_theta
    }

    /// Validates the job against a device capacity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self, capacity: u64) -> Result<(), String> {
        if self.block_size > self.region_len {
            return Err(format!(
                "block size {} exceeds region length {}",
                self.block_size, self.region_len
            ));
        }
        if self.region_start + self.region_len > capacity {
            return Err(format!(
                "region end {} exceeds device capacity {capacity}",
                self.region_start + self.region_len
            ));
        }
        if self.runtime.is_zero() && self.size_limit == 0 {
            return Err("job needs a runtime or size limit".into());
        }
        if self.ramp >= self.runtime && !self.runtime.is_zero() {
            return Err("ramp must be shorter than the runtime".into());
        }
        Ok(())
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bs={}KiB qd={}",
            self.workload,
            self.block_size / KIB,
            self.io_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::MIB;

    #[test]
    fn workload_classification() {
        assert_eq!(Workload::SeqRead.kind(), IoKind::Read);
        assert_eq!(Workload::RandWrite.kind(), IoKind::Write);
        assert_eq!(Workload::SeqWrite.pattern(), AccessPattern::Sequential);
        assert_eq!(Workload::RandRead.pattern(), AccessPattern::Random);
        assert_eq!(Workload::RandWrite.to_string(), "randwrite");
        assert_eq!(Workload::ALL.len(), 4);
    }

    #[test]
    fn builder_sets_fields() {
        let j = JobSpec::new(Workload::RandWrite)
            .block_size(MIB)
            .io_depth(64)
            .runtime(SimDuration::from_secs(5))
            .size_limit(GIB)
            .ramp(SimDuration::from_millis(100))
            .region(GIB, 2 * GIB)
            .seed(7);
        assert_eq!(j.block_size_bytes(), MIB);
        assert_eq!(j.io_depth_value(), 64);
        assert_eq!(j.runtime_limit().as_secs_f64(), 5.0);
        assert_eq!(j.size_limit_bytes(), GIB);
        assert_eq!(j.ramp_duration().as_millis(), 100);
        assert_eq!(j.region_bounds(), (GIB, 2 * GIB));
        assert_eq!(j.seed_value(), 7);
    }

    #[test]
    fn defaults_match_paper_methodology() {
        let j = JobSpec::new(Workload::SeqRead);
        assert_eq!(j.runtime_limit().as_secs_f64(), 60.0);
        assert_eq!(j.size_limit_bytes(), 4 * GIB);
    }

    #[test]
    fn validation() {
        let j = JobSpec::new(Workload::SeqRead);
        assert!(j.validate(16 * GIB).is_ok());
        assert!(j.validate(4 * GIB).is_err(), "region exceeds capacity");
        let j = JobSpec::new(Workload::SeqRead)
            .region(0, MIB)
            .block_size(2 * MIB);
        assert!(j.validate(16 * GIB).is_err(), "block larger than region");
        let j = JobSpec::new(Workload::SeqRead)
            .runtime(SimDuration::from_secs(1))
            .ramp(SimDuration::from_secs(2));
        assert!(j.validate(16 * GIB).is_err(), "ramp longer than runtime");
    }

    #[test]
    fn display_format() {
        let j = JobSpec::new(Workload::RandRead)
            .block_size(256 * KIB)
            .io_depth(32);
        assert_eq!(j.to_string(), "randread bs=256KiB qd=32");
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        let _ = JobSpec::new(Workload::SeqRead).block_size(0);
    }
}
