//! Simulated power-measurement infrastructure.
//!
//! Numerical reproduction of the paper's §3 measurement rig: a shunt
//! resistor on the device's supply rail, a differential amplifier, a 24-bit
//! ADC sampling at 1 kHz, and a data logger. The chain achieves the paper's
//! claimed sub-1 % relative error, and calibration against a known load
//! removes the residual systematic component — exactly the workflow of the
//! physical rig.
//!
//! - [`MeasurementChain`] — the analog path with component tolerances,
//!   offset, noise, and quantization,
//! - [`PowerRig`] — the chain plus a 1 kHz sampler producing a
//!   [`PowerTrace`],
//! - [`PowerTrace`] — the recorded series with the statistics the paper
//!   reports (mean/median, distribution for violin plots, dynamic range).
//!
//! # Examples
//!
//! ```
//! use powadapt_meter::PowerRig;
//! use powadapt_sim::SimRng;
//!
//! let mut rng = SimRng::seed_from(1);
//! let mut rig = PowerRig::paper_rig(12.0, &mut rng);
//! // Sample a steady 5 W load for 100 ms.
//! for _ in 0..100 {
//!     let t = rig.next_sample();
//!     rig.sample(t, 5.0);
//! }
//! let trace = rig.trace();
//! assert!((trace.mean() - 5.0).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Tests assert on exact expected values: unwraps and bit-exact float
// comparisons are the point there, not a hazard (see workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod chain;
mod rig;
mod scope;
mod trace;

pub use chain::{Adc, Amplifier, MeasurementChain, ShuntResistor};
pub use rig::{PowerRig, DEFAULT_PERIOD};
pub use scope::{Oscilloscope, Trigger};
pub use trace::PowerTrace;
