//! Recorded power traces and their statistics.

use std::fmt;

use powadapt_sim::{SimDuration, SimTime, Summary};

/// A uniformly sampled power trace: what the data-logging computer ends up
/// with after an experiment.
///
/// # Examples
///
/// ```
/// use powadapt_meter::PowerTrace;
/// use powadapt_sim::{SimDuration, SimTime};
///
/// let mut t = PowerTrace::new(SimTime::ZERO, SimDuration::from_millis(1));
/// for w in [5.0, 5.2, 9.5, 9.4] {
///     t.push(w);
/// }
/// assert_eq!(t.len(), 4);
/// assert!((t.mean() - 7.275).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    start: SimTime,
    period: SimDuration,
    watts: Vec<f64>,
}

impl PowerTrace {
    /// Creates an empty trace starting at `start`, sampled every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(start: SimTime, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "sample period must be non-zero");
        PowerTrace {
            start,
            period,
            watts: Vec::new(),
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, watts: f64) {
        self.watts.push(watts);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.watts.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.watts.is_empty()
    }

    /// Sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Time of the first sample.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Timestamp of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn time_of(&self, i: usize) -> SimTime {
        assert!(i < self.watts.len(), "sample index {i} out of range");
        self.start + self.period * i as u64
    }

    /// The raw samples in watts.
    pub fn samples(&self) -> &[f64] {
        &self.watts
    }

    /// Iterates `(time, watts)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.watts
            .iter()
            .enumerate()
            .map(|(i, &w)| (self.start + self.period * i as u64, w))
    }

    /// Mean power over the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "mean of empty trace");
        self.watts.iter().sum::<f64>() / self.watts.len() as f64
    }

    /// Total energy in joules (mean power × duration).
    pub fn energy_j(&self) -> f64 {
        self.watts.iter().sum::<f64>() * self.period.as_secs_f64()
    }

    /// Full summary statistics (median, percentiles, ...).
    ///
    /// Returns `None` if the trace is empty or contains non-finite samples.
    pub fn summary(&self) -> Option<Summary> {
        Summary::from_samples(&self.watts)
    }

    /// `(max − min) / max` — the power dynamic range the paper reports as a
    /// fraction of maximum power.
    ///
    /// Returns `None` on an empty trace or non-positive maximum.
    pub fn dynamic_range(&self) -> Option<f64> {
        let s = self.summary()?;
        let max = s.max();
        if max <= 0.0 {
            return None;
        }
        Some((max - s.min()) / max)
    }

    /// Sub-trace covering `[from, to)`. Samples outside the recorded range
    /// are simply absent from the result.
    pub fn between(&self, from: SimTime, to: SimTime) -> PowerTrace {
        let mut out = PowerTrace::new(from.max(self.start), self.period);
        for (t, w) in self.iter() {
            if t >= from && t < to {
                out.push(w);
            }
        }
        out
    }

    /// Writes the trace as CSV (`time_s,watts` with a header) — the format
    /// the paper's data-logging computer stores and the plots consume.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "time_s,watts")?;
        for (t, p) in self.iter() {
            writeln!(w, "{:.6},{:.6}", t.as_secs_f64(), p)?;
        }
        Ok(())
    }

    /// Downsamples by averaging every `factor` consecutive samples
    /// (the tail partial window is averaged too).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn downsample(&self, factor: usize) -> PowerTrace {
        assert!(factor > 0, "downsample factor must be non-zero");
        let mut out = PowerTrace::new(self.start, self.period * factor as u64);
        for chunk in self.watts.chunks(factor) {
            out.push(chunk.iter().sum::<f64>() / chunk.len() as f64);
        }
        out
    }
}

impl fmt::Display for PowerTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(s) = self.summary() {
            write!(
                f,
                "trace[{} samples @ {}]: mean {:.3} W, range {:.3}–{:.3} W",
                self.len(),
                self.period,
                s.mean(),
                s.min(),
                s.max()
            )
        } else {
            write!(f, "trace[empty @ {}]", self.period)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(values: &[f64]) -> PowerTrace {
        let mut t = PowerTrace::new(SimTime::ZERO, SimDuration::from_millis(1));
        for &v in values {
            t.push(v);
        }
        t
    }

    #[test]
    fn basic_stats() {
        let t = trace(&[4.0, 6.0, 8.0, 6.0]);
        assert_eq!(t.mean(), 6.0);
        // 24 W·ms = 0.024 J.
        assert!((t.energy_j() - 0.024).abs() < 1e-12);
        let s = t.summary().unwrap();
        assert_eq!(s.min(), 4.0);
        assert_eq!(s.max(), 8.0);
    }

    #[test]
    fn dynamic_range_matches_definition() {
        let t = trace(&[5.0, 10.0]);
        assert!((t.dynamic_range().unwrap() - 0.5).abs() < 1e-12);
        assert!(trace(&[]).dynamic_range().is_none());
    }

    #[test]
    fn timestamps_advance_by_period() {
        let t = trace(&[1.0, 2.0, 3.0]);
        assert_eq!(t.time_of(0), SimTime::ZERO);
        assert_eq!(t.time_of(2).as_millis(), 2);
        let times: Vec<u64> = t.iter().map(|(ts, _)| ts.as_millis()).collect();
        assert_eq!(times, vec![0, 1, 2]);
    }

    #[test]
    fn between_slices_by_time() {
        let t = trace(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let sub = t.between(SimTime::from_millis(1), SimTime::from_millis(4));
        assert_eq!(sub.samples(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn downsample_averages() {
        let t = trace(&[1.0, 3.0, 5.0, 7.0, 9.0]);
        let d = t.downsample(2);
        assert_eq!(d.samples(), &[2.0, 6.0, 9.0]);
        assert_eq!(d.period().as_millis(), 2);
    }

    #[test]
    fn csv_round_trips_through_text() {
        let t = trace(&[1.5, 2.5]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time_s,watts");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0.000000,1.5"));
        assert!(lines[2].starts_with("0.001000,2.5"));
    }

    #[test]
    fn display_nonempty() {
        assert!(!trace(&[1.0]).to_string().is_empty());
        let empty = PowerTrace::new(SimTime::ZERO, SimDuration::from_millis(1));
        assert!(empty.to_string().contains("empty"));
    }

    #[test]
    #[should_panic(expected = "mean of empty")]
    fn mean_of_empty_panics() {
        let t = PowerTrace::new(SimTime::ZERO, SimDuration::from_millis(1));
        let _ = t.mean();
    }
}
