//! The assembled measurement rig: chain + periodic sampler.

use powadapt_obs::{emit, EventKind, RecorderHandle};
use powadapt_sim::{SimDuration, SimRng, SimTime};

use crate::chain::MeasurementChain;
use crate::trace::PowerTrace;

/// Default sampling period: the paper's ADC samples at 1 kHz.
pub const DEFAULT_PERIOD: SimDuration = SimDuration::from_millis(1);

/// A power measurement rig attached to one device's supply rail.
///
/// The experiment runner drives the rig: it asks when the next sample is due
/// ([`PowerRig::next_sample`]), advances the device to that instant, and
/// hands the device's true instantaneous power to [`PowerRig::sample`].
///
/// # Examples
///
/// ```
/// use powadapt_meter::PowerRig;
/// use powadapt_sim::{SimRng, SimTime};
///
/// let mut rng = SimRng::seed_from(5);
/// let mut rig = PowerRig::paper_rig(12.0, &mut rng);
/// let t0 = rig.next_sample();
/// rig.sample(t0, 7.5);
/// assert_eq!(rig.trace().len(), 1);
/// ```
#[derive(Debug)]
pub struct PowerRig {
    chain: MeasurementChain,
    rng: SimRng,
    period: SimDuration,
    next_at: SimTime,
    trace: PowerTrace,
    rec: RecorderHandle,
    track: &'static str,
}

impl PowerRig {
    /// Builds a rig with an explicit chain and sampling period, starting at
    /// time zero.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(chain: MeasurementChain, period: SimDuration, rng: SimRng) -> Self {
        PowerRig {
            chain,
            rng,
            period,
            next_at: SimTime::ZERO,
            trace: PowerTrace::new(SimTime::ZERO, period),
            rec: powadapt_obs::current(),
            track: "meter",
        }
    }

    /// Attaches a telemetry recorder and names the rig's counter track.
    /// Each measured sample is emitted as [`EventKind::PowerSample`] —
    /// recording is write-only and does not affect the trace.
    pub fn set_recorder(&mut self, rec: RecorderHandle, track: &'static str) {
        self.rec = rec;
        self.track = track;
    }

    /// The paper's rig at 1 kHz for a rail at `bus_voltage_v`.
    pub fn paper_rig(bus_voltage_v: f64, rng: &mut SimRng) -> Self {
        let chain = MeasurementChain::paper_rig(bus_voltage_v, rng);
        PowerRig::new(chain, DEFAULT_PERIOD, rng.fork())
    }

    /// When the next sample is due.
    pub fn next_sample(&self) -> SimTime {
        self.next_at
    }

    /// Records a sample of the device's true power at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not the due sample time — the runner must advance
    /// the device exactly to the sampling instant.
    pub fn sample(&mut self, t: SimTime, true_power_w: f64) {
        assert_eq!(t, self.next_at, "sample at {t}, expected {}", self.next_at);
        let measured = self.chain.measure(true_power_w, &mut self.rng);
        emit!(
            self.rec,
            t,
            self.track,
            EventKind::PowerSample { watts: measured }
        );
        self.trace.push(measured);
        self.next_at = t + self.period;
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// Consumes the rig and returns the trace.
    pub fn into_trace(self) -> PowerTrace {
        self.trace
    }

    /// Calibrates the underlying chain against a known load (see
    /// [`MeasurementChain::calibrate`]).
    pub fn calibrate(&mut self, known_power_w: f64, n: usize) {
        let mut rng = self.rng.fork();
        self.chain.calibrate(known_power_w, n, &mut rng);
    }

    /// Restarts the trace at time `t` (e.g. after a warm-up phase),
    /// discarding prior samples.
    pub fn restart_at(&mut self, t: SimTime) {
        self.next_at = t;
        self.trace = PowerTrace::new(t, self.period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_advance_on_the_grid() {
        let mut rng = SimRng::seed_from(9);
        let mut rig = PowerRig::paper_rig(12.0, &mut rng);
        for i in 0..5u64 {
            let t = rig.next_sample();
            assert_eq!(t.as_millis(), i);
            rig.sample(t, 5.0);
        }
        assert_eq!(rig.trace().len(), 5);
        let mean = rig.trace().mean();
        assert!((mean - 5.0).abs() < 0.1, "{mean}");
    }

    #[test]
    #[should_panic(expected = "sample at")]
    fn off_grid_sample_panics() {
        let mut rng = SimRng::seed_from(9);
        let mut rig = PowerRig::paper_rig(12.0, &mut rng);
        rig.sample(SimTime::from_micros(1), 5.0);
    }

    #[test]
    fn restart_discards_history() {
        let mut rng = SimRng::seed_from(9);
        let mut rig = PowerRig::paper_rig(12.0, &mut rng);
        let t = rig.next_sample();
        rig.sample(t, 5.0);
        rig.restart_at(SimTime::from_secs(1));
        assert!(rig.trace().is_empty());
        assert_eq!(rig.next_sample(), SimTime::from_secs(1));
        assert_eq!(rig.trace().start(), SimTime::from_secs(1));
    }

    #[test]
    fn into_trace_returns_samples() {
        let mut rng = SimRng::seed_from(9);
        let mut rig = PowerRig::paper_rig(12.0, &mut rng);
        let t = rig.next_sample();
        rig.sample(t, 3.0);
        let trace = rig.into_trace();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = SimRng::seed_from(77);
            let mut rig = PowerRig::paper_rig(12.0, &mut rng);
            for _ in 0..100 {
                let t = rig.next_sample();
                rig.sample(t, 8.0);
            }
            rig.trace().mean()
        };
        assert_eq!(run(), run());
    }
}
