//! The analog measurement chain: shunt resistor → differential amplifier →
//! 24-bit ADC.
//!
//! This reproduces the paper's §3 measurement infrastructure numerically.
//! The chain converts the device's true instantaneous power into what the
//! data logger records: the shunt converts current to a differential
//! voltage (`ΔV = I · R_shunt`), the amplifier scales it (adding offset and
//! input noise), and the ADC quantizes it. Reconstruction uses the *nominal*
//! component values, so component tolerances show up as systematic error —
//! which calibration against a known load can remove, exactly as with the
//! physical rig.

use powadapt_sim::SimRng;

/// Shunt resistor model: nominal resistance plus a fixed tolerance error
/// drawn at construction.
#[derive(Debug, Clone)]
pub struct ShuntResistor {
    nominal_ohms: f64,
    actual_ohms: f64,
}

impl ShuntResistor {
    /// Creates a shunt with the given nominal value and tolerance (e.g.
    /// `0.001` for a 0.1 % part); the actual resistance is drawn uniformly
    /// within the tolerance band.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_ohms` is not positive or `tolerance` is negative.
    pub fn new(nominal_ohms: f64, tolerance: f64, rng: &mut SimRng) -> Self {
        assert!(nominal_ohms > 0.0, "shunt resistance must be positive");
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        let err = rng.uniform_range(-tolerance, tolerance);
        ShuntResistor {
            nominal_ohms,
            actual_ohms: nominal_ohms * (1.0 + err),
        }
    }

    /// Nominal resistance used for reconstruction.
    pub fn nominal_ohms(&self) -> f64 {
        self.nominal_ohms
    }

    /// Differential voltage across the shunt for a given current.
    pub fn voltage_drop(&self, current_a: f64) -> f64 {
        current_a * self.actual_ohms
    }
}

/// Differential signal amplifier: gain with a fixed gain error, a fixed
/// offset, and per-sample Gaussian input noise.
#[derive(Debug, Clone)]
pub struct Amplifier {
    nominal_gain: f64,
    actual_gain: f64,
    offset_v: f64,
    noise_sd_v: f64,
}

impl Amplifier {
    /// Creates an amplifier. `gain_error` and `offset_v` are drawn at
    /// construction; `noise_sd_v` is input-referred noise applied per
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_gain` is not positive.
    pub fn new(
        nominal_gain: f64,
        gain_error: f64,
        max_offset_v: f64,
        noise_sd_v: f64,
        rng: &mut SimRng,
    ) -> Self {
        assert!(nominal_gain > 0.0, "gain must be positive");
        let g_err = rng.uniform_range(-gain_error, gain_error);
        let offset = rng.uniform_range(-max_offset_v, max_offset_v);
        Amplifier {
            nominal_gain,
            actual_gain: nominal_gain * (1.0 + g_err),
            offset_v: offset,
            noise_sd_v,
        }
    }

    /// Nominal gain used for reconstruction.
    pub fn nominal_gain(&self) -> f64 {
        self.nominal_gain
    }

    /// Amplifies an input voltage, adding offset and noise.
    pub fn amplify(&self, v_in: f64, rng: &mut SimRng) -> f64 {
        let noisy = v_in + rng.normal(0.0, self.noise_sd_v);
        (noisy + self.offset_v) * self.actual_gain
    }
}

/// 24-bit delta-sigma ADC in the spirit of the TI ADS1256.
#[derive(Debug, Clone)]
pub struct Adc {
    full_scale_v: f64,
    bits: u32,
}

impl Adc {
    /// Creates an ADC with the given bipolar full-scale range (±`full_scale_v`).
    ///
    /// # Panics
    ///
    /// Panics if `full_scale_v` is not positive or `bits` is 0 or > 32.
    pub fn new(full_scale_v: f64, bits: u32) -> Self {
        assert!(full_scale_v > 0.0, "full scale must be positive");
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        Adc { full_scale_v, bits }
    }

    /// The ADS1256: ±5 V, 24 bits.
    pub fn ads1256() -> Self {
        Adc::new(5.0, 24)
    }

    /// Quantization step in volts.
    pub fn step_v(&self) -> f64 {
        2.0 * self.full_scale_v / 2f64.powi(self.bits as i32)
    }

    /// Quantizes a voltage, clamping at the rails.
    pub fn sample(&self, v: f64) -> f64 {
        let clamped = v.clamp(-self.full_scale_v, self.full_scale_v);
        let step = self.step_v();
        (clamped / step).round() * step
    }
}

/// The full chain, reconstructing power from the quantized reading.
///
/// # Examples
///
/// ```
/// use powadapt_meter::MeasurementChain;
/// use powadapt_sim::SimRng;
///
/// let mut rng = SimRng::seed_from(1);
/// let chain = MeasurementChain::paper_rig(12.0, &mut rng);
/// let mut sample_rng = SimRng::seed_from(2);
/// let measured = chain.measure(10.0, &mut sample_rng);
/// assert!((measured - 10.0).abs() / 10.0 < 0.01, "within 1 %");
/// ```
#[derive(Debug, Clone)]
pub struct MeasurementChain {
    shunt: ShuntResistor,
    amp: Amplifier,
    adc: Adc,
    bus_voltage_v: f64,
    /// Multiplicative correction from calibration (1.0 = uncalibrated).
    correction: f64,
}

impl MeasurementChain {
    /// Builds a chain from explicit components.
    ///
    /// # Panics
    ///
    /// Panics if `bus_voltage_v` is not positive.
    pub fn new(shunt: ShuntResistor, amp: Amplifier, adc: Adc, bus_voltage_v: f64) -> Self {
        assert!(bus_voltage_v > 0.0, "bus voltage must be positive");
        MeasurementChain {
            shunt,
            amp,
            adc,
            bus_voltage_v,
            correction: 1.0,
        }
    }

    /// The paper's rig: 0.1 Ω shunt (0.1 % tolerance), ×20 auto-zeroed
    /// differential amplifier (0.3 % gain error, 30 µV max residual offset,
    /// 150 µV input noise), ADS1256. Tolerances are chosen so the paper's
    /// <1 % relative-error claim holds across the devices' power range.
    pub fn paper_rig(bus_voltage_v: f64, rng: &mut SimRng) -> Self {
        let shunt = ShuntResistor::new(0.1, 0.001, rng);
        let amp = Amplifier::new(20.0, 0.003, 30e-6, 150e-6, rng);
        MeasurementChain::new(shunt, amp, Adc::ads1256(), bus_voltage_v)
    }

    /// Measures a true power draw, returning the reconstructed power.
    pub fn measure(&self, true_power_w: f64, rng: &mut SimRng) -> f64 {
        let current = true_power_w / self.bus_voltage_v;
        let v_shunt = self.shunt.voltage_drop(current);
        let v_amp = self.amp.amplify(v_shunt, rng);
        let v_adc = self.adc.sample(v_amp);
        let i_reconstructed = v_adc / self.amp.nominal_gain() / self.shunt.nominal_ohms();
        i_reconstructed * self.bus_voltage_v * self.correction
    }

    /// Calibrates against a known load: measures it `n` times and sets the
    /// multiplicative correction so the average reading matches.
    ///
    /// # Panics
    ///
    /// Panics if `known_power_w` is not positive or `n` is zero.
    pub fn calibrate(&mut self, known_power_w: f64, n: usize, rng: &mut SimRng) {
        assert!(known_power_w > 0.0, "calibration load must be positive");
        assert!(n > 0, "need at least one calibration sample");
        self.correction = 1.0;
        let avg: f64 = (0..n)
            .map(|_| self.measure(known_power_w, rng))
            .sum::<f64>()
            / n as f64;
        self.correction = known_power_w / avg;
    }

    /// The current calibration correction factor.
    pub fn correction(&self) -> f64 {
        self.correction
    }

    /// Bus voltage of the instrumented rail.
    pub fn bus_voltage_v(&self) -> f64 {
        self.bus_voltage_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_sim::relative_error;

    fn rig() -> (MeasurementChain, SimRng) {
        let mut build_rng = SimRng::seed_from(100);
        let chain = MeasurementChain::paper_rig(12.0, &mut build_rng);
        (chain, SimRng::seed_from(200))
    }

    #[test]
    fn shunt_voltage_is_ohms_law() {
        let mut rng = SimRng::seed_from(1);
        let s = ShuntResistor::new(0.1, 0.0, &mut rng);
        assert!((s.voltage_drop(2.0) - 0.2).abs() < 1e-15);
        assert_eq!(s.nominal_ohms(), 0.1);
    }

    #[test]
    fn shunt_tolerance_bounds_actual_value() {
        for seed in 0..20 {
            let mut rng = SimRng::seed_from(seed);
            let s = ShuntResistor::new(0.1, 0.01, &mut rng);
            let v = s.voltage_drop(1.0);
            assert!((0.099..=0.101).contains(&v), "{v}");
        }
    }

    #[test]
    fn adc_quantization_step() {
        let adc = Adc::ads1256();
        // 10 V span over 2^24 codes ≈ 0.6 µV.
        assert!((adc.step_v() - 10.0 / 16_777_216.0).abs() < 1e-18);
        let q = adc.sample(1.0);
        assert!((q - 1.0).abs() <= adc.step_v());
    }

    #[test]
    fn adc_clamps_at_rails() {
        let adc = Adc::new(2.5, 16);
        assert_eq!(adc.sample(99.0), 2.5);
        assert_eq!(adc.sample(-99.0), -2.5);
    }

    #[test]
    fn chain_achieves_sub_percent_error() {
        // The paper claims <1 % relative error; verify across the devices'
        // power range.
        let (chain, mut rng) = rig();
        for &truth in &[0.5, 1.0, 3.76, 8.19, 15.1, 25.0] {
            let n = 200;
            let avg: f64 = (0..n).map(|_| chain.measure(truth, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                relative_error(avg, truth) < 0.01,
                "avg {avg} vs truth {truth}"
            );
        }
    }

    #[test]
    fn calibration_removes_systematic_error() {
        let (mut chain, mut rng) = rig();
        chain.calibrate(10.0, 500, &mut rng);
        let n = 500;
        let avg: f64 = (0..n).map(|_| chain.measure(10.0, &mut rng)).sum::<f64>() / n as f64;
        assert!(
            relative_error(avg, 10.0) < 0.002,
            "calibrated error should be well below tolerance: {avg}"
        );
    }

    #[test]
    fn measurement_noise_has_finite_spread() {
        let (chain, mut rng) = rig();
        let samples: Vec<f64> = (0..500).map(|_| chain.measure(5.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let sd =
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt();
        assert!(sd > 0.0, "noise present");
        assert!(sd < 0.1, "noise bounded: sd {sd}");
    }

    #[test]
    fn zero_power_reads_near_zero() {
        let (chain, mut rng) = rig();
        let m = chain.measure(0.0, &mut rng);
        assert!(m.abs() < 0.2, "{m}");
    }

    #[test]
    #[should_panic(expected = "bus voltage")]
    fn chain_rejects_bad_bus_voltage() {
        let mut rng = SimRng::seed_from(1);
        let shunt = ShuntResistor::new(0.1, 0.0, &mut rng);
        let amp = Amplifier::new(20.0, 0.0, 0.0, 0.0, &mut rng);
        let _ = MeasurementChain::new(shunt, amp, Adc::ads1256(), 0.0);
    }
}
