//! Triggered high-rate capture — the oscilloscope of the paper's §3
//! ("the voltage signal can be measured by oscilloscope or ADCs").
//!
//! Where the 1 kHz [`PowerRig`](crate::PowerRig) records whole experiments,
//! an [`Oscilloscope`] arms on a power edge and captures a short window at
//! a much higher rate — the tool for zooming into standby transitions and
//! flush-burst edges.

use powadapt_sim::{SimDuration, SimRng, SimTime};

use crate::chain::MeasurementChain;
use crate::trace::PowerTrace;

/// When the scope starts recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Record from the first sample.
    Immediate,
    /// Record once the signal rises through the threshold (in watts).
    Rising(f64),
    /// Record once the signal falls through the threshold (in watts).
    Falling(f64),
}

/// A single-shot, software-triggered capture device.
///
/// Drive it like the rig: ask for [`Oscilloscope::next_sample`], advance the
/// device there, and feed the true power to [`Oscilloscope::observe`]. Once
/// the trigger fires, the scope records `depth` samples and stops.
///
/// # Examples
///
/// ```
/// use powadapt_meter::{MeasurementChain, Oscilloscope, Trigger};
/// use powadapt_sim::SimRng;
///
/// let mut rng = SimRng::seed_from(1);
/// let chain = MeasurementChain::paper_rig(5.0, &mut rng);
/// let mut scope = Oscilloscope::new(chain, rng.fork(), 100_000.0, 64, Trigger::Rising(1.0));
/// // A step from 0.3 W to 2 W fires the trigger.
/// for _ in 0..10 {
///     let t = scope.next_sample();
///     scope.observe(t, 0.3);
/// }
/// while !scope.is_complete() {
///     let t = scope.next_sample();
///     scope.observe(t, 2.0);
/// }
/// let capture = scope.into_capture().expect("triggered");
/// assert_eq!(capture.len(), 64);
/// ```
#[derive(Debug)]
pub struct Oscilloscope {
    chain: MeasurementChain,
    rng: SimRng,
    period: SimDuration,
    trigger: Trigger,
    depth: usize,
    next_at: SimTime,
    last_measured: Option<f64>,
    capture: Option<PowerTrace>,
}

impl Oscilloscope {
    /// Creates a scope sampling at `rate_hz` with a `depth`-sample buffer.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive or `depth` is zero.
    pub fn new(
        chain: MeasurementChain,
        rng: SimRng,
        rate_hz: f64,
        depth: usize,
        trigger: Trigger,
    ) -> Self {
        assert!(rate_hz > 0.0 && rate_hz.is_finite(), "bad sample rate");
        assert!(depth > 0, "capture depth must be non-zero");
        Oscilloscope {
            chain,
            rng,
            period: SimDuration::from_secs_f64(1.0 / rate_hz),
            trigger,
            depth,
            next_at: SimTime::ZERO,
            last_measured: None,
            capture: None,
        }
    }

    /// Re-bases the sampling clock (e.g. to the device's current time).
    pub fn arm_at(&mut self, t: SimTime) {
        self.next_at = t;
    }

    /// When the next sample is due.
    pub fn next_sample(&self) -> SimTime {
        self.next_at
    }

    /// True once the capture buffer is full (or will never fill because the
    /// scope is single-shot and already complete).
    pub fn is_complete(&self) -> bool {
        self.capture.as_ref().is_some_and(|c| c.len() >= self.depth)
    }

    /// Feeds the true power at the due sample instant.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not the due sample time.
    pub fn observe(&mut self, t: SimTime, true_power_w: f64) {
        assert_eq!(t, self.next_at, "observe at {t}, expected {}", self.next_at);
        self.next_at = t + self.period;
        if self.is_complete() {
            return;
        }
        let measured = self.chain.measure(true_power_w, &mut self.rng);
        let fired = match (&self.capture, self.trigger) {
            (Some(_), _) => true,
            (None, Trigger::Immediate) => true,
            (None, Trigger::Rising(th)) => {
                self.last_measured.is_some_and(|prev| prev < th) && measured >= th
            }
            (None, Trigger::Falling(th)) => {
                self.last_measured.is_some_and(|prev| prev > th) && measured <= th
            }
        };
        self.last_measured = Some(measured);
        if fired {
            let capture = self
                .capture
                .get_or_insert_with(|| PowerTrace::new(t, self.period));
            if capture.len() < self.depth {
                capture.push(measured);
            }
        }
    }

    /// The capture, if the trigger has fired (complete or partial).
    pub fn capture(&self) -> Option<&PowerTrace> {
        self.capture.as_ref()
    }

    /// Consumes the scope, returning the capture if the trigger fired.
    pub fn into_capture(self) -> Option<PowerTrace> {
        self.capture
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope(trigger: Trigger) -> Oscilloscope {
        let mut rng = SimRng::seed_from(3);
        let chain = MeasurementChain::paper_rig(5.0, &mut rng);
        Oscilloscope::new(chain, rng.fork(), 100_000.0, 32, trigger)
    }

    fn feed(s: &mut Oscilloscope, watts: f64, n: usize) {
        for _ in 0..n {
            let t = s.next_sample();
            s.observe(t, watts);
        }
    }

    #[test]
    fn immediate_trigger_records_from_the_start() {
        let mut s = scope(Trigger::Immediate);
        feed(&mut s, 1.0, 40);
        assert!(s.is_complete());
        let c = s.into_capture().expect("captured");
        assert_eq!(c.len(), 32);
        assert!((c.mean() - 1.0).abs() < 0.05);
        // 100 kHz period.
        assert_eq!(c.period().as_micros(), 10);
    }

    #[test]
    fn rising_trigger_waits_for_the_edge() {
        let mut s = scope(Trigger::Rising(1.0));
        feed(&mut s, 0.3, 100);
        assert!(s.capture().is_none(), "no edge yet");
        feed(&mut s, 2.0, 40);
        assert!(s.is_complete());
        let c = s.into_capture().expect("captured");
        assert!((c.mean() - 2.0).abs() < 0.1);
    }

    #[test]
    fn falling_trigger_mirrors_rising() {
        let mut s = scope(Trigger::Falling(0.25));
        feed(&mut s, 0.35, 50);
        assert!(s.capture().is_none());
        feed(&mut s, 0.17, 40);
        assert!(s.is_complete());
        let c = s.capture().expect("captured");
        assert!((c.mean() - 0.17).abs() < 0.05, "{}", c.mean());
    }

    #[test]
    fn single_shot_stops_at_depth() {
        let mut s = scope(Trigger::Immediate);
        feed(&mut s, 1.0, 1000);
        assert_eq!(s.capture().expect("captured").len(), 32);
    }

    #[test]
    fn capture_zooms_an_evo_wake_spike() {
        use powadapt_device::{catalog, StorageDevice};
        let mut dev = catalog::evo_860(5);
        dev.request_standby().expect("idle device sleeps");
        while let Some(t) = dev.next_event() {
            dev.advance_to(t);
        }
        // Arm a 100 kHz scope on the wake edge: baseline at the standby
        // floor first, then wake the device mid-capture.
        let mut s = scope(Trigger::Rising(0.8));
        s.arm_at(dev.now());
        for i in 0..200_000 {
            if s.is_complete() {
                break;
            }
            if i == 50 {
                dev.request_wake().expect("wake accepted");
            }
            let t = s.next_sample();
            dev.advance_to(t);
            s.observe(t, dev.power_w());
        }
        let c = s.into_capture().expect("wake spike triggers the scope");
        // The capture sits on the 1.25 W wake plateau.
        assert!((c.mean() - 1.25).abs() < 0.1, "{}", c.mean());
        // And it resolves 10 µs detail — 100x finer than the rig.
        assert_eq!(c.period().as_micros(), 10);
    }

    #[test]
    #[should_panic(expected = "capture depth")]
    fn zero_depth_rejected() {
        let mut rng = SimRng::seed_from(3);
        let chain = MeasurementChain::paper_rig(5.0, &mut rng);
        let _ = Oscilloscope::new(chain, rng.fork(), 1000.0, 0, Trigger::Immediate);
    }
}
