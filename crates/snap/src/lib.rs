//! Deterministic checkpoint/restore for the powadapt suite.
//!
//! Every simulation in this workspace is a pure function of `(spec, seed)`,
//! which makes the complete dynamic state of a run serializable: write it
//! out at time `T`, rebuild the object graph from the same spec, overlay
//! the saved state, and the continuation is bit-identical to a run that
//! never stopped. This crate provides the three pieces every layer shares:
//!
//! - [`SnapWriter`] / [`SnapReader`]: a little-endian binary codec for the
//!   primitive shapes simulation state is made of. Floats round-trip
//!   through [`f64::to_bits`], never through text, so restored
//!   accumulators are bit-exact.
//! - The file envelope ([`seal`] / [`open`]): magic, format version, and a
//!   trailing FNV-1a checksum. Corrupt, truncated, or foreign files fail
//!   closed with a typed [`SnapError`] — never a panic, never a silently
//!   wrong restore.
//! - The [`Snapshot`] / [`Restore`] traits implemented across the sim,
//!   device, io, core, and cluster crates.
//!
//! The format is deliberately dependency-free (no serde): the workspace
//! builds offline, and the layout is pinned by the golden equivalence
//! tests rather than by a derive.
//!
//! # Versioning and forward compatibility
//!
//! The payload layout is versioned as a whole by [`FORMAT_VERSION`]. Any
//! change to any `write_state` layout bumps the version; readers reject
//! every version other than their own ([`SnapError::UnsupportedVersion`]).
//! Snapshots are warm-start artifacts, not archives: a snapshot is only
//! meaningful against the exact code that wrote it, so cross-version
//! migration is out of scope by design (DESIGN.md §7).

use std::error::Error;
use std::fmt;
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"PSNP";

/// Version of the snapshot payload layout. Bump on any layout change.
///
/// History: 1 = original checkpoint/restore layout; 2 = sim-kernel
/// overhaul (SSD in-flight reads table moved ahead of the event queue,
/// die queues serialize translated IO ids); 3 = sketch-backed metrics
/// registry and the cluster energy-attribution ledger (integer-femtojoule
/// `u128` accounts); 4 = placement tier (extent catalog, in-flight
/// migrations, standby pins), cluster IO-owner tagging, the ledger's
/// reserved system account, and the HDD write-through media-op variant.
/// Older checkpoints are rejected with [`SnapError::UnsupportedVersion`]
/// rather than mis-parsed.
pub const FORMAT_VERSION: u32 = 4;

/// Typed failures of snapshot decoding. Every malformed input maps to one
/// of these; decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// The file does not start with the [`MAGIC`] bytes.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum recomputed over the received bytes.
        computed: u64,
        /// Checksum stored in the file.
        stored: u64,
    },
    /// The input ended before the decoder got what the layout promises.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Bytes remain after the payload was fully decoded.
    TrailingBytes(usize),
    /// A decoded value is structurally impossible (bad discriminant,
    /// out-of-range index, non-boolean byte, ...).
    InvalidValue(String),
    /// The component does not support snapshotting.
    Unsupported(&'static str),
    /// An I/O failure reading or writing a snapshot file.
    Io(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a powadapt snapshot (bad magic)"),
            SnapError::UnsupportedVersion(v) => write!(
                f,
                "snapshot format version {v} is not supported (this build reads version {FORMAT_VERSION})"
            ),
            SnapError::ChecksumMismatch { computed, stored } => write!(
                f,
                "snapshot checksum mismatch: computed {computed:#018x}, stored {stored:#018x} — the file is corrupt"
            ),
            SnapError::Truncated { needed, remaining } => write!(
                f,
                "snapshot truncated: needed {needed} byte(s), only {remaining} remain"
            ),
            SnapError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} unexpected trailing byte(s)")
            }
            SnapError::InvalidValue(what) => write!(f, "invalid snapshot value: {what}"),
            SnapError::Unsupported(what) => write!(f, "snapshot unsupported: {what}"),
            SnapError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl Error for SnapError {}

/// FNV-1a over `bytes` — the envelope checksum. Not cryptographic; it
/// exists to turn bit rot and truncation into typed errors.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes state into a growing byte buffer. All integers are
/// little-endian; floats go through [`f64::to_bits`] so accumulated sums
/// restore bit-exactly.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// The serialized payload so far.
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128` as two little-endian `u64` halves, low half first.
    pub fn u128(&mut self, v: u128) {
        self.u64(v as u64);
        self.u64((v >> 64) as u64);
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an `f64` bit-exactly via [`f64::to_bits`].
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes `Some(f64)` as `1` + bits, `None` as `0`.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.f64(x);
            }
            None => self.bool(false),
        }
    }

    /// Writes `Some(u64)` as `1` + value, `None` as `0`.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Writes a sequence length prefix; the caller then writes each item.
    pub fn seq_len(&mut self, n: usize) {
        self.usize(n);
    }
}

/// Decodes state previously produced by a [`SnapWriter`]. Every method
/// fails closed on malformed input; nothing here panics.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Upper bound accepted for any one sequence/string length. Snapshots are
/// written by this workspace and are megabytes at most; a length past this
/// bound is corruption, not data, and is rejected before any allocation.
const MAX_SEQ_LEN: u64 = 1 << 32;

impl<'a> SnapReader<'a> {
    /// Wraps an already-unsealed payload.
    pub fn new(payload: &'a [u8]) -> Self {
        SnapReader {
            buf: payload,
            pos: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors with [`SnapError::TrailingBytes`] unless fully consumed.
    pub fn finish(self) -> Result<(), SnapError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(SnapError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let s = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(s);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(i64::from_le_bytes(a))
    }

    /// Reads a `u128` written by [`SnapWriter::u128`] (low half first).
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        let lo = self.u64()? as u128;
        let hi = self.u64()? as u128;
        Ok(lo | (hi << 64))
    }

    /// Reads a `usize` written by [`SnapWriter::usize`].
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::InvalidValue(format!("usize out of range: {v}")))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is invalid.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::InvalidValue(format!("bool byte {b}"))),
        }
    }

    /// Reads an `f64` bit-exactly via [`f64::from_bits`].
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `Option<f64>` written by [`SnapWriter::opt_f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>, SnapError> {
        if self.bool()? {
            Ok(Some(self.f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an `Option<u64>` written by [`SnapWriter::opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| SnapError::InvalidValue(format!("non-utf8 string: {e}")))
    }

    /// Reads a length-prefixed byte vector.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.seq_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a sequence length prefix, bounds-checked against both the
    /// sanity cap and the bytes actually remaining (each element takes at
    /// least one byte), so corrupt lengths cannot drive huge allocations.
    pub fn seq_len(&mut self) -> Result<usize, SnapError> {
        let n = self.u64()?;
        if n > MAX_SEQ_LEN || n > self.remaining() as u64 {
            return Err(SnapError::InvalidValue(format!(
                "sequence length {n} exceeds remaining input ({})",
                self.remaining()
            )));
        }
        // MAX_SEQ_LEN fits usize on every supported target.
        Ok(n as usize)
    }
}

/// Wraps `payload` in the snapshot envelope:
/// `MAGIC ++ version:u32 ++ payload_len:u64 ++ payload ++ fnv1a:u64`,
/// where the checksum covers everything before it.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a_64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates the envelope of `data` and returns the payload slice.
///
/// # Errors
///
/// [`SnapError::BadMagic`], [`SnapError::UnsupportedVersion`],
/// [`SnapError::Truncated`], [`SnapError::TrailingBytes`], or
/// [`SnapError::ChecksumMismatch`] — one typed error per way a file can be
/// wrong.
pub fn open(data: &[u8]) -> Result<&[u8], SnapError> {
    let mut r = SnapReader::new(data);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapError::UnsupportedVersion(version));
    }
    let len = r.usize()?;
    let payload_start = r.pos;
    let payload = r.take(len)?;
    let checksum_start = payload_start + len;
    let stored = r.u64()?;
    r.finish()?;
    let computed = fnv1a_64(&data[..checksum_start]);
    if computed != stored {
        return Err(SnapError::ChecksumMismatch { computed, stored });
    }
    Ok(payload)
}

/// Seals `payload` and writes it to `path`.
///
/// # Errors
///
/// [`SnapError::Io`] on filesystem failure.
pub fn write_file(path: &Path, payload: &[u8]) -> Result<(), SnapError> {
    std::fs::write(path, seal(payload))
        .map_err(|e| SnapError::Io(format!("{}: {e}", path.display())))
}

/// Reads `path`, validates the envelope, and returns the payload.
///
/// # Errors
///
/// [`SnapError::Io`] on filesystem failure, or any [`open`] error on a
/// malformed file.
pub fn read_file(path: &Path) -> Result<Vec<u8>, SnapError> {
    let data =
        std::fs::read(path).map_err(|e| SnapError::Io(format!("{}: {e}", path.display())))?;
    open(&data).map(<[u8]>::to_vec)
}

/// A component whose dynamic state can be serialized.
///
/// Implementations write *state*, never configuration: restore rebuilds
/// the object graph from the original spec and overlays this state, so
/// anything derivable from the spec stays out of the snapshot.
pub trait Snapshot {
    /// Appends this component's dynamic state to `w`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Unsupported`] when the component cannot be
    /// snapshotted.
    fn write_state(&self, w: &mut SnapWriter) -> Result<(), SnapError>;
}

/// A component whose dynamic state can be overlaid from a snapshot.
///
/// `read_state` must consume exactly what the matching
/// [`Snapshot::write_state`] produced, and must not emit observability
/// events: a restored run's traces continue the original's, they do not
/// replay it.
pub trait Restore {
    /// Overlays this component's dynamic state from `r`.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] on malformed input. On error the component may be
    /// left partially restored and must be discarded.
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

// Tests assert exact round-trips; unwraps and bit-exact float comparisons
// are the point.
#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.i64(-42);
        w.usize(12345);
        w.bool(true);
        w.bool(false);
        w.f64(std::f64::consts::PI);
        w.f64(-0.0);
        w.opt_f64(Some(1.5));
        w.opt_f64(None);
        w.opt_u64(Some(9));
        w.opt_u64(None);
        w.str("hello, snapshot");
        w.bytes(&[1, 2, 3]);
        let payload = w.into_payload();
        let mut r = SnapReader::new(&payload);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 12345);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.opt_f64().unwrap(), Some(1.5));
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.str().unwrap(), "hello, snapshot");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn u128_round_trips_low_half_first() {
        let big = (u64::MAX as u128) * 3 + 7;
        let mut w = SnapWriter::new();
        w.u128(0);
        w.u128(big);
        w.u128(u128::MAX);
        let payload = w.into_payload();
        // Layout is two u64 halves, low first — readable as plain u64s.
        let mut halves = SnapReader::new(&payload);
        assert_eq!(halves.u64().unwrap(), 0);
        assert_eq!(halves.u64().unwrap(), 0);
        assert_eq!(halves.u64().unwrap(), big as u64);
        assert_eq!(halves.u64().unwrap(), (big >> 64) as u64);
        let mut r = SnapReader::new(&payload);
        assert_eq!(r.u128().unwrap(), 0);
        assert_eq!(r.u128().unwrap(), big);
        assert_eq!(r.u128().unwrap(), u128::MAX);
        r.finish().unwrap();
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7ff8_0000_0000_1234);
        let mut w = SnapWriter::new();
        w.f64(weird);
        let payload = w.into_payload();
        let mut r = SnapReader::new(&payload);
        assert_eq!(r.f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn envelope_round_trips() {
        let payload = b"some simulation state".to_vec();
        let sealed = seal(&payload);
        assert_eq!(open(&sealed).unwrap(), payload.as_slice());
    }

    #[test]
    fn empty_payload_seals() {
        let sealed = seal(&[]);
        assert_eq!(open(&sealed).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut sealed = seal(b"x");
        sealed[0] = b'Q';
        assert_eq!(open(&sealed), Err(SnapError::BadMagic));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut sealed = seal(b"x");
        sealed[4] = 99;
        assert_eq!(open(&sealed), Err(SnapError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncation_is_rejected() {
        let sealed = seal(b"payload bytes");
        for cut in 0..sealed.len() {
            let err = open(&sealed[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapError::Truncated { .. }
                        | SnapError::BadMagic
                        | SnapError::ChecksumMismatch { .. }
                        | SnapError::InvalidValue(_)
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn payload_corruption_is_rejected() {
        let sealed = seal(b"payload bytes");
        for i in 0..sealed.len() {
            for bit in [0u8, 3, 7] {
                let mut bad = sealed.clone();
                bad[i] ^= 1 << bit;
                assert!(open(&bad).is_err(), "flip byte {i} bit {bit} accepted");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut sealed = seal(b"x");
        sealed.push(0);
        assert!(matches!(
            open(&sealed),
            Err(SnapError::TrailingBytes(_) | SnapError::InvalidValue(_))
        ));
    }

    #[test]
    fn bool_rejects_junk() {
        let mut r = SnapReader::new(&[2]);
        assert!(matches!(r.bool(), Err(SnapError::InvalidValue(_))));
    }

    #[test]
    fn seq_len_rejects_absurd_lengths() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX);
        let payload = w.into_payload();
        let mut r = SnapReader::new(&payload);
        assert!(matches!(r.seq_len(), Err(SnapError::InvalidValue(_))));
    }

    #[test]
    fn file_round_trip_and_corruption() {
        let dir = std::env::temp_dir().join("powadapt-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.psnp");
        write_file(&path, b"state").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"state");
        // Corrupt one payload byte on disk.
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        assert!(read_file(&path).is_err());
        let missing = dir.join("does-not-exist.psnp");
        assert!(matches!(read_file(&missing), Err(SnapError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_display_useful_diagnostics() {
        let s = SnapError::ChecksumMismatch {
            computed: 1,
            stored: 2,
        }
        .to_string();
        assert!(s.contains("corrupt"));
        assert!(SnapError::BadMagic.to_string().contains("magic"));
        assert!(SnapError::UnsupportedVersion(9)
            .to_string()
            .contains("version 9"));
    }
}
