//! Property tests for the sealed snapshot envelope: corruption of any
//! kind — bit flips, truncation, trailing bytes, version skew — must be
//! rejected with a typed [`SnapError`], never accepted and never a panic.

// Property tests assert on exact expected values.
#![allow(clippy::unwrap_used)]

use powadapt_snap::{fnv1a_64, open, seal, SnapError, FORMAT_VERSION, MAGIC};
use proptest::prelude::*;

fn payloads() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512)
}

/// Re-seals `data` (an envelope whose header bytes were edited) with a
/// fresh valid checksum, so the test reaches the *semantic* validation
/// behind the checksum gate.
fn fix_checksum(mut data: Vec<u8>) -> Vec<u8> {
    let body = data.len() - 8;
    let sum = fnv1a_64(&data[..body]);
    data[body..].copy_from_slice(&sum.to_le_bytes());
    data
}

proptest! {
    #[test]
    fn seal_open_round_trips(payload in payloads()) {
        let sealed = seal(&payload);
        prop_assert_eq!(open(&sealed).unwrap(), &payload[..]);
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        payload in payloads(),
        pos in any::<u64>(),
        bit in 0u64..8,
    ) {
        let sealed = seal(&payload);
        let i = (pos % sealed.len() as u64) as usize;
        let mut bad = sealed;
        bad[i] ^= 1 << bit;
        prop_assert!(open(&bad).is_err(), "flipped bit {} of byte {} was accepted", bit, i);
    }

    #[test]
    fn any_truncation_is_rejected(payload in payloads(), cut in any::<u64>()) {
        let sealed = seal(&payload);
        // keep < len, so the slice is always strictly shorter.
        let keep = (cut % sealed.len() as u64) as usize;
        prop_assert!(open(&sealed[..keep]).is_err(), "truncation to {} bytes was accepted", keep);
    }

    #[test]
    fn trailing_bytes_are_rejected(
        payload in payloads(),
        extra in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut sealed = seal(&payload);
        sealed.extend_from_slice(&extra);
        prop_assert!(matches!(open(&sealed), Err(SnapError::TrailingBytes(_))));
    }

    #[test]
    fn wrong_magic_is_rejected(payload in payloads(), salt in 1u64..=255) {
        let mut sealed = seal(&payload);
        sealed[0] ^= salt as u8;
        // Re-seal so the magic check, not the checksum, does the rejecting.
        prop_assert!(matches!(open(&fix_checksum(sealed)), Err(SnapError::BadMagic)));
    }

    #[test]
    fn future_versions_are_rejected(payload in payloads(), bump in 1u32..1000) {
        let mut sealed = seal(&payload);
        let v = FORMAT_VERSION + bump;
        sealed[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&v.to_le_bytes());
        prop_assert!(matches!(
            open(&fix_checksum(sealed)),
            Err(SnapError::UnsupportedVersion(got)) if got == v
        ));
    }

    #[test]
    fn prior_versions_are_rejected(payload in payloads(), v in 0..FORMAT_VERSION) {
        // A checkpoint from an older build (e.g. v1, whose queue/SSD
        // layout differs) must be refused outright — the checksum
        // validates bytes, not layout, so this gate is the only thing
        // between an old snapshot and a silently corrupted restore.
        let mut sealed = seal(&payload);
        sealed[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&v.to_le_bytes());
        prop_assert!(matches!(
            open(&fix_checksum(sealed)),
            Err(SnapError::UnsupportedVersion(got)) if got == v
        ));
    }

    #[test]
    fn length_field_lies_are_rejected(payload in payloads(), raw_lie in any::<u64>()) {
        let truth = payload.len() as u64;
        // Force the lie to actually lie.
        let lie = if raw_lie == truth { raw_lie ^ 1 } else { raw_lie };
        let mut sealed = seal(&payload);
        let at = MAGIC.len() + 4;
        sealed[at..at + 8].copy_from_slice(&lie.to_le_bytes());
        prop_assert!(
            open(&fix_checksum(sealed)).is_err(),
            "length lie {} (truth {}) was accepted", lie, truth
        );
    }
}
