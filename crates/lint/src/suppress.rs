//! Parsing and bookkeeping for `// powadapt-lint: allow(...)` comments.
//!
//! The suppression grammar is deliberately rigid:
//!
//! ```text
//! // powadapt-lint: allow(D2, reason = "membership-only set, never iterated")
//! // powadapt-lint: allow(D1, D5, reason = "host clock is the executor's job")
//! ```
//!
//! - one or more known rule ids, then a **mandatory, non-empty** `reason`;
//! - a standalone comment suppresses the *next* source line, a trailing
//!   comment suppresses *its own* line;
//! - a malformed suppression is itself a diagnostic ([`RuleId::S0`]), and
//!   a suppression that matches nothing is too ([`RuleId::S1`]) — the
//!   escape hatch is audited, not free.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::LineComment;

/// The comment marker that introduces a suppression.
pub const MARKER: &str = "powadapt-lint:";

/// A successfully parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules this comment allows.
    pub rules: Vec<RuleId>,
    /// The mandatory justification.
    pub reason: String,
    /// Workspace-relative path of the file the comment lives in. The
    /// unused-suppression audit keys on (rule, file): an allow firing in
    /// one file must never mask an unused allow for the same rule
    /// elsewhere.
    pub path: String,
    /// 1-based line of the comment itself.
    pub comment_line: u32,
    /// 1-based line whose findings are suppressed.
    pub target_line: u32,
    /// Set when the suppression matched at least one finding.
    pub used: bool,
}

/// A `// powadapt-lint: hot` annotation: the next (or same, when
/// trailing) line's `fn` is declared hot-path and subject to [D9].
///
/// [D9]: crate::diag::RuleId::D9
#[derive(Debug, Clone)]
pub struct HotMark {
    /// Workspace-relative path of the file the mark lives in.
    pub path: String,
    /// 1-based line of the comment itself.
    pub comment_line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// 1-based line the mark targets (the `fn` line).
    pub target_line: u32,
    /// Set when a fn declaration was found on the target line; an
    /// unattached mark is an S0 (the directive mechanism is audited).
    pub attached: bool,
}

/// Result of scanning one file's comments.
#[derive(Debug, Default)]
pub struct SuppressionSet {
    /// Well-formed suppressions, by target line.
    pub entries: Vec<Suppression>,
    /// `hot` directives, by target line.
    pub hot_marks: Vec<HotMark>,
    /// S0 diagnostics for malformed suppressions.
    pub errors: Vec<Diagnostic>,
}

impl SuppressionSet {
    /// Attempts to suppress a finding of `rule` on `line`; returns true
    /// (and marks the entry used) when a matching suppression covers the
    /// diagnostic's line. `path` must match the entry's file — the set
    /// may be merged workspace-wide, and a suppression only ever covers
    /// its own file.
    pub fn try_suppress(&mut self, rule: RuleId, path: &str, line: u32) -> bool {
        for entry in &mut self.entries {
            if entry.target_line == line && entry.path == path && entry.rules.contains(&rule) {
                entry.used = true;
                return true;
            }
        }
        false
    }

    /// Absorbs another file's scan into this set (workspace pass).
    pub fn merge(&mut self, mut other: SuppressionSet) {
        self.entries.append(&mut other.entries);
        self.hot_marks.append(&mut other.hot_marks);
        self.errors.append(&mut other.errors);
    }

    /// S1 diagnostics for suppressions that never fired, keyed per
    /// (rule, file): every entry is audited against its own file only.
    /// Call after all rules have run.
    pub fn unused(&self, line_text: impl Fn(&str, u32) -> String) -> Vec<Diagnostic> {
        self.entries
            .iter()
            .filter(|e| !e.used)
            .map(|e| Diagnostic {
                rule: RuleId::S1,
                path: e.path.clone(),
                line: e.comment_line,
                col: 1,
                message: format!(
                    "suppression allows {} but nothing on line {} triggers it",
                    e.rules
                        .iter()
                        .map(|r| r.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                    e.target_line,
                ),
                snippet: line_text(&e.path, e.comment_line),
                span_len: 1,
            })
            .collect()
    }
}

/// Scans a file's line comments for suppressions.
pub fn scan(comments: &[LineComment], path: &str) -> SuppressionSet {
    let mut set = SuppressionSet::default();
    for c in comments {
        // Doc comments (`///`, `//!`) never carry suppressions — they
        // document the mechanism, including verbatim examples, without
        // engaging it.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(idx) = c.text.find(MARKER) else {
            continue;
        };
        let body = c.text[idx + MARKER.len()..].trim();
        let target_line = if c.trailing { c.line } else { c.line + 1 };
        if body == "hot" {
            set.hot_marks.push(HotMark {
                path: path.to_string(),
                comment_line: c.line,
                col: c.col,
                target_line,
                attached: false,
            });
            continue;
        }
        match parse_body(body) {
            Ok((rules, reason)) => set.entries.push(Suppression {
                rules,
                reason,
                path: path.to_string(),
                comment_line: c.line,
                target_line,
                used: false,
            }),
            Err(msg) => set.errors.push(Diagnostic {
                rule: RuleId::S0,
                path: path.to_string(),
                line: c.line,
                col: c.col,
                message: msg,
                snippet: c.text.trim_start_matches('/').trim().to_string(),
                span_len: c.text.len() as u32,
            }),
        }
    }
    set
}

/// Parses `allow(D2, D5, reason = "...")` after the marker.
fn parse_body(body: &str) -> Result<(Vec<RuleId>, String), String> {
    let rest = body
        .strip_prefix("allow")
        .ok_or_else(|| format!("expected `allow(...)` after `{MARKER}`"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let inner = rest
        .rfind(')')
        .map(|i| &rest[..i])
        .ok_or_else(|| "unclosed `allow(`".to_string())?;

    let mut rules = Vec::new();
    let mut reason: Option<String> = None;
    for part in split_args(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(value) = part.strip_prefix("reason") {
            let value = value.trim_start();
            let value = value
                .strip_prefix('=')
                .ok_or_else(|| "expected `reason = \"...\"`".to_string())?
                .trim();
            let unquoted = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
            if unquoted.trim().is_empty() {
                return Err("suppression reason must not be empty".to_string());
            }
            reason = Some(unquoted.to_string());
        } else {
            let rule = RuleId::parse_suppressible(part).ok_or_else(|| {
                format!(
                    "unknown rule `{part}` (expected one of D1, D2, D3, D4, D5, D6, D7, D8, D9)"
                )
            })?;
            rules.push(rule);
        }
    }
    if rules.is_empty() {
        return Err("suppression names no rules".to_string());
    }
    let reason = reason
        .ok_or_else(|| "suppression is missing the mandatory `reason = \"...\"`".to_string())?;
    Ok((rules, reason))
}

/// Splits on commas outside the quoted reason string.
fn split_args(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth_quote = false;
    let mut start = 0usize;
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => depth_quote = !depth_quote,
            b'\\' if depth_quote => i += 1,
            b',' if !depth_quote => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, trailing: bool) -> LineComment {
        LineComment {
            text: text.to_string(),
            line: 10,
            col: 5,
            trailing,
        }
    }

    #[test]
    fn well_formed_single_rule() {
        let set = scan(
            &[comment(
                "// powadapt-lint: allow(D2, reason = \"never iterated\")",
                false,
            )],
            "x.rs",
        );
        assert!(set.errors.is_empty());
        assert_eq!(set.entries.len(), 1);
        assert_eq!(set.entries[0].rules, vec![RuleId::D2]);
        assert_eq!(set.entries[0].target_line, 11);
    }

    #[test]
    fn trailing_targets_own_line() {
        let set = scan(
            &[comment(
                "// powadapt-lint: allow(D5, reason = \"poisoned lock is fatal\")",
                true,
            )],
            "x.rs",
        );
        assert_eq!(set.entries[0].target_line, 10);
    }

    #[test]
    fn multiple_rules() {
        let set = scan(
            &[comment(
                "// powadapt-lint: allow(D1, D5, reason = \"executor timing\")",
                false,
            )],
            "x.rs",
        );
        assert_eq!(set.entries[0].rules, vec![RuleId::D1, RuleId::D5]);
    }

    #[test]
    fn missing_reason_is_s0() {
        let set = scan(&[comment("// powadapt-lint: allow(D2)", false)], "x.rs");
        assert!(set.entries.is_empty());
        assert_eq!(set.errors.len(), 1);
        assert_eq!(set.errors[0].rule, RuleId::S0);
        assert!(set.errors[0].message.contains("reason"));
    }

    #[test]
    fn empty_reason_is_s0() {
        let set = scan(
            &[comment("// powadapt-lint: allow(D2, reason = \"\")", false)],
            "x.rs",
        );
        assert_eq!(set.errors.len(), 1);
        assert!(set.errors[0].message.contains("empty"));
    }

    #[test]
    fn unknown_rule_is_s0() {
        let set = scan(
            &[comment(
                "// powadapt-lint: allow(D42, reason = \"nope\")",
                false,
            )],
            "x.rs",
        );
        assert_eq!(set.errors.len(), 1);
        assert!(set.errors[0].message.contains("unknown rule `D42`"));
    }

    #[test]
    fn semantic_rules_parse_in_both_cases() {
        let set = scan(
            &[comment(
                "// powadapt-lint: allow(d6, D9, reason = \"static config\")",
                false,
            )],
            "x.rs",
        );
        assert!(set.errors.is_empty());
        assert_eq!(set.entries[0].rules, vec![RuleId::D6, RuleId::D9]);
    }

    #[test]
    fn hot_directive_is_recorded_not_an_error() {
        let set = scan(&[comment("// powadapt-lint: hot", false)], "x.rs");
        assert!(set.errors.is_empty());
        assert!(set.entries.is_empty());
        assert_eq!(set.hot_marks.len(), 1);
        assert_eq!(set.hot_marks[0].target_line, 11);
    }

    #[test]
    fn suppression_only_covers_its_own_file() {
        // (rule, file) keying: an allow in a.rs must not fire for a
        // finding at the same rule/line in b.rs, and the unused audit
        // reports per file.
        let mut set = scan(
            &[comment(
                "// powadapt-lint: allow(D9, reason = \"x\")",
                false,
            )],
            "a.rs",
        );
        set.merge(scan(
            &[comment(
                "// powadapt-lint: allow(D9, reason = \"x\")",
                false,
            )],
            "b.rs",
        ));
        assert!(set.try_suppress(RuleId::D9, "a.rs", 11));
        assert!(!set.try_suppress(RuleId::D9, "c.rs", 11));
        let unused = set.unused(|_, _| String::new());
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].path, "b.rs");
    }

    #[test]
    fn s_rules_are_not_suppressible() {
        let set = scan(
            &[comment(
                "// powadapt-lint: allow(S1, reason = \"meta\")",
                false,
            )],
            "x.rs",
        );
        assert_eq!(set.errors.len(), 1);
        assert!(set.errors[0].message.contains("unknown rule `S1`"));
    }

    #[test]
    fn comma_inside_reason() {
        let set = scan(
            &[comment(
                "// powadapt-lint: allow(D3, reason = \"a, b, and c\")",
                false,
            )],
            "x.rs",
        );
        assert!(set.errors.is_empty());
        assert_eq!(set.entries[0].reason, "a, b, and c");
    }

    #[test]
    fn unused_reports_s1() {
        let mut set = scan(
            &[comment(
                "// powadapt-lint: allow(D2, reason = \"x\")",
                false,
            )],
            "x.rs",
        );
        assert!(!set.try_suppress(RuleId::D1, "x.rs", 11));
        let unused = set.unused(|_, _| String::new());
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, RuleId::S1);
    }
}
