//! SARIF 2.1.0 output (`--format sarif`).
//!
//! Hand-rolled like the JSON report in [`crate::diag`] — the workspace
//! builds offline, so no serde. The document carries one run with the
//! full rule table (so viewers can show titles/help without the source)
//! and one `result` per active diagnostic, which is what GitHub code
//! scanning needs to annotate PR diffs.

use crate::diag::{json_escape, Report, RuleId};

const SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Serializes the report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"$schema\": \"{SCHEMA}\",\n"));
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n");
    s.push_str("    {\n");
    s.push_str("      \"tool\": {\n");
    s.push_str("        \"driver\": {\n");
    s.push_str("          \"name\": \"powadapt-lint\",\n");
    s.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, rule) in RuleId::ALL.iter().enumerate() {
        s.push_str(&format!(
            "            {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{title}\"}}, \
             \"help\": {{\"text\": \"{help}\"}}}}{comma}\n",
            id = rule,
            title = json_escape(rule.title()),
            help = json_escape(rule.help()),
            comma = if i + 1 == RuleId::ALL.len() { "" } else { "," },
        ));
    }
    s.push_str("          ]\n");
    s.push_str("        }\n");
    s.push_str("      },\n");
    s.push_str("      \"results\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        s.push_str(&format!(
            "        {{\"ruleId\": \"{rule}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{msg}\"}}, \"locations\": [{{\
             \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{uri}\"}}, \
             \"region\": {{\"startLine\": {line}, \"startColumn\": {col}}}}}}}]}}{comma}\n",
            rule = d.rule,
            msg = json_escape(&d.message),
            uri = json_escape(&d.path),
            line = d.line,
            col = d.col,
            comma = if i + 1 == report.diagnostics.len() {
                ""
            } else {
                ","
            },
        ));
    }
    s.push_str("      ]\n");
    s.push_str("    }\n");
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    #[test]
    fn sarif_envelope_and_result_shape() {
        let report = Report {
            root: "/ws".into(),
            files_scanned: 1,
            diagnostics: vec![Diagnostic {
                rule: RuleId::D6,
                path: "crates/sim/src/rng.rs".into(),
                line: 12,
                col: 5,
                message: "field `s1` is never mentioned".into(),
                snippet: "    s1: u64,".into(),
                span_len: 2,
            }],
            suppressions_used: vec![],
        };
        let sarif = to_sarif(&report);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("sarif-schema-2.1.0.json"));
        assert!(sarif.contains("\"name\": \"powadapt-lint\""));
        assert!(sarif.contains("\"ruleId\": \"D6\""));
        assert!(sarif.contains("\"startLine\": 12"));
        assert!(sarif.contains("\"uri\": \"crates/sim/src/rng.rs\""));
        // Every rule is described in the driver table.
        for rule in RuleId::ALL {
            assert!(sarif.contains(&format!("\"id\": \"{rule}\"")));
        }
    }

    #[test]
    fn empty_report_is_valid() {
        let report = Report {
            root: "/ws".into(),
            files_scanned: 0,
            diagnostics: vec![],
            suppressions_used: vec![],
        };
        let sarif = to_sarif(&report);
        assert!(sarif.contains("\"results\": [\n      ]"));
    }
}
