//! The five domain rules, implemented over the token stream.
//!
//! Each rule is a pure function from `(path, tokens)` to findings; the
//! driver in [`crate::analyze_source`] handles scoping, test regions, and
//! suppressions so the rules stay small and independently testable.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{Tok, TokKind};

/// A raw finding before suppression/scoping: rule, token index, message.
#[derive(Debug)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Index into the token stream where the finding anchors.
    pub tok: usize,
    /// Number of consecutive tokens the span covers (for underlining).
    pub span_toks: usize,
    /// Specific message for this finding.
    pub message: String,
}

fn ident(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn punct(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Punct)
        .map(|t| t.text.as_str())
}

/// D1 — wall-clock time and OS entropy.
///
/// Flags any use of `std::time::Instant`/`SystemTime`, thread-sleeping,
/// the `rand` ecosystem's entropy entry points, and host environment
/// reads. Virtual time comes from `SimTime`, randomness from `SimRng`,
/// and configuration from explicit parameters; the parallel executor is
/// file-allowlisted in [`crate::scope`].
pub fn d1_wall_clock(toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let msg = match t.text.as_str() {
            "Instant" | "SystemTime" => Some(format!(
                "`{}` reads the host wall clock; simulated code must use `SimTime`",
                t.text
            )),
            // `rand::` paths and the crate's entropy entry points.
            "rand" if punct(toks, i + 1) == Some("::") => Some(
                "the `rand` crate draws OS entropy; derive randomness from `SimRng`".to_string(),
            ),
            "thread_rng" | "from_entropy" | "getrandom" | "OsRng" => Some(format!(
                "`{}` seeds from the OS; derive randomness from a fixed root seed",
                t.text
            )),
            // `env::var` / `env::var_os` / `env::vars`: host state that
            // makes runs irreproducible when it leaks into results.
            "var" | "var_os" | "vars"
                if punct(toks, i.wrapping_sub(1)) == Some("::")
                    && ident(toks, i.wrapping_sub(2)) == Some("env") =>
            {
                Some(
                    "environment reads make results depend on host state; \
                     take configuration as an explicit parameter"
                        .to_string(),
                )
            }
            _ => None,
        };
        if let Some(message) = msg {
            out.push(Finding {
                rule: RuleId::D1,
                tok: i,
                span_toks: 1,
                message,
            });
        }
    }
    out
}

/// D2 — iteration-order hazards.
///
/// Flags `HashMap`/`HashSet` anywhere in result-producing crates. This
/// deliberately over-approximates "is iterated": `RandomState` hashing
/// makes iteration order differ *per process*, so the only future-proof
/// contract is that the type never appears where a later edit could
/// iterate it into output. Membership-only uses can carry an inline
/// `allow(D2, reason = ...)`.
pub fn d2_hash_collections(toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            let sorted = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(Finding {
                rule: RuleId::D2,
                tok: i,
                span_toks: 1,
                message: format!(
                    "`{}` iteration order is nondeterministic; use `{}`",
                    t.text, sorted
                ),
            });
        }
    }
    out
}

/// D3 — NaN-unsafe float comparison.
///
/// Flags (a) `partial_cmp(..).unwrap()` / `.expect(..)` chains, which
/// panic the moment a NaN reaches a sort, and (b) `==`/`!=` against a
/// float literal, which clippy's `float_cmp` also hates but which here is
/// an *error* in figure/stat code.
pub fn d3_float_cmp(toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "partial_cmp" {
            // Skip the call's argument list, then look for `.unwrap()` or
            // `.expect(`.
            let Some(open) = punct(toks, i + 1) else {
                continue;
            };
            if open != "(" {
                continue;
            }
            let mut depth = 1i32;
            let mut j = i + 2;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if punct(toks, j) == Some(".") {
                if let Some(m @ ("unwrap" | "expect")) = ident(toks, j + 1) {
                    out.push(Finding {
                        rule: RuleId::D3,
                        tok: i,
                        span_toks: j + 2 - i,
                        message: format!(
                            "`partial_cmp(..).{m}(..)` panics on NaN; use `f64::total_cmp`"
                        ),
                    });
                }
            }
        }
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let prev_float = i > 0 && toks[i - 1].kind == TokKind::Float;
            let next_float = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float);
            if prev_float || next_float {
                out.push(Finding {
                    rule: RuleId::D3,
                    tok: i,
                    span_toks: 1,
                    message: format!(
                        "`{}` against a float literal; compare with an explicit \
                         tolerance or use integer/bit representations",
                        t.text
                    ),
                });
            }
        }
    }
    out
}

/// Suffixes D4 recognizes as unit-bearing parameter names, with the
/// newtype each one must use instead of `f64`.
pub const D4_SUFFIXES: &[(&str, &str)] = &[
    ("_watts", "Watts"),
    ("_joules", "Joules"),
    ("_ms", "Millis"),
    ("_us", "Micros"),
];

/// D4 — unit safety on public APIs.
///
/// Finds `pub fn` signatures and flags parameters declared as raw `f64`
/// (including `&f64`/`&mut f64`) whose names end in a unit suffix.
/// The typed newtypes live in `powadapt_sim::units`.
pub fn d4_unit_newtypes(toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // `pub` [`(` ... `)`] [`const`|`async`|`unsafe`]* `fn` name
        if ident(toks, i) != Some("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if punct(toks, j) == Some("(") {
            // `pub(crate)` and friends.
            let mut depth = 1i32;
            j += 1;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        while matches!(ident(toks, j), Some("const" | "async" | "unsafe")) {
            j += 1;
        }
        if ident(toks, j) != Some("fn") {
            i += 1;
            continue;
        }
        j += 2; // skip `fn` and the function name
                // Skip generics `<...>` if present.
        if punct(toks, j) == Some("<") {
            let mut depth = 1i32;
            j += 1;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        if punct(toks, j) != Some("(") {
            i = j;
            continue;
        }
        // Walk the parameter list at paren depth 1, splitting on
        // top-level commas (angle-bracket depth tracked so `Fn(A, B)`
        // and `Vec<T>` commas don't split).
        let params_start = j + 1;
        let mut depth = 1i32;
        let mut k = params_start;
        let mut param_start = params_start;
        let mut params: Vec<(usize, usize)> = Vec::new();
        while k < toks.len() && depth > 0 {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        if k > param_start {
                            params.push((param_start, k));
                        }
                        break;
                    }
                }
                "," if depth == 1 => {
                    params.push((param_start, k));
                    param_start = k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        for &(a, b) in &params {
            check_param(&toks[a..b], a, &mut out);
        }
        i = k.max(i + 1);
    }
    out
}

/// Checks one parameter's tokens (`[mut] name : Type...`) for a
/// unit-suffixed name typed as raw `f64`.
fn check_param(param: &[Tok], base: usize, out: &mut Vec<Finding>) {
    // Find the top-level `:` separating pattern from type.
    let mut angle = 0i32;
    let mut colon = None;
    for (i, t) in param.iter().enumerate() {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            ":" if angle == 0 && t.kind == TokKind::Punct => {
                colon = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(colon) = colon else { return };
    // Name: last ident before the colon (skips `mut`).
    let Some(name_idx) = (0..colon)
        .rev()
        .find(|&i| param[i].kind == TokKind::Ident && param[i].text != "mut")
    else {
        return;
    };
    let name = &param[name_idx].text;
    let Some((suffix, newtype)) = D4_SUFFIXES.iter().find(|(s, _)| name.ends_with(s)) else {
        return;
    };
    // Type: `f64` possibly behind `&`/`&mut`.
    let ty: Vec<&str> = param[colon + 1..]
        .iter()
        .filter(|t| !(t.kind == TokKind::Ident && t.text == "mut"))
        .map(|t| t.text.as_str())
        .collect();
    let is_raw_f64 = matches!(ty.as_slice(), ["f64"] | ["&", "f64"]);
    if is_raw_f64 {
        out.push(Finding {
            rule: RuleId::D4,
            tok: base + name_idx,
            span_toks: 1,
            message: format!(
                "public API takes `{name}: f64`; a `{suffix}` quantity must use \
                 `powadapt_sim::units::{newtype}`"
            ),
        });
    }
}

/// D5 — panics in library error paths.
///
/// Flags `.unwrap()`, `.expect(..)`, `panic!`, `unreachable!`, `todo!`,
/// and `unimplemented!` in `device`/`io`/`core` library code. Errors in
/// these crates must flow through `DeviceError` so fleet runs degrade
/// instead of dying; genuinely-infallible cases carry an inline allow
/// with the invariant spelled out.
pub fn d5_no_panic(toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                // Require a method call `.unwrap(` so an identifier named
                // `expect` in other positions doesn't trip the rule.
                if punct(toks, i.wrapping_sub(1)) == Some(".")
                    && punct(toks, i + 1) == Some("(")
                => {
                    out.push(Finding {
                        rule: RuleId::D5,
                        tok: i,
                        span_toks: 1,
                        message: format!(
                            "`.{}()` can panic in a library path; return `DeviceError` instead",
                            t.text
                        ),
                    });
                }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if punct(toks, i + 1) == Some("!") => {
                    out.push(Finding {
                        rule: RuleId::D5,
                        tok: i,
                        span_toks: 2,
                        message: format!(
                            "`{}!` aborts the whole fleet run; return `DeviceError` instead",
                            t.text
                        ),
                    });
                }
            _ => {}
        }
    }
    out
}

/// Runs every domain rule over one file's tokens.
pub fn run_all(toks: &[Tok]) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(d1_wall_clock(toks));
    findings.extend(d2_hash_collections(toks));
    findings.extend(d3_float_cmp(toks));
    findings.extend(d4_unit_newtypes(toks));
    findings.extend(d5_no_panic(toks));
    findings
}

/// Materializes a [`Finding`] into a [`Diagnostic`] with source spans.
pub fn to_diagnostic(f: &Finding, toks: &[Tok], path: &str, lines: &[&str]) -> Diagnostic {
    let anchor = &toks[f.tok];
    let last = &toks[(f.tok + f.span_toks - 1).min(toks.len() - 1)];
    let span_len = if last.line == anchor.line {
        (last.col + last.text.chars().count() as u32).saturating_sub(anchor.col)
    } else {
        anchor.text.chars().count() as u32
    };
    let snippet = lines
        .get(anchor.line as usize - 1)
        .map_or(String::new(), std::string::ToString::to_string);
    Diagnostic {
        rule: f.rule,
        path: path.to_string(),
        line: anchor.line,
        col: anchor.col,
        message: f.message.clone(),
        snippet,
        span_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_hit(src: &str, rule_fn: fn(&[Tok]) -> Vec<Finding>) -> Vec<String> {
        let lexed = lex(src);
        rule_fn(&lexed.tokens)
            .into_iter()
            .map(|f| f.message)
            .collect()
    }

    #[test]
    fn d1_catches_clock_and_entropy() {
        assert_eq!(rules_hit("let t = Instant::now();", d1_wall_clock).len(), 1);
        assert_eq!(
            rules_hit("let t = SystemTime::now();", d1_wall_clock).len(),
            1
        );
        assert_eq!(rules_hit("let x = rand::random();", d1_wall_clock).len(), 1);
        assert_eq!(
            rules_hit("let w = std::env::var(\"W\");", d1_wall_clock).len(),
            1
        );
        // `env` as an ordinary variable is fine.
        assert!(rules_hit("let env = 3; let v = env.var;", d1_wall_clock).is_empty());
        // Comments and strings never trip it.
        assert!(rules_hit("// Instant::now()\nlet s = \"SystemTime\";", d1_wall_clock).is_empty());
    }

    #[test]
    fn d2_catches_hash_collections() {
        let hits = rules_hit(
            "use std::collections::{HashMap, HashSet};",
            d2_hash_collections,
        );
        assert_eq!(hits.len(), 2);
        assert!(hits[0].contains("BTreeMap"));
        assert!(hits[1].contains("BTreeSet"));
        assert!(rules_hit(
            "let m: BTreeMap<u8, u8> = BTreeMap::new();",
            d2_hash_collections
        )
        .is_empty());
    }

    #[test]
    fn d3_catches_nan_unsafe_comparison() {
        assert_eq!(
            rules_hit("v.sort_by(|a, b| a.partial_cmp(b).unwrap());", d3_float_cmp).len(),
            1
        );
        assert_eq!(
            rules_hit("a.partial_cmp(&b.f(x, y)).expect(\"finite\")", d3_float_cmp).len(),
            1
        );
        assert_eq!(rules_hit("if x == 0.5 { }", d3_float_cmp).len(), 1);
        assert_eq!(rules_hit("if 1.0 != y { }", d3_float_cmp).len(), 1);
        // total_cmp and plain partial_cmp (no unwrap) are fine.
        assert!(rules_hit("v.sort_by(f64::total_cmp);", d3_float_cmp).is_empty());
        assert!(rules_hit("let o = a.partial_cmp(&b);", d3_float_cmp).is_empty());
        // Integer equality is fine.
        assert!(rules_hit("if n == 3 { }", d3_float_cmp).is_empty());
    }

    #[test]
    fn d4_catches_unit_suffixed_f64_params() {
        let hits = rules_hit(
            "pub fn sample(&mut self, t: SimTime, true_power_watts: f64) {}",
            d4_unit_newtypes,
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].contains("Watts"));
        assert_eq!(
            rules_hit("pub fn lat(p99_us: f64, avg_ms: &f64) {}", d4_unit_newtypes).len(),
            2
        );
        // Newtyped params, private fns, and non-unit names pass.
        assert!(rules_hit("pub fn f(p99_us: Micros) {}", d4_unit_newtypes).is_empty());
        assert!(rules_hit("fn g(p99_us: f64) {}", d4_unit_newtypes).is_empty());
        assert!(rules_hit("pub fn h(ratio: f64) {}", d4_unit_newtypes).is_empty());
        // Generic functions parse past their `<...>`.
        assert_eq!(
            rules_hit(
                "pub fn s<F: Fn(u64, u64) -> bool>(f: F, delay_ms: f64) {}",
                d4_unit_newtypes
            )
            .len(),
            1
        );
    }

    #[test]
    fn d5_catches_panics() {
        assert_eq!(
            rules_hit("let x = m.lock().unwrap();", d5_no_panic).len(),
            1
        );
        assert_eq!(
            rules_hit("let x = o.expect(\"set\");", d5_no_panic).len(),
            1
        );
        assert_eq!(rules_hit("panic!(\"boom\");", d5_no_panic).len(), 1);
        assert_eq!(rules_hit("unreachable!()", d5_no_panic).len(), 1);
        // `expect` as a field/fn name without a call is fine; `unwrap_or` is fine.
        assert!(rules_hit("let expect = 3;", d5_no_panic).is_empty());
        assert!(rules_hit("let x = o.unwrap_or(0);", d5_no_panic).is_empty());
    }
}
