//! Pass 1: the workspace symbol model.
//!
//! The cross-file rules (D6-D9) need to know *what the code declares*,
//! not just which tokens appear: which structs exist and what fields
//! they carry, which impl blocks provide `write_state`/`read_state`,
//! where every `fn` body starts and ends, which `emit!`/`span!` calls
//! sit inside which function, and what the obs kind registry contains.
//!
//! This module extracts exactly that from the existing lexer's token
//! stream — still no `syn`, because the workspace builds fully offline.
//! The extraction is a set of small linear scans with bracket matching;
//! the subset of Rust it understands (structs with named fields, impl
//! blocks, fn items, enum variants, `const NAMES` tables, typed `let`
//! bindings) is exactly the subset the semantic rules consume. Anything
//! outside that subset degrades to "unknown" rather than a wrong answer:
//! the rules skip what they cannot resolve.

use crate::lexer::{Tok, TokKind};

/// One named field of a struct.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// The field's type, as raw token texts (generics included).
    pub ty: Vec<String>,
    /// 1-based line of the field name.
    pub line: u32,
    /// 1-based column of the field name.
    pub col: u32,
}

/// A struct declaration.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Index into the analyzed file list.
    pub file: usize,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Named fields; empty for tuple and unit structs.
    pub fields: Vec<FieldDef>,
    /// True for tuple structs (fields unnamed, so D6 cannot audit them
    /// by name; the unit newtypes are the intended members of this
    /// class).
    pub tuple: bool,
}

/// A function item (free, trait-decl, or inside an impl block).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Index into the analyzed file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_tok: usize,
    /// Token range of the body: `(open_brace, close_brace)` inclusive.
    /// `None` for body-less declarations (`fn f(...);`).
    pub body: Option<(usize, usize)>,
    /// Parameters as `(name, type tokens)`; `self` receivers excluded.
    pub params: Vec<(String, Vec<String>)>,
    /// Explicitly-typed `let` bindings in the body, as `(name, type)`.
    pub locals: Vec<(String, Vec<String>)>,
    /// Type name of the enclosing `impl` block, when inside one.
    pub owner: Option<String>,
    /// Set from `// powadapt-lint: hot` marks after extraction.
    pub hot: bool,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// Trait name for `impl Trait for Type`, `None` for inherent impls.
    pub trait_name: Option<String>,
    /// The implemented type's name (generics stripped).
    pub type_name: String,
    /// Index into the analyzed file list.
    pub file: usize,
    /// Token range of the impl body, inclusive braces.
    pub body: (usize, usize),
}

/// One `emit!(...)` or `span!(...)` invocation.
#[derive(Debug, Clone)]
pub struct MacroSite {
    /// `emit` or `span`.
    pub name: String,
    /// Index into the analyzed file list.
    pub file: usize,
    /// Token index of the macro name.
    pub tok: usize,
    /// 1-based line/col of the macro name.
    pub line: u32,
    /// 1-based column of the macro name.
    pub col: u32,
    /// Top-level argument token ranges (inclusive), split on commas.
    pub args: Vec<(usize, usize)>,
    /// Token index of the closing paren; `None` when the invocation is
    /// not closed before the end of the file (lexically unbalanced).
    pub close: Option<usize>,
    /// Index into [`Model::fns`] of the innermost enclosing fn.
    pub enclosing_fn: Option<usize>,
}

/// An enum declaration (the obs kind registry's `EventKind` is the one
/// D8 consumes; all enums are modeled so fixtures can declare their
/// own).
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// Index into the analyzed file list.
    pub file: usize,
    /// 1-based line of the name token.
    pub line: u32,
    /// Variants as `(name, line, col)`.
    pub variants: Vec<(String, u32, u32)>,
}

/// A `const NAMES: ... = [ "..." ... ]` table (the string half of the
/// obs kind registry).
#[derive(Debug, Clone)]
pub struct NamesTable {
    /// Index into the analyzed file list.
    pub file: usize,
    /// 1-based line of the `NAMES` token.
    pub line: u32,
    /// Entries as `(string value, line, col)`.
    pub entries: Vec<(String, u32, u32)>,
}

/// The merged workspace symbol model.
#[derive(Debug, Default)]
pub struct Model {
    /// Every struct declaration.
    pub structs: Vec<StructDef>,
    /// Every impl block.
    pub impls: Vec<ImplDef>,
    /// Every fn item.
    pub fns: Vec<FnDef>,
    /// Every `emit!`/`span!` invocation.
    pub macros: Vec<MacroSite>,
    /// Every enum declaration.
    pub enums: Vec<EnumDef>,
    /// Every `const NAMES` table.
    pub names_tables: Vec<NamesTable>,
}

impl Model {
    /// Builds the model over every file's token stream. `files[i]` is
    /// the token slice of file `i`; indices in the model refer back into
    /// this list.
    pub fn build(files: &[&[Tok]]) -> Model {
        let mut m = Model::default();
        for (idx, toks) in files.iter().enumerate() {
            extract_structs(toks, idx, &mut m.structs);
            extract_impls(toks, idx, &mut m.impls);
            extract_fns(toks, idx, &mut m.fns);
            extract_enums(toks, idx, &mut m.enums);
            extract_names_tables(toks, idx, &mut m.names_tables);
        }
        // Attach fns to their innermost enclosing impl block.
        for f in &mut m.fns {
            let mut best: Option<&ImplDef> = None;
            for im in m.impls.iter().filter(|im| im.file == f.file) {
                if im.body.0 < f.sig_tok && f.sig_tok < im.body.1 {
                    let better = best.is_none_or(|b| im.body.0 > b.body.0);
                    if better {
                        best = Some(im);
                    }
                }
            }
            f.owner = best.map(|im| im.type_name.clone());
        }
        // Macro sites need fn spans, so they come after the fn pass.
        for (idx, toks) in files.iter().enumerate() {
            extract_macros(toks, idx, &m.fns, &mut m.macros);
        }
        m
    }

    /// The innermost fn in `file` whose declaration sits on `line`
    /// (targeted by a `hot` mark).
    pub fn fn_on_line(&self, file: usize, line: u32) -> Option<usize> {
        self.fns
            .iter()
            .position(|f| f.file == file && f.line == line)
    }

    /// Fns named `write_state`/`read_state` provided by any impl of
    /// `type_name` in `file`'s crate (`crate_key` groups files; see
    /// [`crate::scope`]). Returns indices into [`Model::fns`].
    pub fn snapshot_fns(
        &self,
        type_name: &str,
        crate_key: &str,
        file_crates: &[String],
    ) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                (f.name == "write_state" || f.name == "read_state")
                    && f.owner.as_deref() == Some(type_name)
                    && file_crates[f.file] == crate_key
            })
            .map(|(i, _)| i)
            .collect()
    }
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn punct_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Punct)
        .map(|t| t.text.as_str())
}

/// Skips a matched `<...>` starting at `i` (which must point at `<`);
/// returns the index just past the closing `>`.
fn skip_generics(toks: &[Tok], i: usize) -> usize {
    if punct_at(toks, i) != Some("<") {
        return i;
    }
    let mut depth = 1i32;
    let mut j = i + 1;
    while j < toks.len() && depth > 0 {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skips a matched bracket group starting at `i` (pointing at `(`/`[`/
/// `{`); returns the index of the matching closer.
fn match_bracket(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

fn extract_structs(toks: &[Tok], file: usize, out: &mut Vec<StructDef>) {
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) != Some("struct") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(toks, i + 1) else {
            i += 1;
            continue;
        };
        let name_tok = &toks[i + 1];
        let mut j = skip_generics(toks, i + 2);
        // Scan past an optional `where` clause to the body opener. The
        // clause can contain `Fn(..)` parens, so a `(` only means
        // "tuple struct" when no `where` has been seen.
        let mut saw_where = false;
        let mut def: Option<StructDef> = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "where" if toks[j].kind == TokKind::Ident => saw_where = true,
                "{" => {
                    let close = match_bracket(toks, j);
                    def = Some(StructDef {
                        name: name.to_string(),
                        file,
                        line: name_tok.line,
                        col: name_tok.col,
                        fields: parse_fields(&toks[j + 1..close]),
                        tuple: false,
                    });
                    j = close;
                    break;
                }
                "(" if !saw_where => {
                    j = match_bracket(toks, j);
                    def = Some(StructDef {
                        name: name.to_string(),
                        file,
                        line: name_tok.line,
                        col: name_tok.col,
                        fields: Vec::new(),
                        tuple: true,
                    });
                    break;
                }
                ";" => {
                    def = Some(StructDef {
                        name: name.to_string(),
                        file,
                        line: name_tok.line,
                        col: name_tok.col,
                        fields: Vec::new(),
                        tuple: false,
                    });
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(d) = def {
            out.push(d);
        }
        i = j.max(i + 1);
    }
}

/// Parses the named fields between a struct body's braces (exclusive).
fn parse_fields(body: &[Tok]) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        // Skip attributes on the field.
        if punct_at(body, i) == Some("#") && punct_at(body, i + 1) == Some("[") {
            i = match_bracket(body, i + 1) + 1;
            continue;
        }
        // Skip visibility.
        if ident_at(body, i) == Some("pub") {
            i += 1;
            if punct_at(body, i) == Some("(") {
                i = match_bracket(body, i) + 1;
            }
            continue;
        }
        let Some(name) = ident_at(body, i) else {
            i += 1;
            continue;
        };
        if punct_at(body, i + 1) != Some(":") {
            i += 1;
            continue;
        }
        let name_tok = &body[i];
        // Type runs to the next top-level comma.
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut j = i + 2;
        let mut ty = Vec::new();
        while j < body.len() {
            let t = &body[j];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                "," if depth == 0 && angle <= 0 => break,
                _ => {}
            }
            ty.push(t.text.clone());
            j += 1;
        }
        fields.push(FieldDef {
            name: name.to_string(),
            ty,
            line: name_tok.line,
            col: name_tok.col,
        });
        i = j + 1;
    }
    fields
}

/// The last path segment of a type/trait path (`powadapt_snap ::
/// Snapshot` -> `Snapshot`; generics stripped).
fn last_segment(path: &[&Tok]) -> Option<String> {
    path.iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

fn extract_impls(toks: &[Tok], file: usize, out: &mut Vec<ImplDef>) {
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) != Some("impl") {
            i += 1;
            continue;
        }
        let mut j = skip_generics(toks, i + 1);
        // First path: up to `for`, `where`, or `{`.
        let mut first: Vec<&Tok> = Vec::new();
        let mut second: Vec<&Tok> = Vec::new();
        let mut in_second = false;
        let mut angle = 0i32;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j];
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "for" if t.kind == TokKind::Ident && angle <= 0 => {
                    in_second = true;
                    j += 1;
                    continue;
                }
                "where" if t.kind == TokKind::Ident && angle <= 0 => {
                    // Bounds don't affect the names; skip to the body.
                    while j < toks.len() && toks[j].text != "{" {
                        j += 1;
                    }
                    continue;
                }
                "{" => {
                    open = Some(j);
                    break;
                }
                _ => {}
            }
            if angle <= 0 && t.text != ">" {
                if in_second {
                    second.push(t);
                } else {
                    first.push(t);
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let close = match_bracket(toks, open);
        let (trait_name, type_name) = if in_second {
            (last_segment(&first), last_segment(&second))
        } else {
            (None, last_segment(&first))
        };
        if let Some(type_name) = type_name {
            out.push(ImplDef {
                trait_name,
                type_name,
                file,
                body: (open, close),
            });
        }
        i = open + 1;
    }
}

fn extract_fns(toks: &[Tok], file: usize, out: &mut Vec<FnDef>) {
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) != Some("fn") {
            i += 1;
            continue;
        }
        // `fn` in a fn-pointer type has no name after it.
        let Some(name) = ident_at(toks, i + 1) else {
            i += 1;
            continue;
        };
        let mut j = skip_generics(toks, i + 2);
        if punct_at(toks, j) != Some("(") {
            i += 1;
            continue;
        }
        let params_close = match_bracket(toks, j);
        let params = parse_params(&toks[j + 1..params_close]);
        // Return type / where clause run to the body or `;`.
        j = params_close + 1;
        let mut body = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => {
                    body = Some((j, match_bracket(toks, j)));
                    break;
                }
                ";" => break,
                // `-> impl Fn(..)` and friends: skip bracket groups so
                // a paren in the return type can't be mistaken for a
                // body.
                "(" | "[" => j = match_bracket(toks, j),
                _ => {}
            }
            j += 1;
        }
        let locals = body.map_or_else(Vec::new, |(a, b)| parse_locals(&toks[a..=b]));
        out.push(FnDef {
            name: name.to_string(),
            file,
            line: toks[i].line,
            sig_tok: i,
            body,
            params,
            locals,
            owner: None,
            hot: false,
        });
        // Continue *inside* the body too: nested fns are modeled.
        i = match body {
            Some((open, _)) => open + 1,
            None => j.max(i + 1),
        };
    }
}

/// Parses a parameter list's tokens into `(name, type)` pairs; `self`
/// receivers are skipped.
fn parse_params(param_toks: &[Tok]) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0usize;
    let mut i = 0usize;
    loop {
        let at_end = i >= param_toks.len();
        let splits = at_end
            || (param_toks[i].text == ","
                && param_toks[i].kind == TokKind::Punct
                && depth == 0
                && angle <= 0);
        if splits {
            let p = &param_toks[start..i.min(param_toks.len())];
            if let Some(pair) = parse_one_param(p) {
                out.push(pair);
            }
            if at_end {
                break;
            }
            start = i + 1;
        } else {
            match param_toks[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
        }
        i += 1;
    }
    out
}

fn parse_one_param(p: &[Tok]) -> Option<(String, Vec<String>)> {
    let mut angle = 0i32;
    let mut colon = None;
    for (i, t) in p.iter().enumerate() {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            ":" if angle <= 0 && t.kind == TokKind::Punct => {
                colon = Some(i);
                break;
            }
            _ => {}
        }
    }
    let colon = colon?;
    let name = p[..colon]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut")?;
    if name.text == "self" {
        return None;
    }
    let ty = p[colon + 1..].iter().map(|t| t.text.clone()).collect();
    Some((name.text.clone(), ty))
}

/// Finds explicitly-typed `let` bindings (`let [mut] x: Ty = ...`) in a
/// body's tokens.
fn parse_locals(body: &[Tok]) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        if ident_at(body, i) != Some("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if ident_at(body, j) == Some("mut") {
            j += 1;
        }
        let Some(name) = ident_at(body, j) else {
            i += 1;
            continue;
        };
        if punct_at(body, j + 1) != Some(":") {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut k = j + 2;
        let mut ty = Vec::new();
        while k < body.len() {
            let t = &body[k];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                "=" | ";" if depth == 0 && angle <= 0 => break,
                _ => {}
            }
            ty.push(t.text.clone());
            k += 1;
        }
        out.push((name.to_string(), ty));
        i = k;
    }
    out
}

fn extract_enums(toks: &[Tok], file: usize, out: &mut Vec<EnumDef>) {
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) != Some("enum") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(toks, i + 1) else {
            i += 1;
            continue;
        };
        let name_tok = &toks[i + 1];
        let mut j = skip_generics(toks, i + 2);
        while j < toks.len() && toks[j].text != "{" {
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let close = match_bracket(toks, j);
        let body = &toks[j + 1..close];
        let mut variants = Vec::new();
        let mut k = 0usize;
        while k < body.len() {
            // Skip attributes and any variant payload.
            if punct_at(body, k) == Some("#") && punct_at(body, k + 1) == Some("[") {
                k = match_bracket(body, k + 1) + 1;
                continue;
            }
            let Some(v) = ident_at(body, k) else {
                k += 1;
                continue;
            };
            variants.push((v.to_string(), body[k].line, body[k].col));
            k += 1;
            // Payload (`(..)`/`{..}`) or discriminant (`= n`).
            match body.get(k).map(|t| t.text.as_str()) {
                Some("(") | Some("{") => k = match_bracket(body, k) + 1,
                Some("=") => {
                    while k < body.len() && body[k].text != "," {
                        k += 1;
                    }
                }
                _ => {}
            }
            // Trailing comma.
            if punct_at(body, k) == Some(",") {
                k += 1;
            }
        }
        out.push(EnumDef {
            name: name.to_string(),
            file,
            line: name_tok.line,
            variants,
        });
        i = close + 1;
    }
}

fn extract_names_tables(toks: &[Tok], file: usize, out: &mut Vec<NamesTable>) {
    let mut i = 0usize;
    while i < toks.len() {
        if !(ident_at(toks, i) == Some("const") && ident_at(toks, i + 1) == Some("NAMES")) {
            i += 1;
            continue;
        }
        let line = toks[i + 1].line;
        // Skip the type annotation (`: [&str; N]` — its `;` would end the
        // scan early) to the initializer.
        let mut j = i + 2;
        while j < toks.len() && toks[j].text != "=" {
            j += 1;
        }
        let mut entries = Vec::new();
        while j < toks.len() && toks[j].text != ";" {
            let t = &toks[j];
            if t.kind == TokKind::Literal && t.text.starts_with('"') {
                let value = t.text.trim_matches('"').to_string();
                entries.push((value, t.line, t.col));
            }
            j += 1;
        }
        out.push(NamesTable {
            file,
            line,
            entries,
        });
        i = j;
    }
}

fn extract_macros(toks: &[Tok], file: usize, fns: &[FnDef], out: &mut Vec<MacroSite>) {
    let mut i = 0usize;
    while i < toks.len() {
        let is_site = toks[i].kind == TokKind::Ident
            && (toks[i].text == "emit" || toks[i].text == "span")
            && punct_at(toks, i + 1) == Some("!")
            && punct_at(toks, i + 2) == Some("(");
        if !is_site {
            i += 1;
            continue;
        }
        // Macro *definitions* (`macro_rules! emit`) don't match: the
        // name there follows `macro_rules !`, so `emit` is not directly
        // followed by `!` `(` — but the expansion arms inside a
        // definition could. Skip sites inside a macro_rules body by
        // checking the nearest preceding `macro_rules` ident at lower
        // brace depth... cheaper: skip when `$` appears immediately
        // inside the args (expansion arms interpolate `$rec`).
        let open = i + 2;
        let close_idx = {
            let c = match_bracket(toks, open);
            if c > open && toks[c].text == ")" {
                Some(c)
            } else {
                None
            }
        };
        let mut args = Vec::new();
        if let Some(close) = close_idx {
            let mut depth = 0i32;
            let mut start = open + 1;
            for (j, tok) in toks.iter().enumerate().take(close).skip(open + 1) {
                match tok.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => {
                        args.push((start, j.saturating_sub(1)));
                        start = j + 1;
                    }
                    _ => {}
                }
            }
            if start < close {
                args.push((start, close - 1));
            }
        }
        let dollar_args = args
            .iter()
            .any(|&(a, b)| toks[a..=b].iter().any(|t| t.text == "$"));
        if dollar_args {
            i = open + 1;
            continue;
        }
        let enclosing_fn = fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.body.is_some_and(|(a, b)| a < i && i < b))
            .max_by_key(|(_, f)| f.body.map(|(a, _)| a))
            .map(|(idx, _)| idx);
        out.push(MacroSite {
            name: toks[i].text.clone(),
            file,
            tok: i,
            line: toks[i].line,
            col: toks[i].col,
            args,
            close: close_idx,
            enclosing_fn,
        });
        i = open + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model_of(src: &str) -> (Model, Vec<Tok>) {
        let lexed = lex(src);
        let toks = lexed.tokens;
        let m = Model::build(&[&toks[..]]);
        (m, toks)
    }

    #[test]
    fn structs_fields_and_types() {
        let (m, _) = model_of(
            "pub struct Meter {\n    #[doc(hidden)]\n    pub watts: Watts,\n    samples: Vec<(SimTime, f64)>,\n}\nstruct Marker;\nstruct Pair(u8, u8);\n",
        );
        assert_eq!(m.structs.len(), 3);
        let meter = &m.structs[0];
        assert_eq!(meter.name, "Meter");
        let names: Vec<_> = meter.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["watts", "samples"]);
        assert_eq!(meter.fields[0].ty, ["Watts"]);
        assert!(meter.fields[1].ty.contains(&"Vec".to_string()));
        assert!(m.structs[2].tuple);
    }

    #[test]
    fn impls_resolve_trait_and_type() {
        let (m, _) = model_of(
            "impl powadapt_snap::Snapshot for EventLog { fn write_state(&self) {} }\n\
             impl<E: Clone> EventQueue<E> { fn read_state(&mut self) {} }\n\
             impl Device for Ssd where Ssd: Sized { fn tick(&self) {} }\n",
        );
        assert_eq!(m.impls.len(), 3);
        assert_eq!(m.impls[0].trait_name.as_deref(), Some("Snapshot"));
        assert_eq!(m.impls[0].type_name, "EventLog");
        assert_eq!(m.impls[1].trait_name, None);
        assert_eq!(m.impls[1].type_name, "EventQueue");
        assert_eq!(m.impls[2].trait_name.as_deref(), Some("Device"));
        assert_eq!(m.impls[2].type_name, "Ssd");
        // Fn -> impl attachment.
        assert_eq!(m.fns[0].owner.as_deref(), Some("EventLog"));
        assert_eq!(m.fns[1].owner.as_deref(), Some("EventQueue"));
        let crates = vec![String::new()];
        assert_eq!(m.snapshot_fns("EventLog", "", &crates).len(), 1);
        assert_eq!(m.snapshot_fns("EventQueue", "", &crates).len(), 1);
        assert!(m.snapshot_fns("Ssd", "", &crates).is_empty());
    }

    #[test]
    fn fns_params_locals_and_bodies() {
        let (m, toks) = model_of(
            "fn free(a: Watts, mut b: &mut Joules) -> f64 {\n    let mut acc: Joules = Joules::new(0.0);\n    acc.get()\n}\nfn sig_only(x: u8);\n",
        );
        assert_eq!(m.fns.len(), 2);
        let f = &m.fns[0];
        assert_eq!(f.name, "free");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0], ("a".to_string(), vec!["Watts".to_string()]));
        assert_eq!(f.params[1].0, "b");
        assert_eq!(f.locals.len(), 1);
        assert_eq!(f.locals[0].0, "acc");
        assert_eq!(f.locals[0].1, ["Joules"]);
        let (open, close) = f.body.unwrap();
        assert_eq!(toks[open].text, "{");
        assert_eq!(toks[close].text, "}");
        assert!(m.fns[1].body.is_none());
    }

    #[test]
    fn enums_and_names_tables() {
        let (m, _) = model_of(
            "pub enum EventKind {\n    IoStart,\n    IoDone(u32),\n    #[doc(hidden)]\n    ModeSwitch { from: u8 },\n}\nimpl EventKind {\n    pub const NAMES: [&'static str; 3] = [\"io_start\", \"io_done\", \"mode_switch\"];\n}\n",
        );
        assert_eq!(m.enums.len(), 1);
        let vs: Vec<_> = m.enums[0].variants.iter().map(|v| v.0.as_str()).collect();
        assert_eq!(vs, ["IoStart", "IoDone", "ModeSwitch"]);
        assert_eq!(m.names_tables.len(), 1);
        let ns: Vec<_> = m.names_tables[0]
            .entries
            .iter()
            .map(|e| e.0.as_str())
            .collect();
        assert_eq!(ns, ["io_start", "io_done", "mode_switch"]);
    }

    #[test]
    fn macro_sites_and_enclosing_fn() {
        let (m, _) = model_of(
            "fn tick(&mut self) {\n    emit!(self.rec, t, track, EventKind::IoStart);\n    span!(self.rec, t0, track, \"svc\", dur);\n}\n",
        );
        assert_eq!(m.macros.len(), 2);
        assert_eq!(m.macros[0].name, "emit");
        assert_eq!(m.macros[0].args.len(), 4);
        assert_eq!(m.macros[1].name, "span");
        assert_eq!(m.macros[1].args.len(), 5);
        assert_eq!(m.macros[0].enclosing_fn, Some(0));
        assert!(m.macros[0].close.is_some());
    }

    #[test]
    fn macro_definition_arms_are_skipped() {
        let (m, _) = model_of(
            "macro_rules! emit {\n    ($rec:expr, $at:expr) => {\n        if $rec.is_enabled() { emit!($rec, $at) }\n    };\n}\n",
        );
        assert!(m.macros.is_empty());
    }
}
