//! Where each rule applies: path-level scoping and test-region detection.
//!
//! The rules are invariants about *shipped* simulation/measurement code,
//! so three kinds of source are exempt:
//!
//! - integration tests (`tests/` directories) and examples — never in a
//!   figure's data path,
//! - inline `#[cfg(test)]` modules and `#[test]` functions,
//! - an explicit per-file allowlist for the places whose whole job is the
//!   thing a rule forbids (the parallel executor owns the host clock).

use crate::diag::RuleId;
use crate::lexer::{Lexed, Tok, TokKind};

/// Files exempt from specific rules, with the reason recorded here so the
/// allowlist is reviewable in one place.
///
/// Keep this list short: inline `// powadapt-lint: allow(...)` is the
/// preferred mechanism because it sits next to the code it excuses. A
/// file-level entry is only for files whose *purpose* is the exemption.
pub const FILE_ALLOWLIST: &[(&str, RuleId, &str)] = &[
    (
        // The executor is the one component whose job is wall-clock timing
        // (progress reporting, speedup measurement) and host configuration
        // (POWADAPT_WORKERS/POWADAPT_CHUNK). Nothing it derives from the
        // clock or environment feeds figure data — PR 2's golden fixtures
        // prove results are bit-identical across worker counts.
        "crates/io/src/parallel.rs",
        RuleId::D1,
        "parallel executor owns host timing and worker-count configuration",
    ),
    (
        // The kernel throughput bench exists to measure wall-clock time:
        // it times both event-queue kernels on one deterministic op
        // stream and reports events/sec. Nothing clock-derived feeds
        // figure data — BENCH_kernel.json is gated on the speedup ratio,
        // and the op stream itself is SimRng-seeded.
        "crates/bench/src/bin/kernel_bench.rs",
        RuleId::D1,
        "kernel bench's purpose is wall-clock throughput measurement",
    ),
    (
        // The observability overhead bench times the same deterministic
        // workload untraced vs. traced and gates on the wall-clock ratio.
        // Host time is the measurand, never an input: the workload is
        // SimRng-seeded and BENCH_obs.json is gated on the overhead
        // ratio, not on any absolute timing.
        "crates/bench/src/bin/obs_bench.rs",
        RuleId::D1,
        "obs bench's purpose is wall-clock overhead measurement",
    ),
];

/// Path predicates for one rule.
fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Is this file library/binary source (as opposed to tests or examples)?
fn is_shipped_source(path: &str) -> bool {
    !path.contains("/tests/")
        && !path.starts_with("tests/")
        && !path.contains("/examples/")
        && !path.starts_with("examples/")
        && !path.contains("/benches/")
}

/// Does `rule` apply to the file at `path` (workspace-relative, `/`
/// separated)? Test regions inside the file are handled separately by
/// [`TestRegions`].
pub fn rule_applies(rule: RuleId, path: &str) -> bool {
    if !is_shipped_source(path) {
        return false;
    }
    if FILE_ALLOWLIST
        .iter()
        .any(|(p, r, _)| *p == path && *r == rule)
    {
        return false;
    }
    let in_crates = |names: &[&str]| crate_of(path).is_some_and(|c| names.contains(&c));
    match rule {
        // Determinism is workspace-wide: any crate can end up in a
        // figure's data path.
        RuleId::D1 => true,
        // Result-producing crates per the issue: sim/device/core/model/
        // bench (io's maps never reach output, but its stats do — close
        // the gap by including io's stat modules). obs snapshots and
        // exports feed committed fixtures, so its iteration order must be
        // deterministic too, and cluster reports feed the cluster_eval
        // golden. snap serializes checkpoint state whose byte layout the
        // resume-equivalence goldens pin, so its encoding must be
        // deterministic as well. place decides routing and migration
        // plans that feed the placement_eval golden.
        RuleId::D2 => {
            in_crates(&[
                "sim", "device", "core", "model", "bench", "obs", "cluster", "snap", "place",
            ]) || path == "crates/io/src/stats.rs"
        }
        // Figure/statistics code: everything that orders, ranks, or
        // aggregates floats on the way to a figure.
        RuleId::D3 => {
            in_crates(&["model", "bench"])
                || matches!(
                    path,
                    "crates/sim/src/stats.rs"
                        | "crates/sim/src/rolling.rs"
                        | "crates/io/src/stats.rs"
                )
        }
        // Unit safety on public APIs of the measurement/model/control
        // crates.
        RuleId::D4 => in_crates(&["meter", "model", "core"]),
        // Error flow in the crates that own DeviceError and its
        // propagation (the cluster layer propagates it through
        // ClusterError). snap is fail-closed by contract: corrupt
        // checkpoints must surface as typed SnapErrors, never panics.
        // place's capacity accounting fails closed the same way.
        RuleId::D5 => in_crates(&["device", "io", "core", "cluster", "snap", "place"]),
        // Snapshot completeness covers every crate whose state rides in a
        // checkpoint: the sim kernel, devices, controllers, workloads,
        // obs, the cluster layer, the placement tier, and snap's own
        // codec machinery.
        RuleId::D6 => in_crates(&[
            "sim", "device", "core", "io", "obs", "cluster", "snap", "place",
        ]),
        // Unit-dimension flow: every crate that does arithmetic on the
        // Watts/Joules/Millis/Micros newtypes.
        RuleId::D7 => in_crates(&[
            "sim", "device", "io", "meter", "model", "core", "cluster", "place",
        ]),
        // Obs discipline: the registry lives in obs; emit!/span! call
        // sites live in every crate that records events.
        RuleId::D8 => in_crates(&["obs", "device", "io", "core", "cluster", "sim", "place"]),
        // Hot-path allocation is opt-in via the `hot` directive, so the
        // path scope is the whole workspace — the annotation itself is
        // the perimeter.
        RuleId::D9 => true,
        // Suppression hygiene follows the file, not a crate list.
        RuleId::S0 | RuleId::S1 => true,
    }
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items or `#[test]`
/// functions; rules skip findings inside them.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(u32, u32)>,
}

impl TestRegions {
    /// Is `line` inside a test-only region?
    pub fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// Does an attribute token slice (the tokens between `#[` and `]`) gate
/// its item to test builds? Recognizes `test`, `cfg(test)`, and
/// `cfg(any(test, ...))`; `cfg(not(test))` is the opposite and is not
/// treated as test-gating.
fn attr_is_test_gate(attr: &[Tok]) -> bool {
    let has_test = attr
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "test");
    let has_not = attr
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "not");
    has_test && !has_not
}

/// Finds the test regions of a lexed file.
///
/// For every `#[test]`/`#[cfg(test)]` attribute, the region extends from
/// the attribute to the end of the annotated item: the matching `}` of
/// the item's first brace block, or the terminating `;` for brace-less
/// items (`#[cfg(test)] use ...;`).
pub fn find_test_regions(lexed: &Lexed) -> TestRegions {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        // `#[ ... ]` — collect the attribute's tokens.
        let Some(open) = toks.get(i + 1) else { break };
        if !(open.kind == TokKind::Punct && open.text == "[") {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut depth = 1i32;
        let mut j = i + 2;
        let attr_start = j;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let attr = &toks[attr_start..j.saturating_sub(1)];
        if !attr_is_test_gate(attr) {
            i = j;
            continue;
        }
        // Walk forward to the item body: first `{` starts a brace block
        // to match; a `;` at brace depth 0 first means a brace-less item.
        let mut k = j;
        let mut end_line = start_line;
        let mut brace_depth = 0i32;
        let mut entered = false;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => {
                    brace_depth += 1;
                    entered = true;
                }
                "}" => {
                    brace_depth -= 1;
                    if entered && brace_depth == 0 {
                        end_line = toks[k].line;
                        k += 1;
                        break;
                    }
                }
                ";" if !entered && brace_depth == 0 => {
                    end_line = toks[k].line;
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if k >= toks.len() {
            end_line = toks.last().map_or(start_line, |t| t.line);
        }
        regions.push((start_line, end_line));
        i = k;
    }
    TestRegions { ranges: regions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src =
            "fn shipped() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn also_shipped() {}\n";
        let regions = find_test_regions(&lex(src));
        assert!(!regions.contains(1));
        assert!(regions.contains(2));
        assert!(regions.contains(4));
        assert!(regions.contains(5));
        assert!(!regions.contains(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let src = "#[cfg(not(test))]\nfn shipped() {}\n";
        let regions = find_test_regions(&lex(src));
        assert!(!regions.contains(2));
    }

    #[test]
    fn braceless_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nfn shipped() {}\n";
        let regions = find_test_regions(&lex(src));
        assert!(regions.contains(2));
        assert!(!regions.contains(3));
    }

    #[test]
    fn scoping_by_path() {
        assert!(rule_applies(RuleId::D2, "crates/device/src/ssd/mod.rs"));
        assert!(rule_applies(RuleId::D2, "crates/obs/src/metrics.rs"));
        assert!(rule_applies(RuleId::D1, "crates/obs/src/recorder.rs"));
        assert!(!rule_applies(RuleId::D2, "crates/io/src/parallel.rs"));
        assert!(!rule_applies(RuleId::D1, "crates/io/src/parallel.rs"));
        assert!(rule_applies(RuleId::D1, "crates/io/src/fleet.rs"));
        assert!(!rule_applies(
            RuleId::D5,
            "crates/device/tests/properties.rs"
        ));
        assert!(rule_applies(RuleId::D4, "crates/meter/src/rig.rs"));
        assert!(!rule_applies(RuleId::D4, "crates/device/src/device.rs"));
        assert!(rule_applies(RuleId::D1, "crates/cluster/src/sim.rs"));
        assert!(rule_applies(RuleId::D2, "crates/cluster/src/tree.rs"));
        assert!(rule_applies(RuleId::D5, "crates/cluster/src/sim.rs"));
        assert!(!rule_applies(RuleId::D4, "crates/cluster/src/tree.rs"));
        assert!(!rule_applies(
            RuleId::D5,
            "crates/cluster/tests/oversubscription.rs"
        ));
        assert!(rule_applies(RuleId::D1, "crates/snap/src/lib.rs"));
        assert!(rule_applies(RuleId::D2, "crates/snap/src/lib.rs"));
        assert!(rule_applies(RuleId::D5, "crates/snap/src/lib.rs"));
        assert!(!rule_applies(RuleId::D4, "crates/snap/src/lib.rs"));
        assert!(!rule_applies(RuleId::D5, "crates/snap/tests/properties.rs"));
        // The sim-kernel overhaul modules sit squarely inside the
        // perimeter: the calendar queue and slab arena order every event
        // in every figure's data path, and the kernel bench produces the
        // committed BENCH_kernel.json.
        assert!(rule_applies(RuleId::D1, "crates/sim/src/queue.rs"));
        assert!(rule_applies(RuleId::D2, "crates/sim/src/queue.rs"));
        assert!(rule_applies(RuleId::D1, "crates/sim/src/slab.rs"));
        assert!(rule_applies(RuleId::D2, "crates/sim/src/slab.rs"));
        assert!(rule_applies(
            RuleId::D2,
            "crates/bench/src/bin/kernel_bench.rs"
        ));
        // ... except D1: the kernel bench's purpose is wall-clock timing,
        // so it carries an allowlist entry like the parallel executor.
        assert!(!rule_applies(
            RuleId::D1,
            "crates/bench/src/bin/kernel_bench.rs"
        ));
        // The placement tier's routing and migration plans feed the
        // placement_eval golden, so it sits inside the perimeter.
        assert!(rule_applies(RuleId::D1, "crates/place/src/tier.rs"));
        assert!(rule_applies(RuleId::D2, "crates/place/src/tier.rs"));
        assert!(rule_applies(RuleId::D5, "crates/place/src/tier.rs"));
        assert!(!rule_applies(RuleId::D4, "crates/place/src/tier.rs"));
        assert!(!rule_applies(
            RuleId::D2,
            "crates/place/tests/properties.rs"
        ));
        // The differential harness is a test target, outside the perimeter.
        assert!(!rule_applies(RuleId::D2, "tests/queue_equivalence.rs"));
        assert!(!rule_applies(RuleId::D5, "tests/queue_equivalence.rs"));
        assert!(!rule_applies(RuleId::D2, "crates/sim/tests/properties.rs"));
    }

    #[test]
    fn semantic_rule_scoping_by_path() {
        // D6 covers exactly the crates whose state rides in a checkpoint.
        for p in [
            "crates/sim/src/queue.rs",
            "crates/device/src/ssd/mod.rs",
            "crates/core/src/controller.rs",
            "crates/io/src/openloop.rs",
            "crates/obs/src/recorder.rs",
            "crates/cluster/src/sim.rs",
            "crates/place/src/tier.rs",
            "crates/snap/src/lib.rs",
        ] {
            assert!(rule_applies(RuleId::D6, p), "D6 must cover {p}");
        }
        assert!(!rule_applies(RuleId::D6, "crates/model/src/lib.rs"));
        assert!(!rule_applies(
            RuleId::D6,
            "crates/bench/src/bin/kernel_bench.rs"
        ));

        // D7 covers every crate doing unit-newtype arithmetic.
        for p in [
            "crates/sim/src/units.rs",
            "crates/device/src/hdd/mod.rs",
            "crates/io/src/fleet.rs",
            "crates/meter/src/rig.rs",
            "crates/model/src/lib.rs",
            "crates/core/src/controller.rs",
            "crates/cluster/src/tenant.rs",
            "crates/place/src/tier.rs",
        ] {
            assert!(rule_applies(RuleId::D7, p), "D7 must cover {p}");
        }
        assert!(!rule_applies(RuleId::D7, "crates/obs/src/recorder.rs"));

        // D8 covers the registry's home plus every emitting crate.
        for p in [
            "crates/obs/src/recorder.rs",
            "crates/device/src/fault.rs",
            "crates/io/src/fleet.rs",
            "crates/core/src/controller.rs",
            "crates/cluster/src/sim.rs",
            "crates/sim/src/queue.rs",
            "crates/place/src/tier.rs",
        ] {
            assert!(rule_applies(RuleId::D8, p), "D8 must cover {p}");
        }
        assert!(!rule_applies(RuleId::D8, "crates/model/src/lib.rs"));

        // D9's path scope is the whole workspace — the hot annotation is
        // the perimeter — but never tests or examples.
        assert!(rule_applies(RuleId::D9, "crates/sim/src/queue.rs"));
        assert!(rule_applies(
            RuleId::D9,
            "crates/bench/src/bin/kernel_bench.rs"
        ));
        assert!(!rule_applies(RuleId::D9, "crates/sim/tests/properties.rs"));
        assert!(!rule_applies(
            RuleId::D9,
            "examples/cluster_oversubscription.rs"
        ));
    }
}
