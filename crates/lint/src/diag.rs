//! Diagnostics: rule identifiers, findings, rustc-style rendering, and the
//! machine-readable JSON report.
//!
//! JSON is hand-rolled (the workspace builds offline, so no `serde`), in
//! the same exact-escaping style as the golden-figure fixtures in
//! `powadapt-bench`.

use std::fmt;

/// Identifier of an analyzer rule.
///
/// `D1`-`D5` are the per-file token rules, `D6`-`D9` the cross-file
/// semantic rules over the pass-1 symbol model; `S0`/`S1` police the
/// suppression mechanism itself so the escape hatch cannot rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Wall-clock time or OS entropy in deterministic code.
    D1,
    /// `HashMap`/`HashSet` in result-producing code paths.
    D2,
    /// NaN-unsafe float comparison in figure/statistics code.
    D3,
    /// Raw `f64` where a unit newtype is required in a public API.
    D4,
    /// `unwrap`/`expect`/`panic!` in library code that must return errors.
    D5,
    /// Snapshot completeness: every field of a `Snapshot`-implementing
    /// struct must appear in its `write_state`/`read_state` bodies.
    D6,
    /// Unit-dimension flow: no mixed-unit arithmetic or `.0` escapes
    /// outside the declared conversions in `units.rs`.
    D7,
    /// Obs discipline: emitted event kinds registered exactly once,
    /// `span!` lexically balanced, no events from restore paths.
    D8,
    /// Hot-path allocation: `// powadapt-lint: hot` fns must not
    /// allocate, directly or through a non-hot callee.
    D9,
    /// Malformed suppression comment (missing reason, unknown rule, bad
    /// syntax).
    S0,
    /// Suppression comment that suppressed nothing.
    S1,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 11] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
        RuleId::D7,
        RuleId::D8,
        RuleId::D9,
        RuleId::S0,
        RuleId::S1,
    ];

    /// The identifier as written in suppressions and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
            RuleId::D7 => "D7",
            RuleId::D8 => "D8",
            RuleId::D9 => "D9",
            RuleId::S0 => "S0",
            RuleId::S1 => "S1",
        }
    }

    /// Parses a rule name as written in an `allow(...)` suppression.
    /// Only the domain rules are suppressible; `S0`/`S1` are not (a
    /// suppression that suppresses the suppression checker defeats it).
    /// Lowercase ids (`d6`) are accepted — the semantic rules' docs use
    /// them and there is no ambiguity.
    pub fn parse_suppressible(name: &str) -> Option<RuleId> {
        match name {
            "D1" | "d1" => Some(RuleId::D1),
            "D2" | "d2" => Some(RuleId::D2),
            "D3" | "d3" => Some(RuleId::D3),
            "D4" | "d4" => Some(RuleId::D4),
            "D5" | "d5" => Some(RuleId::D5),
            "D6" | "d6" => Some(RuleId::D6),
            "D7" | "d7" => Some(RuleId::D7),
            "D8" | "d8" => Some(RuleId::D8),
            "D9" | "d9" => Some(RuleId::D9),
            _ => None,
        }
    }

    /// One-line summary used in reports and docs.
    pub fn title(self) -> &'static str {
        match self {
            RuleId::D1 => "no wall-clock time or OS entropy in deterministic code",
            RuleId::D2 => "no HashMap/HashSet in result-producing code paths",
            RuleId::D3 => "no NaN-unsafe float comparison in figure/stat code",
            RuleId::D4 => "unit quantities in public APIs must use typed newtypes",
            RuleId::D5 => "no unwrap/expect/panic in device/io/core library code",
            RuleId::D6 => "Snapshot impls must serialize every field",
            RuleId::D7 => "unit newtypes must not mix dimensions or leak raw values",
            RuleId::D8 => "emitted event kinds must be registered; no events on restore",
            RuleId::D9 => "hot-path functions must not allocate",
            RuleId::S0 => "malformed powadapt-lint suppression",
            RuleId::S1 => "unused powadapt-lint suppression",
        }
    }

    /// The `help:` line rendered under a diagnostic.
    pub fn help(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "derive all randomness from SimRng and all time from SimTime; \
                 only the parallel executor may observe the host clock"
            }
            RuleId::D2 => {
                "use BTreeMap/BTreeSet (or a sorted Vec) so iteration order \
                 is deterministic and cannot leak into figures"
            }
            RuleId::D3 => {
                "use f64::total_cmp for ordering and explicit tolerances for \
                 equality; partial_cmp().unwrap() panics on NaN"
            }
            RuleId::D4 => {
                "wrap the value in its unit newtype (powadapt_sim::units::\
                 {Watts, Joules, Micros, Millis}) instead of a raw f64"
            }
            RuleId::D5 => {
                "return DeviceError (or the crate's error type) instead of \
                 panicking; panics in library paths kill whole fleet runs"
            }
            RuleId::D6 => {
                "serialize the field in write_state/read_state (bump \
                 FORMAT_VERSION), or mark it `// powadapt-lint: allow(d6, \
                 reason = \"...\")` if it is rebuilt statically on restore"
            }
            RuleId::D7 => {
                "convert through the declared unit operations in \
                 powadapt_sim::units (as_millis/as_micros, Watts * duration, \
                 Joules / duration) instead of mixing raw .get() values"
            }
            RuleId::D8 => {
                "declare the kind once in EventKind + NAMES (crates/obs/src/\
                 event.rs); restore paths must stay silent — PR 6's \
                 zero-events-on-restore invariant"
            }
            RuleId::D9 => {
                "hoist the allocation out of the hot path (reuse recycled \
                 buffers), or justify it inline with `allow(d9, reason = \
                 ...)` if growth is amortized"
            }
            RuleId::S0 => {
                "write `// powadapt-lint: allow(D<n>, reason = \"...\")` \
                 with a non-empty reason and a known rule id"
            }
            RuleId::S1 => {
                "remove the suppression: nothing on its target line \
                 triggers the allowed rule(s)"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// 1-based column of the finding.
    pub col: u32,
    /// Human message specific to this finding.
    pub message: String,
    /// The source line the finding sits on, for rendering.
    pub snippet: String,
    /// Length in characters of the underlined span.
    pub span_len: u32,
}

impl Diagnostic {
    /// Renders in rustc's error format, with the offending line and a
    /// caret span, followed by the rule's help text.
    pub fn render(&self) -> String {
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        let mut carets = "^".repeat(self.span_len.max(1) as usize);
        if self.snippet.is_empty() {
            carets.clear();
        }
        let underline_pad = " ".repeat(self.col.saturating_sub(1) as usize);
        format!(
            "error[{rule}]: {msg}\n\
             {pad} --> {path}:{line}:{col}\n\
             {pad}  |\n\
             {gutter}  | {snippet}\n\
             {pad}  | {underline_pad}{carets}\n\
             {pad}  = help: {help}\n",
            rule = self.rule,
            msg = self.message,
            path = self.path,
            line = self.line,
            col = self.col,
            snippet = self.snippet,
            help = self.rule.help(),
        )
    }
}

/// A suppression that matched at least one finding, recorded in the JSON
/// report so reviewers can audit the allowlist without grepping.
#[derive(Debug, Clone)]
pub struct UsedSuppression {
    /// Rules the comment allowed.
    pub rules: Vec<RuleId>,
    /// The mandatory reason string.
    pub reason: String,
    /// Workspace-relative path of the suppression comment.
    pub path: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// Escapes a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The full machine-readable report.
#[derive(Debug)]
pub struct Report {
    /// Workspace root the analysis ran over.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every active (non-suppressed) finding, sorted by path/line/col.
    pub diagnostics: Vec<Diagnostic>,
    /// Every suppression that actually fired.
    pub suppressions_used: Vec<UsedSuppression>,
}

impl Report {
    /// Serializes the report as a stable, human-diffable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"tool\": \"powadapt-lint\",\n");
        s.push_str(&format!("  \"root\": \"{}\",\n", json_escape(&self.root)));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"summary\": {");
        let mut first = true;
        for rule in RuleId::ALL {
            let n = self.diagnostics.iter().filter(|d| d.rule == rule).count();
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{rule}\": {n}"));
        }
        s.push_str("},\n");
        s.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
                 \"col\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}{}\n",
                d.rule,
                json_escape(&d.path),
                d.line,
                d.col,
                json_escape(&d.message),
                json_escape(&d.snippet),
                if i + 1 == self.diagnostics.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"suppressions_used\": [\n");
        for (i, u) in self.suppressions_used.iter().enumerate() {
            let rules: Vec<String> = u.rules.iter().map(|r| format!("\"{r}\"")).collect();
            s.push_str(&format!(
                "    {{\"rules\": [{}], \"reason\": \"{}\", \"path\": \"{}\", \"line\": {}}}{}\n",
                rules.join(", "),
                json_escape(&u.reason),
                json_escape(&u.path),
                u.line,
                if i + 1 == self.suppressions_used.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_rustc_shape() {
        let d = Diagnostic {
            rule: RuleId::D2,
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            col: 12,
            message: "`HashMap` in result-producing code".into(),
            snippet: "    reads: HashMap<u64, u8>,".into(),
            span_len: 7,
        };
        let r = d.render();
        assert!(r.starts_with("error[D2]: "));
        assert!(r.contains("--> crates/x/src/lib.rs:7:12"));
        assert!(r.contains("^^^^^^^"));
        assert!(r.contains("= help:"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let report = Report {
            root: "/tmp/\"ws\"".into(),
            files_scanned: 3,
            diagnostics: vec![Diagnostic {
                rule: RuleId::D1,
                path: "a.rs".into(),
                line: 1,
                col: 1,
                message: "tab\there".into(),
                snippet: "Instant::now()".into(),
                span_len: 7,
            }],
            suppressions_used: vec![],
        };
        let json = report.to_json();
        assert!(json.contains("\\\"ws\\\""));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("\"D1\": 1"));
        assert!(json.contains("\"D2\": 0"));
    }
}
