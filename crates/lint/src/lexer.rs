//! A minimal Rust lexer sufficient for token-level static analysis.
//!
//! The analyzer does not need a full parse tree: every rule in
//! [`crate::rules`] is expressible over a token stream plus a little
//! bracket matching. What the lexer *must* get right is the boundary
//! between code and non-code — string literals, raw strings, char
//! literals, lifetimes, and nested block comments — so that a `HashMap`
//! inside a doc comment or an `unwrap` inside an error-message string
//! never produces a false positive.
//!
//! The workspace builds fully offline, so this is hand-rolled rather than
//! `syn`-driven; the subset of Rust it understands is exactly the subset
//! the rules consume.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type`, ...).
    Ident,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Integer literal, including prefixed (`0x..`) and suffixed forms.
    Int,
    /// Float literal (`1.0`, `2e9`, `3.5f64`, ...).
    Float,
    /// String, raw-string, byte-string, or char literal (content opaque).
    Literal,
    /// Punctuation. Multi-character operators the rules care about
    /// (`==`, `!=`, `::`, `->`, `=>`, `..`) are single tokens; everything
    /// else is one token per character.
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification of the token.
    pub kind: TokKind,
    /// The token's text as it appears in the source.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// A `//` line comment, kept out of the token stream but preserved for
/// suppression parsing.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// Comment text including the leading `//`.
    pub text: String,
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// 1-based column of the first `/`.
    pub col: u32,
    /// True when at least one token precedes the comment on its line
    /// (a trailing comment annotates its own line; a standalone comment
    /// annotates the next line).
    pub trailing: bool,
}

/// Output of [`lex`]: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Tok>,
    /// All `//` comments in source order (block comments are discarded —
    /// suppressions must be line comments).
    pub comments: Vec<LineComment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if (b & 0xC0) != 0x80 {
            // Columns are 1-based in *characters*: UTF-8 continuation
            // bytes do not advance the column, so a token after a
            // non-ASCII doc string still points at the right caret.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src`, producing tokens and line comments.
///
/// The lexer is infallible: malformed input degrades to single-character
/// punctuation tokens rather than an error, which is the right behavior
/// for an analyzer that must never block on code `rustc` already accepts
/// or rejects.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut last_token_line = 0u32;

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                out.comments.push(LineComment {
                    text: src[start..cur.pos].to_string(),
                    line,
                    col,
                    trailing: last_token_line == line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(cur.src, cur.pos) => {
                let start = cur.pos;
                lex_raw_string(&mut cur);
                push_tok(&mut out, TokKind::Literal, &src[start..cur.pos], line, col);
                last_token_line = line;
            }
            b'b' if cur.peek_at(1) == Some(b'\'') => {
                let start = cur.pos;
                cur.bump();
                lex_char(&mut cur);
                push_tok(&mut out, TokKind::Literal, &src[start..cur.pos], line, col);
                last_token_line = line;
            }
            b'b' if cur.peek_at(1) == Some(b'"') => {
                let start = cur.pos;
                cur.bump();
                lex_string(&mut cur);
                push_tok(&mut out, TokKind::Literal, &src[start..cur.pos], line, col);
                last_token_line = line;
            }
            b'"' => {
                let start = cur.pos;
                lex_string(&mut cur);
                push_tok(&mut out, TokKind::Literal, &src[start..cur.pos], line, col);
                last_token_line = line;
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`).
                let start = cur.pos;
                if is_char_literal(cur.src, cur.pos) {
                    lex_char(&mut cur);
                    push_tok(&mut out, TokKind::Literal, &src[start..cur.pos], line, col);
                } else {
                    cur.bump();
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    push_tok(&mut out, TokKind::Lifetime, &src[start..cur.pos], line, col);
                }
                last_token_line = line;
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                // `r#ident` raw identifiers.
                if b == b'r'
                    && cur.peek_at(1) == Some(b'#')
                    && cur.peek_at(2).is_some_and(is_ident_start)
                {
                    cur.bump();
                    cur.bump();
                }
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                push_tok(&mut out, TokKind::Ident, &src[start..cur.pos], line, col);
                last_token_line = line;
            }
            _ if b.is_ascii_digit() => {
                let start = cur.pos;
                let kind = lex_number(&mut cur);
                push_tok(&mut out, kind, &src[start..cur.pos], line, col);
                last_token_line = line;
            }
            _ => {
                let start = cur.pos;
                cur.bump();
                // Join the handful of multi-character operators the rules
                // pattern-match on; everything else stays single-char.
                let two = cur.peek().map(|n| (b, n));
                let joined = matches!(
                    two,
                    Some((b'=', b'=') | (b'!', b'=') | (b':', b':') | (b'-', b'>') | (b'=', b'>'))
                ) || matches!(two, Some((b'.', b'.')));
                if joined {
                    cur.bump();
                }
                push_tok(&mut out, TokKind::Punct, &src[start..cur.pos], line, col);
                last_token_line = line;
            }
        }
    }
    out
}

fn push_tok(out: &mut Lexed, kind: TokKind, text: &str, line: u32, col: u32) {
    out.tokens.push(Tok {
        kind,
        text: text.to_string(),
        line,
        col,
    });
}

/// Is `pos` the start of `r"`, `r#"`, `br"`, `br#"` etc.?
fn is_raw_string_start(src: &[u8], pos: usize) -> bool {
    let mut i = pos;
    if src.get(i) == Some(&b'b') {
        i += 1;
    }
    if src.get(i) != Some(&b'r') {
        return false;
    }
    i += 1;
    while src.get(i) == Some(&b'#') {
        i += 1;
    }
    src.get(i) == Some(&b'"')
}

fn lex_raw_string(cur: &mut Cursor<'_>) {
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    cur.bump(); // `r`
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => break,
            Some(b'"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some(b'#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None | Some(b'"') => break,
            Some(b'\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

/// Disambiguates `'a'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(src: &[u8], pos: usize) -> bool {
    match src.get(pos + 1) {
        Some(b'\\') => true,
        Some(&c) if is_ident_start(c) => {
            // `'x'` is a char; `'x` followed by anything else is a
            // lifetime. Scan past the identifier-like run.
            let mut i = pos + 2;
            while src.get(i).copied().is_some_and(is_ident_continue) {
                i += 1;
            }
            src.get(i) == Some(&b'\'')
        }
        Some(_) => true,
        None => false,
    }
}

fn lex_char(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None | Some(b'\'') => break,
            Some(b'\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokKind {
    // Prefixed integers: 0x / 0o / 0b.
    if cur.peek() == Some(b'0')
        && matches!(
            cur.peek_at(1),
            Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B')
        )
    {
        cur.bump();
        cur.bump();
        while cur
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            cur.bump();
        }
        return TokKind::Int;
    }
    let mut float = false;
    while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        cur.bump();
    }
    // A `.` makes it a float only when NOT starting a range (`0..n`) or a
    // method call on the literal (`1.min(2)`).
    if cur.peek() == Some(b'.')
        && cur.peek_at(1) != Some(b'.')
        && !cur.peek_at(1).is_some_and(is_ident_start)
    {
        float = true;
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    if matches!(cur.peek(), Some(b'e' | b'E'))
        && (cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek_at(1), Some(b'+' | b'-'))
                && cur.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
    {
        float = true;
        cur.bump();
        if matches!(cur.peek(), Some(b'+' | b'-')) {
            cur.bump();
        }
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    // Type suffix: `1.0f64`, `3u32`, ...
    if cur.peek().is_some_and(is_ident_start) {
        let suffix_start = cur.pos;
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        let suffix = &cur.src[suffix_start..cur.pos];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let lexed = lex("let x = \"HashMap.unwrap()\"; // HashMap here\n/* Instant */ y");
        let idents: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "y"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].trailing);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r####"let s = r#"quote " inside"#; next"####);
        let idents: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "next"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "'x'"));
    }

    #[test]
    fn numbers_classify() {
        let toks = kinds("1.0 2e9 3.5f64 7 0x1f 0..10 1.min(2)");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.0", "2e9", "3.5f64"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, ["7", "0x1f", "0", "10", "1", "2"]);
    }

    #[test]
    fn joined_operators() {
        let toks = kinds("a == b != c :: d -> e => f .. g");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->", "=>", ".."]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }
}
