//! `powadapt-lint` — workspace-wide determinism & unit-safety analyzer.
//!
//! The golden-figure fixtures (PR 2) prove every figure is bit-identical
//! across worker counts, but only *after the fact*. This crate enforces
//! the invariants that make that guarantee hold *by construction*, as
//! machine-checked rules over every `.rs` file in the workspace:
//!
//! - **D1** — no wall-clock time or OS entropy outside the parallel
//!   executor,
//! - **D2** — no `HashMap`/`HashSet` in result-producing code paths,
//! - **D3** — no NaN-unsafe float comparison in figure/stat code,
//! - **D4** — unit quantities (`*_watts`, `*_joules`, `*_ms`, `*_us`) in
//!   public APIs must use the typed newtypes, never raw `f64`,
//! - **D5** — no `unwrap`/`expect`/`panic!` in `device`/`io`/`core`
//!   library code; errors flow through `DeviceError`.
//!
//! Violations that are genuinely fine carry an inline, *reasoned*
//! suppression — `// powadapt-lint: allow(D2, reason = "...")` — and the
//! suppression mechanism is itself policed (missing reason and unknown
//! rule ids are diagnostics, as is a suppression that matches nothing).
//!
//! The analyzer is `syn`-free by design: the workspace builds fully
//! offline, so the lexer in [`lexer`] implements exactly the slice of
//! Rust the rules need. See `DESIGN.md` § "Determinism & unit-safety
//! invariants" for the rationale behind each rule.
//!
//! # Examples
//!
//! ```
//! use powadapt_lint::{analyze_source, AnalysisMode};
//!
//! let findings = analyze_source(
//!     "crates/device/src/lib.rs",
//!     "use std::collections::HashMap;\n",
//!     AnalysisMode::Scoped,
//! );
//! assert_eq!(findings.diagnostics.len(), 1);
//! assert_eq!(findings.diagnostics[0].rule.as_str(), "D2");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Tests assert on exact expected values: unwraps and bit-exact float
// comparisons are the point there, not a hazard (see workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod abi;
pub mod diag;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod sarif;
pub mod scope;
pub mod semantic;
pub mod suppress;

use std::fs;
use std::path::{Path, PathBuf};

pub use diag::{Diagnostic, Report, RuleId, UsedSuppression};

/// How rule scoping is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisMode {
    /// Normal operation: each rule applies only to the crates/paths in
    /// [`scope::rule_applies`], minus test regions.
    Scoped,
    /// Fixture mode: every rule applies to every line (still minus
    /// nothing — fixtures are plain snippets). Used by the ui self-tests
    /// and `--all-rules`.
    AllRules,
}

/// Result of analyzing one file.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Active findings, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressions that fired, for the report's audit trail.
    pub suppressions_used: Vec<UsedSuppression>,
}

/// Analyzes one file's source text.
///
/// `path` must be workspace-relative with `/` separators — it drives the
/// per-rule scoping in [`AnalysisMode::Scoped`]. The file is treated as
/// a one-file workspace, so the cross-file rules D6-D9 run with whatever
/// the single file declares (which is exactly what the ui fixtures
/// exercise). For true cross-file analysis use [`analyze_files`].
pub fn analyze_source(path: &str, src: &str, mode: AnalysisMode) -> FileAnalysis {
    analyze_files(&[(path.to_string(), src.to_string())], mode)
}

/// Analyzes a set of files as one workspace: pass 1 lexes every file and
/// builds the shared symbol [`model::Model`]; pass 2 runs the per-file
/// token rules (D1-D5) and the cross-file semantic rules (D6-D9) over
/// it. Suppressions are merged workspace-wide but keyed on (rule, file),
/// so an allow in one file never covers — or masks the audit of — the
/// same rule elsewhere.
pub fn analyze_files(files: &[(String, String)], mode: AnalysisMode) -> FileAnalysis {
    // Pass 1: lex, per-file scaffolding, merged suppressions, model.
    let lexed: Vec<lexer::Lexed> = files.iter().map(|(_, src)| lexer::lex(src)).collect();
    let lines: Vec<Vec<&str>> = files.iter().map(|(_, src)| src.lines().collect()).collect();
    let regions: Vec<scope::TestRegions> = lexed.iter().map(scope::find_test_regions).collect();
    let mut suppressions = suppress::SuppressionSet::default();
    for ((path, _), lx) in files.iter().zip(&lexed) {
        suppressions.merge(suppress::scan(&lx.comments, path));
    }
    let slices: Vec<&[lexer::Tok]> = lexed.iter().map(|l| &l.tokens[..]).collect();
    let mut model = model::Model::build(&slices);
    let ctxs: Vec<semantic::FileCtx<'_>> = files
        .iter()
        .zip(&slices)
        .map(|((path, _), toks)| semantic::FileCtx { path, toks })
        .collect();

    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    // Pass 2a: per-file token rules.
    for (fi, (path, _)) in files.iter().enumerate() {
        for finding in rules::run_all(&lexed[fi].tokens) {
            if mode == AnalysisMode::Scoped && !scope::rule_applies(finding.rule, path) {
                continue;
            }
            let anchor_line = lexed[fi].tokens[finding.tok].line;
            if mode == AnalysisMode::Scoped && regions[fi].contains(anchor_line) {
                continue;
            }
            if suppressions.try_suppress(finding.rule, path, anchor_line) {
                continue;
            }
            diagnostics.push(rules::to_diagnostic(
                &finding,
                &lexed[fi].tokens,
                path,
                &lines[fi],
            ));
        }
    }

    // Pass 2b: cross-file semantic rules over the model.
    let mut sem = Vec::new();
    semantic::attach_hot_marks(&mut model, &ctxs, &mut suppressions.hot_marks, &mut sem);
    sem.extend(semantic::run(&model, &ctxs));
    for f in sem {
        let path = &files[f.file].0;
        if mode == AnalysisMode::Scoped && !scope::rule_applies(f.rule, path) {
            continue;
        }
        if mode == AnalysisMode::Scoped && regions[f.file].contains(f.line) {
            continue;
        }
        if suppressions.try_suppress(f.rule, path, f.line) {
            continue;
        }
        let snippet = lines[f.file]
            .get(f.line as usize - 1)
            .map_or(String::new(), |l| (*l).to_string());
        diagnostics.push(Diagnostic {
            rule: f.rule,
            path: path.clone(),
            line: f.line,
            col: f.col,
            message: f.message,
            snippet,
            span_len: f.span_len,
        });
    }

    // Suppression hygiene: malformed comments, then unused ones — per
    // (rule, file).
    diagnostics.extend(suppressions.errors.iter().cloned());
    let path_index: std::collections::BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, (p, _))| (p.as_str(), i))
        .collect();
    diagnostics.extend(suppressions.unused(|path, line| {
        path_index
            .get(path)
            .and_then(|&i| lines[i].get(line as usize - 1))
            .map_or(String::new(), |l| (*l).to_string())
    }));

    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    let suppressions_used = suppressions
        .entries
        .iter()
        .filter(|e| e.used)
        .map(|e| UsedSuppression {
            rules: e.rules.clone(),
            reason: e.reason.clone(),
            path: e.path.clone(),
            line: e.comment_line,
        })
        .collect();
    FileAnalysis {
        diagnostics,
        suppressions_used,
    }
}

/// Directories under the workspace root that are scanned for `.rs` files.
const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Paths (workspace-relative prefixes) that are never scanned: vendored
/// third-party stand-ins, build output, and the analyzer's own
/// intentionally-bad ui fixtures.
const SKIP_PREFIXES: &[&str] = &["vendor/", "target/", "crates/lint/fixtures/"];

/// Collects every scannable `.rs` file under `root`, workspace-relative,
/// sorted for deterministic report order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|f| f.strip_prefix(root).ok().map(Path::to_path_buf))
        .filter(|f| {
            let s = path_str(f);
            !SKIP_PREFIXES.iter().any(|p| s.starts_with(p))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A path rendered with `/` separators regardless of host OS.
pub fn path_str(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Analyzes the whole workspace rooted at `root` in one two-pass run, so
/// the cross-file rules see every crate's symbols at once.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        sources.push((path_str(rel), fs::read_to_string(root.join(rel))?));
    }
    let analysis = analyze_files(&sources, AnalysisMode::Scoped);
    Ok(Report {
        root: path_str(root),
        files_scanned: files.len(),
        diagnostics: analysis.diagnostics,
        suppressions_used: analysis.suppressions_used,
    })
}

/// Computes the canonical `crates/snap/ABI.lock` text for the workspace
/// at `root`: reads every scannable source, builds the pass-1 symbol
/// model, and stamps the snapshot-struct inventory with the current
/// `FORMAT_VERSION` from `crates/snap/src/lib.rs`.
pub fn compute_abi_lock(root: &Path) -> Result<String, String> {
    let files = workspace_files(root).map_err(|e| e.to_string())?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        sources.push((
            path_str(rel),
            fs::read_to_string(root.join(rel)).map_err(|e| format!("{}: {e}", rel.display()))?,
        ));
    }
    let version_src = fs::read_to_string(root.join(abi::VERSION_PATH))
        .map_err(|e| format!("{}: {e}", abi::VERSION_PATH))?;
    let fv = abi::parse_format_version(&version_src)
        .ok_or_else(|| format!("no FORMAT_VERSION found in {}", abi::VERSION_PATH))?;
    let lexed: Vec<lexer::Lexed> = sources.iter().map(|(_, src)| lexer::lex(src)).collect();
    let slices: Vec<&[lexer::Tok]> = lexed.iter().map(|l| &l.tokens[..]).collect();
    let model = model::Model::build(&slices);
    let ctxs: Vec<semantic::FileCtx<'_>> = sources
        .iter()
        .zip(&slices)
        .map(|((path, _), toks)| semantic::FileCtx { path, toks })
        .collect();
    Ok(abi::lock_text(&model, &ctxs, fv))
}

/// Walks up from `start` to the directory containing the workspace's
/// top-level `Cargo.toml` (the one with a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
