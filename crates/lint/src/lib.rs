//! `powadapt-lint` — workspace-wide determinism & unit-safety analyzer.
//!
//! The golden-figure fixtures (PR 2) prove every figure is bit-identical
//! across worker counts, but only *after the fact*. This crate enforces
//! the invariants that make that guarantee hold *by construction*, as
//! machine-checked rules over every `.rs` file in the workspace:
//!
//! - **D1** — no wall-clock time or OS entropy outside the parallel
//!   executor,
//! - **D2** — no `HashMap`/`HashSet` in result-producing code paths,
//! - **D3** — no NaN-unsafe float comparison in figure/stat code,
//! - **D4** — unit quantities (`*_watts`, `*_joules`, `*_ms`, `*_us`) in
//!   public APIs must use the typed newtypes, never raw `f64`,
//! - **D5** — no `unwrap`/`expect`/`panic!` in `device`/`io`/`core`
//!   library code; errors flow through `DeviceError`.
//!
//! Violations that are genuinely fine carry an inline, *reasoned*
//! suppression — `// powadapt-lint: allow(D2, reason = "...")` — and the
//! suppression mechanism is itself policed (missing reason and unknown
//! rule ids are diagnostics, as is a suppression that matches nothing).
//!
//! The analyzer is `syn`-free by design: the workspace builds fully
//! offline, so the lexer in [`lexer`] implements exactly the slice of
//! Rust the rules need. See `DESIGN.md` § "Determinism & unit-safety
//! invariants" for the rationale behind each rule.
//!
//! # Examples
//!
//! ```
//! use powadapt_lint::{analyze_source, AnalysisMode};
//!
//! let findings = analyze_source(
//!     "crates/device/src/lib.rs",
//!     "use std::collections::HashMap;\n",
//!     AnalysisMode::Scoped,
//! );
//! assert_eq!(findings.diagnostics.len(), 1);
//! assert_eq!(findings.diagnostics[0].rule.as_str(), "D2");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Tests assert on exact expected values: unwraps and bit-exact float
// comparisons are the point there, not a hazard (see workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod suppress;

use std::fs;
use std::path::{Path, PathBuf};

pub use diag::{Diagnostic, Report, RuleId, UsedSuppression};

/// How rule scoping is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisMode {
    /// Normal operation: each rule applies only to the crates/paths in
    /// [`scope::rule_applies`], minus test regions.
    Scoped,
    /// Fixture mode: every rule applies to every line (still minus
    /// nothing — fixtures are plain snippets). Used by the ui self-tests
    /// and `--all-rules`.
    AllRules,
}

/// Result of analyzing one file.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Active findings, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressions that fired, for the report's audit trail.
    pub suppressions_used: Vec<UsedSuppression>,
}

/// Analyzes one file's source text.
///
/// `path` must be workspace-relative with `/` separators — it drives the
/// per-rule scoping in [`AnalysisMode::Scoped`].
pub fn analyze_source(path: &str, src: &str, mode: AnalysisMode) -> FileAnalysis {
    let lexed = lexer::lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let regions = scope::find_test_regions(&lexed);
    let mut suppressions = suppress::scan(&lexed.comments, path);

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for finding in rules::run_all(&lexed.tokens) {
        if mode == AnalysisMode::Scoped && !scope::rule_applies(finding.rule, path) {
            continue;
        }
        let anchor_line = lexed.tokens[finding.tok].line;
        if mode == AnalysisMode::Scoped && regions.contains(anchor_line) {
            continue;
        }
        if suppressions.try_suppress(finding.rule, anchor_line) {
            continue;
        }
        diagnostics.push(rules::to_diagnostic(&finding, &lexed.tokens, path, &lines));
    }

    // Suppression hygiene: malformed comments, then unused ones.
    diagnostics.extend(suppressions.errors.iter().cloned());
    diagnostics.extend(suppressions.unused(path, |line| {
        lines
            .get(line as usize - 1)
            .map_or(String::new(), |l| (*l).to_string())
    }));

    diagnostics.sort_by_key(|d| (d.line, d.col, d.rule));
    let suppressions_used = suppressions
        .entries
        .iter()
        .filter(|e| e.used)
        .map(|e| UsedSuppression {
            rules: e.rules.clone(),
            reason: e.reason.clone(),
            path: path.to_string(),
            line: e.comment_line,
        })
        .collect();
    FileAnalysis {
        diagnostics,
        suppressions_used,
    }
}

/// Directories under the workspace root that are scanned for `.rs` files.
const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Paths (workspace-relative prefixes) that are never scanned: vendored
/// third-party stand-ins, build output, and the analyzer's own
/// intentionally-bad ui fixtures.
const SKIP_PREFIXES: &[&str] = &["vendor/", "target/", "crates/lint/fixtures/"];

/// Collects every scannable `.rs` file under `root`, workspace-relative,
/// sorted for deterministic report order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|f| f.strip_prefix(root).ok().map(Path::to_path_buf))
        .filter(|f| {
            let s = path_str(f);
            !SKIP_PREFIXES.iter().any(|p| s.starts_with(p))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A path rendered with `/` separators regardless of host OS.
pub fn path_str(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Analyzes the whole workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut diagnostics = Vec::new();
    let mut suppressions_used = Vec::new();
    let files_scanned = files.len();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        let mut analysis = analyze_source(&path_str(rel), &src, AnalysisMode::Scoped);
        diagnostics.append(&mut analysis.diagnostics);
        suppressions_used.append(&mut analysis.suppressions_used);
    }
    Ok(Report {
        root: path_str(root),
        files_scanned,
        diagnostics,
        suppressions_used,
    })
}

/// Walks up from `start` to the directory containing the workspace's
/// top-level `Cargo.toml` (the one with a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
