//! CLI for the determinism & unit-safety analyzer.
//!
//! ```text
//! powadapt-lint                      # analyze the enclosing workspace
//! powadapt-lint --root path/to/ws    # analyze a specific workspace
//! powadapt-lint --json report.json   # also write the JSON report
//! powadapt-lint --all-rules file.rs  # every rule on specific files
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use powadapt_lint::{
    analyze_source, analyze_workspace, find_workspace_root, path_str, AnalysisMode, Report,
};

struct Options {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    all_rules: bool,
    quiet: bool,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: powadapt-lint [--root DIR] [--json PATH] [--quiet] [--all-rules] [FILES...]\n\
     \n\
     With no FILES, analyzes every .rs file in the enclosing workspace\n\
     (rules scoped per crate; see DESIGN.md). With FILES, analyzes just\n\
     those; --all-rules applies every rule regardless of path, which is\n\
     how the ui fixtures are checked.\n"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: None,
        all_rules: false,
        quiet: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ));
            }
            "--json" => {
                opts.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            "--all-rules" => opts.all_rules = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

fn run() -> Result<u8, String> {
    let opts = parse_args()?;
    let mode = if opts.all_rules {
        AnalysisMode::AllRules
    } else {
        AnalysisMode::Scoped
    };

    let report = if opts.files.is_empty() {
        let root = match &opts.root {
            Some(r) => r.clone(),
            None => {
                let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
                find_workspace_root(&cwd)
                    .ok_or("no workspace Cargo.toml above the current directory")?
            }
        };
        analyze_workspace(&root).map_err(|e| e.to_string())?
    } else {
        let mut diagnostics = Vec::new();
        let mut suppressions_used = Vec::new();
        for file in &opts.files {
            let src =
                std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
            let mut analysis = analyze_source(&path_str(file), &src, mode);
            diagnostics.append(&mut analysis.diagnostics);
            suppressions_used.append(&mut analysis.suppressions_used);
        }
        Report {
            root: String::new(),
            files_scanned: opts.files.len(),
            diagnostics,
            suppressions_used,
        }
    };

    if let Some(json_path) = &opts.json {
        if let Some(parent) = json_path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        std::fs::write(json_path, report.to_json()).map_err(|e| e.to_string())?;
    }

    if !opts.quiet {
        for d in &report.diagnostics {
            eprintln!("{}", d.render());
        }
    }
    let n = report.diagnostics.len();
    if n == 0 {
        if !opts.quiet {
            eprintln!(
                "powadapt-lint: {} files clean ({} suppression{} in use)",
                report.files_scanned,
                report.suppressions_used.len(),
                if report.suppressions_used.len() == 1 {
                    ""
                } else {
                    "s"
                },
            );
        }
        Ok(0)
    } else {
        if !opts.quiet {
            eprintln!(
                "powadapt-lint: {n} diagnostic{} across {} files",
                if n == 1 { "" } else { "s" },
                report.files_scanned,
            );
        }
        Ok(1)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            if msg.is_empty() {
                eprint!("{}", usage());
                ExitCode::from(0)
            } else {
                eprintln!("powadapt-lint: {msg}");
                eprint!("{}", usage());
                ExitCode::from(2)
            }
        }
    }
}
