//! CLI for the determinism & unit-safety analyzer.
//!
//! ```text
//! powadapt-lint                      # analyze the enclosing workspace
//! powadapt-lint --root path/to/ws    # analyze a specific workspace
//! powadapt-lint --json report.json   # also write the JSON report
//! powadapt-lint --format sarif       # print a SARIF 2.1.0 log to stdout
//! powadapt-lint --all-rules file.rs  # every rule on specific files
//! powadapt-lint --abi-check          # verify crates/snap/ABI.lock
//! powadapt-lint --abi-update         # regenerate crates/snap/ABI.lock
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found (or ABI drift), 2 usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use powadapt_lint::{
    abi, analyze_files, compute_abi_lock, find_workspace_root, path_str, sarif, AnalysisMode,
    Report,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum AbiAction {
    None,
    Check,
    Update,
}

struct Options {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    sarif: bool,
    abi: AbiAction,
    all_rules: bool,
    quiet: bool,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: powadapt-lint [--root DIR] [--json PATH] [--format text|sarif]\n\
     \x20                 [--abi-check | --abi-update] [--quiet] [--all-rules] [FILES...]\n\
     \n\
     With no FILES, analyzes every .rs file in the enclosing workspace\n\
     (rules scoped per crate; see DESIGN.md). With FILES, analyzes just\n\
     those; --all-rules applies every rule regardless of path, which is\n\
     how the ui fixtures are checked.\n\
     \n\
     --format sarif prints a SARIF 2.1.0 log to stdout (diagnostics still\n\
     render to stderr). --abi-check verifies crates/snap/ABI.lock against\n\
     the workspace's Snapshot structs and fails if the ABI changed without\n\
     a FORMAT_VERSION bump; --abi-update rewrites the lock.\n"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: None,
        sarif: false,
        abi: AbiAction::None,
        all_rules: false,
        quiet: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ));
            }
            "--json" => {
                opts.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            "--format" => match args.next().as_deref() {
                Some("sarif") => opts.sarif = true,
                Some("text") => opts.sarif = false,
                Some(other) => return Err(format!("unknown format `{other}` (text or sarif)")),
                None => return Err("--format needs a value (text or sarif)".to_string()),
            },
            "--abi-check" => opts.abi = AbiAction::Check,
            "--abi-update" => opts.abi = AbiAction::Update,
            "--all-rules" => opts.all_rules = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if opts.abi != AbiAction::None && !opts.files.is_empty() {
        return Err("--abi-check/--abi-update take no FILES".to_string());
    }
    Ok(opts)
}

fn workspace_root(opts: &Options) -> Result<PathBuf, String> {
    match &opts.root {
        Some(r) => Ok(r.clone()),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or_else(|| "no workspace Cargo.toml above the current directory".to_string())
        }
    }
}

/// Runs `--abi-check` / `--abi-update` and maps the outcome to an exit
/// code: 0 clean/updated, 1 ABI drift, 2 I/O trouble.
fn run_abi(opts: &Options) -> Result<u8, String> {
    let root = workspace_root(opts)?;
    let current = compute_abi_lock(&root)?;
    let lock_path = root.join(abi::LOCK_PATH);
    if opts.abi == AbiAction::Update {
        std::fs::write(&lock_path, &current).map_err(|e| e.to_string())?;
        if !opts.quiet {
            eprintln!("powadapt-lint: wrote {}", abi::LOCK_PATH);
        }
        return Ok(0);
    }
    let on_disk = std::fs::read_to_string(&lock_path).ok();
    match abi::check(&current, on_disk.as_deref()) {
        abi::AbiStatus::Clean => {
            if !opts.quiet {
                eprintln!("powadapt-lint: snapshot ABI matches {}", abi::LOCK_PATH);
            }
            Ok(0)
        }
        abi::AbiStatus::ChangedWithoutBump => {
            eprintln!(
                "powadapt-lint: snapshot ABI changed but FORMAT_VERSION did not.\n\
                 Readers of old snapshots would mis-decode the new layout.\n\
                 Bump FORMAT_VERSION in {} and run `powadapt-lint --abi-update`.",
                abi::VERSION_PATH
            );
            Ok(1)
        }
        abi::AbiStatus::Stale => {
            eprintln!(
                "powadapt-lint: {} is stale; run `powadapt-lint --abi-update` and commit it.",
                abi::LOCK_PATH
            );
            Ok(1)
        }
        abi::AbiStatus::Missing => {
            eprintln!(
                "powadapt-lint: {} missing or unreadable; run `powadapt-lint --abi-update`.",
                abi::LOCK_PATH
            );
            Ok(1)
        }
    }
}

fn run() -> Result<u8, String> {
    let opts = parse_args()?;
    if opts.abi != AbiAction::None {
        return run_abi(&opts);
    }
    let mode = if opts.all_rules {
        AnalysisMode::AllRules
    } else {
        AnalysisMode::Scoped
    };

    let report = if opts.files.is_empty() {
        let root = workspace_root(&opts)?;
        powadapt_lint::analyze_workspace(&root).map_err(|e| e.to_string())?
    } else {
        let mut sources = Vec::with_capacity(opts.files.len());
        for file in &opts.files {
            let src =
                std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
            sources.push((path_str(file), src));
        }
        let analysis = analyze_files(&sources, mode);
        Report {
            root: String::new(),
            files_scanned: opts.files.len(),
            diagnostics: analysis.diagnostics,
            suppressions_used: analysis.suppressions_used,
        }
    };

    if let Some(json_path) = &opts.json {
        if let Some(parent) = json_path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        std::fs::write(json_path, report.to_json()).map_err(|e| e.to_string())?;
    }
    if opts.sarif {
        println!("{}", sarif::to_sarif(&report));
    }

    if !opts.quiet {
        for d in &report.diagnostics {
            eprintln!("{}", d.render());
        }
    }
    let n = report.diagnostics.len();
    if n == 0 {
        if !opts.quiet {
            eprintln!(
                "powadapt-lint: {} files clean ({} suppression{} in use)",
                report.files_scanned,
                report.suppressions_used.len(),
                if report.suppressions_used.len() == 1 {
                    ""
                } else {
                    "s"
                },
            );
        }
        Ok(0)
    } else {
        if !opts.quiet {
            eprintln!(
                "powadapt-lint: {n} diagnostic{} across {} files",
                if n == 1 { "" } else { "s" },
                report.files_scanned,
            );
        }
        Ok(1)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            if msg.is_empty() {
                eprint!("{}", usage());
                ExitCode::from(0)
            } else {
                eprintln!("powadapt-lint: {msg}");
                eprint!("{}", usage());
                ExitCode::from(2)
            }
        }
    }
}
