//! Pass 2: the cross-file semantic rules D6-D9.
//!
//! Each rule is a pure function from the workspace [`Model`] (plus the
//! per-file token streams) to findings; the driver in
//! [`crate::analyze_files`] handles scoping, test regions, and
//! suppressions exactly as for the token rules.
//!
//! - **D6** — snapshot completeness: every named field of a struct whose
//!   impls provide `write_state`/`read_state` must be mentioned in those
//!   bodies; structs reachable from `ClusterSim` holding snapshot-able
//!   fields must provide their own impl.
//! - **D7** — unit-dimension flow: `.get()` values of different unit
//!   newtypes must not meet in one arithmetic/comparison expression, and
//!   `.0` must not escape the newtypes outside `units.rs`.
//! - **D8** — obs discipline: emitted kinds are declared and registered
//!   exactly once, `emit!`/`span!` arities and lexical balance hold per
//!   function, and restore paths emit nothing.
//! - **D9** — hot-path allocation: `// powadapt-lint: hot` fns must not
//!   allocate directly or through a one-level non-hot callee.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::RuleId;
use crate::lexer::{Tok, TokKind};
use crate::model::{FnDef, Model};
use crate::suppress::HotMark;

/// Per-file context pass 2 needs alongside the model.
#[derive(Debug, Clone, Copy)]
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// The file's token stream.
    pub toks: &'a [Tok],
}

/// One semantic finding, anchored by file index + position (the driver
/// attaches snippets).
#[derive(Debug)]
pub struct SemFinding {
    /// The violated rule.
    pub rule: RuleId,
    /// Index into the analyzed file list.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Length in characters of the underlined span.
    pub span_len: u32,
    /// Specific message.
    pub message: String,
}

fn finding(rule: RuleId, file: usize, t: &Tok, message: String) -> SemFinding {
    SemFinding {
        rule,
        file,
        line: t.line,
        col: t.col,
        span_len: t.text.chars().count() as u32,
        message,
    }
}

/// The unit newtypes D7 tracks.
const UNIT_TYPES: &[&str] = &["Watts", "Joules", "Millis", "Micros"];

/// Heap-allocating container types D9 recognizes as `.clone()`/`push`
/// hazards.
const HEAP_TYPES: &[&str] = &["Vec", "VecDeque", "String", "Box", "BTreeMap", "BTreeSet"];

/// The dimension of a type written as token texts, if it is exactly one
/// of the unit newtypes (possibly behind `&`/`&mut`).
fn unit_dim(ty: &[String]) -> Option<&'static str> {
    let core: Vec<&str> = ty
        .iter()
        .map(String::as_str)
        .filter(|t| *t != "&" && *t != "mut")
        .collect();
    match core.as_slice() {
        [one] => UNIT_TYPES.iter().find(|u| *u == one).copied(),
        _ => None,
    }
}

/// The heap container heading a type (`Vec<...>`, `&mut VecDeque<..>`).
fn heap_head(ty: &[String]) -> Option<&'static str> {
    let first = ty.iter().find(|t| {
        t.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
            && *t != "mut"
    })?;
    HEAP_TYPES.iter().find(|h| *h == first).copied()
}

/// The element type of a `Vec<T>`-shaped type (for `self.field[i].push`
/// receivers), or `None` when the shape doesn't match.
fn vec_elem(ty: &[String]) -> Option<Vec<String>> {
    let texts: Vec<&str> = ty.iter().map(String::as_str).collect();
    match texts.as_slice() {
        ["Vec", "<", inner @ .., ">"] => Some(inner.iter().map(|s| (*s).to_string()).collect()),
        _ => None,
    }
}

/// Snake-cases a CamelCase variant name the way the obs registry does
/// (`IoStart` -> `io_start`).
fn camel_to_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Groups files by crate so same-name types in different crates never
/// cross wires. Non-`crates/` files share the `""` key — which is also
/// what makes single-file fixture runs behave as one small crate.
fn crate_key(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Attaches `// powadapt-lint: hot` marks to the fns they precede and
/// returns findings (as S0) for marks that precede no fn. A mark may sit
/// directly above the `fn` line (attributes between the mark and the
/// `fn` are tolerated) or trail it.
pub fn attach_hot_marks(
    model: &mut Model,
    files: &[FileCtx<'_>],
    marks: &mut [HotMark],
    out: &mut Vec<SemFinding>,
) {
    let path_index: BTreeMap<&str, usize> =
        files.iter().enumerate().map(|(i, f)| (f.path, i)).collect();
    for mark in marks {
        let Some(&file) = path_index.get(mark.path.as_str()) else {
            continue;
        };
        let toks = files[file].toks;
        // First token at or after the target line; walk over attributes
        // and qualifiers to the `fn` keyword.
        let mut i = match toks.iter().position(|t| t.line >= mark.target_line) {
            Some(i) => i,
            None => toks.len(),
        };
        let mut fn_tok = None;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Punct && t.text == "#" {
                // Attribute: skip `#[...]`.
                let mut depth = 0i32;
                i += 1;
                while i < toks.len() {
                    match toks[i].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "pub" => {
                    i += 1;
                    if i < toks.len() && toks[i].text == "(" {
                        while i < toks.len() && toks[i].text != ")" {
                            i += 1;
                        }
                        i += 1;
                    }
                }
                "const" | "async" | "unsafe" | "extern" => i += 1,
                "fn" => {
                    fn_tok = Some(i);
                    break;
                }
                _ => break,
            }
        }
        let attached = fn_tok.and_then(|sig| {
            model
                .fns
                .iter_mut()
                .find(|f| f.file == file && f.sig_tok == sig)
        });
        if let Some(f) = attached {
            f.hot = true;
            mark.attached = true;
        } else {
            out.push(SemFinding {
                rule: RuleId::S0,
                file,
                line: mark.comment_line,
                col: mark.col,
                span_len: "// powadapt-lint: hot".chars().count() as u32,
                message: "`powadapt-lint: hot` does not precede a fn declaration".to_string(),
            });
        }
    }
}

/// Runs all four semantic rule families over the model.
pub fn run(model: &Model, files: &[FileCtx<'_>]) -> Vec<SemFinding> {
    let file_crates: Vec<String> = files
        .iter()
        .map(|f| crate_key(f.path).to_string())
        .collect();
    let mut out = Vec::new();
    d6_snapshot_completeness(model, files, &file_crates, &mut out);
    d7_unit_flow(model, files, &file_crates, &mut out);
    d8_obs_discipline(model, files, &mut out);
    d9_hot_allocation(model, files, &mut out);
    out
}

// ---------------------------------------------------------------------
// D6 — snapshot completeness
// ---------------------------------------------------------------------

fn d6_snapshot_completeness(
    model: &Model,
    files: &[FileCtx<'_>],
    file_crates: &[String],
    out: &mut Vec<SemFinding>,
) {
    // Which structs are snapshot-active (some impl provides
    // write_state/read_state), and what do those bodies mention?
    let mut active: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, f) in model.fns.iter().enumerate() {
        if f.name != "write_state" && f.name != "read_state" {
            continue;
        }
        let Some(owner) = &f.owner else { continue };
        active
            .entry((file_crates[f.file].clone(), owner.clone()))
            .or_default()
            .push(i);
    }

    for s in &model.structs {
        if s.tuple || s.fields.is_empty() {
            continue;
        }
        let key = (file_crates[s.file].clone(), s.name.clone());
        let Some(fn_ids) = active.get(&key) else {
            continue;
        };
        // Union of identifiers mentioned across all snapshot bodies.
        let mut mentioned: BTreeSet<&str> = BTreeSet::new();
        for &fi in fn_ids {
            let f = &model.fns[fi];
            if let Some((a, b)) = f.body {
                for t in &files[f.file].toks[a..=b] {
                    if t.kind == TokKind::Ident {
                        mentioned.insert(t.text.as_str());
                    }
                }
            }
        }
        for field in &s.fields {
            if !mentioned.contains(field.name.as_str()) {
                out.push(SemFinding {
                    rule: RuleId::D6,
                    file: s.file,
                    line: field.line,
                    col: field.col,
                    span_len: field.name.chars().count() as u32,
                    message: format!(
                        "field `{}` of `{}` is never mentioned in its \
                         write_state/read_state bodies; snapshots will silently \
                         drop it",
                        field.name, s.name
                    ),
                });
            }
        }
    }

    // Reachability: structs the ClusterSim object graph can hold that
    // contain snapshot-able state but provide no impl of their own.
    let struct_index: BTreeMap<(&str, &str), usize> = model
        .structs
        .iter()
        .enumerate()
        .map(|(i, s)| ((file_crates[s.file].as_str(), s.name.as_str()), i))
        .collect();
    let by_name: BTreeMap<&str, Vec<usize>> = {
        let mut m: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, s) in model.structs.iter().enumerate() {
            m.entry(s.name.as_str()).or_default().push(i);
        }
        m
    };
    let resolve = |from: usize, name: &str| -> Option<usize> {
        let home = file_crates[model.structs[from].file].as_str();
        if let Some(&i) = struct_index.get(&(home, name)) {
            return Some(i);
        }
        match by_name.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    };

    let mut queue: Vec<usize> = model
        .structs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "ClusterSim")
        .map(|(i, _)| i)
        .collect();
    let mut reachable: BTreeSet<usize> = queue.iter().copied().collect();
    while let Some(i) = queue.pop() {
        for field in &model.structs[i].fields {
            for t in &field.ty {
                if let Some(j) = resolve(i, t) {
                    if reachable.insert(j) {
                        queue.push(j);
                    }
                }
            }
        }
    }
    for &i in &reachable {
        let s = &model.structs[i];
        let key = (file_crates[s.file].clone(), s.name.clone());
        if active.contains_key(&key) {
            continue;
        }
        // First field whose type is itself snapshot-active.
        let offender = s.fields.iter().find(|f| {
            f.ty.iter().any(|t| {
                resolve(i, t).is_some_and(|j| {
                    let ss = &model.structs[j];
                    active.contains_key(&(file_crates[ss.file].clone(), ss.name.clone()))
                })
            })
        });
        if let Some(f) = offender {
            out.push(SemFinding {
                rule: RuleId::D6,
                file: s.file,
                line: s.line,
                col: s.col,
                span_len: s.name.chars().count() as u32,
                message: format!(
                    "`{}` is reachable from ClusterSim and holds snapshot-able \
                     field `{}` but provides no write_state/read_state of its own",
                    s.name, f.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// D7 — unit-dimension flow
// ---------------------------------------------------------------------

/// A resolved unit-typed term in an expression: `x.get()` or
/// `self.f.get()`.
struct UnitTerm {
    start: usize,
    end: usize,
    dim: &'static str,
}

fn d7_unit_flow(
    model: &Model,
    files: &[FileCtx<'_>],
    file_crates: &[String],
    out: &mut Vec<SemFinding>,
) {
    for f in &model.fns {
        let Some((body_start, body_end)) = f.body else {
            continue;
        };
        let in_units_rs = files[f.file].path.ends_with("units.rs");
        let toks = files[f.file].toks;
        // Environment: params and typed locals by name, owner's fields
        // for `self.x`.
        let mut env: BTreeMap<&str, &'static str> = BTreeMap::new();
        for (name, ty) in f.params.iter().chain(f.locals.iter()) {
            if let Some(dim) = unit_dim(ty) {
                env.insert(name.as_str(), dim);
            }
        }
        let mut fields: BTreeMap<&str, &'static str> = BTreeMap::new();
        if let Some(owner) = &f.owner {
            for s in model
                .structs
                .iter()
                .filter(|s| s.name == *owner && file_crates[s.file] == file_crates[f.file])
            {
                for fd in &s.fields {
                    if let Some(dim) = unit_dim(&fd.ty) {
                        fields.insert(fd.name.as_str(), dim);
                    }
                }
            }
        }
        if env.is_empty() && fields.is_empty() {
            continue;
        }

        // Collect `.get()` terms and `.0` escapes in one walk.
        let mut terms: Vec<UnitTerm> = Vec::new();
        let mut i = body_start;
        while i <= body_end {
            let t = &toks[i];
            // Base: `x` or `self.f` with a known dimension.
            let (base_dim, after_base) = if t.kind == TokKind::Ident && t.text == "self" {
                if toks.get(i + 1).is_some_and(|p| p.text == ".") {
                    match toks.get(i + 2) {
                        Some(ft) if ft.kind == TokKind::Ident => {
                            (fields.get(ft.text.as_str()).copied(), i + 3)
                        }
                        _ => (None, i + 1),
                    }
                } else {
                    (None, i + 1)
                }
            } else if t.kind == TokKind::Ident {
                // Not a field access on something else (`other.x`).
                let preceded_by_dot = i > 0 && toks[i - 1].text == ".";
                if preceded_by_dot {
                    (None, i + 1)
                } else {
                    (env.get(t.text.as_str()).copied(), i + 1)
                }
            } else {
                (None, i + 1)
            };
            let Some(dim) = base_dim else {
                i += 1;
                continue;
            };
            // `.get()` -> a raw-valued unit term.
            if toks.get(after_base).is_some_and(|p| p.text == ".")
                && toks.get(after_base + 1).is_some_and(|p| p.text == "get")
                && toks.get(after_base + 2).is_some_and(|p| p.text == "(")
                && toks.get(after_base + 3).is_some_and(|p| p.text == ")")
            {
                terms.push(UnitTerm {
                    start: i,
                    end: after_base + 3,
                    dim,
                });
                i = after_base + 4;
                continue;
            }
            // `.0` -> raw-field escape (only units.rs may).
            if !in_units_rs
                && toks.get(after_base).is_some_and(|p| p.text == ".")
                && toks
                    .get(after_base + 1)
                    .is_some_and(|p| p.kind == TokKind::Int && p.text == "0")
            {
                out.push(finding(
                    RuleId::D7,
                    f.file,
                    &toks[after_base + 1],
                    format!(
                        "raw `.0` access escapes the `{dim}` newtype; only \
                         units.rs and its declared conversions may unwrap it"
                    ),
                ));
                i = after_base + 2;
                continue;
            }
            i += 1;
        }

        // Adjacent terms joined by an arithmetic/comparison operator with
        // different dimensions: mixed-unit expression.
        for pair in terms.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let op_at = a.end + 1;
            let Some(op_tok) = toks.get(op_at) else {
                continue;
            };
            if op_tok.kind != TokKind::Punct {
                continue;
            }
            let (op, op_len) = match op_tok.text.as_str() {
                "+" | "-" | "*" | "/" | "==" | "!=" => (op_tok.text.clone(), 1usize),
                "<" | ">" => {
                    if toks.get(op_at + 1).is_some_and(|t| t.text == "=") {
                        (format!("{}=", op_tok.text), 2)
                    } else {
                        (op_tok.text.clone(), 1)
                    }
                }
                _ => continue,
            };
            if b.start != op_at + op_len {
                continue;
            }
            if a.dim != b.dim {
                out.push(SemFinding {
                    rule: RuleId::D7,
                    file: f.file,
                    line: op_tok.line,
                    col: op_tok.col,
                    span_len: op.chars().count() as u32,
                    message: format!(
                        "`{a}` {op} `{b}` mixes unit dimensions outside the \
                         declared conversions",
                        a = a.dim,
                        b = b.dim,
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// D8 — obs discipline
// ---------------------------------------------------------------------

fn is_restore_fn(name: &str) -> bool {
    name == "read_state" || name.starts_with("restore")
}

fn d8_obs_discipline(model: &Model, files: &[FileCtx<'_>], out: &mut Vec<SemFinding>) {
    // The kind registry: EventKind variants + NAMES string table.
    let variants: Vec<(&str, usize, u32, u32)> = model
        .enums
        .iter()
        .filter(|e| e.name == "EventKind")
        .flat_map(|e| {
            e.variants
                .iter()
                .map(move |(v, l, c)| (v.as_str(), e.file, *l, *c))
        })
        .collect();
    let names: Vec<(&str, usize, u32, u32)> = model
        .names_tables
        .iter()
        .flat_map(|t| {
            t.entries
                .iter()
                .map(move |(n, l, c)| (n.as_str(), t.file, *l, *c))
        })
        .collect();

    // Registry self-consistency (both halves present).
    if !variants.is_empty() && !names.is_empty() {
        for &(v, file, line, col) in &variants {
            let snake = camel_to_snake(v);
            let n = names.iter().filter(|(e, ..)| *e == snake).count();
            if n != 1 {
                out.push(SemFinding {
                    rule: RuleId::D8,
                    file,
                    line,
                    col,
                    span_len: v.chars().count() as u32,
                    message: format!(
                        "event kind `{v}` must be registered exactly once in \
                         NAMES (`{snake}` appears {n} times)"
                    ),
                });
            }
        }
        for &(e, file, line, col) in &names {
            let known = variants.iter().any(|(v, ..)| camel_to_snake(v) == e);
            if !known {
                out.push(SemFinding {
                    rule: RuleId::D8,
                    file,
                    line,
                    col,
                    span_len: (e.chars().count() + 2) as u32,
                    message: format!("NAMES entry `{e}` has no EventKind variant"),
                });
            }
        }
    }

    for site in &model.macros {
        let toks = files[site.file].toks;
        let anchor = &toks[site.tok];
        let expected = if site.name == "emit" { 4 } else { 5 };
        // Lexical balance, per enclosing function.
        let balanced = match (site.close, site.enclosing_fn) {
            (None, _) => false,
            (Some(c), Some(fi)) => model.fns[fi].body.is_none_or(|(_, end)| c <= end),
            (Some(_), None) => true,
        };
        if !balanced {
            out.push(finding(
                RuleId::D8,
                site.file,
                anchor,
                format!(
                    "`{}!` is not lexically balanced within its function",
                    site.name
                ),
            ));
            continue;
        }
        if site.args.len() != expected {
            let shape = if site.name == "emit" {
                "(recorder, at, track, kind)"
            } else {
                "(recorder, start, track, label, duration)"
            };
            out.push(finding(
                RuleId::D8,
                site.file,
                anchor,
                format!(
                    "`{}!` takes {expected} arguments {shape}; found {}",
                    site.name,
                    site.args.len()
                ),
            ));
        }
        // Emitted kind must be a declared variant.
        if site.name == "emit" && !variants.is_empty() {
            if let Some(&(a, b)) = site.args.last() {
                let arg = &toks[a..=b.min(toks.len() - 1)];
                let mut k = 0usize;
                while k + 2 < arg.len() {
                    if arg[k].text == "EventKind"
                        && arg[k + 1].text == "::"
                        && arg[k + 2].kind == TokKind::Ident
                    {
                        let v = arg[k + 2].text.as_str();
                        if !variants.iter().any(|(name, ..)| *name == v) {
                            out.push(finding(
                                RuleId::D8,
                                site.file,
                                &arg[k + 2],
                                format!("emitted kind `{v}` is not declared in EventKind"),
                            ));
                        }
                    }
                    k += 1;
                }
            }
        }
        // Restore paths are silent.
        if let Some(fi) = site.enclosing_fn {
            let f = &model.fns[fi];
            if is_restore_fn(&f.name) {
                out.push(finding(
                    RuleId::D8,
                    site.file,
                    anchor,
                    format!(
                        "`{}!` inside restore path `{}`; restore must emit zero \
                         obs events",
                        site.name, f.name
                    ),
                ));
            }
        }
    }

    // One level of propagation: a restore fn calling a fn that emits.
    let emitting: BTreeSet<usize> = model.macros.iter().filter_map(|m| m.enclosing_fn).collect();
    for (fi, f) in model.fns.iter().enumerate() {
        if !is_restore_fn(&f.name) {
            continue;
        }
        for call in calls_in_fn(model, files, fi) {
            let Some(callee) = call.callee else { continue };
            if emitting.contains(&callee) {
                let toks = files[f.file].toks;
                out.push(finding(
                    RuleId::D8,
                    f.file,
                    &toks[call.tok],
                    format!(
                        "`{}` emits obs events and is called from restore path \
                         `{}`",
                        model.fns[callee].name, f.name
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// D9 — hot-path allocation
// ---------------------------------------------------------------------

/// A banned allocation found directly inside a fn body.
struct AllocSite {
    tok: usize,
    span_len: u32,
    what: String,
}

/// A call site inside a fn body, with its resolved callee when the
/// receiver/path is unambiguous.
struct CallSite {
    tok: usize,
    callee: Option<usize>,
}

/// Token ranges inside a body that are exempt from hot-path scanning:
/// `emit!`/`span!` arguments are only evaluated when the recorder is
/// enabled, so they are zero-cost in the measured configuration.
fn exempt_ranges(model: &Model, file: usize) -> Vec<(usize, usize)> {
    model
        .macros
        .iter()
        .filter(|m| m.file == file)
        .filter_map(|m| m.close.map(|c| (m.tok, c)))
        .collect()
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| a <= i && i <= b)
}

/// Resolves the type (as tokens) of the receiver ending just before the
/// `.` at `dot`: a named local/param, `self.field`, or
/// `self.field[index]` (element type).
fn receiver_type(
    model: &Model,
    f: &FnDef,
    toks: &[Tok],
    dot: usize,
    file_crates: &[String],
) -> Option<Vec<String>> {
    let owner_fields = |name: &str| -> Option<Vec<String>> {
        let owner = f.owner.as_deref()?;
        model
            .structs
            .iter()
            .filter(|s| s.name == owner && file_crates[s.file] == file_crates[f.file])
            .flat_map(|s| s.fields.iter())
            .find(|fd| fd.name == name)
            .map(|fd| fd.ty.clone())
    };
    if dot == 0 {
        return None;
    }
    let prev = &toks[dot - 1];
    if prev.kind == TokKind::Ident && prev.text != "self" {
        // `self.f.push(..)`?
        if dot >= 3 && toks[dot - 2].text == "." && toks[dot - 3].text == "self" {
            return owner_fields(&prev.text);
        }
        if dot >= 2 && toks[dot - 2].text == "." {
            return None; // `other.f` — unknown receiver
        }
        // Plain binding.
        return f
            .params
            .iter()
            .chain(f.locals.iter())
            .find(|(n, _)| *n == prev.text)
            .map(|(_, ty)| ty.clone());
    }
    if prev.text == "]" {
        // `self.f[idx].push(..)` — walk back over the index.
        let mut depth = 0i32;
        let mut j = dot - 1;
        loop {
            match toks[j].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j >= 3 && toks[j - 2].text == "." && toks[j - 3].text == "self" {
            let field_ty = owner_fields(&toks[j - 1].text)?;
            return vec_elem(&field_ty);
        }
    }
    None
}

/// Scans a fn body for direct banned allocations.
fn alloc_sites(
    model: &Model,
    files: &[FileCtx<'_>],
    fi: usize,
    file_crates: &[String],
) -> Vec<AllocSite> {
    let f = &model.fns[fi];
    let Some((start, end)) = f.body else {
        return Vec::new();
    };
    let toks = files[f.file].toks;
    let exempt = exempt_ranges(model, f.file);
    let mut out = Vec::new();
    let mut i = start;
    while i <= end {
        if in_ranges(&exempt, i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let next = toks.get(i + 1).map(|t| t.text.as_str());
            let next2 = toks.get(i + 2).map(|t| t.text.as_str());
            let ctor = match (t.text.as_str(), next, next2) {
                ("Vec", Some("::"), Some(m @ ("new" | "with_capacity"))) => {
                    Some((3, format!("`Vec::{m}` allocates")))
                }
                ("String", Some("::"), Some(m @ ("new" | "from" | "with_capacity"))) => {
                    Some((3, format!("`String::{m}` allocates")))
                }
                ("Box", Some("::"), Some("new")) => Some((3, "`Box::new` allocates".to_string())),
                ("vec", Some("!"), _) => Some((2, "`vec!` allocates".to_string())),
                ("format", Some("!"), _) => Some((2, "`format!` allocates a String".to_string())),
                _ => None,
            };
            if let Some((span_toks, what)) = ctor {
                let last = &toks[(i + span_toks - 1).min(end)];
                let span_len = if last.line == t.line {
                    (last.col + last.text.chars().count() as u32).saturating_sub(t.col)
                } else {
                    t.text.chars().count() as u32
                };
                out.push(AllocSite {
                    tok: i,
                    span_len,
                    what,
                });
                i += span_toks;
                continue;
            }
            // Method calls: `.to_string()`, `.to_owned()`, `.push(..)`,
            // `.clone()` on heap receivers.
            let is_method = i > start
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(");
            if is_method {
                let m = t.text.as_str();
                let what = match m {
                    "to_string" => Some("`.to_string()` allocates a String".to_string()),
                    "to_owned" => Some("`.to_owned()` allocates".to_string()),
                    "push" | "push_back" | "push_front" | "insert" => {
                        receiver_type(model, f, toks, i - 1, file_crates)
                            .and_then(|ty| heap_head(&ty).map(|h| (h, ty)))
                            .map(|(h, _)| format!("`.{m}()` may grow the `{h}`"))
                    }
                    "clone" => receiver_type(model, f, toks, i - 1, file_crates)
                        .and_then(|ty| heap_head(&ty))
                        .map(|h| format!("`.clone()` deep-copies the `{h}`")),
                    _ => None,
                };
                if let Some(what) = what {
                    out.push(AllocSite {
                        tok: i,
                        span_len: t.text.chars().count() as u32,
                        what,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Finds call sites in a fn body and resolves callees where possible:
/// `self.m(..)` through the owner's impls, `Type::m(..)` through
/// `Type`'s impls, bare `m(..)` to a free fn in the same file.
fn calls_in_fn(model: &Model, files: &[FileCtx<'_>], fi: usize) -> Vec<CallSite> {
    let f = &model.fns[fi];
    let Some((start, end)) = f.body else {
        return Vec::new();
    };
    let toks = files[f.file].toks;
    let exempt = exempt_ranges(model, f.file);
    let find_method = |type_name: &str, m: &str| -> Option<usize> {
        model
            .fns
            .iter()
            .position(|g| g.name == m && g.owner.as_deref() == Some(type_name))
    };
    let mut out = Vec::new();
    for i in start..=end {
        if in_ranges(&exempt, i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || toks.get(i + 1).map(|n| n.text.as_str()) != Some("(") {
            continue;
        }
        // Skip the definition's own name (`fn name(`).
        if i > 0 && toks[i - 1].text == "fn" {
            continue;
        }
        let callee = if i >= 2 && toks[i - 1].text == "." {
            if toks[i - 2].text == "self" {
                f.owner.as_deref().and_then(|o| find_method(o, &t.text))
            } else {
                None // method on an unknown receiver
            }
        } else if i >= 2 && toks[i - 1].text == "::" && toks[i - 2].kind == TokKind::Ident {
            find_method(&toks[i - 2].text, &t.text)
        } else {
            // Bare call: free fn in the same file.
            model
                .fns
                .iter()
                .position(|g| g.name == t.text && g.owner.is_none() && g.file == f.file)
        };
        // A fn "calling itself" (recursion) is not a propagation edge.
        if callee == Some(fi) {
            continue;
        }
        out.push(CallSite { tok: i, callee });
    }
    out
}

fn d9_hot_allocation(model: &Model, files: &[FileCtx<'_>], out: &mut Vec<SemFinding>) {
    let file_crates: Vec<String> = files
        .iter()
        .map(|f| crate_key(f.path).to_string())
        .collect();
    // Direct allocations per fn, computed lazily once.
    let mut direct: Vec<Option<Vec<AllocSite>>> = (0..model.fns.len()).map(|_| None).collect();
    let get_direct = |fi: usize, direct: &mut Vec<Option<Vec<AllocSite>>>| {
        if direct[fi].is_none() {
            direct[fi] = Some(alloc_sites(model, files, fi, &file_crates));
        }
    };
    for fi in 0..model.fns.len() {
        if !model.fns[fi].hot {
            continue;
        }
        let f = &model.fns[fi];
        let toks = files[f.file].toks;
        get_direct(fi, &mut direct);
        for site in direct[fi].as_ref().into_iter().flatten() {
            let t = &toks[site.tok];
            out.push(SemFinding {
                rule: RuleId::D9,
                file: f.file,
                line: t.line,
                col: t.col,
                span_len: site.span_len,
                message: format!("hot fn `{}`: {}", f.name, site.what),
            });
        }
        // One level of cross-file propagation through non-hot callees.
        for call in calls_in_fn(model, files, fi) {
            let Some(ci) = call.callee else { continue };
            if model.fns[ci].hot {
                continue;
            }
            get_direct(ci, &mut direct);
            if let Some(first) = direct[ci].as_ref().and_then(|v| v.first()) {
                let callee = &model.fns[ci];
                let t = &toks[call.tok];
                out.push(SemFinding {
                    rule: RuleId::D9,
                    file: f.file,
                    line: t.line,
                    col: t.col,
                    span_len: t.text.chars().count() as u32,
                    message: format!(
                        "hot fn `{}` calls `{}` ({}:{}), which allocates ({})",
                        f.name, callee.name, files[callee.file].path, callee.line, first.what
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_on(srcs: &[(&str, &str)]) -> Vec<(String, u32, String)> {
        let lexed: Vec<_> = srcs.iter().map(|(_, s)| lex(s)).collect();
        let slices: Vec<&[Tok]> = lexed.iter().map(|l| &l.tokens[..]).collect();
        let mut model = Model::build(&slices);
        let ctxs: Vec<FileCtx<'_>> = srcs
            .iter()
            .zip(&slices)
            .map(|((p, _), toks)| FileCtx { path: p, toks })
            .collect();
        // Attach hot marks from comments.
        let mut marks = Vec::new();
        for ((p, _), l) in srcs.iter().zip(&lexed) {
            marks.extend(crate::suppress::scan(&l.comments, p).hot_marks);
        }
        let mut out = Vec::new();
        attach_hot_marks(&mut model, &ctxs, &mut marks, &mut out);
        out.extend(run(&model, &ctxs));
        out.into_iter()
            .map(|f| (f.rule.as_str().to_string(), f.line, f.message))
            .collect()
    }

    #[test]
    fn d6_flags_missing_field_mention() {
        let hits = run_on(&[(
            "a.rs",
            "struct S { a: u64, b: u64 }\n\
             impl Snapshot for S {\n    fn write_state(&self, w: &mut W) { w.u64(self.a); }\n}\n\
             impl Restore for S {\n    fn read_state(&mut self, r: &mut R) { self.a = r.u64(); }\n}\n",
        )]);
        let d6: Vec<_> = hits.iter().filter(|(r, ..)| r == "D6").collect();
        assert_eq!(d6.len(), 1);
        assert!(d6[0].2.contains("field `b`"));
        assert_eq!(d6[0].1, 1);
    }

    #[test]
    fn d6_reachability_flags_missing_impl() {
        let hits = run_on(&[(
            "a.rs",
            "struct ClusterSim { inner: Holder }\n\
             struct Holder { rng: SimRng }\n\
             struct SimRng { state: u64 }\n\
             impl Snapshot for SimRng { fn write_state(&self, w: &mut W) { w.u64(self.state); } }\n\
             impl ClusterSim { fn write_state(&self) { self.inner; } fn read_state(&mut self) {} }\n",
        )]);
        let d6: Vec<_> = hits.iter().filter(|(r, ..)| r == "D6").collect();
        assert_eq!(d6.len(), 1, "{d6:?}");
        assert!(d6[0].2.contains("`Holder`"));
        assert!(d6[0].2.contains("`rng`"));
    }

    #[test]
    fn d7_flags_mixed_dims_and_escape() {
        let hits = run_on(&[(
            "a.rs",
            "fn f(e: Joules, d: Micros, w: Watts) -> f64 {\n\
             let ok = e.get() + e.get();\n\
             let bad = e.get() / d.get();\n\
             let raw = w.0;\n\
             ok + bad + raw\n}\n",
        )]);
        let d7: Vec<_> = hits.iter().filter(|(r, ..)| r == "D7").collect();
        assert_eq!(d7.len(), 2, "{d7:?}");
        assert!(d7.iter().any(|(_, l, m)| *l == 3 && m.contains("Joules")));
        assert!(d7.iter().any(|(_, l, m)| *l == 4 && m.contains(".0")));
    }

    #[test]
    fn d7_units_rs_may_unwrap() {
        let hits = run_on(&[("crates/sim/src/units.rs", "fn f(w: Watts) -> f64 { w.0 }\n")]);
        assert!(hits.iter().all(|(r, ..)| r != "D7"), "{hits:?}");
    }

    #[test]
    fn d8_registry_and_restore_silence() {
        let hits = run_on(&[(
            "a.rs",
            "enum EventKind { IoStart, IoDone }\n\
             const NAMES: [&str; 2] = [\"io_start\", \"stray\"];\n\
             fn tick(rec: &R) { emit!(rec, t, tr, EventKind::IoStart); }\n\
             fn read_state(rec: &R) { emit!(rec, t, tr, EventKind::IoDone); }\n\
             fn restore_all(rec: &R) { tick(rec); }\n",
        )]);
        let d8: Vec<_> = hits.iter().filter(|(r, ..)| r == "D8").collect();
        // IoDone unregistered + stray entry + emit-in-read_state +
        // restore_all -> tick propagation.
        assert_eq!(d8.len(), 4, "{d8:?}");
        assert!(d8.iter().any(|(_, _, m)| m.contains("`IoDone`")));
        assert!(d8.iter().any(|(_, _, m)| m.contains("`stray`")));
        assert!(d8
            .iter()
            .any(|(_, _, m)| m.contains("restore path `read_state`")));
        assert!(d8
            .iter()
            .any(|(_, _, m)| m.contains("called from restore path `restore_all`")));
    }

    #[test]
    fn d9_direct_and_propagated() {
        let hits = run_on(&[
            (
                "a.rs",
                "struct Q { held: Vec<u64> }\n\
                 impl Q {\n\
                 // powadapt-lint: hot\n\
                 fn pop(&mut self) {\n    self.held.push(1);\n    helper();\n}\n\
                 }\n\
                 fn helper() { other(); }\n",
            ),
            ("b.rs", "fn other() { let v = Vec::new(); }\n"),
        ]);
        let d9: Vec<_> = hits.iter().filter(|(r, ..)| r == "D9").collect();
        // Direct push; helper() itself is clean (one level only, and
        // helper's call to other() is not followed transitively)...
        assert_eq!(d9.len(), 1, "{d9:?}");
        assert!(d9[0].2.contains("push"));
    }

    #[test]
    fn d9_one_level_propagation_flags_allocating_callee() {
        let hits = run_on(&[
            (
                "a.rs",
                "// powadapt-lint: hot\nfn hot_path() { drain(); }\n",
            ),
            ("a2.rs", "fn x() {}\n"),
        ]);
        // drain is unresolved (not in model) -> no finding.
        assert!(hits.iter().all(|(r, ..)| r != "D9"), "{hits:?}");
        let hits = run_on(&[(
            "a.rs",
            "// powadapt-lint: hot\nfn hot_path() { drain(); }\nfn drain() { let s = format!(\"x\"); }\n",
        )]);
        let d9: Vec<_> = hits.iter().filter(|(r, ..)| r == "D9").collect();
        assert_eq!(d9.len(), 1, "{d9:?}");
        assert!(d9[0].2.contains("`drain`"));
        assert!(d9[0].2.contains("format!"));
    }

    #[test]
    fn d9_emit_args_are_exempt() {
        let hits = run_on(&[(
            "a.rs",
            "// powadapt-lint: hot\nfn f(rec: &R) { emit!(rec, t, tr.to_string(), EventKind::X); }\n",
        )]);
        assert!(hits.iter().all(|(r, ..)| r != "D9"), "{hits:?}");
    }

    #[test]
    fn unattached_hot_mark_is_s0() {
        let hits = run_on(&[("a.rs", "// powadapt-lint: hot\nstruct NotAFn;\n")]);
        let s0: Vec<_> = hits.iter().filter(|(r, ..)| r == "S0").collect();
        assert_eq!(s0.len(), 1);
        assert!(s0[0].2.contains("hot"));
    }

    #[test]
    fn hot_mark_tolerates_attributes_and_pub() {
        let hits = run_on(&[(
            "a.rs",
            "// powadapt-lint: hot\n#[inline]\npub fn f() { let v = Vec::new(); }\n",
        )]);
        let d9: Vec<_> = hits.iter().filter(|(r, ..)| r == "D9").collect();
        assert_eq!(d9.len(), 1, "{d9:?}");
    }
}
