// Bad: RandomState collections in result-producing code (rule D2).

use std::collections::HashMap; //~ D2
use std::collections::HashSet; //~ D2

fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new(); //~ D2 D2
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    // This iteration is exactly the hazard: per-process order.
    counts.into_iter().collect()
}

fn distinct(xs: &[u32]) -> usize {
    let seen: HashSet<u32> = xs.iter().copied().collect(); //~ D2
    seen.len()
}
