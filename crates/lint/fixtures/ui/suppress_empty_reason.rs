// Bad: an empty reason does not count as a reason (rule S0).

fn take(o: Option<u8>) -> u8 {
    //~v S0
    // powadapt-lint: allow(D5, reason = "")
    o.unwrap() //~ D5
}
