// Bad: a suppression without the mandatory reason is itself a
// diagnostic (rule S0), and the violation it tried to cover still fires.

//~v S0
// powadapt-lint: allow(D2)
use std::collections::HashMap; //~ D2
