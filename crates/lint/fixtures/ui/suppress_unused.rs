// Bad: a suppression that matches nothing is flagged (rule S1) so stale
// allows cannot accumulate after the code they covered is fixed.

//~v S1
// powadapt-lint: allow(D2, reason = "the HashMap this covered was replaced by a BTreeMap")
fn count(xs: &[u32]) -> usize {
    xs.len()
}
