// Bad: a kind missing from NAMES, a stray NAMES entry, a wrong-arity
// emit, an undeclared kind, and emission on restore paths (rule D8).

enum EventKind {
    IoStart,
    IoDone, //~ D8
}

const NAMES: [&str; 2] = ["io_start", "stray"]; //~ D8

fn tick(rec: &Recorder) {
    emit!(rec, now, track); //~ D8
    emit!(rec, now, track, EventKind::Phantom); //~ D8
}

fn read_state(rec: &Recorder) {
    emit!(rec, now, track, EventKind::IoStart); //~ D8
}

fn restore_all(rec: &Recorder) {
    tick(rec); //~ D8
}
