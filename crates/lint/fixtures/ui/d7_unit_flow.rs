// Bad: arithmetic mixing unit dimensions, and a raw `.0` escape from a
// unit newtype outside units.rs (rule D7).

fn budget(e: Joules, d: Micros) -> f64 {
    let ok = e.get() + e.get();
    let bad = e.get() / d.get(); //~ D7
    ok + bad
}

struct Probe {
    power: Watts,
}

impl Probe {
    fn leak(&self) -> f64 {
        self.power.0 //~ D7
    }
}
