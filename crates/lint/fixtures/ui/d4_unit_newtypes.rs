// Bad: raw f64 unit quantities on public APIs (rule D4).

pub fn record_power(true_power_watts: f64) { //~ D4
    let _ = true_power_watts;
}

pub fn shape(delay_ms: f64, budget_joules: f64) { //~ D4 D4
    let _ = (delay_ms, budget_joules);
}

pub struct Probe;

impl Probe {
    pub fn observe(&mut self, p99_us: &f64) -> f64 { //~ D4
        *p99_us
    }

    // Typed params are the fix; this one is clean.
    pub fn observe_typed(&mut self, p99_us: Micros) -> Micros {
        p99_us
    }
}
