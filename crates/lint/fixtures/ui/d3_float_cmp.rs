// Bad: NaN-unsafe float comparisons in figure/stat code (rule D3).

fn sort_power(samples: &mut [f64]) {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ D3 D5
}

fn max_latency(samples: &[f64]) -> Option<f64> {
    samples
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("finite")) //~ D3 D5
}

fn is_idle(power: f64) -> bool {
    power == 0.0 //~ D3
}

fn not_unit(scale: f64) -> bool {
    1.0 != scale //~ D3
}
