// Bad: host wall clock and OS entropy in simulated code (rule D1).
// Annotation grammar (see tests/ui_fixtures.rs): a trailing tilde marker
// expects its rules on that line; the `v` variant targets the next line.

fn elapsed_nanos() -> u128 {
    let t0 = std::time::Instant::now(); //~ D1
    t0.elapsed().as_nanos()
}

fn stamp_secs() -> u64 {
    let now = std::time::SystemTime::now(); //~ D1
    now.duration_since(std::time::UNIX_EPOCH).map_or(0, |d| d.as_secs())
}

fn jitter() -> f64 {
    rand::random::<f64>() //~ D1
}

fn entropy_seed() -> u64 {
    let mut rng = OsRng; //~ D1
    0
}

fn workers() -> usize {
    std::env::var("WORKERS").map_or(1, |v| v.len()) //~ D1
}
