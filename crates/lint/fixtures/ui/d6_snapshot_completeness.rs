// Bad: a Snapshot impl that drops a field, and a struct reachable from
// ClusterSim holding snapshot-able state with no impl of its own
// (rule D6).

struct Meter {
    samples: u64,
    peak: u64, //~ D6
}

impl Snapshot for Meter {
    fn write_state(&self, w: &mut W) {
        w.u64(self.samples);
    }
}

impl Restore for Meter {
    fn read_state(&mut self, r: &mut R) {
        self.samples = r.u64();
    }
}

struct ClusterSim {
    holder: Holder,
}

struct Holder { //~ D6
    meter: Meter,
}

impl ClusterSim {
    fn write_state(&self, w: &mut W) {
        w.obj(&self.holder);
    }

    fn read_state(&mut self, _r: &mut R) {}
}
