// Bad: a reasoned allow pointing at the wrong line. A standalone
// suppression covers only the next source line, so the violation two
// lines down still fires and the stray allow is reported as unused (S1).

//~v S1
// powadapt-lint: allow(D2, reason = "aimed at the blank line below, not at the use")

use std::collections::HashMap; //~ D2
