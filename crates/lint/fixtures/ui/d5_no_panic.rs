// Bad: panicking error paths in library code (rule D5).

fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap() //~ D5
}

fn config_name(name: Option<&str>) -> &str {
    name.expect("config name set") //~ D5
}

fn route(kind: u8) -> u8 {
    match kind {
        0 => 1,
        1 => 0,
        _ => panic!("unknown kind {kind}"), //~ D5
    }
}

fn later() -> u8 {
    todo!() //~ D5
}

fn cold_path() -> u8 {
    unreachable!("guarded by route()") //~ D5
}
