// Bad: naming a rule that does not exist is a diagnostic (rule S0);
// only D1-D9 are suppressible.

//~v S0
// powadapt-lint: allow(D42, reason = "no such rule")
use std::collections::HashSet; //~ D2
