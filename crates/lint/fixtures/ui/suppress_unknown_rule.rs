// Bad: naming a rule that does not exist is a diagnostic (rule S0);
// only D1-D5 are suppressible.

//~v S0
// powadapt-lint: allow(D9, reason = "no such rule")
use std::collections::HashSet; //~ D2
