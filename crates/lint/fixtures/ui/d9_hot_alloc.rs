// Bad: allocation inside a declared hot path — directly, and one call
// away through a non-hot callee (rule D9). The dangling mark at the
// bottom is a suppression-hygiene error.

struct Queue {
    held: Vec<u64>,
}

impl Queue {
    // powadapt-lint: hot
    fn pop(&mut self) {
        self.held.push(1); //~ D9
        let label = format!("pop"); //~ D9
        refill(); //~ D9
    }
}

fn refill() {
    let _scratch: Vec<u64> = Vec::new();
}

//~v S0
// powadapt-lint: hot
struct NotAFn;
