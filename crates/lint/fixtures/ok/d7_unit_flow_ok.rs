// Good: same-dimension arithmetic only; the single boundary escape is
// justified inline.

fn budget(e: Joules, spare: Joules) -> f64 {
    e.get() + spare.get()
}

struct Probe {
    power: Watts,
}

impl Probe {
    fn csv_cell(&self) -> f64 {
        // powadapt-lint: allow(D7, reason = "CSV boundary serialization; the column header names the unit")
        self.power.0
    }
}
