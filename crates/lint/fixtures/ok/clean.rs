// Good: the compliant counterpart of the ui fixtures. BTree
// collections, total_cmp, typed unit parameters, and Result error
// paths produce zero diagnostics even with every rule enabled.

use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}

pub fn distinct(xs: &[u32]) -> usize {
    xs.iter().copied().collect::<BTreeSet<u32>>().len()
}

pub fn sort_power(samples: &mut [f64]) {
    samples.sort_by(f64::total_cmp);
}

pub fn is_idle(power: f64) -> bool {
    power.abs() < 1e-9
}

pub fn record_power(power: Watts) -> Watts {
    power
}

pub fn head(xs: &[u32]) -> Result<u32, DeviceError> {
    xs.first().copied().ok_or(DeviceError::Empty)
}
