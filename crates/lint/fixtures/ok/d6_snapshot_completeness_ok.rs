// Good: every field is serialized (or justified as derived), so the
// snapshot-completeness rule stays quiet.

struct Meter {
    samples: u64,
    peak: u64,
    // powadapt-lint: allow(d6, reason = "derived cache; read_state recomputes it from samples")
    cached_mean: u64,
}

impl Snapshot for Meter {
    fn write_state(&self, w: &mut W) {
        w.u64(self.samples);
        w.u64(self.peak);
    }
}

impl Restore for Meter {
    fn read_state(&mut self, r: &mut R) {
        self.samples = r.u64();
        self.peak = r.u64();
    }
}
