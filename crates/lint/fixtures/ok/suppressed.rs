// Good: every violation here carries a well-formed, reasoned
// suppression, so the analyzer exits clean (and records each use in the
// JSON report's audit trail).

// powadapt-lint: allow(D2, reason = "membership-only probe set; never iterated into output")
use std::collections::HashSet;

// powadapt-lint: allow(D2, reason = "membership-only probe set; never iterated into output")
fn seen(probes: &HashSet<u32>, id: u32) -> bool {
    probes.contains(&id)
}

fn is_sentinel(power: f64) -> bool {
    // powadapt-lint: allow(D3, reason = "exact zero is a sentinel written by the caller, never computed")
    power == 0.0
}

fn take(o: Option<u8>) -> u8 {
    // powadapt-lint: allow(D5, reason = "caller guarantees is_some(); checked one frame up")
    o.expect("checked by caller")
}

fn progress_elapsed_nanos() -> u128 {
    std::time::Instant::now().elapsed().as_nanos() // powadapt-lint: allow(D1, reason = "operator progress display only; never reaches results")
}
