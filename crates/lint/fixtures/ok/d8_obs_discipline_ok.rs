// Good: the registry halves agree, macro arities are right, and restore
// paths emit nothing.

enum EventKind {
    IoStart,
    IoDone,
}

const NAMES: [&str; 2] = ["io_start", "io_done"];

fn tick(rec: &Recorder) {
    emit!(rec, now, track, EventKind::IoStart);
    span!(rec, start, track, "drain", dur);
}

fn read_state(_rec: &Recorder) {
    // Restore rebuilds state without telling the recorder anything.
}
