// Good: the hot path writes into caller-owned reuse buffers; the one
// amortized growth site is justified inline.

struct Queue {
    held: Vec<u64>,
    scratch: Vec<u64>,
}

impl Queue {
    // powadapt-lint: hot
    fn pop(&mut self, out: &mut Vec<u64>) {
        if let Some(v) = self.held.last() {
            // powadapt-lint: allow(d9, reason = "amortized: scratch is recycled across calls and only grows to the high-water mark")
            self.scratch.push(*v);
        }
        drain(&mut self.scratch, out);
    }
}

fn drain(scratch: &mut Vec<u64>, out: &mut Vec<u64>) {
    out.extend(scratch.drain(..));
}
