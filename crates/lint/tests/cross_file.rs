//! Cross-file behavior of the two-pass analyzer: the symbol model spans
//! files, rules see it whole, and suppressions stay keyed to the file
//! that declares them. Plus the snapshot-ABI lock lifecycle end to end
//! against a real (temporary) workspace tree.

// Tests assert on exact expected values.
#![allow(clippy::unwrap_used)]

use std::path::PathBuf;

use powadapt_lint::{abi, analyze_files, compute_abi_lock, AnalysisMode};

fn files(list: &[(&str, &str)]) -> Vec<(String, String)> {
    list.iter()
        .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
        .collect()
}

#[test]
fn d9_propagates_one_level_across_files() {
    let analysis = analyze_files(
        &files(&[
            (
                "crates/sim/src/queue.rs",
                "impl Queue {\n\
                 // powadapt-lint: hot\n\
                 fn pop(&mut self) { Arena::refill(); }\n\
                 }\n",
            ),
            (
                "crates/sim/src/slab.rs",
                "impl Arena {\n    fn refill() { let v = Vec::new(); }\n}\n",
            ),
        ]),
        AnalysisMode::Scoped,
    );
    let d9: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.rule.as_str() == "D9")
        .collect();
    assert_eq!(d9.len(), 1, "{:?}", analysis.diagnostics);
    // The finding sits at the call site in queue.rs but names the
    // allocating callee's own file.
    assert_eq!(d9[0].path, "crates/sim/src/queue.rs");
    assert!(d9[0].message.contains("crates/sim/src/slab.rs"));
    assert!(d9[0].message.contains("`refill`"));
}

#[test]
fn d6_unions_snapshot_bodies_across_files_of_one_crate() {
    // Struct in one file, write_state in another, read_state in a third:
    // a field mentioned in ANY of them counts, so only `lost` fires.
    let analysis = analyze_files(
        &files(&[
            (
                "crates/sim/src/state.rs",
                "struct Kernel { kept_a: u64, kept_b: u64, lost: u64 }\n",
            ),
            (
                "crates/sim/src/save.rs",
                "impl Snapshot for Kernel {\n\
                 fn write_state(&self, w: &mut W) { w.u64(self.kept_a); }\n\
                 }\n",
            ),
            (
                "crates/sim/src/load.rs",
                "impl Restore for Kernel {\n\
                 fn read_state(&mut self, r: &mut R) { self.kept_b = r.u64(); }\n\
                 }\n",
            ),
        ]),
        AnalysisMode::Scoped,
    );
    let d6: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.rule.as_str() == "D6")
        .collect();
    assert_eq!(d6.len(), 1, "{:?}", analysis.diagnostics);
    assert!(d6[0].message.contains("field `lost`"));
    assert_eq!(d6[0].path, "crates/sim/src/state.rs");
}

#[test]
fn d6_same_name_structs_in_different_crates_stay_separate() {
    // sim's Counter is snapshot-active and incomplete; io's Counter has
    // the same shape but no impl — it must not inherit sim's finding,
    // nor trigger one of its own.
    let analysis = analyze_files(
        &files(&[
            (
                "crates/sim/src/counter.rs",
                "struct Counter { n: u64, dropped: u64 }\n\
                 impl Snapshot for Counter { fn write_state(&self, w: &mut W) { w.u64(self.n); } }\n",
            ),
            (
                "crates/io/src/counter.rs",
                "struct Counter { n: u64, dropped: u64 }\n",
            ),
        ]),
        AnalysisMode::Scoped,
    );
    let d6: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.rule.as_str() == "D6")
        .collect();
    assert_eq!(d6.len(), 1, "{:?}", analysis.diagnostics);
    assert_eq!(d6[0].path, "crates/sim/src/counter.rs");
}

#[test]
fn suppressions_are_keyed_per_file() {
    // Identical D2 violations in two files of one crate; only the file
    // that carries the allow is excused, and an allow that matches
    // nothing in ITS file is S1 even though the same rule fired (and was
    // suppressed) elsewhere in the workspace.
    let analysis = analyze_files(
        &files(&[
            (
                "crates/sim/src/a.rs",
                "// powadapt-lint: allow(D2, reason = \"membership probe only\")\n\
                 use std::collections::HashSet;\n",
            ),
            ("crates/sim/src/b.rs", "use std::collections::HashSet;\n"),
            (
                "crates/sim/src/c.rs",
                "// powadapt-lint: allow(D2, reason = \"nothing here matches\")\n\
                 fn quiet() {}\n",
            ),
        ]),
        AnalysisMode::Scoped,
    );
    let rules_by_path: Vec<(&str, &str)> = analysis
        .diagnostics
        .iter()
        .map(|d| (d.path.as_str(), d.rule.as_str()))
        .collect();
    assert_eq!(
        rules_by_path,
        [("crates/sim/src/b.rs", "D2"), ("crates/sim/src/c.rs", "S1"),],
        "{:?}",
        analysis.diagnostics
    );
    assert_eq!(analysis.suppressions_used.len(), 1);
    assert_eq!(analysis.suppressions_used[0].path, "crates/sim/src/a.rs");
}

/// Builds a throwaway workspace on disk for the ABI-lock lifecycle.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(name: &str, snap_lib: &str) -> Self {
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/snap/src")).unwrap();
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(root.join("crates/snap/src/lib.rs"), snap_lib).unwrap();
        TempWs { root }
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const SNAP_V2: &str = "pub const FORMAT_VERSION: u32 = 2;\n\
    pub struct SimRng { s0: u64, s1: u64 }\n\
    impl Snapshot for SimRng {\n\
    fn write_state(&self, w: &mut W) { w.u64(self.s0); w.u64(self.s1); }\n\
    fn read_state(&mut self, r: &mut R) { self.s0 = r.u64(); self.s1 = r.u64(); }\n\
    }\n";

#[test]
fn abi_lock_lifecycle_catches_unbumped_field_changes() {
    let ws = TempWs::new("abi_ws", SNAP_V2);

    // Fresh workspace: no lock yet.
    let current = compute_abi_lock(&ws.root).unwrap();
    assert!(current.contains("format_version = 2"));
    assert!(current.contains("snap/SimRng: s0, s1"));
    assert_eq!(abi::check(&current, None), abi::AbiStatus::Missing);

    // `--abi-update` writes the lock; the very next check is clean.
    let lock_path = ws.root.join(abi::LOCK_PATH);
    std::fs::create_dir_all(lock_path.parent().unwrap()).unwrap();
    std::fs::write(&lock_path, &current).unwrap();
    let on_disk = std::fs::read_to_string(&lock_path).unwrap();
    assert_eq!(
        abi::check(&compute_abi_lock(&ws.root).unwrap(), Some(&on_disk)),
        abi::AbiStatus::Clean
    );

    // Grow the struct without touching FORMAT_VERSION: hard failure.
    std::fs::write(
        ws.root.join("crates/snap/src/lib.rs"),
        SNAP_V2.replace("s1: u64 }", "s1: u64, s2: u64 }"),
    )
    .unwrap();
    assert_eq!(
        abi::check(&compute_abi_lock(&ws.root).unwrap(), Some(&on_disk)),
        abi::AbiStatus::ChangedWithoutBump
    );

    // Same change WITH a version bump: stale, i.e. "regenerate", not a
    // layout bug.
    std::fs::write(
        ws.root.join("crates/snap/src/lib.rs"),
        SNAP_V2
            .replace("s1: u64 }", "s1: u64, s2: u64 }")
            .replace("FORMAT_VERSION: u32 = 2", "FORMAT_VERSION: u32 = 3"),
    )
    .unwrap();
    assert_eq!(
        abi::check(&compute_abi_lock(&ws.root).unwrap(), Some(&on_disk)),
        abi::AbiStatus::Stale
    );
}
