//! Property tests for the analyzer's lexer: on arbitrary source-ish
//! input — including raw strings with hash guards, nested block
//! comments, lifetimes next to char literals, and non-ASCII text — the
//! lexer must never panic, and every token's `(line, col)` must point at
//! the exact character where its text begins. The second property is
//! what keeps diagnostic carets honest: a column drift of even one cell
//! (the classic UTF-8 bytes-vs-chars bug) breaks the pinned ui fixtures.

// Property tests assert on exact expected values.
#![allow(clippy::unwrap_used)]

use powadapt_lint::lexer::lex;
use proptest::prelude::*;

/// Totally arbitrary Unicode text (quotes, backslashes, emoji, control
/// characters) — drawn from the full scalar range so multi-byte
/// characters are always in play.
fn arbitrary_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x0011_0000, 0..24)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

/// Fragments biased toward the constructs the lexer special-cases, with
/// arbitrary Unicode mixed in one time out of four.
fn fragments() -> impl Strategy<Value = String> {
    let table: Vec<String> = [
        "fn f<'a>(x: &'a u8) {}",
        "let s = r#\"raw \" quote\"#;",
        "let s = r##\"nested \"# inside\"##;",
        "let b = br#\"bytes\"#;",
        "/* outer /* inner */ tail */",
        "// line comment with \"quote\n",
        "let c = 'x'; let n = '\\n'; let lt: &'static str = \"s\";",
        "道 = \"多字节\"; // コメント\n",
        "let v = 1.0f64 + 2e9 - 0x1f ..= 10;",
        "\"unterminated",
        "r#\"unterminated raw",
        "/* unterminated comment",
        "'",
        "\\",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    (proptest::sample::select(table), arbitrary_text(), 0u8..4).prop_map(|(fixed, arb, pick)| {
        if pick == 0 {
            arb
        } else {
            fixed
        }
    })
}

fn sources() -> impl Strategy<Value = String> {
    proptest::collection::vec(fragments(), 0..12).prop_map(|v| v.join(" "))
}

/// Character offset of 1-based `(line, col)` within `src`, or `None` if
/// the position is out of range.
fn char_offset(src: &str, line: u32, col: u32) -> Option<usize> {
    let mut chars_before = 0usize;
    for (i, l) in src.split_inclusive('\n').enumerate() {
        if i + 1 == line as usize {
            return Some(chars_before + (col as usize - 1));
        }
        chars_before += l.chars().count();
    }
    None
}

proptest! {
    /// The lexer is total: no input panics it, and it always terminates.
    #[test]
    fn lexing_never_panics(src in sources()) {
        let _ = lex(&src);
    }

    /// Every token's `(line, col)` locates the token's own text: reading
    /// `text.chars().count()` characters from that position in the
    /// original source reproduces the token byte-for-byte. This pins the
    /// column unit to characters (not bytes) on arbitrary Unicode.
    #[test]
    fn spans_locate_their_text(src in sources()) {
        let lexed = lex(&src);
        let all: Vec<char> = src.chars().collect();
        for t in &lexed.tokens {
            let off = char_offset(&src, t.line, t.col)
                .unwrap_or_else(|| panic!("token {:?} at {}:{} is out of range", t.text, t.line, t.col));
            let want: Vec<char> = t.text.chars().collect();
            let got = all.get(off..off + want.len());
            prop_assert_eq!(
                got,
                Some(&want[..]),
                "token {:?} mis-spanned at {}:{}",
                &t.text,
                t.line,
                t.col
            );
        }
        // Comments carry spans too — the suppression scanner anchors on
        // them, so they get the same treatment.
        for c in &lexed.comments {
            let off = char_offset(&src, c.line, c.col).unwrap();
            let want: Vec<char> = c.text.chars().collect();
            prop_assert_eq!(all.get(off..off + want.len()), Some(&want[..]));
        }
    }
}

/// Deterministic regression: the exact shape of the historical defect —
/// a multi-byte string literal earlier on the line used to shift every
/// later column by the extra UTF-8 bytes.
#[test]
fn non_ascii_does_not_shift_columns() {
    let src = "let s = \"héllo wörld\"; let x = 1;\n";
    let lexed = lex(src);
    let x = lexed.tokens.iter().find(|t| t.text == "x").unwrap();
    let char_col = src.chars().take_while(|&c| c != 'x').count() as u32 + 1;
    assert_eq!((x.line, x.col), (1, char_col));
}
