//! The workspace itself must pass its own analyzer.
//!
//! This is the self-hosting check: `cargo test -p powadapt-lint` fails
//! the moment anyone reintroduces a wall-clock read, a `HashMap` in a
//! result path, a NaN-unsafe sort, a raw-`f64` unit parameter, or an
//! unreasoned panic — without needing the CI lint job to run.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::path::Path;

use powadapt_lint::{analyze_workspace, find_workspace_root};

#[test]
fn workspace_has_zero_diagnostics() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = analyze_workspace(&root).expect("workspace readable");

    assert!(
        report.diagnostics.is_empty(),
        "workspace lint is not clean:\n{}",
        report
            .diagnostics
            .iter()
            .map(powadapt_lint::Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity that the walk actually visited the workspace (a wrong root
    // would vacuously pass with zero files).
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );
    // Every suppression in the tree fired (S1 enforces the converse).
    assert!(
        !report.suppressions_used.is_empty(),
        "expected the documented allows (e.g. parallel executor D1) to be in use"
    );
    // The report serializes: spot-check the JSON envelope.
    let json = report.to_json();
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"suppressions_used\""));
}

/// The telemetry layer added with the observability overhaul — the
/// quantile sketch, the sharded recorder, the energy ledger, and the
/// overhead bench — is scanned like any other source, and each file is
/// individually clean. Guards against these modules silently dropping
/// out of the walk (a path typo in an allowlist would do it) and against
/// new diagnostics hiding behind the workspace-level aggregate.
#[test]
fn telemetry_modules_are_scanned_and_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    for rel in [
        "crates/obs/src/sketch.rs",
        "crates/obs/src/shard.rs",
        "crates/obs/src/intern.rs",
        "crates/cluster/src/ledger.rs",
        "crates/bench/src/bin/obs_bench.rs",
        "crates/bench/src/bin/trace_query.rs",
    ] {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("telemetry module {rel} missing: {e}"));
        let analysis =
            powadapt_lint::analyze_source(rel, &src, powadapt_lint::AnalysisMode::Scoped);
        assert!(
            analysis.diagnostics.is_empty(),
            "{rel} is not lint-clean:\n{}",
            analysis
                .diagnostics
                .iter()
                .map(powadapt_lint::Diagnostic::render)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// The D1 (wall-clock) allowlist entry for the overhead bench is scoped
/// to exactly that file: obs_bench may read `Instant` (host time is its
/// measurand), every other telemetry file may not.
#[test]
fn obs_bench_wall_clock_allowlist_is_file_scoped() {
    use powadapt_lint::diag::RuleId;
    use powadapt_lint::scope::rule_applies;

    assert!(!rule_applies(
        RuleId::D1,
        "crates/bench/src/bin/obs_bench.rs"
    ));
    // The exemption must not leak to neighbors in the same directory,
    // nor to the modules whose overhead the bench measures.
    for rel in [
        "crates/bench/src/bin/trace_query.rs",
        "crates/obs/src/sketch.rs",
        "crates/obs/src/shard.rs",
        "crates/obs/src/intern.rs",
        "crates/cluster/src/ledger.rs",
    ] {
        assert!(rule_applies(RuleId::D1, rel), "D1 must apply to {rel}");
    }
}
