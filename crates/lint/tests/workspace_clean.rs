//! The workspace itself must pass its own analyzer.
//!
//! This is the self-hosting check: `cargo test -p powadapt-lint` fails
//! the moment anyone reintroduces a wall-clock read, a `HashMap` in a
//! result path, a NaN-unsafe sort, a raw-`f64` unit parameter, or an
//! unreasoned panic — without needing the CI lint job to run.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::path::Path;

use powadapt_lint::{analyze_workspace, find_workspace_root};

#[test]
fn workspace_has_zero_diagnostics() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = analyze_workspace(&root).expect("workspace readable");

    assert!(
        report.diagnostics.is_empty(),
        "workspace lint is not clean:\n{}",
        report
            .diagnostics
            .iter()
            .map(powadapt_lint::Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity that the walk actually visited the workspace (a wrong root
    // would vacuously pass with zero files).
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );
    // Every suppression in the tree fired (S1 enforces the converse).
    assert!(
        !report.suppressions_used.is_empty(),
        "expected the documented allows (e.g. parallel executor D1) to be in use"
    );
    // The report serializes: spot-check the JSON envelope.
    let json = report.to_json();
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"suppressions_used\""));
}
