//! UI fixture self-tests.
//!
//! Every file under `fixtures/ui/` is a bad snippet annotated with the
//! diagnostics it must produce: a trailing `//~ R1 [R2 ...]` expects
//! those rules on its own line, a standalone `//~v R1 [R2 ...]` expects
//! them on the next line (used when the diagnostic anchors on a comment,
//! as S0/S1 do). Each fixture must match its annotations *exactly* —
//! no missing and no extra diagnostics — both through the library API
//! and through the installed binary's exit code. Files under
//! `fixtures/ok/` must produce zero diagnostics even with every rule
//! enabled.

// Tests and examples assert on exact expected values; unwraps and
// bit-exact float comparisons are deliberate here (see workspace lints).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::path::{Path, PathBuf};
use std::process::Command;

use powadapt_lint::{analyze_source, AnalysisMode};

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
}

fn fixture_files(kind: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(fixture_dir(kind))
        .expect("fixture dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures found under fixtures/{kind}");
    files
}

/// Parses `//~` annotations into a sorted list of `(line, rule)` pairs.
fn expectations(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let Some(pos) = line.find("//~") else {
            continue;
        };
        let rest = &line[pos + 3..];
        let (target, rules) = match rest.strip_prefix('v') {
            Some(r) => (lineno + 1, r),
            None => (lineno, rest),
        };
        for rule in rules.split_whitespace() {
            out.push((target, rule.to_string()));
        }
    }
    out.sort();
    out
}

#[test]
fn every_ui_fixture_matches_its_annotations_exactly() {
    for path in fixture_files("ui") {
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let expected = expectations(&src);
        assert!(
            !expected.is_empty(),
            "{}: ui fixture has no //~ annotations",
            path.display()
        );

        let analysis = analyze_source(
            &path.file_name().unwrap().to_string_lossy(),
            &src,
            AnalysisMode::AllRules,
        );
        let mut actual: Vec<(u32, String)> = analysis
            .diagnostics
            .iter()
            .map(|d| (d.line, d.rule.as_str().to_string()))
            .collect();
        actual.sort();
        assert_eq!(
            actual,
            expected,
            "{}: diagnostics (left) do not match //~ annotations (right)",
            path.display()
        );

        // Span sanity: every diagnostic points inside its line and
        // renders with its rule id.
        let lines: Vec<&str> = src.lines().collect();
        for d in &analysis.diagnostics {
            let line = lines[d.line as usize - 1];
            assert!(
                d.col >= 1 && (d.col as usize - 1) <= line.chars().count(),
                "{}: col {} outside line {}",
                path.display(),
                d.col,
                d.line
            );
            assert!(d.span_len >= 1);
            let rendered = d.render();
            assert!(rendered.contains(&format!("error[{}]", d.rule.as_str())));
            assert!(rendered.contains(&format!(":{}:{}", d.line, d.col)));
        }
    }
}

#[test]
fn ui_fixture_spans_underline_the_offending_token() {
    // Spot-check that columns land on the construct the rule names.
    let cases: &[(&str, &str, &str)] = &[
        ("d1_wall_clock.rs", "D1", "Instant"),
        ("d2_hash_collections.rs", "D2", "Hash"),
        ("d3_float_cmp.rs", "D3", "partial_cmp"),
        ("d4_unit_newtypes.rs", "D4", "true_power_watts"),
        ("d5_no_panic.rs", "D5", "unwrap"),
    ];
    for (file, rule, token) in cases {
        let path = fixture_dir("ui").join(file);
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let analysis = analyze_source(file, &src, AnalysisMode::AllRules);
        let first = analysis
            .diagnostics
            .iter()
            .find(|d| d.rule.as_str() == *rule)
            .unwrap_or_else(|| panic!("{file}: no {rule} diagnostic"));
        let line = src.lines().nth(first.line as usize - 1).expect("line");
        let at_span: String = line.chars().skip(first.col as usize - 1).collect();
        assert!(
            at_span.starts_with(token),
            "{file}: {rule} span at {}:{} points at {at_span:?}, expected {token:?}",
            first.line,
            first.col
        );
    }
}

#[test]
fn ok_fixtures_are_clean_under_all_rules() {
    for path in fixture_files("ok") {
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let analysis = analyze_source(
            &path.file_name().unwrap().to_string_lossy(),
            &src,
            AnalysisMode::AllRules,
        );
        assert!(
            analysis.diagnostics.is_empty(),
            "{}: expected clean, got:\n{}",
            path.display(),
            analysis
                .diagnostics
                .iter()
                .map(powadapt_lint::Diagnostic::render)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    // The suppressed fixture must actually exercise the audit trail.
    let src = std::fs::read_to_string(fixture_dir("ok").join("suppressed.rs")).expect("readable");
    let analysis = analyze_source("suppressed.rs", &src, AnalysisMode::AllRules);
    assert!(
        analysis.suppressions_used.len() >= 4,
        "expected every allow in suppressed.rs to fire, got {}",
        analysis.suppressions_used.len()
    );
}

#[test]
fn binary_exits_nonzero_on_every_ui_fixture_and_zero_on_ok() {
    let bin = env!("CARGO_BIN_EXE_powadapt-lint");
    for path in fixture_files("ui") {
        let status = Command::new(bin)
            .args(["--all-rules", "--quiet"])
            .arg(&path)
            .status()
            .expect("binary runs");
        assert_eq!(
            status.code(),
            Some(1),
            "{}: expected exit 1 (diagnostics found)",
            path.display()
        );
    }
    for path in fixture_files("ok") {
        let status = Command::new(bin)
            .args(["--all-rules", "--quiet"])
            .arg(&path)
            .status()
            .expect("binary runs");
        assert_eq!(
            status.code(),
            Some(0),
            "{}: expected exit 0 (clean)",
            path.display()
        );
    }
}

#[test]
fn suppression_fixture_messages_name_the_defect() {
    // Satellite: the three suppression-hygiene failure modes carry
    // actionable messages end to end, not just the right rule id.
    let read = |name: &str| {
        let src = std::fs::read_to_string(fixture_dir("ui").join(name)).expect("readable");
        analyze_source(name, &src, AnalysisMode::AllRules)
    };

    let missing = read("suppress_missing_reason.rs");
    let s0 = missing
        .diagnostics
        .iter()
        .find(|d| d.rule.as_str() == "S0")
        .expect("S0 present");
    assert!(s0.message.contains("reason"), "got: {}", s0.message);

    let unknown = read("suppress_unknown_rule.rs");
    let s0 = unknown
        .diagnostics
        .iter()
        .find(|d| d.rule.as_str() == "S0")
        .expect("S0 present");
    assert!(
        s0.message.contains("unknown rule `D42`"),
        "got: {}",
        s0.message
    );

    let unused = read("suppress_unused.rs");
    let s1 = unused
        .diagnostics
        .iter()
        .find(|d| d.rule.as_str() == "S1")
        .expect("S1 present");
    assert!(s1.message.contains("nothing"), "got: {}", s1.message);
}
