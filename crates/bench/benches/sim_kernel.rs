//! Microbenchmarks of the discrete-event kernel: the hot paths every
//! device simulation runs millions of times per simulated second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use powadapt_sim::{EventQueue, RollingMean, SimDuration, SimRng, SimTime, StepSignal, Summary};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        let mut rng = SimRng::seed_from(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.u64_range(0, 1_000_000)).collect();
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_nanos(t), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("event_queue/interleaved_1k", |b| {
        let mut rng = SimRng::seed_from(2);
        let deltas: Vec<u64> = (0..1_000).map(|_| rng.u64_range(1, 5_000)).collect();
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                let mut now = 0u64;
                for &d in &deltas {
                    q.schedule(SimTime::from_nanos(now + d), d);
                    q.schedule(SimTime::from_nanos(now + 2 * d), d);
                    if let Some((t, _)) = q.pop() {
                        now = t.as_nanos();
                    }
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_rolling_mean(c: &mut Criterion) {
    c.bench_function("rolling_mean/push_query_10k", |b| {
        let mut rng = SimRng::seed_from(3);
        let steps: Vec<(u64, f64)> = (0..10_000)
            .map(|i| {
                (
                    i * 700 + rng.u64_range(0, 500),
                    rng.uniform_range(0.0, 20.0),
                )
            })
            .collect();
        b.iter(|| {
            let mut rm = RollingMean::new(SimDuration::from_millis(25), 5.0);
            for &(t, v) in &steps {
                rm.push(SimTime::from_micros(t), v);
                black_box(rm.mean_at(SimTime::from_micros(t)));
            }
        });
    });
}

fn bench_signal_and_stats(c: &mut Criterion) {
    c.bench_function("step_signal/integrate_1k_steps", |b| {
        let mut sig = StepSignal::new(1.0);
        for i in 1..1_000u64 {
            sig.step(SimTime::from_micros(i * 37), (i % 13) as f64);
        }
        let end = SimTime::from_micros(37_000);
        b.iter(|| black_box(sig.integrate(SimTime::ZERO, end)));
    });

    c.bench_function("summary/build_and_percentiles_10k", |b| {
        let mut rng = SimRng::seed_from(4);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.normal(8.0, 1.5)).collect();
        b.iter(|| {
            let s = Summary::from_samples(&samples).expect("finite samples");
            black_box((s.mean(), s.median(), s.percentile(99.0)))
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/normal_100k", |b| {
        b.iter_batched(
            || SimRng::seed_from(5),
            |mut rng| {
                let mut acc = 0.0;
                for _ in 0..100_000 {
                    acc += rng.normal(0.0, 1.0);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rolling_mean,
    bench_signal_and_stats,
    bench_rng
);
criterion_main!(benches);
