//! Model-layer benchmarks: building power-throughput models, extracting
//! Pareto frontiers, and solving fleet allocations under a budget — the
//! operations a power-adaptive control plane runs on every budget event.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use powadapt_device::{PowerStateId, KIB};
use powadapt_io::Workload;
use powadapt_model::{
    best_under_power_budget, pareto_frontier, ConfigPoint, FleetModel, PowerThroughputModel,
};
use powadapt_sim::SimRng;

fn synthetic_points(device: &str, n: usize, seed: u64) -> Vec<ConfigPoint> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| {
            let power = rng.uniform_range(4.0, 16.0);
            // Correlated throughput with noise: realistic model clouds.
            let thr = (power - 3.0) * 2.5e8 * rng.uniform_range(0.6, 1.4);
            ConfigPoint::new(
                device,
                Workload::RandWrite,
                PowerStateId((i % 3) as u8),
                (4 * KIB) << (i % 6),
                1 << (i % 8),
                power,
                thr,
            )
        })
        .collect()
}

fn bench_model(c: &mut Criterion) {
    let points = synthetic_points("D", 216, 1);
    c.bench_function("model/build_216_points", |b| {
        b.iter(|| {
            black_box(PowerThroughputModel::from_points("D", points.clone()).expect("valid"))
        });
    });

    c.bench_function("model/pareto_216_points", |b| {
        b.iter(|| black_box(pareto_frontier(&points)));
    });

    let model = PowerThroughputModel::from_points("D", points.clone()).expect("valid");
    c.bench_function("model/solve_budget", |b| {
        b.iter(|| black_box(best_under_power_budget(&model, 9.5)));
    });
}

fn bench_fleet(c: &mut Criterion) {
    // A 16-device heterogeneous fleet, 216 configurations each.
    let models: Vec<PowerThroughputModel> = (0..16)
        .map(|i| {
            let name = format!("D{i}");
            let pts = synthetic_points(&name, 216, i as u64 + 10);
            PowerThroughputModel::from_points(name, pts).expect("valid")
        })
        .collect();
    let fleet = FleetModel::new(models);

    let mut g = c.benchmark_group("fleet");
    g.sample_size(20);
    g.bench_function("allocate_16dev_0.1w", |b| {
        b.iter(|| black_box(fleet.allocate(140.0, 0.1)));
    });
    g.bench_function("allocate_16dev_0.02w", |b| {
        b.iter(|| black_box(fleet.allocate(140.0, 0.02)));
    });
    g.finish();
}

criterion_group!(benches, bench_model, bench_fleet);
criterion_main!(benches);
