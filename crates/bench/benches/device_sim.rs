//! Device-simulator throughput: wall-clock cost of simulating the paper's
//! workloads. Each benchmark simulates a fixed amount of IO end to end
//! (engine + device + 1 kHz metering).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use powadapt_device::{catalog, GIB, KIB, MIB};
use powadapt_io::{run_experiment, JobSpec, Workload};
use powadapt_sim::SimDuration;

fn quick_job(w: Workload, chunk: u64, depth: usize) -> JobSpec {
    JobSpec::new(w)
        .block_size(chunk)
        .io_depth(depth)
        .runtime(SimDuration::from_millis(100))
        .size_limit(GIB)
        .seed(9)
}

fn bench_ssd(c: &mut Criterion) {
    let mut g = c.benchmark_group("ssd_sim");
    g.sample_size(20);
    g.bench_function("randread_4k_qd32_100ms", |b| {
        b.iter(|| {
            let mut dev = catalog::ssd2_d7_p5510(9);
            black_box(
                run_experiment(&mut dev, &quick_job(Workload::RandRead, 4 * KIB, 32))
                    .expect("runs"),
            )
        });
    });
    g.bench_function("seqwrite_1m_qd64_100ms", |b| {
        b.iter(|| {
            let mut dev = catalog::ssd2_d7_p5510(9);
            black_box(
                run_experiment(&mut dev, &quick_job(Workload::SeqWrite, MIB, 64)).expect("runs"),
            )
        });
    });
    g.bench_function("capped_randwrite_256k_qd64_100ms", |b| {
        b.iter(|| {
            let mut dev = catalog::ssd2_d7_p5510(9);
            powadapt_device::StorageDevice::set_power_state(
                &mut dev,
                powadapt_device::PowerStateId(2),
            )
            .expect("ps2 exists");
            black_box(
                run_experiment(&mut dev, &quick_job(Workload::RandWrite, 256 * KIB, 64))
                    .expect("runs"),
            )
        });
    });
    g.finish();
}

fn bench_hdd(c: &mut Criterion) {
    let mut g = c.benchmark_group("hdd_sim");
    g.sample_size(20);
    g.bench_function("randread_4k_qd8_500ms", |b| {
        b.iter(|| {
            let mut dev = catalog::hdd_exos_7e2000(9);
            let job = JobSpec::new(Workload::RandRead)
                .block_size(4 * KIB)
                .io_depth(8)
                .runtime(SimDuration::from_millis(500))
                .size_limit(GIB)
                .seed(9);
            black_box(run_experiment(&mut dev, &job).expect("runs"))
        });
    });
    g.bench_function("seqwrite_1m_qd4_200ms", |b| {
        b.iter(|| {
            let mut dev = catalog::hdd_exos_7e2000(9);
            let job = JobSpec::new(Workload::SeqWrite)
                .block_size(MIB)
                .io_depth(4)
                .runtime(SimDuration::from_millis(200))
                .size_limit(GIB)
                .seed(9);
            black_box(run_experiment(&mut dev, &job).expect("runs"))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ssd, bench_hdd);
criterion_main!(benches);
