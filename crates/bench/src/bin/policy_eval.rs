//! Evaluation of the §4 power-adaptive policies by measurement — the
//! experiments the paper proposes as future systems work, run on the
//! simulated fleet:
//!
//! 1. power-aware IO redirection (consolidation) across demand levels,
//! 2. asymmetric IO (write segregation) under fleet-wide caps,
//! 3. the §4.1 mechanism crossover (shape vs redirect),
//! 4. closed-loop budget tracking,
//! 5. fault tolerance: throughput and tail cost of riding through a
//!    device dropout behind the circuit breaker.
//!
//! Run with: `cargo run --release -p powadapt-bench --bin policy_eval`

use powadapt_bench::{apply_cli_workers, report_executor};
use powadapt_core::{
    choose_mechanism, redirect_crossover_fraction, AdaptiveScenarioRouter, BudgetSchedule,
    ConsolidatingRouter, PowerEventCause, RedirectionConfig, WriteSegregationRouter,
};
use powadapt_device::{catalog, FaultInjector, FaultPlan, PowerStateId, StorageDevice, GIB, KIB};
use powadapt_io::{
    full_sweep, run_cells, run_fleet, AccessPattern, Arrivals, BreakerConfig, CircuitBreakerRouter,
    LeastLoadedRouter, OpenLoopSpec, ParallelConfig, SweepScale, Workload,
};
use powadapt_model::PowerThroughputModel;
use powadapt_sim::{SimDuration, SimTime};

fn evo_fleet(n: usize) -> Vec<Box<dyn StorageDevice>> {
    (0..n)
        .map(|i| Box::new(catalog::evo_860(900 + i as u64)) as Box<dyn StorageDevice>)
        .collect()
}

fn ssd2_fleet(n: usize) -> Vec<Box<dyn StorageDevice>> {
    (0..n)
        .map(|i| Box::new(catalog::ssd2_d7_p5510(900 + i as u64)) as Box<dyn StorageDevice>)
        .collect()
}

fn stream(rate_iops: f64, block: u64, read_fraction: f64, ms: u64) -> OpenLoopSpec {
    OpenLoopSpec {
        arrivals: Arrivals::Poisson { rate_iops },
        block_size: block,
        read_fraction,
        pattern: AccessPattern::Random,
        region: (0, 8 * GIB),
        duration: SimDuration::from_millis(ms),
        seed: 99,
        zipf_theta: None,
    }
}

fn consolidation_section() {
    println!("== 1. Power-aware IO redirection: measured savings by demand (8x 860 EVO) ==");
    println!(
        "   {:>9} {:>11} {:>13} {:>9} {:>12} {:>12}",
        "demand", "baseline W", "consolidated W", "saved", "base p99 us", "cons p99 us"
    );
    let cfg = RedirectionConfig {
        per_device_capacity_bps: 0.4e9,
        active_power_w: 2.0,
        standby_power_w: 0.17,
        wake_latency: SimDuration::from_millis(400),
        grow_threshold: 0.85,
        shrink_threshold: 0.6,
    };
    // Each demand level's baseline/consolidated pair is an independent
    // fleet simulation; fan all of them across the configured workers.
    let demands = [20.0, 80.0, 320.0, 1280.0];
    let pairs = run_cells(&demands, &ParallelConfig::from_env(), |_, &mbs| {
        let rate = mbs * 1e6 / (64.0 * 1024.0);
        let spec = stream(rate, 64 * KIB, 1.0, 1500);
        let interval = SimDuration::from_millis(100);
        let baseline = {
            let mut devices = evo_fleet(8);
            let mut router = LeastLoadedRouter::default();
            run_fleet(&mut devices, &mut router, &spec, interval).expect("runs")
        };
        let consolidated = {
            let mut devices = evo_fleet(8);
            let mut router = ConsolidatingRouter::new(8, cfg).expect("valid");
            run_fleet(&mut devices, &mut router, &spec, interval).expect("runs")
        };
        (baseline, consolidated)
    });
    for (mbs, (baseline, consolidated)) in demands.iter().zip(&pairs) {
        println!(
            "   {:>6.0}MB/s {:>10.2} {:>13.2} {:>8.0}% {:>12.0} {:>12.0}",
            mbs,
            baseline.avg_power_w(),
            consolidated.avg_power_w(),
            100.0 * (1.0 - consolidated.avg_power_w() / baseline.avg_power_w()),
            baseline.total.p99_latency_us(),
            consolidated.total.p99_latency_us(),
        );
    }
    println!();
}

fn segregation_section() {
    println!("== 2. Asymmetric IO: write QoS under fleet-wide caps (4x SSD2, 8.5 GB/s offered) ==");
    let spec = OpenLoopSpec {
        arrivals: Arrivals::Poisson { rate_iops: 4_096.0 },
        block_size: 2048 * KIB,
        read_fraction: 0.18,
        pattern: AccessPattern::Random,
        region: (0, 8 * GIB),
        duration: SimDuration::from_millis(1200),
        seed: 6,
        zipf_theta: None,
    };
    let interval = SimDuration::from_millis(50);

    #[derive(Debug, Default)]
    struct AllCapped(LeastLoadedRouter, bool);
    impl powadapt_io::Router for AllCapped {
        fn route(
            &mut self,
            a: &powadapt_io::Arrival,
            f: &[powadapt_io::DeviceStatus],
        ) -> powadapt_io::Route {
            self.0.route(a, f)
        }
        fn control(
            &mut self,
            _n: SimTime,
            f: &[powadapt_io::DeviceStatus],
        ) -> Vec<powadapt_io::DeviceCommand> {
            if self.1 {
                return Vec::new();
            }
            self.1 = true;
            (0..f.len())
                .map(|device| powadapt_io::DeviceCommand::SetPowerState {
                    device,
                    ps: PowerStateId(2),
                })
                .collect()
        }
    }

    let uniform = {
        let mut devices = ssd2_fleet(4);
        let mut router = AllCapped::default();
        run_fleet(&mut devices, &mut router, &spec, interval).expect("runs")
    };
    let segregated = {
        let mut devices = ssd2_fleet(4);
        let mut router = WriteSegregationRouter::new(3, PowerStateId(2));
        run_fleet(&mut devices, &mut router, &spec, interval).expect("runs")
    };
    println!(
        "   all-capped (ps2 everywhere): {:>6.1} W, write avg {:>7.0} us, write p99 {:>8.0} us",
        uniform.avg_power_w(),
        uniform.writes.avg_latency_us(),
        uniform.writes.p99_latency_us()
    );
    println!(
        "   segregated (3 writers + capped reader): {:>6.1} W, write avg {:>7.0} us, write p99 {:>8.0} us",
        segregated.avg_power_w(),
        segregated.writes.avg_latency_us(),
        segregated.writes.p99_latency_us()
    );
    println!(
        "   -> write p99 improves {:.1}x at {:+.0}% power",
        uniform.writes.p99_latency_us() / segregated.writes.p99_latency_us(),
        100.0 * (segregated.avg_power_w() / uniform.avg_power_w() - 1.0)
    );
    println!();
}

fn mechanism_section() {
    println!("== 3. Mechanism choice (Sec. 4.1): shape everywhere vs consolidate+standby ==");
    let factory = || catalog::by_label("860EVO", 31).expect("known label");
    let sweep = full_sweep(
        factory,
        &[Workload::RandRead],
        &[64 * KIB],
        &[1, 4, 8, 32],
        &[PowerStateId(0)],
        SweepScale {
            runtime: SimDuration::from_millis(300),
            size_limit: GIB,
            ramp: SimDuration::from_millis(80),
        },
        31,
    )
    .expect("sweep runs");
    let model = PowerThroughputModel::from_sweep(&sweep)
        .into_iter()
        .next()
        .expect("one model");

    println!(
        "   {:>10} {:>12} {:>12} {:>20}",
        "demand", "shape W", "redirect W", "preferred"
    );
    let peak = model.max_throughput_bps() * 8.0;
    for frac in [0.05, 0.2, 0.5, 0.8, 0.95] {
        let c = choose_mechanism(&model, 8, peak * frac, 0.17);
        println!(
            "   {:>8.0}% {:>12} {:>12} {:>20}",
            frac * 100.0,
            c.cap_shape_w.map_or("n/a".into(), |w| format!("{w:.1}")),
            c.redirect_w.map_or("n/a".into(), |w| format!("{w:.1}")),
            c.preferred.to_string()
        );
    }
    let crossover = redirect_crossover_fraction(&model, 8, 0.17);
    println!(
        "   crossover: redirection wins below {:.0}% of fleet peak",
        100.0 * crossover
    );
    println!();
}

fn scenario_section() {
    println!("== 4. Closed-loop budget tracking (2x SSD2, write-heavy, dip to 21 W) ==");
    let factory = || catalog::by_label("SSD2", 61).expect("known label");
    let states: Vec<_> = factory().power_states().iter().map(|d| d.id).collect();
    let sweep = full_sweep(
        factory,
        &[Workload::RandWrite],
        &[256 * KIB],
        &[1, 64],
        &states,
        SweepScale {
            runtime: SimDuration::from_millis(300),
            size_limit: GIB,
            ramp: SimDuration::from_millis(80),
        },
        61,
    )
    .expect("sweep runs");
    let model = PowerThroughputModel::from_sweep(&sweep)
        .into_iter()
        .next()
        .expect("one model");

    let mut schedule = BudgetSchedule::new(32.0);
    schedule.push(
        SimTime::from_millis(500),
        21.0,
        PowerEventCause::DemandResponse,
    );
    let mut router =
        AdaptiveScenarioRouter::new(schedule, vec![model.clone(), model], vec![None, None]);
    let mut devices = ssd2_fleet(2);
    let spec = stream(14_000.0, 256 * KIB, 0.0, 1200);
    let r = run_fleet(
        &mut devices,
        &mut router,
        &spec,
        SimDuration::from_millis(50),
    )
    .expect("runs");
    let before = r
        .power
        .between(SimTime::from_millis(100), SimTime::from_millis(500));
    let after = r
        .power
        .between(SimTime::from_millis(650), SimTime::from_millis(1200));
    println!(
        "   before dip: {:.1} W (budget 32) | after dip: {:.1} W (budget 21) | replans {}",
        before.mean(),
        after.mean(),
        router.replans()
    );
    println!(
        "   served {} IOs at {:.0} MiB/s through the event",
        r.total.ios(),
        r.total.throughput_mibs()
    );
}

fn fault_section() {
    println!("== 5. Fault tolerance: 4x SSD3, device 0 drops out for [0.3 s, 0.9 s) ==");
    let spec = OpenLoopSpec {
        arrivals: Arrivals::Poisson { rate_iops: 8_000.0 },
        block_size: 64 * KIB,
        read_fraction: 0.7,
        pattern: AccessPattern::Random,
        region: (0, 8 * GIB),
        duration: SimDuration::from_millis(1500),
        seed: 77,
        zipf_theta: None,
    };
    let interval = SimDuration::from_millis(20);
    let outage = FaultPlan::none()
        .io_errors(0.01)
        .dropout(SimTime::from_millis(300), SimTime::from_millis(900));
    let fleet = |faulted: bool| -> Vec<Box<dyn StorageDevice>> {
        (0..4)
            .map(|i| {
                let inner = Box::new(catalog::ssd3_d3_p4510(700 + i));
                let plan = if faulted && i == 0 {
                    outage.clone()
                } else {
                    FaultPlan::none()
                };
                Box::new(FaultInjector::seeded(inner, plan, 40 + i)) as Box<dyn StorageDevice>
            })
            .collect()
    };

    let healthy = {
        let mut devices = fleet(false);
        let mut router = LeastLoadedRouter::default();
        run_fleet(&mut devices, &mut router, &spec, interval).expect("runs")
    };
    let faulted = {
        let mut devices = fleet(true);
        let cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_millis(200),
            probe_successes: 2,
        };
        let mut router = CircuitBreakerRouter::new(LeastLoadedRouter::default(), cfg);
        let r = run_fleet(&mut devices, &mut router, &spec, interval).expect("runs");
        println!("   breaker timeline:");
        for e in router.events() {
            println!(
                "     t={:.3}s  device {}  -> {}",
                e.at.as_secs_f64(),
                e.device,
                e.entered
            );
        }
        r
    };
    println!(
        "   {:>18} {:>9} {:>9} {:>12} {:>9} {:>9}",
        "", "IOs", "dropped", "MiB/s", "p99 us", "avg W"
    );
    for (name, r) in [("healthy fleet", &healthy), ("dropout + breaker", &faulted)] {
        println!(
            "   {:>18} {:>9} {:>9} {:>12.1} {:>9.0} {:>9.2}",
            name,
            r.total.ios(),
            r.dropped,
            r.total.throughput_mibs(),
            r.total.p99_latency_us(),
            r.avg_power_w()
        );
    }
    println!(
        "   -> served {:.1}% of the healthy run's IOs through a 40% outage window",
        100.0 * faulted.total.ios() as f64 / healthy.total.ios() as f64
    );
}

fn main() {
    apply_cli_workers();
    let trace = powadapt_bench::start_tracing();
    consolidation_section();
    segregation_section();
    mechanism_section();
    scenario_section();
    fault_section();
    report_executor("policy_eval");
    powadapt_bench::finish_tracing(trace);
}
