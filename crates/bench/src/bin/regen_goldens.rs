//! Regenerates the committed golden-figure fixtures under
//! `crates/bench/goldens/`.
//!
//! Run after any intentional change to the device models, the runner, or
//! the figures: `cargo run -p powadapt-bench --bin regen_goldens`. CI fails
//! on fixture drift that is not regenerated and committed.

use std::fs;

use powadapt_bench::golden::{
    cluster_eval_summary, figure_summary, golden_scale, goldens_dir, obs_events_summary,
    placement_eval_summary, CLUSTER_FIXTURE, FIGURES, GOLDEN_SEED, OBS_FIXTURE, PLACEMENT_FIXTURE,
};
use powadapt_io::ParallelConfig;

fn write_fixture(dir: &std::path::Path, name: &str, summary: &str) {
    let path = dir.join(format!("{name}.json"));
    let changed = fs::read_to_string(&path).map(|old| old != summary);
    fs::write(&path, summary).expect("write fixture");
    match changed {
        Ok(false) => println!("{name}: unchanged"),
        Ok(true) => println!("{name}: UPDATED"),
        Err(_) => println!("{name}: created"),
    }
}

fn main() {
    let dir = goldens_dir();
    fs::create_dir_all(&dir).expect("create goldens dir");
    let scale = golden_scale();
    // Goldens are always generated sequentially: the fixture is the
    // reference the parallel runs are compared against.
    let cfg = ParallelConfig::sequential();
    for name in FIGURES {
        let summary = figure_summary(name, scale, GOLDEN_SEED, &cfg);
        write_fixture(&dir, name, &summary);
    }
    write_fixture(&dir, OBS_FIXTURE, &obs_events_summary(&cfg));
    write_fixture(&dir, CLUSTER_FIXTURE, &cluster_eval_summary(&cfg));
    write_fixture(&dir, PLACEMENT_FIXTURE, &placement_eval_summary(&cfg));
    println!("fixtures written to {}", dir.display());
}
