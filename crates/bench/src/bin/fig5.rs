//! Regenerates fig5 of the paper. Scale via POWADAPT_SCALE=quick|full|paper.

fn main() {
    powadapt_bench::figures::fig5::run(powadapt_bench::bench_scale(), 42);
}
