//! Regenerates fig5 of the paper. Scale via POWADAPT_SCALE=quick|full|paper.

fn main() {
    let trace = powadapt_bench::start_tracing();
    powadapt_bench::figures::fig5::run(powadapt_bench::bench_scale(), 42);
    powadapt_bench::finish_tracing(trace);
}
