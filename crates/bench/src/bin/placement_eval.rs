//! Placement-evaluation bench: energy-aware data placement with HDD
//! spin-down consolidation versus static spreading and no migration.
//!
//! Runs the three-arm placement scenario (warm SSD rack + three cold Exos
//! HDD racks, diurnal web + steady analytics + one-shot archive ingest)
//! and reports per-arm service, migration, and energy accounting, plus the
//! headline metrics of the placement tier:
//!
//! 1. joules-per-byte of temperature-driven placement against both
//!    baselines (the consolidation energy win),
//! 2. stranded cold-tier watts reclaimed by spinning consolidated HDDs
//!    down between batch windows,
//! 3. migration-storm read amplification (migrated bytes over tenant
//!    bytes) and per-tenant SLO outcomes under that extra load.
//!
//! Run with: `cargo run --release -p powadapt-bench --bin placement_eval`
//!
//! Flags: `--out FILE` additionally writes the canonical golden summary
//! (the exact bytes of `crates/bench/goldens/placement_eval.json`) to
//! `FILE`; `--check FILE` compares that summary byte-for-byte against a
//! committed fixture and exits 3 on drift; `--snapshot-out FILE` /
//! `--resume FILE` checkpoint the canonical temperature-driven cell at
//! its quarter point — in the middle of the consolidation drain, with
//! migrations in flight — and prove the resumed run is bit-identical.
//! A corrupt, truncated, or mismatched snapshot is rejected with a typed
//! error and exit code 2 — never a panic.

use powadapt_bench::golden::{placement_eval_summary, GOLDEN_SEED};
use powadapt_bench::{apply_cli_workers, cli_flag_value, report_executor};
use powadapt_cluster::{placement_cluster, run_cluster, ClusterReport, ClusterSim, PlacementArm};
use powadapt_io::{run_cells, ParallelConfig};
use powadapt_sim::SimDuration;

fn fail(context: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("placement_eval: {context}: {err}");
    std::process::exit(2);
}

/// The cell the checkpoint flags operate on: the temperature-driven arm
/// at the golden seed, snapshotted at its quarter point (inside the
/// consolidation drain window, with migrations in flight).
fn checkpoint_spec() -> powadapt_cluster::ClusterSpec {
    placement_cluster(PlacementArm::TempDriven, GOLDEN_SEED)
}

/// Runs the canonical cell to its quarter point, writes the sealed
/// snapshot, then finishes the run and prints the report.
fn snapshot_to(path: &str) {
    let mut sim = match ClusterSim::new(checkpoint_spec()) {
        Ok(s) => s,
        Err(e) => fail("cannot build cluster", &e),
    };
    let quarter = sim.start_time()
        + SimDuration::from_nanos(sim.end_time().duration_since(sim.start_time()).as_nanos() / 4);
    if let Err(e) = sim.run_to(quarter) {
        fail("first quarter failed", &e);
    }
    let bytes = match sim.snapshot() {
        Ok(b) => b,
        Err(e) => fail("snapshot failed", &e),
    };
    if let Err(e) = std::fs::write(path, &bytes) {
        fail(&format!("cannot write {path}"), &e);
    }
    let pending = sim
        .placement()
        .map_or(0, powadapt_cluster::PlacementTier::pending_migrations);
    println!(
        "checkpoint: {} bytes at t={:?} ({pending} migrations in flight) -> {path}",
        bytes.len(),
        sim.now()
    );
    match sim.finish() {
        Ok(report) => print!("{report}"),
        Err(e) => fail("rest of the run failed", &e),
    }
}

/// Resumes the canonical cell from a sealed snapshot and runs it to the
/// end. Rejects bad snapshots with a typed error, never a panic.
fn resume_from(path: &str) {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => fail(&format!("cannot read {path}"), &e),
    };
    let sim = match ClusterSim::resume(checkpoint_spec(), &bytes) {
        Ok(s) => s,
        Err(e) => fail("snapshot rejected", &e),
    };
    println!("resumed at t={:?} from {path}", sim.now());
    match sim.finish() {
        Ok(report) => print!("{report}"),
        Err(e) => fail("resumed run failed", &e),
    }
}

fn main() {
    apply_cli_workers();
    if let Some(path) = cli_flag_value("--snapshot-out") {
        snapshot_to(&path);
        return;
    }
    if let Some(path) = cli_flag_value("--resume") {
        resume_from(&path);
        return;
    }
    let trace = powadapt_bench::start_tracing();

    let arms = [
        PlacementArm::TempDriven,
        PlacementArm::StaticSpread,
        PlacementArm::NoMigration,
    ];
    let cells: Vec<(PlacementArm, u64)> = arms.iter().map(|&a| (a, GOLDEN_SEED)).collect();
    let reports = run_cells(&cells, &ParallelConfig::from_env(), |_, &(arm, seed)| {
        run_cluster(placement_cluster(arm, seed)).expect("placement scenario runs")
    });

    println!(
        "== Placement: temperature-driven consolidation vs static spread vs no migration ==\n"
    );
    for ((arm, seed), report) in cells.iter().zip(&reports) {
        println!("-- arm {arm:?}, seed {seed} --");
        print!("{report}");
        println!(
            "   migrations {}/{} ({} bytes), energy {:.1} J total / {:.1} J system",
            report.migrations_started,
            report.migrations_completed,
            report.migration_bytes,
            report.total_joules,
            report.system_joules
        );
        println!();
    }

    let jpb = |r: &ClusterReport| r.total_joules / r.total_bytes as f64;
    let cold_w = |r: &ClusterReport| -> f64 {
        r.nodes
            .iter()
            .filter(|n| n.path.contains("enc-cold"))
            .map(|n| n.mean_power_w)
            .sum()
    };
    let temp = &reports[0];
    let spread = &reports[1];
    let nomig = &reports[2];
    println!("== Headline ==");
    println!(
        "   {:>14} {:>12} {:>12} {:>12} {:>10}",
        "arm", "nJ/byte", "cold-tier W", "mig bytes", "SLOs met"
    );
    for ((arm, _), r) in cells.iter().zip(&reports) {
        println!(
            "   {:>14} {:>12.3} {:>12.2} {:>12} {:>7}/{:<2}",
            format!("{arm:?}"),
            jpb(r) * 1e9,
            cold_w(r),
            r.migration_bytes,
            r.tenants.iter().filter(|t| t.slo_ok).count(),
            r.tenants.len(),
        );
    }
    println!(
        "\n   joules-per-byte win: {:.2}x vs static spread, {:.2}x vs no migration (target >= 1.25x)",
        jpb(spread) / jpb(temp),
        jpb(nomig) / jpb(temp)
    );
    println!(
        "   cold-tier watts reclaimed vs no migration: {:.2} W",
        cold_w(nomig) - cold_w(temp)
    );

    // The canonical summary — identical bytes to the committed golden.
    let summary = placement_eval_summary(&ParallelConfig::sequential());
    if let Some(path) = cli_flag_value("--out") {
        if let Err(e) = std::fs::write(&path, &summary) {
            fail(&format!("cannot write {path}"), &e);
        }
    }
    if let Some(path) = cli_flag_value("--check") {
        let committed = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => fail(&format!("cannot read {path}"), &e),
        };
        if summary != committed {
            eprintln!(
                "placement_eval: DRIFT: summary no longer matches {path}.\n\
                 If the change is intentional, regenerate the fixtures with\n\
                 `cargo run -p powadapt-bench --bin regen_goldens` and commit them."
            );
            std::process::exit(3);
        }
        println!("check ok: summary matches {path}");
    }

    report_executor("placement_eval");
    powadapt_bench::finish_tracing(trace);
}
