//! Observability overhead: the golden cluster cells untraced, under the
//! unsharded [`TraceRecorder`], and under an 8-way [`ShardedRecorder`],
//! measured in one process on identical workloads.
//!
//! Tracing is contractually *write-only* for the simulation — results are
//! byte-identical with it on or off — so the only cost it may charge is
//! wall-clock. This bench pins that cost: every arm runs the same four
//! `cluster_eval` cells (both selection policies at two seeds,
//! sequentially, the traced-artifact configuration), and the traced arms
//! must stay within [`MAX_OVERHEAD`] of the untraced baseline. The
//! sharded arm also folds its shards with
//! [`ShardedRecorder::merged`] and must reproduce the unsharded per-kind
//! event counts exactly, so the bench doubles as an equivalence check on
//! real traffic.
//!
//! Run with: `cargo run --release -p powadapt-bench --bin obs_bench`
//!
//! Flags: `--out FILE` additionally writes the JSON report to `FILE`;
//! `--check FILE` compares against a committed report and exits 3 if
//! either traced arm's overhead grew by more than [`CHECK_TOLERANCE`]
//! over the committed figure. Overheads are ratios of two same-process
//! measurements, so the gate is stable across hosts; a first attempt
//! that lands above the gate is re-measured once before failing.

use std::sync::Arc;
use std::time::Instant;

use powadapt_bench::cli_flag_value;
use powadapt_bench::golden::GOLDEN_SEED;
use powadapt_cluster::{oversubscribed_cluster, run_cluster, SelectionPolicy};
use powadapt_obs::{ShardedRecorder, TraceRecorder};

/// Shards in the sharded arm — the rack/sweep-cell scale the recorder is
/// designed for.
const SHARDS: usize = 8;
/// Per-shard (and unsharded) event-ring capacity; large enough that the
/// golden cells never drop, so the sharded-vs-unsharded comparison is
/// exact (per-shard rings overflow differently than one global ring).
const CAPACITY: usize = 1 << 18;
/// Hard ceiling on traced-vs-untraced wall-clock: the observability
/// budget this repository enforces.
const MAX_OVERHEAD: f64 = 1.10;
/// `--check` tolerance: a measured overhead more than this far above the
/// committed figure is a regression. Additive, not relative — the
/// interesting quantity is the overhead *fraction*, which sits near zero.
const CHECK_TOLERANCE: f64 = 0.10;

fn fail(context: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("obs_bench: {context}: {err}");
    std::process::exit(2);
}

/// The four golden cluster cells, run sequentially. Returns the summed
/// served IOs so the compiler cannot elide a run and every arm can be
/// cross-checked against the others.
fn run_cells() -> u64 {
    let mut served = 0u64;
    for seed in [GOLDEN_SEED, GOLDEN_SEED + 1] {
        for policy in [SelectionPolicy::ModelDriven, SelectionPolicy::UniformStatic] {
            let report = run_cluster(oversubscribed_cluster(policy, seed))
                .unwrap_or_else(|e| fail("cluster cell failed", &e));
            served += report.served_ios;
        }
    }
    served
}

struct Arm {
    served: u64,
    elapsed_ns: u128,
    /// Events recorded, 0 for the untraced arm.
    events: u64,
}

/// Measures one arm: optionally install a recorder, wipe it in place,
/// run the cells timed, read the event total, restore the previous
/// recorder.
///
/// The caller must have run one untimed warmup pass per arm *with its
/// recorder installed* (see [`warm`]) before the first timed round:
/// `reset` wipes the recorder in place (rings keep their allocation, see
/// `EventLog::clear`), so the timed pass measures steady-state recording
/// cost, not the one-time page faults of a cold 27 MB ring — which the
/// untraced baseline never pays and a long-lived traced run amortizes to
/// nothing.
fn measure(
    recorder: Option<Arc<dyn powadapt_obs::Recorder>>,
    reset: impl Fn(),
    total: impl Fn() -> u64,
) -> Arm {
    let installed = recorder.is_some();
    let prev = match recorder {
        Some(r) => powadapt_obs::install(r),
        None => {
            powadapt_obs::uninstall();
            None
        }
    };
    reset();
    let start = Instant::now();
    let served = run_cells();
    let elapsed_ns = start.elapsed().as_nanos();
    let events = if installed { total() } else { 0 };
    match prev {
        Some(p) => {
            powadapt_obs::install(p);
        }
        None => {
            powadapt_obs::uninstall();
        }
    }
    Arm {
        served,
        elapsed_ns,
        events,
    }
}

/// One untimed pass with `recorder` installed, faulting in its rings and
/// warming every allocation the timed rounds will touch. Run once per
/// arm; later rounds stay warm because `measure` resets in place.
fn warm(recorder: Option<Arc<dyn powadapt_obs::Recorder>>) {
    let prev = match recorder {
        Some(r) => powadapt_obs::install(r),
        None => {
            powadapt_obs::uninstall();
            None
        }
    };
    let _ = run_cells();
    match prev {
        Some(p) => {
            powadapt_obs::install(p);
        }
        None => {
            powadapt_obs::uninstall();
        }
    }
}

struct Measurement {
    untraced: Arm,
    traced: Arm,
    sharded: Arm,
    overhead_traced: f64,
    overhead_sharded: f64,
}

/// Cross-checks one arm's rounds: served IOs and event totals must agree
/// — the workload is deterministic — so only the timings may differ.
fn assert_rounds_agree(rounds: &[Arm], what: &str) {
    for w in rounds.windows(2) {
        assert_eq!(
            w[0].served, w[1].served,
            "{what}: round changed simulation results"
        );
        assert_eq!(
            w[0].events, w[1].events,
            "{what}: round changed the event stream"
        );
    }
}

/// Interleaved measurement rounds. Host slowdowns here (vCPU steal,
/// thermal, scheduler) arrive as multi-second bursts, so two passes far
/// apart in time are not comparable — but adjacent passes are. Each
/// round therefore times all three arms back to back and the overhead is
/// the **median per-round ratio**: a burst covering a whole round
/// inflates numerator and denominator together and cancels, a burst
/// landing on one arm of one round skews that round's ratio in either
/// direction and the median discards it. Folding per-arm minima
/// independently would instead compare timings from different noise
/// regimes, and a min-of-ratios would keep only the luckiest round.
/// The arm order rotates each round so a load ramp cannot systematically
/// tax whichever arm would otherwise always run last.
const ROUNDS: usize = 9;

fn measure_all() -> Measurement {
    let traced_rec = Arc::new(TraceRecorder::new(CAPACITY));
    let sharded_rec = Arc::new(ShardedRecorder::new(SHARDS, CAPACITY));

    warm(None);
    warm(Some(traced_rec.clone()));
    warm(Some(sharded_rec.clone()));

    let mut untraced: Vec<Arm> = Vec::with_capacity(ROUNDS);
    let mut traced: Vec<Arm> = Vec::with_capacity(ROUNDS);
    let mut sharded: Vec<Arm> = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let measure_untraced = |out: &mut Vec<Arm>| out.push(measure(None, || {}, || 0));
        let measure_traced = |out: &mut Vec<Arm>| {
            let r = traced_rec.clone();
            let reset = traced_rec.clone();
            out.push(measure(
                Some(traced_rec.clone()),
                move || reset.clear(),
                move || r.log().total(),
            ));
        };
        let measure_sharded = |out: &mut Vec<Arm>| {
            let r = sharded_rec.clone();
            let reset = sharded_rec.clone();
            out.push(measure(
                Some(sharded_rec.clone()),
                move || reset.clear(),
                move || r.total(),
            ));
        };
        match round % 3 {
            0 => {
                measure_untraced(&mut untraced);
                measure_traced(&mut traced);
                measure_sharded(&mut sharded);
            }
            1 => {
                measure_traced(&mut traced);
                measure_sharded(&mut sharded);
                measure_untraced(&mut untraced);
            }
            _ => {
                measure_sharded(&mut sharded);
                measure_untraced(&mut untraced);
                measure_traced(&mut traced);
            }
        }
    }
    assert_rounds_agree(&untraced, "untraced");
    assert_rounds_agree(&traced, "traced");
    assert_rounds_agree(&sharded, "sharded");

    let median_ratio = |arm: &[Arm], base: &[Arm]| {
        let mut ratios: Vec<f64> = arm
            .iter()
            .zip(base)
            .map(|(a, b)| a.elapsed_ns as f64 / b.elapsed_ns as f64)
            .collect();
        ratios.sort_by(f64::total_cmp);
        let mid = ratios.len() / 2;
        if ratios.len().is_multiple_of(2) {
            (ratios[mid - 1] + ratios[mid]) / 2.0
        } else {
            ratios[mid]
        }
    };
    let overhead_traced = median_ratio(&traced, &untraced);
    let overhead_sharded = median_ratio(&sharded, &untraced);

    let fastest = |mut rounds: Vec<Arm>| {
        let best = rounds
            .iter()
            .enumerate()
            .min_by_key(|(_, a)| a.elapsed_ns)
            .map(|(i, _)| i)
            .expect("rounds ran");
        rounds.swap_remove(best)
    };
    let (untraced, traced, sharded) = (fastest(untraced), fastest(traced), fastest(sharded));

    // Every arm ran the identical deterministic workload.
    assert_eq!(
        untraced.served, traced.served,
        "tracing changed simulation results"
    );
    assert_eq!(
        untraced.served, sharded.served,
        "sharded tracing changed simulation results"
    );
    assert_eq!(
        traced.events, sharded.events,
        "sharded recorder saw a different event stream"
    );
    // The merged fold must reproduce the unsharded per-kind accounting
    // byte for byte — the bench doubles as an equivalence check.
    let merged = sharded_rec.merged();
    assert_eq!(
        merged.counts_json(),
        powadapt_obs::event_counts_json(&traced_rec),
        "sharded merge diverged from the unsharded recorder"
    );

    Measurement {
        overhead_traced,
        overhead_sharded,
        untraced,
        traced,
        sharded,
    }
}

fn report_json(m: &Measurement) -> String {
    format!(
        "{{\n  \"bench\": \"obs_bench\",\n  \"served_ios\": {},\n  \"events\": {},\n  \"untraced_ns\": {},\n  \"traced_ns\": {},\n  \"sharded_ns\": {},\n  \"overhead_traced\": {:.4},\n  \"overhead_sharded\": {:.4}\n}}\n",
        m.untraced.served,
        m.traced.events,
        m.untraced.elapsed_ns,
        m.traced.elapsed_ns,
        m.sharded.elapsed_ns,
        m.overhead_traced,
        m.overhead_sharded,
    )
}

/// Minimal extraction of `"key": <number>` from a flat JSON report.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    // Resolve the committed baseline first so a first attempt above the
    // gate can retry before anything is reported.
    let baseline = cli_flag_value("--check").map(|path| {
        let committed = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => fail(&format!("cannot read {path}"), &e),
        };
        let traced = json_number(&committed, "overhead_traced");
        let sharded = json_number(&committed, "overhead_sharded");
        match (traced, sharded) {
            (Some(t), Some(s)) => (t, s),
            _ => fail(&format!("no overhead fields in {path}"), &"parse error"),
        }
    });
    let gate = baseline.map_or(MAX_OVERHEAD, |(t, s)| {
        (t + CHECK_TOLERANCE)
            .min(s + CHECK_TOLERANCE)
            .min(MAX_OVERHEAD)
    });

    let mut m = measure_all();
    if m.overhead_traced.max(m.overhead_sharded) > gate {
        // Same-process ratios still wobble under transient host noise on
        // shared CI runners; one retry absorbs that, while a real
        // regression fails both attempts.
        eprintln!(
            "obs_bench: overhead {:.2}x/{:.2}x above gate {gate:.2}x; \
             retrying once to rule out host noise",
            m.overhead_traced, m.overhead_sharded
        );
        let retry = measure_all();
        if retry.overhead_traced.max(retry.overhead_sharded)
            < m.overhead_traced.max(m.overhead_sharded)
        {
            m = retry;
        }
    }

    let json = report_json(&m);
    print!("{json}");

    if let Some(path) = cli_flag_value("--out") {
        if let Err(e) = std::fs::write(&path, &json) {
            fail(&format!("cannot write {path}"), &e);
        }
    }

    assert!(
        m.overhead_traced <= MAX_OVERHEAD && m.overhead_sharded <= MAX_OVERHEAD,
        "observability overhead {:.2}x/{:.2}x exceeds the {MAX_OVERHEAD:.2}x budget",
        m.overhead_traced,
        m.overhead_sharded
    );

    if let Some((base_traced, base_sharded)) = baseline {
        let worst_traced = base_traced + CHECK_TOLERANCE;
        let worst_sharded = base_sharded + CHECK_TOLERANCE;
        if m.overhead_traced > worst_traced || m.overhead_sharded > worst_sharded {
            eprintln!(
                "obs_bench: REGRESSION: overhead {:.2}x/{:.2}x exceeds committed \
                 {base_traced:.2}x/{base_sharded:.2}x + {CHECK_TOLERANCE:.2}",
                m.overhead_traced, m.overhead_sharded
            );
            std::process::exit(3);
        }
        println!(
            "check ok: overhead {:.2}x/{:.2}x vs committed {base_traced:.2}x/{base_sharded:.2}x \
             (ceiling {worst_traced:.2}x/{worst_sharded:.2}x)",
            m.overhead_traced, m.overhead_sharded
        );
    }
}
