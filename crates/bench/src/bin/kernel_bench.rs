//! Event-kernel throughput: the calendar-bucket `EventQueue` against the
//! `HeapQueue` reference, measured in one process on identical workloads.
//!
//! The workload mirrors what the device simulators actually do to the
//! queue: a steady "hold" phase (a large live set where every pop
//! schedules a successor, the shape of an io_depth-bound experiment) and
//! a cancel-heavy phase (speculative timers that are mostly cancelled,
//! the shape of timeout/retry bookkeeping). Both kernels consume the same
//! deterministic op stream and must produce the same checksum, so the
//! bench doubles as an equivalence check at scale.
//!
//! Run with: `cargo run --release -p powadapt-bench --bin kernel_bench`
//!
//! Flags: `--out FILE` additionally writes the JSON report to `FILE`;
//! `--check FILE` compares against a committed report and exits 3 if the
//! calendar-vs-heap speedup regressed by more than 10%. The speedup ratio
//! is compared (not absolute ns), so the gate is stable across hosts, and
//! a first attempt that lands below the gate is re-measured once before
//! failing — shared CI runners can skew the two single-process
//! measurements differently within one run.

use std::time::Instant;

use powadapt_bench::cli_flag_value;
use powadapt_sim::{EventId, EventQueue, HeapQueue, SimRng, SimTime};

/// Near-tier span of the calendar queue (bucket count x width); schedule
/// offsets stay inside a few of these so the ring does real work.
const SPAN: u64 = 256 << 16;
/// Live events held during the steady phase (io_depth x devices scale).
const HOLD_LIVE: usize = 1 << 16;
/// Pop/schedule pairs in the steady phase.
const HOLD_OPS: usize = 1_500_000;
/// Rounds of the cancel-heavy phase (each: 4 schedules, 3 cancels, 1 pop).
const CANCEL_ROUNDS: usize = 400_000;
/// Fail the run outright below this speedup: the calendar queue exists to
/// beat the heap kernel by a wide margin on its own workload.
const MIN_SPEEDUP: f64 = 5.0;
/// `--check` tolerance: a committed-vs-measured ratio drop beyond this is
/// a regression.
const CHECK_TOLERANCE: f64 = 0.10;

fn fail(context: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("kernel_bench: {context}: {err}");
    std::process::exit(2);
}

/// The common surface of both kernels, so one workload drives either.
trait Kernel {
    fn schedule(&mut self, at: SimTime, payload: u64) -> EventId;
    fn cancel(&mut self, id: EventId) -> bool;
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

impl Kernel for EventQueue<u64> {
    fn schedule(&mut self, at: SimTime, payload: u64) -> EventId {
        EventQueue::schedule(self, at, payload)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        EventQueue::cancel(self, id)
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
}

impl Kernel for HeapQueue<u64> {
    fn schedule(&mut self, at: SimTime, payload: u64) -> EventId {
        HeapQueue::schedule(self, at, payload)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        HeapQueue::cancel(self, id)
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        HeapQueue::pop(self)
    }
}

/// Drives the full workload on one kernel. Returns `(ops, checksum)`:
/// `ops` counts every schedule/cancel/pop, `checksum` folds every popped
/// `(time, payload)` so the compiler cannot elide the work and the two
/// kernels can be cross-checked.
fn run_workload<K: Kernel>(q: &mut K, seed: u64) -> (u64, u64) {
    let mut rng = SimRng::seed_from(seed);
    let mut ops: u64 = 0;
    let mut sum: u64 = 0;

    // Steady phase: fill a large live set, then pop-one/schedule-one.
    let mut now: u64 = 0;
    for i in 0..HOLD_LIVE {
        q.schedule(SimTime::from_nanos(rng.u64_range(1, 2 * SPAN)), i as u64);
        ops += 1;
    }
    for i in 0..HOLD_OPS {
        let Some((t, p)) = q.pop() else { break };
        now = t.as_nanos();
        sum = sum
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(now ^ p);
        q.schedule(
            SimTime::from_nanos(now + rng.u64_range(1, 2 * SPAN)),
            i as u64,
        );
        ops += 2;
    }

    // Cancel-heavy phase: speculative timers, mostly retired unfired.
    let mut recent: Vec<EventId> = Vec::with_capacity(4);
    for i in 0..CANCEL_ROUNDS {
        recent.clear();
        for k in 0..4u64 {
            let at = SimTime::from_nanos(now + rng.u64_range(1, SPAN));
            recent.push(q.schedule(at, (i as u64) << 3 | k));
            ops += 1;
        }
        for &id in recent.iter().take(3) {
            let cancelled = q.cancel(id);
            debug_assert!(cancelled);
            ops += 1;
        }
        if let Some((t, p)) = q.pop() {
            now = t.as_nanos();
            sum = sum
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(now ^ p);
        }
        ops += 1;
    }

    // Drain what's left so both kernels finish in the same logical state.
    while let Some((t, p)) = q.pop() {
        sum = sum
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(t.as_nanos() ^ p);
        ops += 1;
    }
    (ops, sum)
}

struct Measurement {
    ops: u64,
    checksum: u64,
    elapsed_ns: u128,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.ops as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

fn measure<K: Kernel, F: Fn() -> K>(make: F, seed: u64) -> Measurement {
    // One untimed warmup run to fault in allocations and branch history.
    let mut warm = make();
    let _ = run_workload(&mut warm, seed ^ 0xdead_beef);
    let mut q = make();
    let start = Instant::now();
    let (ops, checksum) = run_workload(&mut q, seed);
    let elapsed_ns = start.elapsed().as_nanos();
    Measurement {
        ops,
        checksum,
        elapsed_ns,
    }
}

/// Minimal extraction of `"key": <number>` from a flat JSON report.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn report_json(heap: &Measurement, cal: &Measurement, speedup: f64) -> String {
    format!(
        "{{\n  \"bench\": \"kernel_bench\",\n  \"ops\": {},\n  \"heap_ns\": {},\n  \"calendar_ns\": {},\n  \"heap_events_per_sec\": {:.0},\n  \"calendar_events_per_sec\": {:.0},\n  \"speedup\": {:.2}\n}}\n",
        cal.ops,
        heap.elapsed_ns,
        cal.elapsed_ns,
        heap.events_per_sec(),
        cal.events_per_sec(),
        speedup,
    )
}

/// One paired measurement: heap then calendar, cross-checked. Same op
/// stream, same pops, same order — or one kernel is wrong.
fn measure_pair(seed: u64) -> (Measurement, Measurement, f64) {
    let heap = measure(HeapQueue::<u64>::new, seed);
    let cal = measure(EventQueue::<u64>::new, seed);
    assert_eq!(heap.ops, cal.ops, "kernels disagreed on op count");
    assert_eq!(
        heap.checksum, cal.checksum,
        "kernels popped different streams"
    );
    let speedup = heap.elapsed_ns as f64 / cal.elapsed_ns as f64;
    (heap, cal, speedup)
}

fn main() {
    const SEED: u64 = 42;
    // Resolve the committed baseline first so a below-gate first attempt
    // can retry before anything is reported.
    let baseline = cli_flag_value("--check").map(|path| {
        let committed = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => fail(&format!("cannot read {path}"), &e),
        };
        let Some(baseline) = json_number(&committed, "speedup") else {
            fail(&format!("no \"speedup\" field in {path}"), &"parse error");
        };
        baseline
    });
    let gate = baseline
        .map_or(0.0, |b| b * (1.0 - CHECK_TOLERANCE))
        .max(MIN_SPEEDUP);

    let (mut heap, mut cal, mut speedup) = measure_pair(SEED);
    if speedup < gate {
        // The two single-process measurements can be skewed differently
        // by transient host noise (noisy neighbors, frequency scaling)
        // on shared CI runners; one retry absorbs that, while a real
        // regression fails both attempts.
        eprintln!(
            "kernel_bench: speedup {speedup:.2}x below gate {gate:.2}x; \
             retrying once to rule out host noise"
        );
        let retry = measure_pair(SEED);
        if retry.2 > speedup {
            (heap, cal, speedup) = retry;
        }
    }

    let json = report_json(&heap, &cal, speedup);
    print!("{json}");

    if let Some(path) = cli_flag_value("--out") {
        if let Err(e) = std::fs::write(&path, &json) {
            fail(&format!("cannot write {path}"), &e);
        }
    }

    assert!(
        speedup >= MIN_SPEEDUP,
        "calendar queue speedup {speedup:.2}x is below the required {MIN_SPEEDUP:.0}x"
    );

    if let Some(baseline) = baseline {
        let floor = baseline * (1.0 - CHECK_TOLERANCE);
        if speedup < floor {
            eprintln!(
                "kernel_bench: REGRESSION: speedup {speedup:.2}x fell below {floor:.2}x \
                 (committed {baseline:.2}x - {:.0}%)",
                CHECK_TOLERANCE * 100.0
            );
            std::process::exit(3);
        }
        println!("check ok: speedup {speedup:.2}x vs committed {baseline:.2}x (floor {floor:.2}x)");
    }
}
