//! The paper's §2 sizing example, measured: "in a storage server with 16
//! SSDs, each SSD can have an idle power of 5 W and an active power of
//! 23 W (e.g., the Samsung PM1743). The total idle storage device power is
//! 80 W and the active power can be up to 368 W." — plus what the 9 W cap
//! does to that range.
//!
//! Run with: `cargo run --release -p powadapt-bench --bin sec2_sizing`

use powadapt_bench::{apply_cli_workers, report_executor};
use powadapt_device::{catalog, PowerStateId, StorageDevice, GIB, KIB, MIB};
use powadapt_io::{run_cells, run_experiment, JobSpec, ParallelConfig, Workload};
use powadapt_sim::{SimDuration, SimRng};

const N: usize = 16;

fn fleet_power<F: Fn(usize) -> f64>(per_device: F) -> f64 {
    (0..N).map(per_device).sum()
}

fn measure(ps: u8, w: Workload) -> (f64, f64) {
    // One representative device measured; the fleet sums 16 of them
    // (devices are independent under identical workloads).
    let mut dev = catalog::pm1743(7);
    dev.set_power_state(PowerStateId(ps)).expect("state exists");
    let job = JobSpec::new(w)
        .block_size(MIB)
        .io_depth(64)
        .runtime(SimDuration::from_millis(800))
        .size_limit(8 * GIB)
        .ramp(SimDuration::from_millis(150))
        .seed(7);
    let r = run_experiment(&mut dev, &job).expect("experiment runs");
    (r.avg_power_w(), r.io.throughput_bps() / 1e9)
}

fn main() {
    apply_cli_workers();
    let trace = powadapt_bench::start_tracing();
    println!("Sec. 2 sizing example: a 16x Samsung PM1743 storage server, measured.");
    println!();

    // The three workload measurements are independent; fan them across the
    // configured workers (each is deterministic, so the printed numbers do
    // not depend on the worker count).
    let workloads = [
        (0u8, Workload::SeqRead),
        (0, Workload::SeqWrite),
        (2, Workload::SeqWrite),
    ];
    let measured = run_cells(&workloads, &ParallelConfig::from_env(), |_, &(ps, w)| {
        measure(ps, w)
    });

    // Idle: meter one idle device precisely.
    let mut dev = catalog::pm1743(7);
    let mut rng = SimRng::seed_from(7);
    let mut rig = powadapt_meter::PowerRig::paper_rig(12.0, &mut rng);
    for _ in 0..500 {
        let t = rig.next_sample();
        dev.advance_to(t);
        rig.sample(t, dev.power_w());
    }
    let idle = rig.trace().mean();
    println!(
        "  idle:   {idle:5.2} W/device -> fleet {:6.1} W   (paper: 5 W -> 80 W)",
        fleet_power(|_| idle)
    );

    let (read_w, read_gbps) = measured[0];
    println!(
        "  reads:  {read_w:5.2} W/device -> fleet {:6.1} W at {read_gbps:.1} GB/s each (paper: 23 W -> 368 W)",
        fleet_power(|_| read_w)
    );

    let (write_w, write_gbps) = measured[1];
    println!(
        "  writes: {write_w:5.2} W/device -> fleet {:6.1} W at {write_gbps:.1} GB/s each (paper: 21.1 W typical)",
        fleet_power(|_| write_w)
    );

    let (capped_w, capped_gbps) = measured[2];
    println!(
        "  capped: {capped_w:5.2} W/device -> fleet {:6.1} W at {capped_gbps:.1} GB/s each (paper: 9 W cap, ~40% of max, 1.8x idle)",
        fleet_power(|_| capped_w)
    );
    println!();

    let range = fleet_power(|_| read_w.max(write_w)) - fleet_power(|_| idle);
    println!("  fleet dynamic range without any control: {range:.0} W — \"comparable with the");
    println!("  power dynamic range of the host server without storage devices\" (Sec. 2).");
    println!(
        "  the 9 W cap alone shrinks the fleet ceiling by {:.0} W ({:.0}%).",
        fleet_power(|_| write_w) - fleet_power(|_| capped_w),
        100.0 * (1.0 - capped_w / write_w)
    );

    // A tiny 4 KiB sanity row so the binary exercises reads too.
    let mut dev = catalog::pm1743(7);
    let job = JobSpec::new(Workload::RandRead)
        .block_size(4 * KIB)
        .io_depth(32)
        .runtime(SimDuration::from_millis(200))
        .size_limit(GIB)
        .seed(7);
    let r = run_experiment(&mut dev, &job).expect("runs");
    println!();
    println!(
        "  (randread 4 KiB QD32: {:.0} kIOPS at {:.1} W — the small-IO end of the model)",
        r.io.iops() / 1e3,
        r.avg_power_w()
    );
    report_executor("sec2_sizing");
    powadapt_bench::finish_tracing(trace);
}
