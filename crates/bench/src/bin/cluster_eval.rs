//! Cluster-scale evaluation of power-adaptive storage: the oversubscribed
//! power tree versus the naive uniform cap.
//!
//! Runs the canonical two-rack scenario (`cluster 34 W → row → racks →
//! SSD1+SSD3 / SSD2+PM1743 enclosures) under both selection policies at a
//! handful of seeds, fanned across the configured workers, and reports:
//!
//! 1. per-node power accounting against every physical cap,
//! 2. per-tenant service and SLO outcomes,
//! 3. the headline win ratio — aggregate throughput of the model-driven
//!    selector over the uniform static baseline at the same cluster cap.
//!
//! Run with: `cargo run --release -p powadapt-bench --bin cluster_eval`
//!
//! Checkpoint/resume: `--snapshot-out FILE` runs the canonical cell
//! (model-driven, seed 42) to its midpoint, writes a sealed snapshot, and
//! finishes the run; `--resume FILE` rebuilds the simulation from that
//! snapshot and runs the remaining half. Both print the final report,
//! which is bit-identical between the two paths. A corrupt, truncated, or
//! mismatched snapshot is rejected with a typed error and exit code 2 —
//! never a panic.

use powadapt_bench::{apply_cli_workers, cli_flag_value, report_executor};
use powadapt_cluster::{
    oversubscribed_cluster, run_cluster, ClusterReport, ClusterSim, SelectionPolicy,
};
use powadapt_io::{run_cells, ParallelConfig};
use powadapt_sim::SimDuration;

fn cell(policy: SelectionPolicy, seed: u64) -> ClusterReport {
    run_cluster(oversubscribed_cluster(policy, seed)).expect("cluster scenario runs")
}

/// The (policy, seed) cell the checkpoint flags operate on.
fn checkpoint_spec() -> powadapt_cluster::ClusterSpec {
    oversubscribed_cluster(SelectionPolicy::ModelDriven, 42)
}

fn fail(context: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("cluster_eval: {context}: {err}");
    std::process::exit(2);
}

/// Runs the canonical cell to its midpoint, writes the sealed snapshot,
/// then finishes the run and prints the report.
fn snapshot_to(path: &str) {
    let mut sim = match ClusterSim::new(checkpoint_spec()) {
        Ok(s) => s,
        Err(e) => fail("cannot build cluster", &e),
    };
    let mid = sim.start_time()
        + SimDuration::from_nanos(sim.end_time().duration_since(sim.start_time()).as_nanos() / 2);
    if let Err(e) = sim.run_to(mid) {
        fail("first half failed", &e);
    }
    let bytes = match sim.snapshot() {
        Ok(b) => b,
        Err(e) => fail("snapshot failed", &e),
    };
    if let Err(e) = std::fs::write(path, &bytes) {
        fail(&format!("cannot write {path}"), &e);
    }
    println!(
        "checkpoint: {} bytes at t={:?} -> {path}",
        bytes.len(),
        sim.now()
    );
    match sim.finish() {
        Ok(report) => print!("{report}"),
        Err(e) => fail("second half failed", &e),
    }
}

/// Resumes the canonical cell from a sealed snapshot and runs it to the
/// end. Rejects bad snapshots with a typed error, never a panic.
fn resume_from(path: &str) {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => fail(&format!("cannot read {path}"), &e),
    };
    let sim = match ClusterSim::resume(checkpoint_spec(), &bytes) {
        Ok(s) => s,
        Err(e) => fail("snapshot rejected", &e),
    };
    println!("resumed at t={:?} from {path}", sim.now());
    match sim.finish() {
        Ok(report) => print!("{report}"),
        Err(e) => fail("resumed run failed", &e),
    }
}

fn main() {
    apply_cli_workers();
    if let Some(path) = cli_flag_value("--snapshot-out") {
        snapshot_to(&path);
        return;
    }
    if let Some(path) = cli_flag_value("--resume") {
        resume_from(&path);
        return;
    }
    let trace = powadapt_bench::start_tracing();

    let seeds = [42u64, 43, 44];
    let cells: Vec<(SelectionPolicy, u64)> = seeds
        .iter()
        .flat_map(|&s| {
            [
                (SelectionPolicy::ModelDriven, s),
                (SelectionPolicy::UniformStatic, s),
            ]
        })
        .collect();
    let reports = run_cells(&cells, &ParallelConfig::from_env(), |_, &(policy, seed)| {
        cell(policy, seed)
    });

    println!("== Cluster oversubscription: model-driven rebalance vs uniform static cap ==\n");
    for ((policy, seed), report) in cells.iter().zip(&reports) {
        println!("-- seed {seed}, policy {policy} --");
        print!("{report}");
        println!();
    }

    println!("== Headline ==");
    println!(
        "   {:>6} {:>14} {:>14} {:>9} {:>8} {:>8}",
        "seed", "model MiB/s", "uniform MiB/s", "win", "caps ok", "SLOs met"
    );
    let mibs = |r: &ClusterReport| r.aggregate_throughput_bps() / (1024.0 * 1024.0);
    let mut worst: f64 = f64::INFINITY;
    for (i, &seed) in seeds.iter().enumerate() {
        let model = &reports[2 * i];
        let uniform = &reports[2 * i + 1];
        let win = model.aggregate_throughput_bps() / uniform.aggregate_throughput_bps();
        worst = worst.min(win);
        println!(
            "   {:>6} {:>14.1} {:>14.1} {:>8.2}x {:>8} {:>5}/{:<2}",
            seed,
            mibs(model),
            mibs(uniform),
            win,
            model.caps_respected() && uniform.caps_respected(),
            model.tenants.iter().filter(|t| t.slo_ok).count(),
            model.tenants.len(),
        );
    }
    println!("\n   worst-case win ratio across seeds: {worst:.2}x (target >= 1.3x)");

    report_executor("cluster_eval");
    powadapt_bench::finish_tracing(trace);
}
