//! Cluster-scale evaluation of power-adaptive storage: the oversubscribed
//! power tree versus the naive uniform cap.
//!
//! Runs the canonical two-rack scenario (`cluster 34 W → row → racks →
//! SSD1+SSD3 / SSD2+PM1743 enclosures) under both selection policies at a
//! handful of seeds, fanned across the configured workers, and reports:
//!
//! 1. per-node power accounting against every physical cap,
//! 2. per-tenant service and SLO outcomes,
//! 3. the headline win ratio — aggregate throughput of the model-driven
//!    selector over the uniform static baseline at the same cluster cap.
//!
//! Run with: `cargo run --release -p powadapt-bench --bin cluster_eval`

use powadapt_bench::{apply_cli_workers, report_executor};
use powadapt_cluster::{oversubscribed_cluster, run_cluster, ClusterReport, SelectionPolicy};
use powadapt_io::{run_cells, ParallelConfig};

fn cell(policy: SelectionPolicy, seed: u64) -> ClusterReport {
    run_cluster(oversubscribed_cluster(policy, seed)).expect("cluster scenario runs")
}

fn main() {
    apply_cli_workers();
    let trace = powadapt_bench::start_tracing();

    let seeds = [42u64, 43, 44];
    let cells: Vec<(SelectionPolicy, u64)> = seeds
        .iter()
        .flat_map(|&s| {
            [
                (SelectionPolicy::ModelDriven, s),
                (SelectionPolicy::UniformStatic, s),
            ]
        })
        .collect();
    let reports = run_cells(&cells, &ParallelConfig::from_env(), |_, &(policy, seed)| {
        cell(policy, seed)
    });

    println!("== Cluster oversubscription: model-driven rebalance vs uniform static cap ==\n");
    for ((policy, seed), report) in cells.iter().zip(&reports) {
        println!("-- seed {seed}, policy {policy} --");
        print!("{report}");
        println!();
    }

    println!("== Headline ==");
    println!(
        "   {:>6} {:>14} {:>14} {:>9} {:>8} {:>8}",
        "seed", "model MiB/s", "uniform MiB/s", "win", "caps ok", "SLOs met"
    );
    let mibs = |r: &ClusterReport| r.aggregate_throughput_bps() / (1024.0 * 1024.0);
    let mut worst: f64 = f64::INFINITY;
    for (i, &seed) in seeds.iter().enumerate() {
        let model = &reports[2 * i];
        let uniform = &reports[2 * i + 1];
        let win = model.aggregate_throughput_bps() / uniform.aggregate_throughput_bps();
        worst = worst.min(win);
        println!(
            "   {:>6} {:>14.1} {:>14.1} {:>8.2}x {:>8} {:>5}/{:<2}",
            seed,
            mibs(model),
            mibs(uniform),
            win,
            model.caps_respected() && uniform.caps_respected(),
            model.tenants.iter().filter(|t| t.slo_ok).count(),
            model.tenants.len(),
        );
    }
    println!("\n   worst-case win ratio across seeds: {worst:.2}x (target >= 1.3x)");

    report_executor("cluster_eval");
    powadapt_bench::finish_tracing(trace);
}
