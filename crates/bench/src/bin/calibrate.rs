//! Calibration harness: prints the paper's anchor numbers next to the
//! simulator's, so device-model constants can be tuned.
//!
//! Run with `cargo run --release -p powadapt-bench --bin calibrate`.

// An interactive operator tool: panicking on a broken pipe or a missing
// catalog entry is the desired behavior, not a fleet hazard.
#![allow(clippy::unwrap_used)]

use powadapt_bench::f2;
use powadapt_device::{catalog, PowerStateId, KIB, MIB};
use powadapt_io::{run_fresh, JobSpec, SweepScale, Workload};
use powadapt_sim::SimDuration;

fn scale() -> SweepScale {
    SweepScale {
        runtime: SimDuration::from_secs(2),
        size_limit: 2 * powadapt_device::GIB,
        ramp: SimDuration::from_millis(200),
    }
}

fn job(w: Workload, chunk: u64, depth: usize) -> JobSpec {
    let s = scale();
    JobSpec::new(w)
        .block_size(chunk)
        .io_depth(depth)
        .runtime(s.runtime)
        .size_limit(s.size_limit)
        .ramp(s.ramp)
        .seed(11)
}

fn main() {
    let trace = powadapt_bench::start_tracing();
    println!("== SSD2 seq write 2MiB QD64 by power state (paper: ps1=74% ps0, ps2=55% ps0; power <=15.1/12/10) ==");
    let mut ps0_thr = 0.0;
    for ps in 0..3u8 {
        let r = run_fresh(
            || Box::new(catalog::ssd2_d7_p5510(1)),
            PowerStateId(ps),
            &job(Workload::SeqWrite, 2 * MIB, 64),
        )
        .unwrap();
        if ps == 0 {
            ps0_thr = r.io.throughput_mibs();
        }
        println!(
            "  ps{ps}: {:.0} MiB/s ({:.0}% of ps0) @ {} W",
            r.io.throughput_mibs(),
            100.0 * r.io.throughput_mibs() / ps0_thr,
            f2(r.avg_power_w())
        );
    }

    println!("== SSD2 seq read 2MiB QD64 by power state (paper: minimal drop) ==");
    let mut ps0_thr = 0.0;
    for ps in 0..3u8 {
        let r = run_fresh(
            || Box::new(catalog::ssd2_d7_p5510(1)),
            PowerStateId(ps),
            &job(Workload::SeqRead, 2 * MIB, 64),
        )
        .unwrap();
        if ps == 0 {
            ps0_thr = r.io.throughput_mibs();
        }
        println!(
            "  ps{ps}: {:.0} MiB/s ({:.0}% of ps0) @ {} W",
            r.io.throughput_mibs(),
            100.0 * r.io.throughput_mibs() / ps0_thr,
            f2(r.avg_power_w())
        );
    }

    println!(
        "== SSD2 randwrite QD1 latency by state (paper: avg up to ~2x, p99 up to ~6.2x at ps2) =="
    );
    for chunk in [4 * KIB, 256 * KIB, 2 * MIB] {
        let mut base = (0.0, 0.0);
        for ps in [0u8, 2u8] {
            let r = run_fresh(
                || Box::new(catalog::ssd2_d7_p5510(1)),
                PowerStateId(ps),
                &job(Workload::RandWrite, chunk, 1),
            )
            .unwrap();
            let (avg, p99) = (r.io.avg_latency_us(), r.io.p99_latency_us());
            if ps == 0 {
                base = (avg, p99);
                println!(
                    "  {}KiB ps0: avg {:.0} us p99 {:.0} us",
                    chunk / KIB,
                    avg,
                    p99
                );
            } else {
                println!(
                    "  {}KiB ps2: avg {:.0} us ({:.2}x) p99 {:.0} us ({:.2}x)",
                    chunk / KIB,
                    avg,
                    avg / base.0,
                    p99,
                    p99 / base.1
                );
            }
        }
    }

    println!("== SSD2 randread QD1 latency by state (paper: no difference) ==");
    for ps in [0u8, 2u8] {
        let r = run_fresh(
            || Box::new(catalog::ssd2_d7_p5510(1)),
            PowerStateId(ps),
            &job(Workload::RandRead, 4 * KIB, 1),
        )
        .unwrap();
        println!(
            "  ps{ps}: avg {:.1} us p99 {:.1} us",
            r.io.avg_latency_us(),
            r.io.p99_latency_us()
        );
    }

    println!("== SSD1 randwrite 256KiB (paper: QD64 = 3.3 GiB/s @ 8.19 W; QD1 ~ -40% thr, -20% power) ==");
    let mut qd64 = (0.0, 0.0);
    for depth in [64usize, 1] {
        let r = run_fresh(
            || Box::new(catalog::ssd1_pm9a3(1)),
            PowerStateId(0),
            &job(Workload::RandWrite, 256 * KIB, depth),
        )
        .unwrap();
        let gib = r.io.throughput_bps() / (1024.0 * 1024.0 * 1024.0);
        if depth == 64 {
            qd64 = (gib, r.avg_power_w());
            println!("  QD64: {gib:.2} GiB/s @ {} W", f2(r.avg_power_w()));
        } else {
            println!(
                "  QD1 : {gib:.2} GiB/s ({:.0}%) @ {} W ({:.0}%)",
                100.0 * gib / qd64.0,
                f2(r.avg_power_w()),
                100.0 * r.avg_power_w() / qd64.1
            );
        }
    }

    println!("== Fig 8 anchors: randwrite QD64, 4KiB vs 2MiB (paper: 4K ~30% less power, ~50% less thr) ==");
    for label in ["SSD1", "SSD2", "SSD3", "HDD"] {
        let run = |chunk: u64| {
            run_fresh(
                || catalog::by_label(label, 1).unwrap(),
                PowerStateId(0),
                &job(Workload::RandWrite, chunk, 64),
            )
            .unwrap()
        };
        let small = run(4 * KIB);
        let large = run(2 * MIB);
        println!(
            "  {label}: thr {:.0}/{:.0} MiB/s ({:.0}%), power {}/{} W ({:.0}%)",
            small.io.throughput_mibs(),
            large.io.throughput_mibs(),
            100.0 * small.io.throughput_mibs() / large.io.throughput_mibs(),
            f2(small.avg_power_w()),
            f2(large.avg_power_w()),
            100.0 * small.avg_power_w() / large.avg_power_w(),
        );
    }

    println!("== Fig 9 anchors: randread 4KiB, QD1 vs QD64 (paper: QD1 ~40% less power, can be ~10% of thr) ==");
    for label in ["SSD1", "SSD2", "SSD3", "HDD"] {
        let run = |depth: usize| {
            run_fresh(
                || catalog::by_label(label, 1).unwrap(),
                PowerStateId(0),
                &job(Workload::RandRead, 4 * KIB, depth),
            )
            .unwrap()
        };
        let qd1 = run(1);
        let qd64 = run(64);
        println!(
            "  {label}: thr {:.1}/{:.1} MiB/s ({:.0}%), power {}/{} W ({:.0}%)",
            qd1.io.throughput_mibs(),
            qd64.io.throughput_mibs(),
            100.0 * qd1.io.throughput_mibs() / qd64.io.throughput_mibs(),
            f2(qd1.avg_power_w()),
            f2(qd64.avg_power_w()),
            100.0 * qd1.avg_power_w() / qd64.avg_power_w(),
        );
    }

    println!("== Table 1 ranges (paper: SSD1 3.5-13.5, SSD2 5-15.1, SSD3 1-3.5, HDD 1-5.3) ==");
    for label in ["SSD1", "SSD2", "SSD3", "HDD"] {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for w in [
            Workload::SeqWrite,
            Workload::SeqRead,
            Workload::RandWrite,
            Workload::RandRead,
        ] {
            for (chunk, depth) in [(4 * KIB, 1), (256 * KIB, 64), (2 * MIB, 64)] {
                let r = run_fresh(
                    || catalog::by_label(label, 1).unwrap(),
                    PowerStateId(0),
                    &job(w, chunk, depth),
                )
                .unwrap();
                if let Some(s) = r.power.summary() {
                    lo = lo.min(s.min());
                    hi = hi.max(s.max());
                }
            }
        }
        // Idle floor: a fresh device drawing no IO.
        let idle = catalog::by_label(label, 1).unwrap().power_w();
        lo = lo.min(idle);
        println!("  {label}: {lo:.2} - {hi:.2} W (idle {idle:.2})");
    }
    powadapt_bench::finish_tracing(trace);
}
