//! Regenerates every table and figure in sequence. Each figure fans its
//! grid across the workers configured by `POWADAPT_WORKERS` (or the
//! `--workers N` flag); stdout is byte-identical for every worker count.

use powadapt_bench::{apply_cli_workers, bench_scale, figures, report_executor};

fn main() {
    apply_cli_workers();
    let trace = powadapt_bench::start_tracing();
    let scale = bench_scale();
    let seed = 42;
    let rule = "=".repeat(72);
    for (name, f) in [
        (
            "Table 1",
            Box::new(move || figures::table1::run(scale, seed)) as Box<dyn Fn()>,
        ),
        (
            "Figure 2",
            Box::new(move || figures::fig2::run(scale, seed)),
        ),
        (
            "Figure 3",
            Box::new(move || figures::fig3::run(scale, seed)),
        ),
        (
            "Figure 4",
            Box::new(move || figures::fig4::run(scale, seed)),
        ),
        (
            "Figure 5",
            Box::new(move || figures::fig5::run(scale, seed)),
        ),
        (
            "Figure 6",
            Box::new(move || figures::fig6::run(scale, seed)),
        ),
        ("Figure 7", Box::new(move || figures::fig7::run(seed))),
        (
            "Figure 8",
            Box::new(move || figures::fig8::run(scale, seed)),
        ),
        (
            "Figure 9",
            Box::new(move || figures::fig9::run(scale, seed)),
        ),
        (
            "Figure 10",
            Box::new(move || figures::fig10::run(scale, seed)),
        ),
    ] {
        println!("{rule}\n{name}\n{rule}");
        f();
        println!();
    }
    report_executor("all_figures");
    powadapt_bench::finish_tracing(trace);
}
