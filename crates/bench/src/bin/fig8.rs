//! Regenerates fig8 of the paper. Scale via POWADAPT_SCALE=quick|full|paper.

fn main() {
    powadapt_bench::figures::fig8::run(powadapt_bench::bench_scale(), 42);
}
