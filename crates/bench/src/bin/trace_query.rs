//! Query tool for the `.events.jsonl` sidecar a Perfetto trace session
//! writes: filter, summarize, and diff recorded event streams without
//! loading them into a trace viewer.
//!
//! Usage:
//!
//! ```text
//! trace_query summarize FILE [--kind K] [--track T] [--from NS] [--to NS] [--top N]
//! trace_query diff FILE_A FILE_B
//! ```
//!
//! `summarize` prints the filtered stream's total, sim-time span,
//! per-kind counts, and the top-N busiest tracks. `diff` compares two
//! streams by per-kind and per-track counts and exits 1 when they
//! differ — `trace_query diff file file` is the cheap self-test that the
//! artifact parses and the tool is sound. Exit codes: 0 ok / identical,
//! 1 streams differ, 2 usage or I/O error.
//!
//! Lines are the deterministic single-object-per-line JSON of
//! `powadapt_obs::events_jsonl`; parsing is by field extraction, so the
//! tool has no serialization dependencies and tolerates extra payload
//! keys.

use std::collections::BTreeMap;

fn fail(msg: &str) -> ! {
    eprintln!("trace_query: {msg}");
    eprintln!(
        "usage: trace_query summarize FILE [--kind K] [--track T] [--from NS] [--to NS] [--top N]"
    );
    eprintln!("       trace_query diff FILE_A FILE_B");
    std::process::exit(2);
}

/// One parsed line: the envelope fields every event carries.
struct Line {
    at_ns: u64,
    track: String,
    kind: String,
}

/// Extracts `"key": "<string>"` from a one-line JSON object.
fn json_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    // Values produced by events_jsonl escape `"` as `\"`.
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            _ => out.push(c),
        }
    }
    None
}

/// Extracts `"key": <unsigned integer>` from a one-line JSON object.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_lines(path: &str) -> Vec<Line> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (Some(at_ns), Some(track), Some(kind)) = (
            json_u64(line, "at"),
            json_str(line, "track"),
            json_str(line, "kind"),
        ) else {
            fail(&format!("{path}:{}: not an event line", i + 1));
        };
        out.push(Line { at_ns, track, kind });
    }
    out
}

struct Filter {
    kind: Option<String>,
    track: Option<String>,
    from_ns: Option<u64>,
    to_ns: Option<u64>,
}

impl Filter {
    fn matches(&self, l: &Line) -> bool {
        self.kind.as_ref().is_none_or(|k| *k == l.kind)
            && self.track.as_ref().is_none_or(|t| *t == l.track)
            && self.from_ns.is_none_or(|f| l.at_ns >= f)
            && self.to_ns.is_none_or(|t| l.at_ns < t)
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_ns(args: &[String], name: &str) -> Option<u64> {
    flag(args, name).map(|v| match v.parse() {
        Ok(n) => n,
        Err(_) => fail(&format!(
            "{name} wants an integer nanosecond value, got {v}"
        )),
    })
}

fn summarize(args: &[String]) {
    let Some(path) = args.first() else {
        fail("summarize wants a FILE");
    };
    let filter = Filter {
        kind: flag(args, "--kind"),
        track: flag(args, "--track"),
        from_ns: parse_ns(args, "--from"),
        to_ns: parse_ns(args, "--to"),
    };
    let top: usize = flag(args, "--top").map_or(5, |v| match v.parse() {
        Ok(n) => n,
        Err(_) => fail(&format!("--top wants an integer, got {v}")),
    });

    let lines = parse_lines(path);
    let total = lines.len();
    let mut kept = 0usize;
    let mut span: Option<(u64, u64)> = None;
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_track: BTreeMap<String, u64> = BTreeMap::new();
    for l in lines.iter().filter(|l| filter.matches(l)) {
        kept += 1;
        span = Some(span.map_or((l.at_ns, l.at_ns), |(lo, hi)| {
            (lo.min(l.at_ns), hi.max(l.at_ns))
        }));
        *by_kind.entry(l.kind.clone()).or_insert(0) += 1;
        *by_track.entry(l.track.clone()).or_insert(0) += 1;
    }

    println!("{path}: {kept} of {total} events match");
    if let Some((lo, hi)) = span {
        println!("  span: {lo} ns .. {hi} ns ({} ns)", hi - lo);
    }
    println!("  kinds:");
    for (kind, n) in &by_kind {
        println!("    {kind:28} {n}");
    }
    // Top-N busiest tracks: count descending, name ascending for ties.
    let mut tracks: Vec<(&String, &u64)> = by_track.iter().collect();
    tracks.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("  top {} tracks:", top.min(tracks.len()));
    for (track, n) in tracks.into_iter().take(top) {
        println!("    {track:28} {n}");
    }
}

/// Per-kind and per-track count maps of one stream.
fn counts(path: &str) -> (BTreeMap<String, u64>, BTreeMap<String, u64>) {
    let mut by_kind = BTreeMap::new();
    let mut by_track = BTreeMap::new();
    for l in parse_lines(path) {
        *by_kind.entry(l.kind).or_insert(0) += 1;
        *by_track.entry(l.track).or_insert(0) += 1;
    }
    (by_kind, by_track)
}

/// Prints every key whose count differs between the two maps; returns
/// how many differed.
fn diff_maps(label: &str, a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> usize {
    let mut keys: Vec<&String> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut differing = 0;
    for key in keys {
        let na = a.get(key).copied().unwrap_or(0);
        let nb = b.get(key).copied().unwrap_or(0);
        if na != nb {
            println!("  {label} {key:28} {na} != {nb}");
            differing += 1;
        }
    }
    differing
}

fn diff(args: &[String]) {
    let (Some(path_a), Some(path_b)) = (args.first(), args.get(1)) else {
        fail("diff wants FILE_A FILE_B");
    };
    let (kinds_a, tracks_a) = counts(path_a);
    let (kinds_b, tracks_b) = counts(path_b);
    let total_a: u64 = kinds_a.values().sum();
    let total_b: u64 = kinds_b.values().sum();

    let mut differing = diff_maps("kind", &kinds_a, &kinds_b);
    differing += diff_maps("track", &tracks_a, &tracks_b);
    if total_a != total_b {
        println!("  total {total_a} != {total_b}");
        differing += 1;
    }
    if differing > 0 {
        println!("{path_a} and {path_b} differ in {differing} counts");
        std::process::exit(1);
    }
    println!("{path_a} and {path_b} are count-identical ({total_a} events)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("summarize") => summarize(&args[1..]),
        Some("diff") => diff(&args[1..]),
        Some(other) => fail(&format!("unknown command {other}")),
        None => fail("missing command"),
    }
}
