//! Regenerates Figure 7 (standby transitions) of the paper.

fn main() {
    powadapt_bench::figures::fig7::run(42);
}
