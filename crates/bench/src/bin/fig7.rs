//! Regenerates Figure 7 (standby transitions) of the paper.

fn main() {
    let trace = powadapt_bench::start_tracing();
    powadapt_bench::figures::fig7::run(42);
    powadapt_bench::finish_tracing(trace);
}
