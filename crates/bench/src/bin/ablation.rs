//! Ablation study of the design choices DESIGN.md calls out: cap-governor
//! control window, burst allowance, flush watermark, and write
//! amplification. Each section varies one knob on the SSD2 model and shows
//! which paper-observed behaviour that knob is responsible for.
//!
//! Each section's variants are independent experiments, so they fan across
//! the workers configured by `POWADAPT_WORKERS` (or `--workers N`); the
//! printed tables are identical for every worker count.
//!
//! Run with: `cargo run --release -p powadapt-bench --bin ablation`

use powadapt_bench::{apply_cli_workers, report_executor};
use powadapt_device::{catalog, PowerStateId, Ssd, SsdConfig, StorageDevice, GIB, KIB, MIB};
use powadapt_io::{run_cells, run_experiment, JobSpec, ParallelConfig, Workload};
use powadapt_sim::SimDuration;

fn base_config() -> SsdConfig {
    catalog::ssd2_d7_p5510(1).config().clone()
}

fn device_with(cfg: SsdConfig, ps: u8) -> Ssd {
    let spec = catalog::ssd2_d7_p5510(1).spec().clone();
    let mut dev = Ssd::new(spec, cfg, 1);
    dev.set_power_state(PowerStateId(ps)).expect("ps exists");
    dev
}

fn run(dev: &mut Ssd, w: Workload, chunk: u64, depth: usize) -> powadapt_io::ExperimentResult {
    let job = JobSpec::new(w)
        .block_size(chunk)
        .io_depth(depth)
        .runtime(SimDuration::from_millis(1000))
        .size_limit(4 * GIB)
        .ramp(SimDuration::from_millis(150))
        .seed(5);
    run_experiment(dev, &job).expect("experiment runs")
}

fn main() {
    apply_cli_workers();
    let trace = powadapt_bench::start_tracing();
    let pcfg = ParallelConfig::from_env();

    println!("== Ablation 1: cap-governor control window (ps2, randwrite 256 KiB QD1) ==");
    println!("   The NVMe spec only bounds the 10 s average; the control window is how");
    println!("   fast firmware enforces it. Longer windows -> longer stalls -> worse tails.");
    println!(
        "   {:>8} {:>10} {:>10} {:>10} {:>9}",
        "window", "thr MiB/s", "avg us", "p99 us", "avg W"
    );
    let windows = [5u64, 25, 100, 500];
    let results = run_cells(&windows, &pcfg, |_, &ms| {
        let mut cfg = base_config();
        cfg.cap_window = SimDuration::from_millis(ms);
        let mut dev = device_with(cfg, 2);
        run(&mut dev, Workload::RandWrite, 256 * KIB, 1)
    });
    for (ms, r) in windows.iter().zip(&results) {
        println!(
            "   {:>6}ms {:>10.0} {:>10.0} {:>10.0} {:>9.2}",
            ms,
            r.io.throughput_mibs(),
            r.io.avg_latency_us(),
            r.io.p99_latency_us(),
            r.avg_power_w()
        );
    }
    println!();

    println!(
        "== Ablation 2: enforcement window vs the literal 10 s spec (ps2, seq write 2 MiB QD64) =="
    );
    println!("   The NVMe cap is an average over any 10 s window. Firmware that enforced");
    println!("   only the literal window would run uncapped for seconds, then stall hard;");
    println!("   fast enforcement paces smoothly. Power spread = p95 - p5 of the trace.");
    println!(
        "   {:>8} {:>10} {:>9} {:>10} {:>10}",
        "window", "thr MiB/s", "avg W", "peak W", "spread W"
    );
    let windows = [25u64, 500, 2000, 10_000];
    let results = run_cells(&windows, &pcfg, |_, &ms| {
        let mut cfg = base_config();
        cfg.cap_window = SimDuration::from_millis(ms);
        cfg.noise_sd_w = 0.0;
        let mut dev = device_with(cfg, 2);
        run(&mut dev, Workload::SeqWrite, 2 * MIB, 64)
    });
    for (ms, r) in windows.iter().zip(&results) {
        let (peak, spread) = r.power.summary().map_or((0.0, 0.0), |s| {
            (s.max(), s.percentile(95.0) - s.percentile(5.0))
        });
        println!(
            "   {:>6}ms {:>10.0} {:>9.2} {:>10.2} {:>10.2}",
            ms,
            r.io.throughput_mibs(),
            r.avg_power_w(),
            peak,
            spread
        );
    }
    println!();

    println!("== Ablation 3: flush watermark (ps0, randwrite 4 KiB QD1) ==");
    println!("   Writes ack from DRAM; the watermark sets how bursty the background");
    println!("   flush is. Bigger bursts widen the instantaneous power swing (Fig. 2a).");
    println!(
        "   {:>10} {:>10} {:>9} {:>10} {:>10}",
        "watermark", "thr MiB/s", "avg W", "peak W", "p99 us"
    );
    let watermarks = [1u64, 4, 16];
    let results = run_cells(&watermarks, &pcfg, |_, &wm_mib| {
        let mut cfg = base_config();
        cfg.flush_watermark_bytes = wm_mib * MIB;
        cfg.noise_sd_w = 0.0;
        let mut dev = device_with(cfg, 0);
        run(&mut dev, Workload::RandWrite, 4 * KIB, 1)
    });
    for (wm_mib, r) in watermarks.iter().zip(&results) {
        let peak = r.power.summary().map_or(0.0, |s| s.max());
        println!(
            "   {:>7}MiB {:>10.0} {:>9.2} {:>10.2} {:>10.0}",
            wm_mib,
            r.io.throughput_mibs(),
            r.avg_power_w(),
            peak,
            r.io.p99_latency_us()
        );
    }
    println!();

    println!("== Ablation 4: write amplification (ps0, randwrite QD64, 4 KiB vs 2 MiB) ==");
    println!("   WAF is the random-write power premium: small random writes do extra NAND");
    println!("   work per user byte. With WAF forced to 1, 4 KiB writes lose ~2 W of that");
    println!("   premium (their throughput is controller-bound either way).");
    println!(
        "   {:>12} {:>13} {:>13} {:>11} {:>11}",
        "waf", "4K thr MiB/s", "2M thr MiB/s", "4K avg W", "2M avg W"
    );
    let variants = [("off (1.0)", 1.0, 1.0), ("paper-like", 1.05, 1.6)];
    let results = run_cells(&variants, &pcfg, |_, &(_, waf_min, waf_max)| {
        let mut cfg = base_config();
        cfg.waf_min = waf_min;
        cfg.waf_max = waf_max;
        let mut small_dev = device_with(cfg.clone(), 0);
        let small = run(&mut small_dev, Workload::RandWrite, 4 * KIB, 64);
        let mut large_dev = device_with(cfg, 0);
        let large = run(&mut large_dev, Workload::RandWrite, 2 * MIB, 64);
        (small, large)
    });
    for ((name, _, _), (small, large)) in variants.iter().zip(&results) {
        println!(
            "   {:>12} {:>13.0} {:>13.0} {:>11.2} {:>11.2}",
            name,
            small.io.throughput_mibs(),
            large.io.throughput_mibs(),
            small.avg_power_w(),
            large.avg_power_w()
        );
    }
    report_executor("ablation");
    powadapt_bench::finish_tracing(trace);
}
