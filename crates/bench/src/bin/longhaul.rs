//! Long-horizon failure scenarios: regional failover, rolling firmware
//! power-state changes, and multi-day diurnal churn with midnight
//! checkpoints.
//!
//! Each scenario runs under both selection policies and reports service,
//! cap compliance, and drop accounting. The diurnal scenario snapshots at
//! every simulated midnight and proves each checkpoint resumes to the
//! uninterrupted run's exact report.
//!
//! Run with: `cargo run --release -p powadapt-bench --bin longhaul`
//!
//! Flags: `--days N` sets the churn horizon (default 5);
//! `--snapshot-out FILE` writes the mid-outage checkpoint of the regional
//! failover scenario; `--resume FILE` resumes it. A corrupt or mismatched
//! snapshot is rejected with a typed error and exit code 2, never a panic.

use powadapt_bench::cli_flag_value;
use powadapt_cluster::longhaul::{
    day, diurnal_churn, regional_failover, rolling_firmware, run_with_midnight_checkpoints,
};
use powadapt_cluster::{ClusterReport, ClusterSim, SelectionPolicy};
use powadapt_sim::SimTime;

const SEED: u64 = 42;
/// Mid-outage checkpoint time for the failover scenario: the rack1
/// breaker is open (trips at 80 ms, restores at 160 ms).
const FAILOVER_CHECKPOINT: SimTime = SimTime::from_millis(120);

fn fail(context: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("longhaul: {context}: {err}");
    std::process::exit(2);
}

fn summary_line(scenario: &str, policy: SelectionPolicy, r: &ClusterReport) {
    println!(
        "  {scenario:18} {policy:13} {:9.1} MiB/s  {:6} served  {:5} dropped  caps {}",
        r.aggregate_throughput_bps() / (1024.0 * 1024.0),
        r.served_ios,
        r.dropped,
        if r.caps_respected() { "ok" } else { "VIOLATED" },
    );
}

fn snapshot_to(path: &str) {
    let mut sim = match ClusterSim::new(regional_failover(SelectionPolicy::ModelDriven, SEED)) {
        Ok(s) => s,
        Err(e) => fail("cannot build failover cluster", &e),
    };
    if let Err(e) = sim.run_to(FAILOVER_CHECKPOINT) {
        fail("run to checkpoint failed", &e);
    }
    let bytes = match sim.snapshot() {
        Ok(b) => b,
        Err(e) => fail("snapshot failed", &e),
    };
    if let Err(e) = std::fs::write(path, &bytes) {
        fail(&format!("cannot write {path}"), &e);
    }
    println!(
        "checkpoint: {} bytes at t={:?} (mid-outage) -> {path}",
        bytes.len(),
        sim.now()
    );
    match sim.finish() {
        Ok(r) => summary_line("regional-failover", SelectionPolicy::ModelDriven, &r),
        Err(e) => fail("rest of run failed", &e),
    }
}

fn resume_from(path: &str) {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => fail(&format!("cannot read {path}"), &e),
    };
    let sim = match ClusterSim::resume(
        regional_failover(SelectionPolicy::ModelDriven, SEED),
        &bytes,
    ) {
        Ok(s) => s,
        Err(e) => fail("snapshot rejected", &e),
    };
    println!("resumed at t={:?} from {path}", sim.now());
    match sim.finish() {
        Ok(r) => summary_line("regional-failover", SelectionPolicy::ModelDriven, &r),
        Err(e) => fail("resumed run failed", &e),
    }
}

fn main() {
    if let Some(path) = cli_flag_value("--snapshot-out") {
        snapshot_to(&path);
        return;
    }
    if let Some(path) = cli_flag_value("--resume") {
        resume_from(&path);
        return;
    }
    let days: u64 = cli_flag_value("--days").map_or(5, |v| {
        v.parse()
            .unwrap_or_else(|e| fail(&format!("bad --days {v}"), &e))
    });

    println!("== Long-horizon failure scenarios (seed {SEED}) ==\n");
    for policy in [SelectionPolicy::ModelDriven, SelectionPolicy::UniformStatic] {
        let failover = match ClusterSim::new(regional_failover(policy, SEED)) {
            Ok(s) => s,
            Err(e) => fail("failover build failed", &e),
        };
        match failover.finish() {
            Ok(r) => summary_line("regional-failover", policy, &r),
            Err(e) => fail("failover run failed", &e),
        }
        let firmware = match ClusterSim::new(rolling_firmware(policy, SEED)) {
            Ok(s) => s,
            Err(e) => fail("firmware build failed", &e),
        };
        match firmware.finish() {
            Ok(r) => summary_line("rolling-firmware", policy, &r),
            Err(e) => fail("firmware run failed", &e),
        }
    }

    println!("\n== Diurnal churn: {days} days, checkpoint at every midnight ==\n");
    let (report, snaps) = match run_with_midnight_checkpoints(
        diurnal_churn(SelectionPolicy::ModelDriven, days, SEED),
        day(),
    ) {
        Ok(out) => out,
        Err(e) => fail("churn run failed", &e),
    };
    summary_line("diurnal-churn", SelectionPolicy::ModelDriven, &report);
    for (i, snap) in snaps.iter().enumerate() {
        let resumed = match ClusterSim::resume(
            diurnal_churn(SelectionPolicy::ModelDriven, days, SEED),
            snap,
        ) {
            Ok(s) => s,
            Err(e) => fail("midnight snapshot rejected", &e),
        };
        let r = match resumed.finish() {
            Ok(r) => r,
            Err(e) => fail("resumed churn failed", &e),
        };
        println!(
            "  midnight {:2}: {:7} bytes, resume {}",
            i + 1,
            snap.len(),
            if r == report { "bit-exact" } else { "DIVERGED" }
        );
        if r != report {
            fail(
                "checkpoint equivalence",
                &format!("midnight {} resume diverged from the straight run", i + 1),
            );
        }
    }
}
