//! Regenerates table1 of the paper. Scale via POWADAPT_SCALE=quick|full|paper.

fn main() {
    powadapt_bench::figures::table1::run(powadapt_bench::bench_scale(), 42);
}
