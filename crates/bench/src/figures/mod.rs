//! One module per table/figure of the paper's evaluation; each exposes the
//! measurement functions plus a `run` that prints the paper's rows/series.

pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
#[cfg(test)]
mod tests;
