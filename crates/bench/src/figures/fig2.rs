//! Figure 2: (a) SSD1 random-write power trace at millisecond resolution;
//! (b) the power distribution (violin) across all four devices for the same
//! workload (randwrite, 256 KiB chunks, queue depth 64).

use powadapt_device::{catalog, KIB};
use powadapt_io::{
    run_cells, run_experiment, ExperimentResult, JobSpec, ParallelConfig, SweepScale, Workload,
};

use crate::TABLE1_LABELS;

/// Runs the Figure 2 workload (randwrite 256 KiB QD64) on one device.
pub fn experiment(label: &str, scale: SweepScale, seed: u64) -> ExperimentResult {
    let mut dev = catalog::by_label(label, seed).expect("known label");
    let job = JobSpec::new(Workload::RandWrite)
        .block_size(256 * KIB)
        .io_depth(64)
        .runtime(scale.runtime)
        .size_limit(scale.size_limit)
        .ramp(scale.ramp)
        .seed(seed);
    run_experiment(dev.as_mut(), &job).expect("valid experiment")
}

/// Runs the Figure 2 workload on all four devices (paper order), fanned
/// across the given workers. Experiments are deterministic, so the results
/// are identical for any worker count.
pub fn experiments_with(
    scale: SweepScale,
    seed: u64,
    cfg: &ParallelConfig,
) -> Vec<ExperimentResult> {
    run_cells(&TABLE1_LABELS, cfg, |_, label| {
        experiment(label, scale, seed)
    })
}

/// Prints Figure 2a (the ms-scale trace) and 2b (per-device violins).
pub fn run(scale: SweepScale, seed: u64) {
    // One parallel batch covers both panels: SSD1's result doubles as the
    // panel-(a) trace because experiments are deterministic.
    let results = experiments_with(scale, seed, &ParallelConfig::from_env());
    println!("Figure 2a. SSD1 power usage over one experiment (randwrite 256 KiB, QD 64).");
    let r = &results[0];
    let n = r.power.len().min(1200);
    println!("  first {n} ms of the measurement window (t_ms, watts):");
    for (i, &w) in r.power.samples().iter().take(n).enumerate() {
        if i % 40 == 0 {
            println!("  {i:>5} ms  {w:>6.2} W");
        }
    }
    if let Some(s) = r.power.summary() {
        println!(
            "  variability: min {:.2} / mean {:.2} / max {:.2} W over {} samples",
            s.min(),
            s.mean(),
            s.max(),
            s.len()
        );
    }
    println!();

    println!("Figure 2b. Power distribution across devices (same workload).");
    println!(
        "  {:<6} {:>8} {:>8} {:>8} {:>8} {:>8}   violin (5 bins)",
        "Device", "min", "p25", "median", "mean", "max"
    );
    for (label, r) in TABLE1_LABELS.iter().zip(&results) {
        let s = r.power.summary().expect("non-empty trace");
        let (_, counts) = s.violin_bins(5);
        let total: usize = counts.iter().sum();
        let bars: Vec<String> = counts
            .iter()
            .map(|&c| {
                let frac = c as f64 / total as f64;
                "#".repeat((frac * 20.0).round() as usize)
            })
            .collect();
        println!(
            "  {:<6} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   [{}]",
            label,
            s.min(),
            s.percentile(25.0),
            s.median(),
            s.mean(),
            s.max(),
            bars.join("|")
        );
    }
    println!();
    println!("Paper: substantial ms-scale variability; median and mean nearly overlap.");
}
