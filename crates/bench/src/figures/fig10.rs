//! Figure 10: the normalized power-throughput model for random writes —
//! (a) across devices, (b) SSD2 across power states — plus the §3.3
//! configuration-selection case study.

use powadapt_device::{catalog, PowerStateId, GIB, KIB};
use powadapt_io::{
    full_sweep_with, ParallelConfig, SweepPoint, SweepScale, Workload, PAPER_CHUNKS, PAPER_DEPTHS,
};
use powadapt_model::{best_under_power_budget, PowerThroughputModel};

use crate::TABLE1_LABELS;

/// Runs the full random-write sweep for one device (all chunk sizes, all
/// depths, all of its power states), fanned across the workers configured
/// by the environment.
pub fn device_sweep(label: &str, scale: SweepScale, seed: u64) -> Vec<SweepPoint> {
    device_sweep_with(label, scale, seed, &ParallelConfig::from_env())
}

/// [`device_sweep`] with an explicit executor configuration.
pub fn device_sweep_with(
    label: &str,
    scale: SweepScale,
    seed: u64,
    cfg: &ParallelConfig,
) -> Vec<SweepPoint> {
    let factory = || catalog::by_label(label, seed).expect("known label");
    let states: Vec<PowerStateId> = factory().power_states().iter().map(|d| d.id).collect();
    full_sweep_with(
        factory,
        &[Workload::RandWrite],
        &PAPER_CHUNKS,
        &PAPER_DEPTHS,
        &states,
        scale,
        seed,
        cfg,
    )
    .expect("sweep runs")
}

/// Builds the per-device models behind Figure 10a.
pub fn models(scale: SweepScale, seed: u64) -> Vec<PowerThroughputModel> {
    models_with(scale, seed, &ParallelConfig::from_env())
}

/// [`models`] with an explicit executor configuration.
pub fn models_with(
    scale: SweepScale,
    seed: u64,
    cfg: &ParallelConfig,
) -> Vec<PowerThroughputModel> {
    let mut all = Vec::new();
    for label in TABLE1_LABELS {
        all.extend(device_sweep_with(label, scale, seed, cfg));
    }
    PowerThroughputModel::from_sweep(&all)
}

/// Prints both panels and the case study.
pub fn run(scale: SweepScale, seed: u64) {
    let models = models(scale, seed);

    println!("Figure 10a. Normalized power-throughput model, random write, all devices.");
    println!("  (normalized throughput, normalized power) per configuration:");
    for m in &models {
        println!(
            "  {} -> dynamic range {:.1}% of max power",
            m,
            100.0 * m.power_dynamic_range()
        );
        for (i, (t, p)) in m.normalized().iter().enumerate() {
            if i % 12 == 0 {
                println!("    ({t:.2}, {p:.2})");
            }
        }
    }
    println!();

    println!("Figure 10b. SSD2 model split by power state.");
    let ssd2 = models
        .iter()
        .find(|m| m.device() == "SSD2")
        .expect("SSD2 swept");
    for ps in 0u8..3 {
        let pts: Vec<(f64, f64)> = ssd2
            .points()
            .iter()
            .filter(|p| p.power_state() == PowerStateId(ps))
            .map(|p| {
                (
                    p.throughput_bps() / ssd2.max_throughput_bps(),
                    p.power_w() / ssd2.max_power_w(),
                )
            })
            .collect();
        let max_p = pts.iter().map(|&(_, p)| p).fold(0.0, f64::max);
        let max_t = pts.iter().map(|&(t, _)| t).fold(0.0, f64::max);
        println!(
            "  ps{ps}: {} points, reaches up to ({max_t:.2} thr, {max_p:.2} power)",
            pts.len()
        );
    }
    println!();

    println!("Headline metrics:");
    for m in &models {
        println!(
            "  {}: power dynamic range {:.1}%, min normalized throughput {:.1}%",
            m.device(),
            100.0 * m.power_dynamic_range(),
            100.0 * m.min_normalized_throughput()
        );
    }
    println!("Paper: SSD2 dynamic range 59.4% of max power; HDD throughput can drop to 4% of max.");
    println!();

    // §3.3 case study: SSD1, 20 % power reduction from the paper's
    // operating point (256 KiB chunks at queue depth 64, ps0).
    println!("Sec. 3.3 case study: SSD1 under a 20% power reduction.");
    let ssd1 = models
        .iter()
        .find(|m| m.device() == "SSD1")
        .expect("SSD1 swept");
    let from = ssd1
        .points()
        .iter()
        .find(|p| p.chunk() == 256 * KIB && p.depth() == 64 && p.power_state() == PowerStateId(0))
        .expect("paper operating point swept")
        .clone();
    println!(
        "  operating point: bs={}KiB qd={} at {:.2} GiB/s, {:.2} W",
        from.chunk() / KIB,
        from.depth(),
        from.throughput_bps() / GIB as f64,
        from.power_w()
    );
    let budget = from.power_w() * 0.8;
    match best_under_power_budget(ssd1, budget) {
        Some(to) => {
            let thr_cut = 1.0 - to.throughput_bps() / from.throughput_bps();
            println!(
                "  model suggests: bs={}KiB qd={} ({}) at {:.2} W, -{:.0}% throughput",
                to.chunk() / KIB,
                to.depth(),
                to.power_state(),
                to.power_w(),
                100.0 * thr_cut
            );
            println!(
                "  best-effort load to curtail: {:.2} GiB/s",
                (from.throughput_bps() - to.throughput_bps()).max(0.0) / GIB as f64
            );
        }
        None => println!("  no configuration fits the reduced budget"),
    }
    println!("Paper: QD64/256 KiB at 3.3 GiB/s, 8.19 W -> QD1/256 KiB, -40% throughput,");
    println!("       curtail 1.3 GiB/s of best-effort load.");
}
