//! Figure 4: SSD2 throughput under different power states (queue depth 64):
//! (a) sequential writes — big drops under caps; (b) sequential reads —
//! minimal drop.

use powadapt_device::{catalog, PowerStateId, KIB};
use powadapt_io::{
    run_cells, run_fresh, JobSpec, ParallelConfig, SweepScale, Workload, PAPER_CHUNKS,
};
use powadapt_sim::SimRng;

/// Measured throughput for one (workload, chunk, state) cell, in MiB/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Chunk size in bytes.
    pub chunk: u64,
    /// Power state id.
    pub ps: u8,
    /// Throughput in MiB/s.
    pub mibs: f64,
}

/// Measures one panel (seq write or seq read) across chunks × states,
/// fanned across the workers configured by the environment.
pub fn panel(workload: Workload, scale: SweepScale, seed: u64) -> Vec<Cell> {
    panel_with(workload, scale, seed, &ParallelConfig::from_env())
}

/// [`panel`] with an explicit executor configuration. Cells are seeded by
/// their stable index, so the result is bit-identical for any worker count.
pub fn panel_with(
    workload: Workload,
    scale: SweepScale,
    seed: u64,
    cfg: &ParallelConfig,
) -> Vec<Cell> {
    let mut coords = Vec::new();
    for &chunk in &PAPER_CHUNKS {
        for ps in 0u8..3 {
            coords.push((chunk, ps));
        }
    }
    run_cells(&coords, cfg, |i, &(chunk, ps)| {
        let job = JobSpec::new(workload)
            .block_size(chunk)
            .io_depth(64)
            .runtime(scale.runtime)
            .size_limit(scale.size_limit)
            .ramp(scale.ramp)
            .seed(SimRng::stream_seed(seed, i as u64));
        let r = run_fresh(
            || Box::new(catalog::ssd2_d7_p5510(seed)),
            PowerStateId(ps),
            &job,
        )
        .expect("valid experiment");
        Cell {
            chunk,
            ps,
            mibs: r.io.throughput_mibs(),
        }
    })
}

fn print_panel(title: &str, cells: &[Cell]) {
    println!("{title}");
    println!(
        "  {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "chunk", "ps0", "ps1", "ps2", "ps1/ps0", "ps2/ps0"
    );
    for &chunk in &PAPER_CHUNKS {
        let v: Vec<f64> = (0u8..3)
            .map(|ps| {
                cells
                    .iter()
                    .find(|c| c.chunk == chunk && c.ps == ps)
                    .expect("cell measured")
                    .mibs
            })
            .collect();
        println!(
            "  {:>7}KiB {:>9.0} {:>9.0} {:>9.0} {:>8.0}% {:>8.0}%",
            chunk / KIB,
            v[0],
            v[1],
            v[2],
            100.0 * v[1] / v[0],
            100.0 * v[2] / v[0]
        );
    }
    println!();
}

/// Prints both panels and the headline ratios.
pub fn run(scale: SweepScale, seed: u64) {
    let writes = panel(Workload::SeqWrite, scale, seed);
    let reads = panel(Workload::SeqRead, scale, seed);
    print_panel(
        "Figure 4a. SSD2 sequential write throughput (MiB/s), QD 64.",
        &writes,
    );
    print_panel(
        "Figure 4b. SSD2 sequential read throughput (MiB/s), QD 64.",
        &reads,
    );
    println!("Paper: seq writes at ps1 ~ 74% and ps2 ~ 55% of ps0;");
    println!("       seq reads show minimal drop under either cap.");
}
