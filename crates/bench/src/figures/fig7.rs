//! Figure 7: 860 EVO power during standby (ALPM SLUMBER) transitions, plus
//! the §3.2.2 HDD spin-down/spin-up measurements.

use powadapt_device::{catalog, StandbyState, StorageDevice};
use powadapt_meter::{MeasurementChain, Oscilloscope, PowerRig, PowerTrace, Trigger};
use powadapt_sim::{SimDuration, SimRng, SimTime};

/// Records a trace while toggling standby on a device: the command fires at
/// `command_at`; `wake` selects the direction.
pub fn transition_trace(
    device: &mut dyn StorageDevice,
    command_at: SimTime,
    duration: SimDuration,
    wake: bool,
    seed: u64,
) -> PowerTrace {
    let mut rng = SimRng::seed_from(seed);
    let mut rig = PowerRig::paper_rig(5.0, &mut rng);
    rig.restart_at(device.now());
    let start = device.now();
    let end = start + duration;
    let mut fired = false;
    loop {
        let t = rig.next_sample();
        if t > end {
            break;
        }
        if !fired && t >= start + (command_at - SimTime::ZERO) {
            if wake {
                device.request_wake().expect("wake accepted");
            } else {
                device.request_standby().expect("standby accepted");
            }
            fired = true;
        }
        device.advance_to(t);
        rig.sample(t, device.power_w());
    }
    rig.into_trace()
}

fn print_trace(title: &str, trace: &PowerTrace, every_ms: usize) {
    println!("{title}");
    for (i, &w) in trace.samples().iter().enumerate() {
        if i % every_ms == 0 {
            println!("  {i:>5} ms  {w:>6.3} W");
        }
    }
    println!();
}

/// Prints Figure 7 (EVO ALPM transitions) and the HDD spin study.
pub fn run(seed: u64) {
    // Panel (a): idle -> standby, ALPM command at 200 ms.
    let mut evo = catalog::evo_860(seed);
    let a = transition_trace(
        &mut evo,
        SimTime::from_millis(200),
        SimDuration::from_millis(1000),
        false,
        seed,
    );
    print_trace(
        "Figure 7a. 860 EVO idle -> standby (ALPM SLUMBER at 200 ms).",
        &a,
        50,
    );
    assert_eq!(evo.standby_state(), StandbyState::Standby);

    // Panel (b): standby -> idle, wake command at 400 ms.
    let b = transition_trace(
        &mut evo,
        SimTime::from_millis(400),
        SimDuration::from_millis(1000),
        true,
        seed,
    );
    print_trace(
        "Figure 7b. 860 EVO standby -> idle (wake at 400 ms).",
        &b,
        50,
    );

    let idle = a.samples().first().copied().unwrap_or(0.0);
    let slumber = a.samples().last().copied().unwrap_or(0.0);
    println!(
        "Measured: idle {idle:.2} W -> SLUMBER {slumber:.2} W; transitions < 0.5 s with a spike."
    );
    println!("Paper:    idle 0.35 W -> SLUMBER 0.17 W; EVO transitions within 0.5 s.");
    println!();

    // §3.2.2: the HDD's spin-down / spin-up trade-off.
    println!("HDD standby study (Sec. 3.2.2):");
    let mut hdd = catalog::hdd_exos_7e2000(seed);
    let idle_w = hdd.power_w();
    hdd.request_standby().expect("idle HDD accepts standby");
    let t0 = hdd.now();
    while let Some(t) = hdd.next_event() {
        hdd.advance_to(t);
    }
    let down = hdd.now().duration_since(t0);
    let standby_w = hdd.power_w();
    hdd.request_wake().expect("wake accepted");
    let t1 = hdd.now();
    while let Some(t) = hdd.next_event() {
        hdd.advance_to(t);
    }
    let up = hdd.now().duration_since(t1);
    println!(
        "  idle {idle_w:.2} W -> standby {standby_w:.2} W (saves {:.2} W)",
        idle_w - standby_w
    );
    println!("  spin-down {down}, spin-up {up}");
    println!("Paper: idle 3.76 W -> standby 1.1 W (saves 2.66 W); spin transitions up to 10 s.");
    println!();

    // Oscilloscope zoom (the paper's alternative capture path): 100 kHz
    // single-shot on the EVO wake edge.
    println!("Oscilloscope zoom: 860 EVO wake edge at 100 kHz (rig is 1 kHz):");
    let mut evo = catalog::evo_860(seed);
    evo.request_standby().expect("idle device sleeps");
    while let Some(t) = evo.next_event() {
        evo.advance_to(t);
    }
    let mut rng = SimRng::seed_from(seed ^ 0x5c09e);
    let chain = MeasurementChain::paper_rig(5.0, &mut rng);
    let mut scope = Oscilloscope::new(chain, rng.fork(), 100_000.0, 40, Trigger::Rising(0.8));
    scope.arm_at(evo.now());
    let mut i = 0u64;
    while !scope.is_complete() && i < 500_000 {
        if i == 100 {
            evo.request_wake().expect("wake accepted");
        }
        let t = scope.next_sample();
        evo.advance_to(t);
        scope.observe(t, evo.power_w());
        i += 1;
    }
    if let Some(c) = scope.capture() {
        for (j, &w) in c.samples().iter().enumerate() {
            if j % 8 == 0 {
                println!("  +{:>4} us  {:>6.3} W", j * 10, w);
            }
        }
        println!(
            "  edge resolved at 10 us resolution; plateau {:.2} W (wake spike)",
            c.mean()
        );
    }
}
