//! Figure 9: random-read power and throughput as IO depth varies
//! (4 KiB chunks), across all four devices.

use powadapt_device::{catalog, PowerStateId, KIB};
use powadapt_io::{
    run_cells, run_fresh, JobSpec, ParallelConfig, SweepScale, Workload, PAPER_DEPTHS,
};
use powadapt_sim::SimRng;

use crate::TABLE1_LABELS;

/// One measured cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Device label.
    pub device: String,
    /// Queue depth.
    pub depth: usize,
    /// Average power in watts.
    pub power_w: f64,
    /// Throughput in MiB/s.
    pub mibs: f64,
}

/// Measures the depth sweep for every device, fanned across the workers
/// configured by the environment.
pub fn grid(scale: SweepScale, seed: u64) -> Vec<Cell> {
    grid_with(scale, seed, &ParallelConfig::from_env())
}

/// [`grid`] with an explicit executor configuration. Cells are seeded by
/// their stable index, so the result is bit-identical for any worker count.
pub fn grid_with(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> Vec<Cell> {
    let mut coords = Vec::new();
    for label in TABLE1_LABELS {
        for &depth in &PAPER_DEPTHS {
            coords.push((label, depth));
        }
    }
    run_cells(&coords, cfg, |i, &(label, depth)| {
        let job = JobSpec::new(Workload::RandRead)
            .block_size(4 * KIB)
            .io_depth(depth)
            .runtime(scale.runtime)
            .size_limit(scale.size_limit)
            .ramp(scale.ramp)
            .seed(SimRng::stream_seed(seed, i as u64));
        let r = run_fresh(
            || catalog::by_label(label, seed).expect("known label"),
            PowerStateId(0),
            &job,
        )
        .expect("valid experiment");
        Cell {
            device: label.to_string(),
            depth,
            power_w: r.avg_power_w(),
            mibs: r.io.throughput_mibs(),
        }
    })
}

/// Prints both panels of the figure.
pub fn run(scale: SweepScale, seed: u64) {
    let cells = grid(scale, seed);
    for (panel, title, pick) in [
        (
            "a",
            "average power (W)",
            (|c: &Cell| c.power_w) as fn(&Cell) -> f64,
        ),
        ("b", "throughput (MiB/s)", |c: &Cell| c.mibs),
    ] {
        println!("Figure 9{panel}. Random read {title} vs IO depth (4 KiB chunks).");
        print!("  {:>8}", "depth");
        for label in TABLE1_LABELS {
            print!(" {label:>9}");
        }
        println!();
        for &depth in &PAPER_DEPTHS {
            print!("  {depth:>8}");
            for label in TABLE1_LABELS {
                let c = cells
                    .iter()
                    .find(|c| c.device == label && c.depth == depth)
                    .expect("cell measured");
                print!(" {:>9.1}", pick(c));
            }
            println!();
        }
        println!();
    }

    println!("Depth 1 relative to depth 64:");
    for label in TABLE1_LABELS {
        let qd1 = cells
            .iter()
            .find(|c| c.device == label && c.depth == 1)
            .expect("cell");
        let qd64 = cells
            .iter()
            .find(|c| c.device == label && c.depth == 64)
            .expect("cell");
        println!(
            "  {label}: power {:.0}%, throughput {:.0}%",
            100.0 * qd1.power_w / qd64.power_w,
            100.0 * qd1.mibs / qd64.mibs
        );
    }
    println!(
        "Paper: depth 1 consumes up to 40% less power but may provide only ~10% of throughput."
    );
}
