//! Table 1: evaluated storage devices and their measured power ranges.

use powadapt_device::{catalog, KIB, MIB};
use powadapt_io::{run_cells, run_experiment, JobSpec, ParallelConfig, SweepScale, Workload};
use powadapt_meter::PowerRig;
use powadapt_sim::{SimDuration, SimRng};

use crate::TABLE1_LABELS;

/// A Table 1 row: label, protocol, model, measured power range.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Device label ("SSD1", ...).
    pub label: String,
    /// Interface protocol name.
    pub protocol: String,
    /// Model name.
    pub model: String,
    /// Minimum measured power in watts (including standby where supported).
    pub min_w: f64,
    /// Maximum measured power in watts.
    pub max_w: f64,
}

/// Measures the power range of one device across representative workload
/// extremes, plus a standby segment where the device supports it.
pub fn measure_device(label: &str, scale: SweepScale, seed: u64) -> Row {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;

    // The workload extremes of the sweep: the lightest and heaviest shapes.
    let cells = [
        (Workload::RandRead, 4 * KIB, 1),
        (Workload::RandWrite, 4 * KIB, 1),
        (Workload::SeqRead, 2 * MIB, 64),
        (Workload::SeqWrite, 2 * MIB, 64),
        (Workload::RandWrite, 256 * KIB, 64),
    ];
    for (w, chunk, depth) in cells {
        let mut dev = catalog::by_label(label, seed).expect("known label");
        let job = JobSpec::new(w)
            .block_size(chunk)
            .io_depth(depth)
            .runtime(scale.runtime)
            .size_limit(scale.size_limit)
            .ramp(scale.ramp)
            .seed(seed);
        let r = run_experiment(dev.as_mut(), &job).expect("valid experiment");
        if let Some(s) = r.power.summary() {
            lo = lo.min(s.min());
            hi = hi.max(s.max());
        }
    }

    // Idle floor and, where supported, standby floor — the paper's minima
    // include the device's lowest-power state.
    let mut dev = catalog::by_label(label, seed).expect("known label");
    lo = lo.min(dev.power_w());
    if dev.standby_power_w().is_some() {
        dev.request_standby().expect("idle device accepts standby");
        while let Some(t) = dev.next_event() {
            dev.advance_to(t);
        }
        // Meter the standby level through the rig like any other segment.
        let mut rng = SimRng::seed_from(seed ^ 0xabcd);
        let mut rig = PowerRig::paper_rig(5.0, &mut rng);
        rig.restart_at(dev.now());
        let end = dev.now() + SimDuration::from_millis(200);
        let mut t = dev.now();
        while t < end {
            t = rig.next_sample();
            dev.advance_to(t);
            rig.sample(t, dev.power_w());
        }
        if let Some(s) = rig.trace().summary() {
            lo = lo.min(s.min());
        }
    }

    let spec = dev.spec();
    Row {
        label: spec.label().to_string(),
        protocol: spec.protocol().to_string(),
        model: spec.model().to_string(),
        min_w: lo,
        max_w: hi,
    }
}

/// Regenerates Table 1 for all four devices, measuring them in parallel
/// across the workers configured by the environment.
pub fn rows(scale: SweepScale, seed: u64) -> Vec<Row> {
    rows_with(scale, seed, &ParallelConfig::from_env())
}

/// [`rows`] with an explicit executor configuration. Each device's
/// measurement is self-seeded, so rows are identical for any worker count.
pub fn rows_with(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> Vec<Row> {
    run_cells(&TABLE1_LABELS, cfg, |_, label| {
        measure_device(label, scale, seed)
    })
}

/// Prints the table in the paper's layout.
pub fn run(scale: SweepScale, seed: u64) {
    println!("Table 1. Evaluated storage devices.");
    println!(
        "{:<6} {:<9} {:<22} Measured Power Range",
        "Label", "Protocol", "Model"
    );
    println!("{}", "-".repeat(64));
    for r in rows(scale, seed) {
        println!(
            "{:<6} {:<9} {:<22} {:.1}-{:.1} W",
            r.label, r.protocol, r.model, r.min_w, r.max_w
        );
    }
    println!();
    println!("Paper:  SSD1 3.5-13.5 W | SSD2 5-15.1 W | SSD3 1-3.5 W | HDD 1-5.3 W");
}
