//! Figure 8: random-write power and throughput as chunk size varies
//! (queue depth 64), across all four devices.

use powadapt_device::{catalog, PowerStateId, KIB};
use powadapt_io::{
    run_cells, run_fresh, JobSpec, ParallelConfig, SweepScale, Workload, PAPER_CHUNKS,
};
use powadapt_sim::SimRng;

use crate::TABLE1_LABELS;

/// One measured cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Device label.
    pub device: String,
    /// Chunk size in bytes.
    pub chunk: u64,
    /// Average power in watts.
    pub power_w: f64,
    /// Throughput in MiB/s.
    pub mibs: f64,
}

/// Measures the chunk sweep for every device, fanned across the workers
/// configured by the environment.
pub fn grid(scale: SweepScale, seed: u64) -> Vec<Cell> {
    grid_with(scale, seed, &ParallelConfig::from_env())
}

/// [`grid`] with an explicit executor configuration. Cells are seeded by
/// their stable index, so the result is bit-identical for any worker count.
pub fn grid_with(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> Vec<Cell> {
    let mut coords = Vec::new();
    for label in TABLE1_LABELS {
        for &chunk in &PAPER_CHUNKS {
            coords.push((label, chunk));
        }
    }
    run_cells(&coords, cfg, |i, &(label, chunk)| {
        let job = JobSpec::new(Workload::RandWrite)
            .block_size(chunk)
            .io_depth(64)
            .runtime(scale.runtime)
            .size_limit(scale.size_limit)
            .ramp(scale.ramp)
            .seed(SimRng::stream_seed(seed, i as u64));
        let r = run_fresh(
            || catalog::by_label(label, seed).expect("known label"),
            PowerStateId(0),
            &job,
        )
        .expect("valid experiment");
        Cell {
            device: label.to_string(),
            chunk,
            power_w: r.avg_power_w(),
            mibs: r.io.throughput_mibs(),
        }
    })
}

/// Prints both panels of the figure.
pub fn run(scale: SweepScale, seed: u64) {
    let cells = grid(scale, seed);
    for (panel, title, pick) in [
        (
            "a",
            "average power (W)",
            (|c: &Cell| c.power_w) as fn(&Cell) -> f64,
        ),
        ("b", "throughput (MiB/s)", |c: &Cell| c.mibs),
    ] {
        println!("Figure 8{panel}. Random write {title} vs chunk size (QD 64).");
        print!("  {:>10}", "chunk");
        for label in TABLE1_LABELS {
            print!(" {label:>9}");
        }
        println!();
        for &chunk in &PAPER_CHUNKS {
            print!("  {:>7}KiB", chunk / KIB);
            for label in TABLE1_LABELS {
                let c = cells
                    .iter()
                    .find(|c| c.device == label && c.chunk == chunk)
                    .expect("cell measured");
                print!(" {:>9.1}", pick(c));
            }
            println!();
        }
        println!();
    }

    // Headline ratios: 4 KiB vs 2 MiB.
    println!("4 KiB relative to 2 MiB:");
    for label in TABLE1_LABELS {
        let small = cells
            .iter()
            .find(|c| c.device == label && c.chunk == PAPER_CHUNKS[0])
            .expect("cell");
        let large = cells
            .iter()
            .find(|c| {
                c.device == label
                    && c.chunk == *PAPER_CHUNKS.last().expect("PAPER_CHUNKS is non-empty")
            })
            .expect("cell");
        println!(
            "  {label}: power {:.0}%, throughput {:.0}%",
            100.0 * small.power_w / large.power_w,
            100.0 * small.mibs / large.mibs
        );
    }
    println!("Paper: 4 KiB chunks consume up to 30% less power but lose up to ~50% throughput.");
}
