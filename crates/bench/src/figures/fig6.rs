//! Figure 6: SSD2 random read latency (queue depth 1) across power states —
//! the "non-trade-off": reads at QD1 don't create enough load to be capped.

use powadapt_io::{SweepScale, Workload, PAPER_CHUNKS};

use crate::figures::fig5;

/// Prints Figure 6 (randread latency, normalized to ps0) and the maximum
/// deviation across all cells.
pub fn run(scale: SweepScale, seed: u64) {
    let cells = fig5::panel(Workload::RandRead, scale, seed);

    for (panel, pick) in [
        (
            "a (avg)",
            (|c: &fig5::Cell| c.avg_us) as fn(&fig5::Cell) -> f64,
        ),
        ("b (p99)", |c: &fig5::Cell| c.p99_us),
    ] {
        println!("Figure 6{panel}. SSD2 random read latency (normalized to ps0), QD 1.");
        println!("  {:>10} {:>8} {:>8} {:>8}", "chunk", "ps0", "ps1", "ps2");
        for &chunk in &PAPER_CHUNKS {
            let v: Vec<f64> = (0u8..3)
                .map(|ps| {
                    pick(
                        cells
                            .iter()
                            .find(|c| c.chunk == chunk && c.ps == ps)
                            .expect("cell measured"),
                    )
                })
                .collect();
            println!(
                "  {:>7}KiB {:>7.2}x {:>7.2}x {:>7.2}x",
                chunk / 1024,
                1.0,
                v[1] / v[0],
                v[2] / v[0]
            );
        }
        println!();
    }

    let max_dev = max_deviation(&cells);
    println!(
        "Measured: max deviation from ps0 across all cells: {:.1}%.",
        100.0 * max_dev
    );
    println!("Paper:    no noticeable difference between power states.");
}

/// Largest relative deviation of any capped cell from its ps0 baseline.
pub fn max_deviation(cells: &[fig5::Cell]) -> f64 {
    let mut max_dev = 0.0f64;
    for &chunk in &PAPER_CHUNKS {
        let base = cells
            .iter()
            .find(|c| c.chunk == chunk && c.ps == 0)
            .expect("baseline measured");
        for ps in 1u8..3 {
            let c = cells
                .iter()
                .find(|c| c.chunk == chunk && c.ps == ps)
                .expect("cell measured");
            max_dev = max_dev
                .max((c.avg_us / base.avg_us - 1.0).abs())
                .max((c.p99_us / base.p99_us - 1.0).abs());
        }
    }
    max_dev
}
