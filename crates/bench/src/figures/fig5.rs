//! Figures 5 and 6: SSD2 latency at queue depth 1 under power states —
//! random writes degrade (avg up to ~2×, p99 up to ~6.2×); random reads
//! don't change at all.

use powadapt_device::{catalog, PowerStateId, KIB};
use powadapt_io::{
    run_cells, run_fresh, JobSpec, ParallelConfig, SweepScale, Workload, PAPER_CHUNKS,
};
use powadapt_sim::SimRng;

/// Latency measurements of one (chunk, state) cell, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Chunk size in bytes.
    pub chunk: u64,
    /// Power state id.
    pub ps: u8,
    /// Average latency in µs.
    pub avg_us: f64,
    /// 99th-percentile latency in µs.
    pub p99_us: f64,
}

/// Measures one workload across chunks × states at queue depth 1, fanned
/// across the workers configured by the environment.
pub fn panel(workload: Workload, scale: SweepScale, seed: u64) -> Vec<Cell> {
    panel_with(workload, scale, seed, &ParallelConfig::from_env())
}

/// [`panel`] with an explicit executor configuration. Cells are seeded by
/// their stable index, so the result is bit-identical for any worker count.
pub fn panel_with(
    workload: Workload,
    scale: SweepScale,
    seed: u64,
    cfg: &ParallelConfig,
) -> Vec<Cell> {
    let mut coords = Vec::new();
    for &chunk in &PAPER_CHUNKS {
        for ps in 0u8..3 {
            coords.push((chunk, ps));
        }
    }
    run_cells(&coords, cfg, |i, &(chunk, ps)| {
        let job = JobSpec::new(workload)
            .block_size(chunk)
            .io_depth(1)
            .runtime(scale.runtime)
            .size_limit(scale.size_limit)
            .ramp(scale.ramp)
            .seed(SimRng::stream_seed(seed, i as u64));
        let r = run_fresh(
            || Box::new(catalog::ssd2_d7_p5510(seed)),
            PowerStateId(ps),
            &job,
        )
        .expect("valid experiment");
        Cell {
            chunk,
            ps,
            avg_us: r.io.avg_latency_us(),
            p99_us: r.io.p99_latency_us(),
        }
    })
}

fn print_normalized(title: &str, cells: &[Cell], pick: fn(&Cell) -> f64) {
    println!("{title}");
    println!("  {:>10} {:>8} {:>8} {:>8}", "chunk", "ps0", "ps1", "ps2");
    for &chunk in &PAPER_CHUNKS {
        let v: Vec<f64> = (0u8..3)
            .map(|ps| {
                pick(
                    cells
                        .iter()
                        .find(|c| c.chunk == chunk && c.ps == ps)
                        .expect("cell measured"),
                )
            })
            .collect();
        println!(
            "  {:>7}KiB {:>7.2}x {:>7.2}x {:>7.2}x",
            chunk / KIB,
            1.0,
            v[1] / v[0],
            v[2] / v[0]
        );
    }
    println!();
}

/// Prints Figure 5 (randwrite latency, normalized to ps0).
pub fn run(scale: SweepScale, seed: u64) {
    let cells = panel(Workload::RandWrite, scale, seed);
    print_normalized(
        "Figure 5a. SSD2 random write AVG latency (normalized to ps0), QD 1.",
        &cells,
        |c| c.avg_us,
    );
    print_normalized(
        "Figure 5b. SSD2 random write P99 latency (normalized to ps0), QD 1.",
        &cells,
        |c| c.p99_us,
    );
    let max_avg = PAPER_CHUNKS
        .iter()
        .map(|&ch| {
            let v0 = cells
                .iter()
                .find(|c| c.chunk == ch && c.ps == 0)
                .expect("every (chunk, ps) cell was swept above")
                .avg_us;
            let v2 = cells
                .iter()
                .find(|c| c.chunk == ch && c.ps == 2)
                .expect("every (chunk, ps) cell was swept above")
                .avg_us;
            v2 / v0
        })
        .fold(0.0, f64::max);
    let max_p99 = PAPER_CHUNKS
        .iter()
        .map(|&ch| {
            let v0 = cells
                .iter()
                .find(|c| c.chunk == ch && c.ps == 0)
                .expect("every (chunk, ps) cell was swept above")
                .p99_us;
            let v2 = cells
                .iter()
                .find(|c| c.chunk == ch && c.ps == 2)
                .expect("every (chunk, ps) cell was swept above")
                .p99_us;
            v2 / v0
        })
        .fold(0.0, f64::max);
    println!("Measured: avg up to {max_avg:.2}x, p99 up to {max_p99:.2}x at ps2.");
    println!("Paper:    avg up to ~2x, p99 up to 6.19x at ps2.");
}
