//! Tests of the figure-regeneration machinery at a tiny scale: structure
//! and internal consistency of what each module measures (full-scale
//! numbers live in EXPERIMENTS.md and tests/figures_shapes.rs).

use powadapt_io::SweepScale;
use powadapt_sim::SimDuration;

use super::*;

fn tiny() -> SweepScale {
    SweepScale {
        runtime: SimDuration::from_millis(40),
        size_limit: 64 * 1024 * 1024,
        ramp: SimDuration::from_millis(5),
    }
}

#[test]
fn table1_rows_cover_all_devices_with_sane_ranges() {
    let rows = table1::rows(tiny(), 5);
    assert_eq!(rows.len(), 4);
    let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, vec!["SSD1", "SSD2", "SSD3", "HDD"]);
    for r in &rows {
        assert!(r.min_w > 0.0, "{}: min {}", r.label, r.min_w);
        assert!(r.max_w > r.min_w, "{}: empty range", r.label);
        assert!(r.max_w < 30.0, "{}: absurd max {}", r.label, r.max_w);
    }
    // The HDD row includes the standby floor.
    let hdd = rows.iter().find(|r| r.label == "HDD").expect("present");
    assert!(hdd.min_w < 1.3, "standby included: {}", hdd.min_w);
}

#[test]
fn fig2_experiment_produces_a_trace_and_stats() {
    let r = fig2::experiment("SSD3", tiny(), 5);
    assert!(!r.power.is_empty());
    assert!(r.io.ios() > 0);
    assert!(r.power.summary().is_some());
}

#[test]
fn fig3_grid_is_complete_and_caps_order_correctly() {
    let cells = fig3::grid(
        SweepScale {
            runtime: SimDuration::from_millis(60),
            size_limit: 256 * 1024 * 1024,
            ramp: SimDuration::from_millis(10),
        },
        5,
    );
    // 6 chunks x 2 depths x 3 states.
    assert_eq!(cells.len(), 36);
    // At QD64 / 2 MiB, deeper caps mean less (or equal) power.
    let p = |ps: u8| {
        cells
            .iter()
            .find(|c| c.depth == 64 && c.chunk == 2 * 1024 * 1024 && c.ps == ps)
            .expect("cell present")
            .power_w
    };
    assert!(p(1) <= p(0) * 1.02);
    assert!(p(2) <= p(1) * 1.02);
}

#[test]
fn fig4_panels_have_all_cells() {
    let cells = fig4::panel(powadapt_io::Workload::SeqRead, tiny(), 5);
    assert_eq!(cells.len(), 18);
    assert!(cells.iter().all(|c| c.mibs > 0.0));
}

#[test]
fn fig5_panel_reports_latencies_for_every_cell() {
    let cells = fig5::panel(powadapt_io::Workload::RandWrite, tiny(), 5);
    assert_eq!(cells.len(), 18);
    for c in &cells {
        assert!(c.avg_us > 0.0);
        assert!(c.p99_us >= c.avg_us * 0.5);
    }
}

#[test]
fn fig6_max_deviation_is_zero_for_uncapped_reads() {
    let cells = fig5::panel(powadapt_io::Workload::RandRead, tiny(), 5);
    let dev = fig6::max_deviation(&cells);
    assert!(dev < 0.05, "read deviation {dev}");
}

#[test]
fn fig8_and_fig9_grids_cover_every_device() {
    let g8 = fig8::grid(tiny(), 5);
    assert_eq!(g8.len(), 4 * 6);
    let g9 = fig9::grid(tiny(), 5);
    assert_eq!(g9.len(), 4 * 6);
    for c in &g9 {
        assert!(c.power_w > 0.0);
    }
}

#[test]
fn fig10_models_build_for_every_device() {
    // Only SSD3 (single power state) at tiny scale to keep this quick.
    let sweep = fig10::device_sweep("SSD3", tiny(), 5);
    assert_eq!(sweep.len(), 36);
    let models = powadapt_model::PowerThroughputModel::from_sweep(&sweep);
    assert_eq!(models.len(), 1);
    assert!(models[0].power_dynamic_range() > 0.1);
}
