//! Figure 3: SSD2 random-write average power under different power states,
//! across chunk sizes, at queue depths 64 (a) and 1 (b).

use powadapt_device::{catalog, PowerStateId, KIB};
use powadapt_io::{
    run_cells, run_fresh, JobSpec, ParallelConfig, SweepScale, Workload, PAPER_CHUNKS,
};
use powadapt_sim::SimRng;

/// One measured cell of the figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Chunk size in bytes.
    pub chunk: u64,
    /// Queue depth.
    pub depth: usize,
    /// Power state id.
    pub ps: u8,
    /// Average power in watts.
    pub power_w: f64,
}

/// Measures the full grid: 6 chunks × depths {64, 1} × states {0, 1, 2},
/// fanned across the workers configured by the environment.
pub fn grid(scale: SweepScale, seed: u64) -> Vec<Cell> {
    grid_with(scale, seed, &ParallelConfig::from_env())
}

/// [`grid`] with an explicit executor configuration. Cells are seeded by
/// their stable index, so the result is bit-identical for any worker count.
pub fn grid_with(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> Vec<Cell> {
    let mut coords = Vec::new();
    for &depth in &[64usize, 1] {
        for &chunk in &PAPER_CHUNKS {
            for ps in 0u8..3 {
                coords.push((depth, chunk, ps));
            }
        }
    }
    run_cells(&coords, cfg, |i, &(depth, chunk, ps)| {
        let job = JobSpec::new(Workload::RandWrite)
            .block_size(chunk)
            .io_depth(depth)
            .runtime(scale.runtime)
            .size_limit(scale.size_limit)
            .ramp(scale.ramp)
            .seed(SimRng::stream_seed(seed, i as u64));
        let r = run_fresh(
            || Box::new(catalog::ssd2_d7_p5510(seed)),
            PowerStateId(ps),
            &job,
        )
        .expect("valid experiment");
        Cell {
            chunk,
            depth,
            ps,
            power_w: r.avg_power_w(),
        }
    })
}

/// Prints both panels of the figure.
pub fn run(scale: SweepScale, seed: u64) {
    let cells = grid(scale, seed);
    for (panel, depth) in [("a", 64usize), ("b", 1usize)] {
        println!("Figure 3{panel}. SSD2 randwrite average power (W), queue depth {depth}.");
        println!("  {:>10} {:>8} {:>8} {:>8}", "chunk", "ps0", "ps1", "ps2");
        for &chunk in &PAPER_CHUNKS {
            let v: Vec<f64> = (0u8..3)
                .map(|ps| {
                    cells
                        .iter()
                        .find(|c| c.chunk == chunk && c.depth == depth && c.ps == ps)
                        .expect("cell measured")
                        .power_w
                })
                .collect();
            println!(
                "  {:>7}KiB {:>8.2} {:>8.2} {:>8.2}",
                chunk / KIB,
                v[0],
                v[1],
                v[2]
            );
        }
        println!();
    }
    println!("Paper: caps hold (ps1 <= 12 W, ps2 <= 10 W); power grows with chunk size;");
    println!("       at QD1 the states only diverge once large chunks create enough load.");
}
