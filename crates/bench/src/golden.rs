//! Golden-figure regression fixtures: canonical JSON summaries of every
//! table/figure at a fixed scale and seed, committed under
//! `crates/bench/goldens/` and compared byte-for-byte by
//! `tests/parallel_equivalence.rs`.
//!
//! The summaries are produced through the same measurement functions the
//! figure binaries use, so any drift in device models, the runner, or the
//! parallel executor shows up as a fixture diff. Floats are serialized with
//! Rust's shortest round-trip formatting (`{:?}`), making the comparison
//! exact at the bit level. Regenerate after intentional changes with
//! `cargo run -p powadapt-bench --bin regen_goldens`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use powadapt_cluster::ClusterReport;
use powadapt_core::AdaptiveController;
use powadapt_device::{catalog, FaultInjector, FaultPlan, PowerStateId, StorageDevice, GIB, KIB};
use powadapt_io::{
    run_fleet, AccessPattern, Arrivals, BreakerConfig, CircuitBreakerRouter, LeastLoadedRouter,
    OpenLoopSpec, ParallelConfig, SweepScale, Workload,
};
use powadapt_meter::PowerTrace;
use powadapt_model::{ConfigPoint, PowerThroughputModel};
use powadapt_obs::TraceRecorder;
use powadapt_sim::{SimDuration, SimTime};

use crate::figures::{fig10, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, table1};

/// Root seed for every golden summary.
pub const GOLDEN_SEED: u64 = 42;

/// Every figure with a committed golden fixture, in paper order.
pub const FIGURES: [&str; 10] = [
    "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
];

/// The scale golden summaries are measured at: long enough for every cell
/// to do real IO, short enough that the full figure set replays in seconds.
pub fn golden_scale() -> SweepScale {
    SweepScale {
        runtime: SimDuration::from_millis(60),
        size_limit: 4 * GIB,
        ramp: SimDuration::from_millis(15),
    }
}

/// The committed fixture directory (`crates/bench/goldens/`).
pub fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens")
}

/// Bit-exact checksum of a float sequence (order-sensitive).
pub fn f64_checksum<'a, I>(values: I) -> u64
where
    I: IntoIterator<Item = &'a f64>,
{
    values.into_iter().fold(0u64, |acc, v| {
        acc.wrapping_mul(31).wrapping_add(v.to_bits())
    })
}

fn checksum_field(trace: &PowerTrace) -> String {
    format!(
        "\"samples\": {}, \"checksum\": \"{:016x}\"",
        trace.len(),
        f64_checksum(trace.samples())
    )
}

/// Formats a float exactly (shortest round-trip representation, valid JSON
/// for all finite values).
fn jf(v: f64) -> String {
    assert!(v.is_finite(), "golden summaries must be finite, got {v}");
    format!("{v:?}")
}

fn doc(figure: &str, seed: u64, rows: &[String]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"figure\": \"{figure}\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    s.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(s, "    {row}{sep}");
    }
    s.push_str("  ]\n}\n");
    s
}

fn table1_summary(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> String {
    let rows: Vec<String> = table1::rows_with(scale, seed, cfg)
        .iter()
        .map(|r| {
            format!(
                "{{\"label\": \"{}\", \"protocol\": \"{}\", \"model\": \"{}\", \"min_w\": {}, \"max_w\": {}}}",
                r.label,
                r.protocol,
                r.model,
                jf(r.min_w),
                jf(r.max_w)
            )
        })
        .collect();
    doc("table1", seed, &rows)
}

fn fig2_summary(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> String {
    let rows: Vec<String> = crate::TABLE1_LABELS
        .iter()
        .zip(fig2::experiments_with(scale, seed, cfg))
        .map(|(label, r)| {
            let s = r.power.summary().expect("non-empty trace");
            format!(
                "{{\"device\": \"{label}\", \"ios\": {}, \"bytes\": {}, \"mean_w\": {}, \"min_w\": {}, \"max_w\": {}, {}}}",
                r.io.ios(),
                r.io.bytes(),
                jf(s.mean()),
                jf(s.min()),
                jf(s.max()),
                checksum_field(&r.power)
            )
        })
        .collect();
    doc("fig2", seed, &rows)
}

fn fig3_summary(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> String {
    let rows: Vec<String> = fig3::grid_with(scale, seed, cfg)
        .iter()
        .map(|c| {
            format!(
                "{{\"chunk\": {}, \"depth\": {}, \"ps\": {}, \"power_w\": {}}}",
                c.chunk,
                c.depth,
                c.ps,
                jf(c.power_w)
            )
        })
        .collect();
    doc("fig3", seed, &rows)
}

fn throughput_panel_rows(panel: &str, cells: &[fig4::Cell]) -> Vec<String> {
    cells
        .iter()
        .map(|c| {
            format!(
                "{{\"panel\": \"{panel}\", \"chunk\": {}, \"ps\": {}, \"mibs\": {}}}",
                c.chunk,
                c.ps,
                jf(c.mibs)
            )
        })
        .collect()
}

fn fig4_summary(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> String {
    let mut rows =
        throughput_panel_rows("a", &fig4::panel_with(Workload::SeqWrite, scale, seed, cfg));
    rows.extend(throughput_panel_rows(
        "b",
        &fig4::panel_with(Workload::SeqRead, scale, seed, cfg),
    ));
    doc("fig4", seed, &rows)
}

fn latency_panel_rows(cells: &[fig5::Cell]) -> Vec<String> {
    cells
        .iter()
        .map(|c| {
            format!(
                "{{\"chunk\": {}, \"ps\": {}, \"avg_us\": {}, \"p99_us\": {}}}",
                c.chunk,
                c.ps,
                jf(c.avg_us),
                jf(c.p99_us)
            )
        })
        .collect()
}

fn fig5_summary(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> String {
    let cells = fig5::panel_with(Workload::RandWrite, scale, seed, cfg);
    doc("fig5", seed, &latency_panel_rows(&cells))
}

fn fig6_summary(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> String {
    let cells = fig5::panel_with(Workload::RandRead, scale, seed, cfg);
    let mut rows = latency_panel_rows(&cells);
    rows.push(format!(
        "{{\"max_deviation\": {}}}",
        jf(fig6::max_deviation(&cells))
    ));
    doc("fig6", seed, &rows)
}

fn fig7_summary(seed: u64) -> String {
    // Figure 7 is a pair of single-device transition traces — inherently
    // sequential, so the golden pins its determinism rather than
    // worker-invariance.
    let mut evo = catalog::evo_860(seed);
    let down = fig7::transition_trace(
        &mut evo,
        SimTime::from_millis(200),
        SimDuration::from_millis(1000),
        false,
        seed,
    );
    let up = fig7::transition_trace(
        &mut evo,
        SimTime::from_millis(400),
        SimDuration::from_millis(1000),
        true,
        seed,
    );

    let mut hdd = catalog::hdd_exos_7e2000(seed);
    hdd.request_standby().expect("idle HDD accepts standby");
    let t0 = hdd.now();
    while let Some(t) = hdd.next_event() {
        hdd.advance_to(t);
    }
    let spin_down = hdd.now().duration_since(t0);
    hdd.request_wake().expect("wake accepted");
    let t1 = hdd.now();
    while let Some(t) = hdd.next_event() {
        hdd.advance_to(t);
    }
    let spin_up = hdd.now().duration_since(t1);

    let rows = vec![
        format!("{{\"trace\": \"evo_standby\", {}}}", checksum_field(&down)),
        format!("{{\"trace\": \"evo_wake\", {}}}", checksum_field(&up)),
        format!(
            "{{\"hdd_spin_down_ns\": {}, \"hdd_spin_up_ns\": {}}}",
            spin_down.as_nanos(),
            spin_up.as_nanos()
        ),
    ];
    doc("fig7", seed, &rows)
}

fn fig8_summary(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> String {
    let rows: Vec<String> = fig8::grid_with(scale, seed, cfg)
        .iter()
        .map(|c| {
            format!(
                "{{\"device\": \"{}\", \"chunk\": {}, \"power_w\": {}, \"mibs\": {}}}",
                c.device,
                c.chunk,
                jf(c.power_w),
                jf(c.mibs)
            )
        })
        .collect();
    doc("fig8", seed, &rows)
}

fn fig9_summary(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> String {
    let rows: Vec<String> = fig9::grid_with(scale, seed, cfg)
        .iter()
        .map(|c| {
            format!(
                "{{\"device\": \"{}\", \"depth\": {}, \"power_w\": {}, \"mibs\": {}}}",
                c.device,
                c.depth,
                jf(c.power_w),
                jf(c.mibs)
            )
        })
        .collect();
    doc("fig9", seed, &rows)
}

fn fig10_summary(scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> String {
    let rows: Vec<String> = fig10::models_with(scale, seed, cfg)
        .iter()
        .map(|m| {
            let coords: Vec<f64> = m
                .points()
                .iter()
                .flat_map(|p| [p.throughput_bps(), p.power_w()])
                .collect();
            format!(
                "{{\"device\": \"{}\", \"points\": {}, \"dynamic_range\": {}, \"min_norm_throughput\": {}, \"points_checksum\": \"{:016x}\"}}",
                m.device(),
                m.points().len(),
                jf(m.power_dynamic_range()),
                jf(m.min_normalized_throughput()),
                f64_checksum(&coords)
            )
        })
        .collect();
    doc("fig10", seed, &rows)
}

/// Name of the committed observability event-count fixture
/// (`crates/bench/goldens/obs_events.json`).
pub const OBS_FIXTURE: &str = "obs_events";

/// One cell of the canonical traced scenario: a 3-device fleet with a
/// dropout window on device 0, ridden through behind the circuit breaker.
/// Returns the served IO count (pinning that the cell really ran).
fn traced_fleet_cell(cell: u64) -> u64 {
    let spec = OpenLoopSpec {
        arrivals: Arrivals::Poisson { rate_iops: 2_000.0 },
        block_size: 64 * KIB,
        read_fraction: 0.7,
        pattern: AccessPattern::Random,
        region: (0, GIB),
        duration: SimDuration::from_millis(250),
        seed: 11 + cell,
        zipf_theta: None,
    };
    let outage = FaultPlan::none()
        .io_errors(0.02)
        .dropout(SimTime::from_millis(60), SimTime::from_millis(160));
    let mut devices: Vec<Box<dyn StorageDevice>> = (0..3u64)
        .map(|i| {
            let inner = Box::new(catalog::ssd3_d3_p4510(500 + 10 * cell + i));
            let plan = if i == 0 {
                outage.clone()
            } else {
                FaultPlan::none()
            };
            Box::new(FaultInjector::seeded(inner, plan, 70 + cell + i)) as Box<dyn StorageDevice>
        })
        .collect();
    let breaker = BreakerConfig {
        failure_threshold: 3,
        cooldown: SimDuration::from_millis(50),
        probe_successes: 2,
    };
    let mut router = CircuitBreakerRouter::new(LeastLoadedRouter::default(), breaker);
    let r = run_fleet(
        &mut devices,
        &mut router,
        &spec,
        SimDuration::from_millis(20),
    )
    .expect("traced fleet cell runs");
    r.total.ios()
}

/// A short closed-loop budget sequence over an SSD2 + HDD pair, so the
/// fixture also covers `controller_decision`, standby spin events, and
/// power-state transitions.
fn traced_controller_rounds() {
    let mk = |device: &str, ps: u8, power_w: f64, thr_bps: f64| {
        ConfigPoint::new(
            device,
            Workload::RandWrite,
            PowerStateId(ps),
            256 * KIB,
            64,
            power_w,
            thr_bps,
        )
    };
    let ssd2 = PowerThroughputModel::from_points(
        "SSD2",
        vec![
            mk("SSD2", 0, 15.0, 3.3e9),
            mk("SSD2", 1, 11.7, 2.3e9),
            mk("SSD2", 2, 9.7, 1.6e9),
        ],
    )
    .expect("SSD2 model");
    let hdd = PowerThroughputModel::from_points("HDD", vec![mk("HDD", 0, 4.5, 130e6)])
        .expect("HDD model");
    let mut ctl = AdaptiveController::new(
        vec![
            Box::new(catalog::ssd2_d7_p5510(1)),
            Box::new(catalog::hdd_exos_7e2000(2)),
        ],
        vec![ssd2, hdd],
    )
    .expect("matched models");
    // Generous -> tight (HDD sleeps) -> generous (HDD wakes), draining the
    // pending transitions between rounds so spin events land.
    for budget_w in [30.0, 11.0, 30.0] {
        let _ = ctl.apply_budget(budget_w).expect("feasible budget");
        for i in 0..2 {
            let d = ctl.device_mut(i);
            while let Some(t) = d.next_event() {
                d.advance_to(t);
            }
        }
    }
}

/// Runs the canonical traced scenario — a parallel sweep of fault-injected
/// fleet cells plus a closed-loop controller sequence — under a fresh
/// recorder and returns the per-kind event counts as canonical JSON.
///
/// Event *counts* are pure functions of the scenario seeds: the summary is
/// byte-identical at every worker count, even though the interleaving of
/// events in the ring is not. That is the invariant the committed
/// `obs_events.json` fixture enforces.
///
/// # Panics
///
/// Panics if a scenario run fails — the fixture pins a healthy pipeline.
pub fn obs_events_summary(cfg: &ParallelConfig) -> String {
    let rec = Arc::new(TraceRecorder::new(1 << 16));
    let prev = powadapt_obs::install(rec.clone());
    let cells: Vec<u64> = (0..4).collect();
    let served = powadapt_io::run_cells(&cells, cfg, |_, &cell| traced_fleet_cell(cell));
    traced_controller_rounds();
    match prev {
        Some(p) => {
            powadapt_obs::install(p);
        }
        None => {
            powadapt_obs::uninstall();
        }
    }

    let mut rows: Vec<String> = rec
        .log()
        .counts()
        .iter()
        .map(|(kind, n)| format!("{{\"kind\": \"{kind}\", \"count\": {n}}}"))
        .collect();
    rows.push(format!(
        "{{\"kind\": \"total\", \"count\": {}}}",
        rec.log().total()
    ));
    rows.push(format!(
        "{{\"served_ios\": [{}]}}",
        served
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    doc(OBS_FIXTURE, GOLDEN_SEED, &rows)
}

/// Name of the committed cluster-evaluation fixture
/// (`crates/bench/goldens/cluster_eval.json`).
pub const CLUSTER_FIXTURE: &str = "cluster_eval";

fn cluster_cell(policy: powadapt_cluster::SelectionPolicy, seed: u64) -> ClusterReport {
    powadapt_cluster::run_cluster(powadapt_cluster::oversubscribed_cluster(policy, seed))
        .expect("cluster cell runs")
}

/// The same cell, but interrupted: run to the midpoint, serialize the
/// complete simulation state to a sealed snapshot, drop the simulation,
/// rebuild from the spec + snapshot, and run the rest. The report must be
/// bit-identical to [`cluster_cell`]'s — that equality (checked against
/// the same committed fixture) is the checkpoint/restore contract.
fn cluster_cell_checkpointed(
    policy: powadapt_cluster::SelectionPolicy,
    seed: u64,
) -> ClusterReport {
    use powadapt_cluster::{oversubscribed_cluster, ClusterSim};
    let mut sim =
        ClusterSim::new(oversubscribed_cluster(policy, seed)).expect("cluster cell builds");
    let mid = sim.start_time()
        + SimDuration::from_nanos(sim.end_time().duration_since(sim.start_time()).as_nanos() / 2);
    sim.run_to(mid).expect("first half runs");
    let snap = sim.snapshot().expect("snapshot serializes");
    drop(sim);
    let resumed =
        ClusterSim::resume(oversubscribed_cluster(policy, seed), &snap).expect("snapshot resumes");
    resumed.finish().expect("second half runs")
}

fn cluster_report_row(r: &ClusterReport) -> String {
    format!(
        "{{\"policy\": \"{}\", \"bytes\": {}, \"served\": {}, \"dropped\": {}, \"replans\": {}, \"infeasible\": {}, \"throughput_bps\": {}, \"caps_respected\": {}, \"peak_cap_utilization\": {}}}",
        r.policy,
        r.total_bytes,
        r.served_ios,
        r.dropped,
        r.replans,
        r.infeasible_rounds,
        jf(r.aggregate_throughput_bps()),
        r.caps_respected(),
        jf(r.peak_cap_utilization())
    )
}

/// Runs the canonical oversubscribed-cluster scenario — both selection
/// policies at two seeds, as a parallel cell sweep under a fresh recorder —
/// and returns the canonical JSON summary: per-cell service/power
/// accounting, per-node peaks and grants, the model-vs-uniform win ratio
/// per seed, and the per-kind trace event counts.
///
/// Every value is a pure function of the cell `(policy, seed)`: the
/// summary is byte-identical at every worker count.
///
/// # Panics
///
/// Panics if a cluster run fails — the fixture pins a healthy pipeline.
pub fn cluster_eval_summary(cfg: &ParallelConfig) -> String {
    cluster_eval_summary_with(cfg, cluster_cell)
}

/// [`cluster_eval_summary`] with every cell checkpointed mid-run:
/// snapshot at the midpoint, drop the simulation, resume from the sealed
/// bytes, and finish. Byte-equality with the *same* committed
/// `cluster_eval` fixture — at every worker count — is the acceptance
/// proof that checkpoint/restore is invisible to results, traces, and
/// event counts.
///
/// # Panics
///
/// Panics if a cluster run, snapshot, or resume fails.
pub fn cluster_eval_summary_checkpointed(cfg: &ParallelConfig) -> String {
    cluster_eval_summary_with(cfg, cluster_cell_checkpointed)
}

fn cluster_eval_summary_with(
    cfg: &ParallelConfig,
    cell: fn(powadapt_cluster::SelectionPolicy, u64) -> ClusterReport,
) -> String {
    use powadapt_cluster::SelectionPolicy;

    let rec = Arc::new(TraceRecorder::new(1 << 16));
    let prev = powadapt_obs::install(rec.clone());
    let seeds = [GOLDEN_SEED, GOLDEN_SEED + 1];
    let cells: Vec<(SelectionPolicy, u64)> = seeds
        .iter()
        .flat_map(|&s| {
            [
                (SelectionPolicy::ModelDriven, s),
                (SelectionPolicy::UniformStatic, s),
            ]
        })
        .collect();
    let reports = powadapt_io::run_cells(&cells, cfg, |_, &(policy, seed)| cell(policy, seed));
    match prev {
        Some(p) => {
            powadapt_obs::install(p);
        }
        None => {
            powadapt_obs::uninstall();
        }
    }

    let mut rows = Vec::new();
    for ((_, seed), report) in cells.iter().zip(&reports) {
        rows.push(format!(
            "{{\"seed\": {seed}, \"report\": {}}}",
            cluster_report_row(report)
        ));
        for n in &report.nodes {
            rows.push(format!(
                "{{\"seed\": {seed}, \"policy\": \"{}\", \"node\": \"{}\", \"cap_w\": {}, \"max_w\": {}, \"mean_w\": {}, \"granted_w\": {}}}",
                report.policy,
                n.path,
                jf(n.cap_w),
                jf(n.max_power_w),
                jf(n.mean_power_w),
                jf(n.granted_w)
            ));
        }
        for t in &report.tenants {
            rows.push(format!(
                "{{\"seed\": {seed}, \"policy\": \"{}\", \"tenant\": \"{}\", \"served\": {}, \"bytes\": {}, \"p99_us\": {}, \"slo_ok\": {}}}",
                report.policy, t.name, t.served, t.bytes, jf(t.p99_latency_us), t.slo_ok
            ));
        }
    }
    for (i, &seed) in seeds.iter().enumerate() {
        let model = &reports[2 * i];
        let uniform = &reports[2 * i + 1];
        rows.push(format!(
            "{{\"seed\": {seed}, \"win_ratio\": {}}}",
            jf(model.aggregate_throughput_bps() / uniform.aggregate_throughput_bps())
        ));
    }
    let mut counts: Vec<String> = rec
        .log()
        .counts()
        .iter()
        .map(|(kind, n)| format!("{{\"kind\": \"{kind}\", \"count\": {n}}}"))
        .collect();
    counts.push(format!(
        "{{\"kind\": \"total\", \"count\": {}}}",
        rec.log().total()
    ));
    rows.extend(counts);
    doc(CLUSTER_FIXTURE, GOLDEN_SEED, &rows)
}

/// Name of the committed placement-evaluation fixture
/// (`crates/bench/goldens/placement_eval.json`).
pub const PLACEMENT_FIXTURE: &str = "placement_eval";

fn placement_cell(arm: powadapt_cluster::PlacementArm, seed: u64) -> ClusterReport {
    powadapt_cluster::run_cluster(powadapt_cluster::placement_cluster(arm, seed))
        .expect("placement cell runs")
}

/// The placement cell, interrupted at its quarter point — for the
/// temperature-driven arm that lands *inside* the consolidation drain
/// window, so the snapshot carries in-flight migrations, reserved
/// destination capacity, and standby pins. Bit-equality with the straight
/// run is the mid-migration checkpoint contract.
fn placement_cell_checkpointed(arm: powadapt_cluster::PlacementArm, seed: u64) -> ClusterReport {
    use powadapt_cluster::{placement_cluster, ClusterSim};
    let mut sim = ClusterSim::new(placement_cluster(arm, seed)).expect("placement cell builds");
    let quarter = sim.start_time()
        + SimDuration::from_nanos(sim.end_time().duration_since(sim.start_time()).as_nanos() / 4);
    sim.run_to(quarter).expect("first quarter runs");
    let snap = sim.snapshot().expect("snapshot serializes");
    drop(sim);
    let resumed =
        ClusterSim::resume(placement_cluster(arm, seed), &snap).expect("snapshot resumes");
    resumed.finish().expect("rest of the run completes")
}

fn placement_report_row(arm: powadapt_cluster::PlacementArm, r: &ClusterReport) -> String {
    format!(
        "{{\"arm\": \"{arm:?}\", \"bytes\": {}, \"served\": {}, \"dropped\": {}, \"migrations_started\": {}, \"migrations_completed\": {}, \"migration_bytes\": {}, \"total_joules\": {}, \"system_joules\": {}, \"idle_joules\": {}, \"joules_per_byte\": {}, \"caps_respected\": {}, \"slos_met\": {}}}",
        r.total_bytes,
        r.served_ios,
        r.dropped,
        r.migrations_started,
        r.migrations_completed,
        r.migration_bytes,
        jf(r.total_joules),
        jf(r.system_joules),
        jf(r.idle_joules),
        jf(r.total_joules / r.total_bytes as f64),
        r.caps_respected(),
        r.tenants.iter().filter(|t| t.slo_ok).count()
    )
}

/// Mean power drawn by the cold (HDD) enclosures — the stranded-watts
/// signal consolidation exists to reclaim.
fn cold_tier_mean_w(r: &ClusterReport) -> f64 {
    r.nodes
        .iter()
        .filter(|n| n.path.contains("enc-cold"))
        .map(|n| n.mean_power_w)
        .sum()
}

/// Runs the placement-evaluation scenario — temperature-driven placement
/// with HDD spin-down consolidation versus the static-spread and
/// no-migration baselines, as a parallel cell sweep under a fresh
/// recorder — and returns the canonical JSON summary: per-arm service,
/// migration, and energy accounting, per-node peaks, per-tenant SLOs, the
/// headline joules-per-byte wins, stranded cold-tier watts, migration
/// read amplification, and the per-kind trace event counts.
///
/// Every value is a pure function of the cell `(arm, seed)`: the summary
/// is byte-identical at every worker count.
///
/// # Panics
///
/// Panics if a placement run fails — the fixture pins a healthy pipeline.
pub fn placement_eval_summary(cfg: &ParallelConfig) -> String {
    placement_eval_summary_with(cfg, placement_cell)
}

/// [`placement_eval_summary`] with every cell checkpointed at its quarter
/// point — mid-migration for the temperature-driven arm. Byte-equality
/// with the *same* committed `placement_eval` fixture, at every worker
/// count, proves a checkpoint taken between `MigrationStarted` and
/// `MigrationCompleted` resumes bit-exact.
///
/// # Panics
///
/// Panics if a placement run, snapshot, or resume fails.
pub fn placement_eval_summary_checkpointed(cfg: &ParallelConfig) -> String {
    placement_eval_summary_with(cfg, placement_cell_checkpointed)
}

fn placement_eval_summary_with(
    cfg: &ParallelConfig,
    cell: fn(powadapt_cluster::PlacementArm, u64) -> ClusterReport,
) -> String {
    use powadapt_cluster::PlacementArm;

    let rec = Arc::new(TraceRecorder::new(1 << 16));
    let prev = powadapt_obs::install(rec.clone());
    let arms = [
        PlacementArm::TempDriven,
        PlacementArm::StaticSpread,
        PlacementArm::NoMigration,
    ];
    let cells: Vec<(PlacementArm, u64)> = arms.iter().map(|&a| (a, GOLDEN_SEED)).collect();
    let reports = powadapt_io::run_cells(&cells, cfg, |_, &(arm, seed)| cell(arm, seed));
    match prev {
        Some(p) => {
            powadapt_obs::install(p);
        }
        None => {
            powadapt_obs::uninstall();
        }
    }

    let mut rows = Vec::new();
    for ((arm, _), report) in cells.iter().zip(&reports) {
        rows.push(format!(
            "{{\"report\": {}}}",
            placement_report_row(*arm, report)
        ));
        for n in &report.nodes {
            rows.push(format!(
                "{{\"arm\": \"{arm:?}\", \"node\": \"{}\", \"cap_w\": {}, \"max_w\": {}, \"mean_w\": {}, \"granted_w\": {}}}",
                n.path,
                jf(n.cap_w),
                jf(n.max_power_w),
                jf(n.mean_power_w),
                jf(n.granted_w)
            ));
        }
        for t in &report.tenants {
            rows.push(format!(
                "{{\"arm\": \"{arm:?}\", \"tenant\": \"{}\", \"served\": {}, \"bytes\": {}, \"p99_us\": {}, \"slo_ok\": {}}}",
                t.name, t.served, t.bytes, jf(t.p99_latency_us), t.slo_ok
            ));
        }
        rows.push(format!(
            "{{\"arm\": \"{arm:?}\", \"cold_tier_mean_w\": {}}}",
            jf(cold_tier_mean_w(report))
        ));
    }
    let jpb = |r: &ClusterReport| r.total_joules / r.total_bytes as f64;
    let temp = &reports[0];
    let spread = &reports[1];
    let nomig = &reports[2];
    rows.push(format!(
        "{{\"jpb_win_vs_static\": {}, \"jpb_win_vs_nomigration\": {}, \"stranded_w_reclaimed\": {}, \"migration_read_amplification\": {}}}",
        jf(jpb(spread) / jpb(temp)),
        jf(jpb(nomig) / jpb(temp)),
        jf(cold_tier_mean_w(nomig) - cold_tier_mean_w(temp)),
        jf(temp.migration_bytes as f64 / temp.total_bytes as f64)
    ));
    let mut counts: Vec<String> = rec
        .log()
        .counts()
        .iter()
        .map(|(kind, n)| format!("{{\"kind\": \"{kind}\", \"count\": {n}}}"))
        .collect();
    counts.push(format!(
        "{{\"kind\": \"total\", \"count\": {}}}",
        rec.log().total()
    ));
    rows.extend(counts);
    doc(PLACEMENT_FIXTURE, GOLDEN_SEED, &rows)
}

/// Produces the canonical JSON summary of one figure under the given
/// executor configuration. The output is byte-identical for every worker
/// count — that invariant is what the golden suite enforces.
///
/// # Panics
///
/// Panics on an unknown figure name.
pub fn figure_summary(name: &str, scale: SweepScale, seed: u64, cfg: &ParallelConfig) -> String {
    match name {
        "table1" => table1_summary(scale, seed, cfg),
        "fig2" => fig2_summary(scale, seed, cfg),
        "fig3" => fig3_summary(scale, seed, cfg),
        "fig4" => fig4_summary(scale, seed, cfg),
        "fig5" => fig5_summary(scale, seed, cfg),
        "fig6" => fig6_summary(scale, seed, cfg),
        "fig7" => fig7_summary(seed),
        "fig8" => fig8_summary(scale, seed, cfg),
        "fig9" => fig9_summary(scale, seed, cfg),
        "fig10" => fig10_summary(scale, seed, cfg),
        other => panic!("unknown figure {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_sensitive() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert_ne!(f64_checksum(&a), f64_checksum(&b));
        assert_eq!(f64_checksum(&a), f64_checksum(&a));
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.0, 1.5, 13.526317, 1e-12, 1234567.891] {
            assert_eq!(jf(v).parse::<f64>().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn doc_shape_is_valid() {
        let d = doc("figX", 7, &["{\"a\": 1}".into(), "{\"b\": 2}".into()]);
        assert!(d.starts_with("{\n  \"figure\": \"figX\",\n  \"seed\": 7,"));
        assert!(d.contains("{\"a\": 1},\n"));
        assert!(d.ends_with("{\"b\": 2}\n  ]\n}\n"));
    }

    #[test]
    fn every_figure_name_dispatches() {
        // A tiny scale keeps this a pure dispatch test.
        let scale = SweepScale {
            runtime: SimDuration::from_millis(5),
            size_limit: 4 * powadapt_device::MIB,
            ramp: SimDuration::ZERO,
        };
        for name in ["fig3", "fig7"] {
            let s = figure_summary(name, scale, 3, &ParallelConfig::sequential());
            assert!(s.contains(&format!("\"figure\": \"{name}\"")));
        }
    }
}
