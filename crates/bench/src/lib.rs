//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! this library holds the common scaffolding: device factories by label,
//! sweep scales, and table formatting.

// Tests assert on exact expected values: unwraps and bit-exact float
// comparisons are the point there, not a hazard (see workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

use powadapt_device::{catalog, StorageDevice};
use powadapt_io::SweepScale;
use powadapt_sim::SimDuration;

pub mod figures;
pub mod golden;

/// Labels of the Table 1 devices, in paper order.
pub const TABLE1_LABELS: [&str; 4] = ["SSD1", "SSD2", "SSD3", "HDD"];

/// Returns a factory closure producing fresh instances of the device with
/// the given paper label.
///
/// # Panics
///
/// Panics if the label is unknown.
pub fn factory_for(label: &str, seed: u64) -> impl Fn() -> Box<dyn StorageDevice> + '_ {
    // Validate eagerly so misuse fails fast.
    assert!(
        catalog::by_label(label, seed).is_some(),
        "unknown device label {label}"
    );
    move || catalog::by_label(label, seed).expect("label validated above")
}

/// The scale benchmarks run at, controlled by the `POWADAPT_SCALE`
/// environment variable: `paper` (60 s / 4 GiB, slow), `full` (4 s / 2 GiB),
/// or anything else / unset for `quick` (1.5 s / 1 GiB).
pub fn bench_scale() -> SweepScale {
    // powadapt-lint: allow(D1, reason = "operator-facing scale knob like POWADAPT_WORKERS; at any fixed scale results are bit-identical, and the goldens pin the default")
    match std::env::var("POWADAPT_SCALE").as_deref() {
        Ok("paper") => SweepScale::paper(),
        Ok("full") => SweepScale {
            runtime: SimDuration::from_secs(4),
            size_limit: 2 * powadapt_device::GIB,
            ramp: SimDuration::from_millis(300),
        },
        _ => SweepScale {
            runtime: SimDuration::from_millis(1200),
            size_limit: 4 * powadapt_device::GIB,
            ramp: SimDuration::from_millis(200),
        },
    }
}

/// Applies a `--workers N` (or `-j N`, `--workers=N`) CLI flag by setting
/// `POWADAPT_WORKERS` for this process, so every sweep picks it up through
/// [`powadapt_io::ParallelConfig::from_env`]. Unrelated arguments are
/// ignored; the last occurrence wins.
pub fn apply_cli_workers() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = match a.as_str() {
            "--workers" | "-j" => args.next(),
            _ => a.strip_prefix("--workers=").map(str::to_string),
        };
        if let Some(v) = value {
            std::env::set_var("POWADAPT_WORKERS", v.trim());
        }
    }
}

/// Returns the value of a `--name VALUE` or `--name=VALUE` CLI flag, if
/// present (last occurrence wins). Used by the checkpoint-aware binaries
/// for `--snapshot-out` / `--resume`.
pub fn cli_flag_value(name: &str) -> Option<String> {
    let mut found = None;
    let mut args = std::env::args().skip(1);
    let prefix = format!("{name}=");
    while let Some(a) = args.next() {
        if a == name {
            found = args.next();
        } else if let Some(v) = a.strip_prefix(&prefix) {
            found = Some(v.to_string());
        }
    }
    found
}

/// Starts the process-wide trace session configured by `POWADAPT_TRACE`
/// and `--trace-out` (see [`powadapt_obs::TraceConfig::from_env_and_cli`]).
/// Call first thing in `main`, before any devices are built, so every
/// construction-time recorder capture sees the installed sink; hand the
/// returned session to [`finish_tracing`] at the end.
pub fn start_tracing() -> powadapt_obs::TraceSession {
    powadapt_obs::TraceSession::from_env()
}

/// Uninstalls the recorder and writes the configured trace outputs. A
/// failure to write is reported on stderr and never fails the figure run.
pub fn finish_tracing(session: powadapt_obs::TraceSession) {
    if let Err(e) = session.finish() {
        eprintln!("powadapt-obs: could not write trace output: {e}");
    }
}

/// Prints the process-wide executor counters to stderr (stdout stays
/// byte-identical across worker counts).
pub fn report_executor(context: &str) {
    let s = powadapt_io::session_stats();
    if s.sweeps > 0 {
        eprintln!("[{context}] executor: {s}");
    }
}

/// Prints a row of fixed-width cells (simple table formatting for the
/// figure binaries).
pub fn print_row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_resolve_all_table1_labels() {
        for l in TABLE1_LABELS {
            let f = factory_for(l, 1);
            assert_eq!(f().spec().label(), l);
        }
    }

    #[test]
    #[should_panic(expected = "unknown device label")]
    fn unknown_label_panics() {
        let _ = factory_for("SSD9", 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.257), "1.26");
    }
}
