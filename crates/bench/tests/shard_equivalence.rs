//! Sharded-recorder equivalence on the real workload: the four golden
//! cluster cells recorded under a [`ShardedRecorder`] at 1, 2, and 8
//! shards must merge to **byte-identical** per-kind accounting and
//! metrics snapshots — and match an unsharded [`TraceRecorder`] exactly.
//!
//! This is the acceptance check behind the sharding design: routing by
//! track hash and merging on `(sim_time, shard_id, seq)` is invisible to
//! every consumer, at any shard count. One test function owns the whole
//! sequence because each run installs the process-global recorder slot.

use std::sync::Arc;

use powadapt_bench::golden::GOLDEN_SEED;
use powadapt_cluster::{oversubscribed_cluster, run_cluster, SelectionPolicy};
use powadapt_obs::{ShardedRecorder, TraceRecorder};

/// Per-shard ring capacity: large enough that the golden cells never
/// drop an event, so per-shard ring eviction (which differs from a
/// single global ring's) cannot perturb the comparison.
const CAPACITY: usize = 1 << 18;

/// The four golden cluster cells, sequentially (the traced-artifact
/// configuration). Returns summed served IOs as a workload fingerprint.
fn run_cells() -> u64 {
    let mut served = 0u64;
    for seed in [GOLDEN_SEED, GOLDEN_SEED + 1] {
        for policy in [SelectionPolicy::ModelDriven, SelectionPolicy::UniformStatic] {
            let report = run_cluster(oversubscribed_cluster(policy, seed))
                .expect("golden cluster cell runs");
            served += report.served_ios;
        }
    }
    served
}

fn with_recorder<R: powadapt_obs::Recorder + 'static>(rec: Arc<R>) -> (u64, Arc<R>) {
    let prev = powadapt_obs::install(rec.clone());
    let served = run_cells();
    match prev {
        Some(p) => {
            powadapt_obs::install(p);
        }
        None => {
            powadapt_obs::uninstall();
        }
    }
    (served, rec)
}

#[test]
fn merged_snapshots_are_byte_identical_at_1_2_and_8_shards() {
    // Unsharded reference.
    let (served0, unsharded) = with_recorder(Arc::new(TraceRecorder::new(CAPACITY)));
    let reference_counts = powadapt_obs::event_counts_json(&unsharded);
    let reference_metrics = {
        // The unsharded recorder derives `events.*` lazily at read time;
        // snapshot after the counts read so both views are published.
        unsharded.metrics().snapshot().to_json()
    };

    for shards in [1usize, 2, 8] {
        let (served, rec) = with_recorder(Arc::new(ShardedRecorder::new(shards, CAPACITY)));
        assert_eq!(
            served, served0,
            "{shards}-shard run changed simulation results"
        );
        let merged = rec.merged();
        assert_eq!(
            merged.dropped, 0,
            "{shards}-shard run dropped events; the comparison needs lossless rings"
        );
        assert_eq!(
            merged.counts_json(),
            reference_counts,
            "{shards}-shard merged counts diverged from the unsharded recorder"
        );
        assert_eq!(
            merged.metrics_snapshot().to_json(),
            reference_metrics,
            "{shards}-shard merged metrics diverged from the unsharded recorder"
        );
        // The merge order is total: (sim_time, shard_id, seq) never ties.
        let events = &merged.events;
        for w in events.windows(2) {
            assert!(
                w[0].at <= w[1].at,
                "merged events out of sim-time order at {shards} shards"
            );
        }
        assert_eq!(merged.markers.len(), shards, "one merge marker per shard");
    }
}
