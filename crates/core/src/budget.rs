//! Power budgets over time: the external signal a power-adaptive storage
//! system reacts to.
//!
//! The paper's §1 motivates three timescales: millisecond-scale
//! oversubscription response, medium-term rail failures and renewable
//! variation, and long-term grid limits. A [`BudgetSchedule`] is a
//! time-ordered sequence of [`PowerEvent`]s expressing any of these.

use std::fmt;

use powadapt_sim::SimTime;

/// Why the available power changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PowerEventCause {
    /// Power oversubscription emergency: shed load within milliseconds.
    Oversubscription,
    /// A power rail failed; the surviving rails carry less.
    RailFailure,
    /// Renewable generation dipped (weather, time of day).
    RenewableDip,
    /// A grid demand-response program requested a reduction.
    DemandResponse,
    /// Power availability recovered.
    Recovery,
}

impl fmt::Display for PowerEventCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerEventCause::Oversubscription => "oversubscription",
            PowerEventCause::RailFailure => "rail-failure",
            PowerEventCause::RenewableDip => "renewable-dip",
            PowerEventCause::DemandResponse => "demand-response",
            PowerEventCause::Recovery => "recovery",
        };
        write!(f, "{s}")
    }
}

/// A change in available power at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// Power available to the storage subsystem from `at` onward, in watts.
    pub available_w: f64,
    /// Why.
    pub cause: PowerEventCause,
}

/// A time-ordered schedule of power events with an initial budget.
///
/// # Examples
///
/// ```
/// use powadapt_core::{BudgetSchedule, PowerEventCause};
/// use powadapt_sim::SimTime;
///
/// let mut sched = BudgetSchedule::new(100.0);
/// sched.push(SimTime::from_secs(10), 60.0, PowerEventCause::DemandResponse);
/// assert_eq!(sched.budget_at(SimTime::from_secs(5)), 100.0);
/// assert_eq!(sched.budget_at(SimTime::from_secs(10)), 60.0);
/// ```
#[derive(Debug, Clone)]
pub struct BudgetSchedule {
    initial_w: f64,
    events: Vec<PowerEvent>,
}

impl BudgetSchedule {
    /// Creates a schedule with the given initial budget.
    ///
    /// # Panics
    ///
    /// Panics if `initial_w` is not positive and finite.
    pub fn new(initial_w: f64) -> Self {
        assert!(
            initial_w.is_finite() && initial_w > 0.0,
            "initial budget must be positive"
        );
        BudgetSchedule {
            initial_w,
            events: Vec::new(),
        }
    }

    /// Appends an event. Events must be pushed in time order.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last pushed event, or `available_w` is
    /// negative or not finite.
    pub fn push(&mut self, at: SimTime, available_w: f64, cause: PowerEventCause) {
        assert!(
            available_w.is_finite() && available_w >= 0.0,
            "budget must be non-negative"
        );
        if let Some(last) = self.events.last() {
            assert!(at >= last.at, "events must be pushed in time order");
        }
        self.events.push(PowerEvent {
            at,
            available_w,
            cause,
        });
    }

    /// The budget in force at time `t`.
    pub fn budget_at(&self, t: SimTime) -> f64 {
        let mut b = self.initial_w;
        for e in &self.events {
            if e.at <= t {
                b = e.available_w;
            } else {
                break;
            }
        }
        b
    }

    /// The events in order.
    pub fn events(&self) -> &[PowerEvent] {
        &self.events
    }

    /// The initial budget.
    pub fn initial_w(&self) -> f64 {
        self.initial_w
    }

    /// The lowest budget anywhere in the schedule.
    pub fn min_budget_w(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.available_w)
            .fold(self.initial_w, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_steps_at_events() {
        let mut s = BudgetSchedule::new(50.0);
        s.push(SimTime::from_secs(1), 30.0, PowerEventCause::RailFailure);
        s.push(SimTime::from_secs(2), 45.0, PowerEventCause::Recovery);
        assert_eq!(s.budget_at(SimTime::ZERO), 50.0);
        assert_eq!(s.budget_at(SimTime::from_millis(999)), 50.0);
        assert_eq!(s.budget_at(SimTime::from_secs(1)), 30.0);
        assert_eq!(s.budget_at(SimTime::from_secs(3)), 45.0);
        assert_eq!(s.min_budget_w(), 30.0);
        assert_eq!(s.initial_w(), 50.0);
        assert_eq!(s.events().len(), 2);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_events_panic() {
        let mut s = BudgetSchedule::new(50.0);
        s.push(SimTime::from_secs(2), 30.0, PowerEventCause::RenewableDip);
        s.push(SimTime::from_secs(1), 40.0, PowerEventCause::Recovery);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_initial_budget_panics() {
        let _ = BudgetSchedule::new(0.0);
    }

    #[test]
    fn causes_display() {
        assert_eq!(
            PowerEventCause::Oversubscription.to_string(),
            "oversubscription"
        );
        assert_eq!(
            PowerEventCause::DemandResponse.to_string(),
            "demand-response"
        );
    }
}
