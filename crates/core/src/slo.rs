//! Service-level objectives used to constrain power-adaptive actions, and
//! the observation windows that judge them against live traffic.

use std::fmt;

use powadapt_model::ConfigPoint;
use powadapt_sim::units::Micros;
use powadapt_sim::{percentile_of_sorted, SimDuration};

/// A service-level objective a configuration must respect.
///
/// The paper's §4 argues operators should feed SLOs and power budgets into
/// the power-throughput model; this type is that input.
///
/// # Examples
///
/// ```
/// use powadapt_core::Slo;
///
/// let slo = Slo::new()
///     .min_throughput_bps(1.0e9)
///     .max_p99_latency_us(2_000.0);
/// assert!(slo.min_throughput().is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Slo {
    min_throughput_bps: Option<f64>,
    max_avg_latency_us: Option<f64>,
    max_p99_latency_us: Option<f64>,
}

impl Slo {
    /// An unconstrained SLO.
    pub fn new() -> Self {
        Slo::default()
    }

    /// Requires at least this throughput, in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or not finite.
    pub fn min_throughput_bps(mut self, bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "bad throughput floor {bps}");
        self.min_throughput_bps = Some(bps);
        self
    }

    /// Caps average latency, in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is not positive.
    pub fn max_avg_latency_us(mut self, us: f64) -> Self {
        assert!(us > 0.0, "bad latency ceiling {us}");
        self.max_avg_latency_us = Some(us);
        self
    }

    /// Caps p99 latency, in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is not positive.
    pub fn max_p99_latency_us(mut self, us: f64) -> Self {
        assert!(us > 0.0, "bad latency ceiling {us}");
        self.max_p99_latency_us = Some(us);
        self
    }

    /// The throughput floor, if set.
    pub fn min_throughput(&self) -> Option<f64> {
        self.min_throughput_bps
    }

    /// The average-latency ceiling, if set.
    pub fn max_avg_latency(&self) -> Option<f64> {
        self.max_avg_latency_us
    }

    /// The p99-latency ceiling, if set.
    pub fn max_p99_latency(&self) -> Option<f64> {
        self.max_p99_latency_us
    }

    /// Whether a measured configuration point satisfies this SLO.
    ///
    /// Latency constraints are only applied when the point carries latency
    /// data (non-zero).
    pub fn admits(&self, point: &ConfigPoint) -> bool {
        if let Some(floor) = self.min_throughput_bps {
            if point.throughput_bps() < floor {
                return false;
            }
        }
        if let Some(cap) = self.max_avg_latency_us {
            if point.avg_latency_us() > 0.0 && point.avg_latency_us() > cap {
                return false;
            }
        }
        if let Some(cap) = self.max_p99_latency_us {
            if point.p99_latency_us() > 0.0 && point.p99_latency_us() > cap {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Slo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(t) = self.min_throughput_bps {
            parts.push(format!("thr>={:.0}MiB/s", t / (1024.0 * 1024.0)));
        }
        if let Some(l) = self.max_avg_latency_us {
            parts.push(format!("avg<={l:.0}us"));
        }
        if let Some(l) = self.max_p99_latency_us {
            parts.push(format!("p99<={l:.0}us"));
        }
        if parts.is_empty() {
            write!(f, "slo(unconstrained)")
        } else {
            write!(f, "slo({})", parts.join(", "))
        }
    }
}

/// An observation window of completed-request latencies and bytes, used to
/// judge an [`Slo`] against *live* traffic instead of a calibrated
/// [`ConfigPoint`]. The cluster layer keeps one per tenant.
///
/// Queries are non-panicking: an empty window has no percentiles and
/// reports `None`; a single observation is every percentile of itself.
///
/// # Examples
///
/// ```
/// use powadapt_core::SloWindow;
/// use powadapt_sim::units::Micros;
///
/// let mut w = SloWindow::new();
/// assert!(w.p99_latency().is_none());
/// w.observe(Micros::new(150.0), 4096);
/// assert_eq!(w.p99_latency(), Some(Micros::new(150.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloWindow {
    /// Observed latencies in microseconds, kept sorted (each observe does
    /// an insertion into position; arrival order is irrelevant to every
    /// query this window answers).
    lat_us: Vec<f64>,
    bytes: u64,
}

impl SloWindow {
    /// An empty window.
    pub fn new() -> Self {
        SloWindow::default()
    }

    /// Records one completed request.
    ///
    /// Non-finite latencies are ignored rather than poisoning every later
    /// percentile query.
    pub fn observe(&mut self, latency: Micros, bytes: u64) {
        let us = latency.get();
        if !us.is_finite() {
            return;
        }
        let at = self.lat_us.partition_point(|&l| l <= us);
        self.lat_us.insert(at, us);
        self.bytes += bytes;
    }

    /// Number of observations in the window.
    pub fn len(&self) -> usize {
        self.lat_us.len()
    }

    /// True when the window has no observations.
    pub fn is_empty(&self) -> bool {
        self.lat_us.is_empty()
    }

    /// Total bytes completed in the window.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Empties the window (start of the next accounting interval).
    pub fn reset(&mut self) {
        self.lat_us.clear();
        self.bytes = 0;
    }

    /// Latency percentile (`p` in `[0, 100]`), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile_latency(&self, p: f64) -> Option<Micros> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.lat_us.is_empty() {
            return None;
        }
        Some(Micros::new(percentile_of_sorted(&self.lat_us, p)))
    }

    /// Mean latency, or `None` when empty.
    pub fn mean_latency(&self) -> Option<Micros> {
        if self.lat_us.is_empty() {
            return None;
        }
        Some(Micros::new(
            self.lat_us.iter().sum::<f64>() / self.lat_us.len() as f64,
        ))
    }

    /// p99 latency, or `None` when empty.
    pub fn p99_latency(&self) -> Option<Micros> {
        self.percentile_latency(99.0)
    }

    /// p99.9 latency, or `None` when empty.
    pub fn p999_latency(&self) -> Option<Micros> {
        self.percentile_latency(99.9)
    }

    /// Achieved throughput over an interval of `elapsed`, in bytes/second.
    /// Zero for an empty or zero-length interval.
    pub fn throughput_bps(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / secs
    }

    /// Whether the traffic in this window met `slo` over `elapsed`.
    ///
    /// An empty window trivially satisfies latency ceilings (there was
    /// nothing to be late) but still fails a throughput floor.
    pub fn satisfies(&self, slo: &Slo, elapsed: SimDuration) -> bool {
        if let Some(floor) = slo.min_throughput() {
            if self.throughput_bps(elapsed) < floor {
                return false;
            }
        }
        if let Some(cap) = slo.max_avg_latency() {
            if self.mean_latency().is_some_and(|l| l.get() > cap) {
                return false;
            }
        }
        if let Some(cap) = slo.max_p99_latency() {
            if self.p99_latency().is_some_and(|l| l.get() > cap) {
                return false;
            }
        }
        true
    }
}

impl powadapt_snap::Snapshot for SloWindow {
    fn write_state(
        &self,
        w: &mut powadapt_snap::SnapWriter,
    ) -> Result<(), powadapt_snap::SnapError> {
        w.seq_len(self.lat_us.len());
        for &l in &self.lat_us {
            w.f64(l);
        }
        w.u64(self.bytes);
        Ok(())
    }
}

impl powadapt_snap::Restore for SloWindow {
    fn read_state(
        &mut self,
        r: &mut powadapt_snap::SnapReader<'_>,
    ) -> Result<(), powadapt_snap::SnapError> {
        let n = r.seq_len()?;
        let mut lat_us = Vec::with_capacity(n);
        for _ in 0..n {
            let l = r.f64()?;
            if !l.is_finite() {
                return Err(powadapt_snap::SnapError::InvalidValue(
                    "non-finite latency in SLO window".into(),
                ));
            }
            if lat_us.last().is_some_and(|&prev: &f64| prev > l) {
                return Err(powadapt_snap::SnapError::InvalidValue(
                    "SLO window latencies not sorted".into(),
                ));
            }
            lat_us.push(l);
        }
        self.lat_us = lat_us;
        self.bytes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{PowerStateId, KIB};
    use powadapt_io::Workload;

    fn pt(thr: f64, avg: f64, p99: f64) -> ConfigPoint {
        ConfigPoint::new(
            "D",
            Workload::RandRead,
            PowerStateId(0),
            4 * KIB,
            1,
            5.0,
            thr,
        )
        .with_latencies(Micros::new(avg), Micros::new(p99))
    }

    #[test]
    fn unconstrained_admits_everything() {
        assert!(Slo::new().admits(&pt(1.0, 1e6, 1e7)));
    }

    #[test]
    fn throughput_floor() {
        let slo = Slo::new().min_throughput_bps(100.0);
        assert!(slo.admits(&pt(100.0, 0.0, 0.0)));
        assert!(!slo.admits(&pt(99.0, 0.0, 0.0)));
    }

    #[test]
    fn latency_ceilings() {
        let slo = Slo::new()
            .max_avg_latency_us(100.0)
            .max_p99_latency_us(500.0);
        assert!(slo.admits(&pt(1.0, 90.0, 400.0)));
        assert!(!slo.admits(&pt(1.0, 110.0, 400.0)));
        assert!(!slo.admits(&pt(1.0, 90.0, 600.0)));
        // Points without latency data pass latency checks.
        assert!(slo.admits(&pt(1.0, 0.0, 0.0)));
    }

    #[test]
    fn empty_window_has_no_percentiles() {
        let w = SloWindow::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.mean_latency(), None);
        assert_eq!(w.percentile_latency(50.0), None);
        assert_eq!(w.p99_latency(), None);
        assert_eq!(w.p999_latency(), None);
        assert_eq!(w.throughput_bps(SimDuration::from_secs(1)), 0.0);
        // No latency to be late, but a throughput floor still fails.
        assert!(w.satisfies(
            &Slo::new().max_p99_latency_us(1.0),
            SimDuration::from_secs(1)
        ));
        assert!(!w.satisfies(
            &Slo::new().min_throughput_bps(1.0),
            SimDuration::from_secs(1)
        ));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut w = SloWindow::new();
        w.observe(Micros::new(150.0), 4096);
        assert_eq!(w.len(), 1);
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(w.percentile_latency(p), Some(Micros::new(150.0)), "p{p}");
        }
        assert_eq!(w.mean_latency(), Some(Micros::new(150.0)));
    }

    #[test]
    fn boundary_p99_and_p999_interpolate_into_the_tail() {
        // 1000 samples 1..=1000 us: interpolated p99 sits between the
        // 990th and 991st order statistics, p99.9 between 999 and 1000.
        let mut w = SloWindow::new();
        // Reverse insertion order: the window sorts, order cannot matter.
        for us in (1..=1000u32).rev() {
            w.observe(Micros::new(f64::from(us)), 0);
        }
        let p99 = w.p99_latency().expect("non-empty").get();
        let p999 = w.p999_latency().expect("non-empty").get();
        let p100 = w.percentile_latency(100.0).expect("non-empty").get();
        let p0 = w.percentile_latency(0.0).expect("non-empty").get();
        assert!((p99 - 990.01).abs() < 1e-9, "p99 {p99}");
        assert!((p999 - 999.001).abs() < 1e-9, "p999 {p999}");
        assert_eq!(p100, 1000.0, "p100 is the max");
        assert_eq!(p0, 1.0, "p0 is the min");
        assert!(p99 < p999 && p999 < p100);
    }

    #[test]
    fn window_accounts_bytes_and_judges_slos() {
        let mut w = SloWindow::new();
        for i in 0..100u64 {
            w.observe(Micros::new(100.0 + i as f64), 1024);
        }
        assert_eq!(w.bytes(), 100 * 1024);
        let dt = SimDuration::from_millis(100);
        assert!((w.throughput_bps(dt) - 1_024_000.0).abs() < 1e-6);
        assert!(w.satisfies(
            &Slo::new().min_throughput_bps(1e6).max_p99_latency_us(250.0),
            dt
        ));
        assert!(!w.satisfies(&Slo::new().max_p99_latency_us(150.0), dt));
        assert!(!w.satisfies(&Slo::new().max_avg_latency_us(120.0), dt));
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.bytes(), 0);
    }

    #[test]
    fn non_finite_latencies_are_ignored() {
        let mut w = SloWindow::new();
        w.observe(Micros::new(f64::NAN), 10);
        w.observe(Micros::new(f64::INFINITY), 10);
        assert!(w.is_empty());
        assert_eq!(w.bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_percentile_panics() {
        let w = SloWindow::new();
        let _ = w.percentile_latency(101.0);
    }

    #[test]
    fn display_lists_constraints() {
        let slo = Slo::new()
            .min_throughput_bps(1e9)
            .max_p99_latency_us(2000.0);
        let s = slo.to_string();
        assert!(s.contains("thr>=") && s.contains("p99<="));
        assert_eq!(Slo::new().to_string(), "slo(unconstrained)");
    }
}
