//! Service-level objectives used to constrain power-adaptive actions.

use std::fmt;

use powadapt_model::ConfigPoint;

/// A service-level objective a configuration must respect.
///
/// The paper's §4 argues operators should feed SLOs and power budgets into
/// the power-throughput model; this type is that input.
///
/// # Examples
///
/// ```
/// use powadapt_core::Slo;
///
/// let slo = Slo::new()
///     .min_throughput_bps(1.0e9)
///     .max_p99_latency_us(2_000.0);
/// assert!(slo.min_throughput().is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Slo {
    min_throughput_bps: Option<f64>,
    max_avg_latency_us: Option<f64>,
    max_p99_latency_us: Option<f64>,
}

impl Slo {
    /// An unconstrained SLO.
    pub fn new() -> Self {
        Slo::default()
    }

    /// Requires at least this throughput, in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or not finite.
    pub fn min_throughput_bps(mut self, bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "bad throughput floor {bps}");
        self.min_throughput_bps = Some(bps);
        self
    }

    /// Caps average latency, in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is not positive.
    pub fn max_avg_latency_us(mut self, us: f64) -> Self {
        assert!(us > 0.0, "bad latency ceiling {us}");
        self.max_avg_latency_us = Some(us);
        self
    }

    /// Caps p99 latency, in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is not positive.
    pub fn max_p99_latency_us(mut self, us: f64) -> Self {
        assert!(us > 0.0, "bad latency ceiling {us}");
        self.max_p99_latency_us = Some(us);
        self
    }

    /// The throughput floor, if set.
    pub fn min_throughput(&self) -> Option<f64> {
        self.min_throughput_bps
    }

    /// The average-latency ceiling, if set.
    pub fn max_avg_latency(&self) -> Option<f64> {
        self.max_avg_latency_us
    }

    /// The p99-latency ceiling, if set.
    pub fn max_p99_latency(&self) -> Option<f64> {
        self.max_p99_latency_us
    }

    /// Whether a measured configuration point satisfies this SLO.
    ///
    /// Latency constraints are only applied when the point carries latency
    /// data (non-zero).
    pub fn admits(&self, point: &ConfigPoint) -> bool {
        if let Some(floor) = self.min_throughput_bps {
            if point.throughput_bps() < floor {
                return false;
            }
        }
        if let Some(cap) = self.max_avg_latency_us {
            if point.avg_latency_us() > 0.0 && point.avg_latency_us() > cap {
                return false;
            }
        }
        if let Some(cap) = self.max_p99_latency_us {
            if point.p99_latency_us() > 0.0 && point.p99_latency_us() > cap {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Slo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(t) = self.min_throughput_bps {
            parts.push(format!("thr>={:.0}MiB/s", t / (1024.0 * 1024.0)));
        }
        if let Some(l) = self.max_avg_latency_us {
            parts.push(format!("avg<={l:.0}us"));
        }
        if let Some(l) = self.max_p99_latency_us {
            parts.push(format!("p99<={l:.0}us"));
        }
        if parts.is_empty() {
            write!(f, "slo(unconstrained)")
        } else {
            write!(f, "slo({})", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{PowerStateId, KIB};
    use powadapt_io::Workload;
    use powadapt_sim::units::Micros;

    fn pt(thr: f64, avg: f64, p99: f64) -> ConfigPoint {
        ConfigPoint::new(
            "D",
            Workload::RandRead,
            PowerStateId(0),
            4 * KIB,
            1,
            5.0,
            thr,
        )
        .with_latencies(Micros::new(avg), Micros::new(p99))
    }

    #[test]
    fn unconstrained_admits_everything() {
        assert!(Slo::new().admits(&pt(1.0, 1e6, 1e7)));
    }

    #[test]
    fn throughput_floor() {
        let slo = Slo::new().min_throughput_bps(100.0);
        assert!(slo.admits(&pt(100.0, 0.0, 0.0)));
        assert!(!slo.admits(&pt(99.0, 0.0, 0.0)));
    }

    #[test]
    fn latency_ceilings() {
        let slo = Slo::new()
            .max_avg_latency_us(100.0)
            .max_p99_latency_us(500.0);
        assert!(slo.admits(&pt(1.0, 90.0, 400.0)));
        assert!(!slo.admits(&pt(1.0, 110.0, 400.0)));
        assert!(!slo.admits(&pt(1.0, 90.0, 600.0)));
        // Points without latency data pass latency checks.
        assert!(slo.admits(&pt(1.0, 0.0, 0.0)));
    }

    #[test]
    fn display_lists_constraints() {
        let slo = Slo::new()
            .min_throughput_bps(1e9)
            .max_p99_latency_us(2000.0);
        let s = slo.to_string();
        assert!(s.contains("thr>=") && s.contains("p99<="));
        assert_eq!(Slo::new().to_string(), "slo(unconstrained)");
    }
}
