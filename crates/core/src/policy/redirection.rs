//! Power-aware IO redirection (§4): consolidate IO onto a subset of active
//! devices and put the rest in standby, maximizing standby residency
//! without QoS impact (cf. SRCMap).

use std::fmt;

use powadapt_sim::SimDuration;

/// Per-device characteristics the redirection policy plans with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedirectionConfig {
    /// Throughput one active device can serve, in bytes/second.
    pub per_device_capacity_bps: f64,
    /// Power of an active device at the planned load, in watts.
    pub active_power_w: f64,
    /// Power of a device in standby, in watts.
    pub standby_power_w: f64,
    /// Wake latency of a standby device.
    pub wake_latency: SimDuration,
    /// Utilization above which another device is woken (e.g. `0.85`).
    pub grow_threshold: f64,
    /// Utilization below which (at one fewer device) a device is slept.
    /// Must be comfortably below `grow_threshold` to avoid flapping.
    pub shrink_threshold: f64,
}

impl RedirectionConfig {
    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.per_device_capacity_bps <= 0.0 || self.per_device_capacity_bps.is_nan() {
            return Err("device capacity must be positive".into());
        }
        if self.active_power_w < self.standby_power_w {
            return Err("active power below standby power".into());
        }
        if !(0.0 < self.grow_threshold && self.grow_threshold <= 1.0) {
            return Err("grow threshold must be in (0, 1]".into());
        }
        if !(0.0 < self.shrink_threshold && self.shrink_threshold < self.grow_threshold) {
            return Err("shrink threshold must be in (0, grow)".into());
        }
        Ok(())
    }
}

/// The outcome of one policy step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedirectionDecision {
    /// Active devices after the step.
    pub active: usize,
    /// Devices woken this step.
    pub woken: usize,
    /// Devices put to standby this step.
    pub slept: usize,
    /// Estimated total power after the step, in watts.
    pub power_w: f64,
    /// Utilization of the active set after the step.
    pub utilization: f64,
}

impl fmt::Display for RedirectionDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} active (+{} woken, -{} slept), {:.0}% utilized, {:.1} W",
            self.active,
            self.woken,
            self.slept,
            100.0 * self.utilization,
            self.power_w
        )
    }
}

/// Consolidates demand onto the smallest safe set of active devices.
///
/// # Examples
///
/// ```
/// use powadapt_core::{RedirectionConfig, RedirectionPolicy};
/// use powadapt_sim::SimDuration;
///
/// let cfg = RedirectionConfig {
///     per_device_capacity_bps: 1e9,
///     active_power_w: 12.0,
///     standby_power_w: 1.0,
///     wake_latency: SimDuration::from_millis(1),
///     grow_threshold: 0.85,
///     shrink_threshold: 0.7,
/// };
/// let mut policy = RedirectionPolicy::new(8, cfg).unwrap();
/// let d = policy.step(2.0e9); // 2 GB/s of demand
/// assert_eq!(d.active, 3);    // ceil(2/0.85) at 1 GB/s per device
/// ```
#[derive(Debug, Clone)]
pub struct RedirectionPolicy {
    cfg: RedirectionConfig,
    total: usize,
    active: usize,
}

impl RedirectionPolicy {
    /// Creates a policy over `total` devices; all start active.
    ///
    /// # Errors
    ///
    /// Returns the configuration problem, if any; also errs when `total`
    /// is zero.
    pub fn new(total: usize, cfg: RedirectionConfig) -> Result<Self, String> {
        if total == 0 {
            return Err("need at least one device".into());
        }
        cfg.validate()?;
        Ok(RedirectionPolicy {
            cfg,
            total,
            active: total,
        })
    }

    /// Number of currently active devices.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Total devices under management.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The smallest active set that keeps utilization at or below the grow
    /// threshold for the given demand.
    fn target_for(&self, demand_bps: f64) -> usize {
        let cap = self.cfg.per_device_capacity_bps * self.cfg.grow_threshold;
        let need = (demand_bps / cap).ceil() as usize;
        need.clamp(1, self.total)
    }

    /// Feeds the current demand; wakes or sleeps devices with hysteresis
    /// and returns the decision.
    ///
    /// # Panics
    ///
    /// Panics if `demand_bps` is negative or not finite.
    pub fn step(&mut self, demand_bps: f64) -> RedirectionDecision {
        assert!(
            demand_bps.is_finite() && demand_bps >= 0.0,
            "bad demand {demand_bps}"
        );
        let mut woken = 0;
        let mut slept = 0;
        let target = self.target_for(demand_bps);
        if target > self.active {
            woken = target - self.active;
            self.active = target;
        } else {
            // Shrink gradually: retire one device at a time while the
            // shrunken set would still sit at or below the shrink threshold.
            // The gap between the two thresholds is the hysteresis band.
            while self.active > target {
                let shrunk_util =
                    demand_bps / ((self.active - 1) as f64 * self.cfg.per_device_capacity_bps);
                if shrunk_util <= self.cfg.shrink_threshold {
                    self.active -= 1;
                    slept += 1;
                } else {
                    break;
                }
            }
        }
        let utilization = demand_bps / (self.active as f64 * self.cfg.per_device_capacity_bps);
        RedirectionDecision {
            active: self.active,
            woken,
            slept,
            power_w: self.power_w(),
            utilization,
        }
    }

    /// Estimated total power at the current active count.
    pub fn power_w(&self) -> f64 {
        self.active as f64 * self.cfg.active_power_w
            + (self.total - self.active) as f64 * self.cfg.standby_power_w
    }

    /// Power saved versus keeping every device active.
    pub fn savings_w(&self) -> f64 {
        (self.total - self.active) as f64 * (self.cfg.active_power_w - self.cfg.standby_power_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RedirectionConfig {
        RedirectionConfig {
            per_device_capacity_bps: 1e9,
            active_power_w: 10.0,
            standby_power_w: 1.0,
            wake_latency: SimDuration::from_millis(1),
            grow_threshold: 0.8,
            shrink_threshold: 0.5,
        }
    }

    #[test]
    fn consolidates_low_demand() {
        let mut p = RedirectionPolicy::new(8, cfg()).unwrap();
        let d = p.step(1.0e9);
        // ceil(1e9 / 0.8e9) = 2 devices.
        assert_eq!(d.active, 2);
        assert_eq!(d.slept, 6);
        assert_eq!(d.power_w, 2.0 * 10.0 + 6.0 * 1.0);
        assert_eq!(p.savings_w(), 6.0 * 9.0);
    }

    #[test]
    fn grows_under_load() {
        let mut p = RedirectionPolicy::new(8, cfg()).unwrap();
        p.step(1.0e9);
        let d = p.step(5.0e9);
        assert_eq!(d.active, 7, "ceil(5/0.8)");
        assert!(d.woken == 5);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut p = RedirectionPolicy::new(8, cfg()).unwrap();
        p.step(0.9e9); // consolidate to 2
        assert_eq!(p.active(), 2);
        p.step(4.0e9); // grow to 5
        assert_eq!(p.active(), 5);
        // Demand dips: the grow-based target would be 5 still; a small dip
        // to 3.8 GB/s must not trigger a shrink (util at 5 is 0.76 > 0.5).
        let d = p.step(3.8e9);
        assert_eq!(d.active, 5);
        assert_eq!(d.slept, 0);
        // Deep drop: shrink.
        let d = p.step(0.9e9);
        assert!(d.active <= 2);
        assert!(d.slept > 0);
    }

    #[test]
    fn never_below_one_device() {
        let mut p = RedirectionPolicy::new(4, cfg()).unwrap();
        let d = p.step(0.0);
        assert_eq!(d.active, 1);
    }

    #[test]
    fn never_above_total() {
        let mut p = RedirectionPolicy::new(2, cfg()).unwrap();
        let d = p.step(100.0e9);
        assert_eq!(d.active, 2);
        assert!(d.utilization > 1.0, "overload is reported, not hidden");
    }

    #[test]
    fn config_validation() {
        assert!(RedirectionPolicy::new(0, cfg()).is_err());
        let mut bad = cfg();
        bad.shrink_threshold = 0.9;
        assert!(RedirectionPolicy::new(2, bad).is_err());
        let mut bad = cfg();
        bad.active_power_w = 0.5;
        assert!(RedirectionPolicy::new(2, bad).is_err());
    }

    #[test]
    fn decision_display() {
        let mut p = RedirectionPolicy::new(4, cfg()).unwrap();
        let s = p.step(1e9).to_string();
        assert!(s.contains("active") && s.contains('W'));
    }
}
