//! Power capping + IO shaping under an SLO (§4, "Power-capping and IO
//! shaping").

use powadapt_model::{best_under_power_budget, ConfigPoint, PowerThroughputModel};

use crate::slo::Slo;

/// Chooses the best configuration for one device: maximize throughput
/// subject to the power budget *and* the SLO.
///
/// Returns `None` if no configuration satisfies both — the caller should
/// fall back to IO redirection or renegotiate the SLO.
///
/// # Examples
///
/// ```
/// use powadapt_core::{choose_config, Slo};
/// use powadapt_device::{PowerStateId, KIB};
/// use powadapt_io::Workload;
/// use powadapt_model::{ConfigPoint, PowerThroughputModel};
///
/// let mk = |p, t| ConfigPoint::new("D", Workload::RandWrite, PowerStateId(0), 4 * KIB, 1, p, t);
/// let model = PowerThroughputModel::from_points("D", vec![mk(6.0, 3e8), mk(10.0, 1e9)]).unwrap();
/// let slo = Slo::new().min_throughput_bps(2e8);
/// let chosen = choose_config(&model, 7.0, &slo).unwrap();
/// assert_eq!(chosen.power_w(), 6.0);
/// ```
pub fn choose_config(
    model: &PowerThroughputModel,
    budget_w: f64,
    slo: &Slo,
) -> Option<ConfigPoint> {
    let admitted: Vec<ConfigPoint> = model
        .points()
        .iter()
        .filter(|p| slo.admits(p))
        .cloned()
        .collect();
    let filtered = PowerThroughputModel::from_points(model.device(), admitted)?;
    best_under_power_budget(&filtered, budget_w)
}

/// How much best-effort load must be shed to satisfy a reduced budget
/// while keeping the SLO: the throughput difference between the current
/// configuration and the one chosen under the budget.
///
/// Returns `None` when no SLO-respecting configuration fits the budget.
pub fn required_curtailment_bps(
    model: &PowerThroughputModel,
    current: &ConfigPoint,
    budget_w: f64,
    slo: &Slo,
) -> Option<f64> {
    let to = choose_config(model, budget_w, slo)?;
    Some((current.throughput_bps() - to.throughput_bps()).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use powadapt_device::{PowerStateId, KIB};
    use powadapt_io::Workload;
    use powadapt_sim::units::Micros;

    fn pt(power: f64, thr: f64, p99: f64) -> ConfigPoint {
        ConfigPoint::new(
            "D",
            Workload::RandWrite,
            PowerStateId(0),
            4 * KIB,
            1,
            power,
            thr,
        )
        .with_latencies(Micros::new(p99 / 5.0), Micros::new(p99))
    }

    fn model() -> PowerThroughputModel {
        PowerThroughputModel::from_points(
            "D",
            vec![
                pt(10.0, 1000.0, 500.0),
                pt(8.0, 800.0, 800.0),
                pt(6.0, 400.0, 3000.0), // high tail latency
                pt(5.0, 200.0, 900.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn budget_only() {
        let c = choose_config(&model(), 8.5, &Slo::new()).unwrap();
        assert_eq!(c.power_w(), 8.0);
    }

    #[test]
    fn slo_excludes_high_tail_configs() {
        // Budget admits the 6 W config, but its p99 violates the SLO, so the
        // 5 W config wins despite lower throughput.
        let slo = Slo::new().max_p99_latency_us(1000.0);
        let c = choose_config(&model(), 7.0, &slo).unwrap();
        assert_eq!(c.power_w(), 5.0);
    }

    #[test]
    fn infeasible_combination_returns_none() {
        let slo = Slo::new().min_throughput_bps(900.0);
        assert!(choose_config(&model(), 8.0, &slo).is_none());
    }

    #[test]
    fn curtailment_is_throughput_delta() {
        let m = model();
        let current = m.peak_throughput_point().clone();
        let shed = required_curtailment_bps(&m, &current, 8.5, &Slo::new()).unwrap();
        assert_eq!(shed, 200.0);
        // Already below budget: nothing to shed.
        let shed = required_curtailment_bps(&m, &pt(5.0, 100.0, 0.0), 8.5, &Slo::new()).unwrap();
        assert_eq!(shed, 0.0);
    }
}
