//! The §4 policy toolbox: capping+shaping, redirection, asymmetric IO, and
//! tiered standby masking.

pub mod asymmetric;
pub mod caching;
pub mod mechanism;
pub mod redirection;
pub mod routing;
pub mod shaping;
pub mod tiering;
