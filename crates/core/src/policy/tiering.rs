//! Tiered standby masking (§4): SSDs absorb writes while an HDD tier is
//! spun down, and the HDD only spins down when the expected idle period
//! pays back the transition energy.

use powadapt_sim::SimDuration;

/// Spin/standby energy profile of the slow tier (an HDD).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpinProfile {
    /// Idle (spun-up) power, in watts.
    pub idle_w: f64,
    /// Standby (spun-down) power, in watts.
    pub standby_w: f64,
    /// Spin-down duration.
    pub down: SimDuration,
    /// Power while spinning down, in watts.
    pub down_w: f64,
    /// Spin-up duration.
    pub up: SimDuration,
    /// Power while spinning up, in watts.
    pub up_w: f64,
}

impl SpinProfile {
    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.standby_w >= self.idle_w {
            return Err("standby must draw less than idle".into());
        }
        if self.standby_w < 0.0 {
            return Err("standby power must be non-negative".into());
        }
        if self.down.is_zero() || self.up.is_zero() {
            return Err("spin transitions take time".into());
        }
        Ok(())
    }
}

/// The write-absorbing fast tier (an SSD with spare write bandwidth and a
/// budgeted staging capacity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsorptionProfile {
    /// Write bandwidth the SSD tier can dedicate to absorption, in
    /// bytes/second.
    pub absorb_bw_bps: f64,
    /// Staging capacity reserved for absorbed writes, in bytes.
    pub absorb_capacity_bytes: u64,
}

/// Tiered power policy: decides when the slow tier can sleep and whether
/// the fast tier can mask the sleep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieringPolicy {
    spin: SpinProfile,
    absorb: AbsorptionProfile,
}

impl TieringPolicy {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns the profile problem, if any.
    pub fn new(spin: SpinProfile, absorb: AbsorptionProfile) -> Result<Self, String> {
        spin.validate()?;
        if absorb.absorb_bw_bps <= 0.0 || absorb.absorb_bw_bps.is_nan() {
            return Err("absorption bandwidth must be positive".into());
        }
        Ok(TieringPolicy { spin, absorb })
    }

    /// The spin profile.
    pub fn spin(&self) -> &SpinProfile {
        &self.spin
    }

    /// Energy consumed if the disk stays idle for `period`, in joules.
    pub fn energy_idle_j(&self, period: SimDuration) -> f64 {
        self.spin.idle_w * period.as_secs_f64()
    }

    /// Energy consumed if the disk spins down, sleeps, and spins back up
    /// within `period`, in joules. If `period` is shorter than the two
    /// transitions, the "sleep" fraction is zero (worst case).
    pub fn energy_standby_j(&self, period: SimDuration) -> f64 {
        let trans = self.spin.down + self.spin.up;
        let down_j = self.spin.down_w * self.spin.down.as_secs_f64();
        let up_j = self.spin.up_w * self.spin.up.as_secs_f64();
        let sleep = period.saturating_sub(trans);
        down_j + up_j + self.spin.standby_w * sleep.as_secs_f64()
    }

    /// The break-even idle duration: the shortest period for which spinning
    /// down saves energy.
    pub fn break_even(&self) -> SimDuration {
        // Solve idle_w * P = down_j + up_j + standby_w * (P - trans).
        let trans = self.spin.down + self.spin.up;
        let down_j = self.spin.down_w * self.spin.down.as_secs_f64();
        let up_j = self.spin.up_w * self.spin.up.as_secs_f64();
        let fixed = down_j + up_j - self.spin.standby_w * trans.as_secs_f64();
        let rate = self.spin.idle_w - self.spin.standby_w;
        let secs = (fixed / rate).max(trans.as_secs_f64());
        SimDuration::from_secs_f64(secs)
    }

    /// Should the slow tier spin down, given the expected idle period?
    pub fn should_standby(&self, expected_idle: SimDuration) -> bool {
        expected_idle >= self.break_even()
    }

    /// Energy saved (may be negative) by spinning down over `period`.
    pub fn savings_j(&self, period: SimDuration) -> f64 {
        self.energy_idle_j(period) - self.energy_standby_j(period)
    }

    /// Can the fast tier absorb the write stream for the whole standby
    /// period (including the spin-up it must mask on wake)?
    pub fn can_absorb(&self, write_rate_bps: f64, period: SimDuration) -> bool {
        if write_rate_bps <= 0.0 {
            return true;
        }
        if write_rate_bps > self.absorb.absorb_bw_bps {
            return false;
        }
        let must_cover = period + self.spin.up;
        write_rate_bps * must_cover.as_secs_f64() <= self.absorb.absorb_capacity_bytes as f64
    }

    /// The longest standby period the fast tier can mask at the given
    /// write rate. Unlimited (`SimDuration::MAX`) when the rate is zero.
    pub fn max_maskable_period(&self, write_rate_bps: f64) -> SimDuration {
        if write_rate_bps <= 0.0 {
            return SimDuration::MAX;
        }
        if write_rate_bps > self.absorb.absorb_bw_bps {
            return SimDuration::ZERO;
        }
        let secs = self.absorb.absorb_capacity_bytes as f64 / write_rate_bps;
        SimDuration::from_secs_f64(secs).saturating_sub(self.spin.up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exos() -> SpinProfile {
        SpinProfile {
            idle_w: 3.76,
            standby_w: 1.1,
            down: SimDuration::from_millis(1500),
            down_w: 2.5,
            up: SimDuration::from_secs(6),
            up_w: 5.2,
        }
    }

    fn policy() -> TieringPolicy {
        TieringPolicy::new(
            exos(),
            AbsorptionProfile {
                absorb_bw_bps: 500e6,
                absorb_capacity_bytes: 8 * 1024 * 1024 * 1024, // 8 GiB
            },
        )
        .unwrap()
    }

    #[test]
    fn break_even_is_seconds_scale() {
        let be = policy().break_even();
        // Transition energy: 1.5s*2.5 + 6s*5.2 = 34.95 J; saving rate 2.66 W;
        // minus standby during transitions → ~10 s.
        assert!(
            (8.0..20.0).contains(&be.as_secs_f64()),
            "break-even {be} out of expected range"
        );
    }

    #[test]
    fn standby_decision_follows_break_even() {
        let p = policy();
        assert!(!p.should_standby(SimDuration::from_secs(5)));
        assert!(p.should_standby(SimDuration::from_secs(60)));
    }

    #[test]
    fn savings_positive_beyond_break_even() {
        let p = policy();
        assert!(p.savings_j(SimDuration::from_secs(60)) > 0.0);
        assert!(p.savings_j(SimDuration::from_secs(3)) < 0.0);
        // At exactly break-even, savings are ~zero.
        let be = p.break_even();
        assert!(p.savings_j(be).abs() < 0.5);
    }

    #[test]
    fn hour_of_standby_saves_expected_energy() {
        let p = policy();
        let hour = SimDuration::from_secs(3600);
        let saved = p.savings_j(hour);
        // Rough: 2.66 W * 3600 s ≈ 9.6 kJ minus ~30 J of transitions.
        assert!((9_000.0..10_000.0).contains(&saved), "{saved}");
    }

    #[test]
    fn absorption_limits() {
        let p = policy();
        // 100 MB/s for 60 s = 6 GB + spin-up margin: fits in 8 GiB.
        assert!(p.can_absorb(100e6, SimDuration::from_secs(60)));
        // 100 MB/s for 100 s > 8 GiB: does not fit.
        assert!(!p.can_absorb(100e6, SimDuration::from_secs(100)));
        // Faster than the tier's spare bandwidth: never.
        assert!(!p.can_absorb(600e6, SimDuration::from_secs(1)));
        // No writes: always.
        assert!(p.can_absorb(0.0, SimDuration::from_secs(100_000)));
    }

    #[test]
    fn max_maskable_period_is_consistent_with_can_absorb() {
        let p = policy();
        let rate = 100e6;
        let max = p.max_maskable_period(rate);
        assert!(p.can_absorb(rate, max));
        assert!(!p.can_absorb(rate, max + SimDuration::from_secs(2)));
        assert_eq!(p.max_maskable_period(0.0), SimDuration::MAX);
        assert_eq!(p.max_maskable_period(1e12), SimDuration::ZERO);
    }

    #[test]
    fn profile_validation() {
        let mut bad = exos();
        bad.standby_w = 4.0;
        assert!(TieringPolicy::new(
            bad,
            AbsorptionProfile {
                absorb_bw_bps: 1.0,
                absorb_capacity_bytes: 1
            }
        )
        .is_err());
    }
}
