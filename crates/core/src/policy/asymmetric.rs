//! Leveraging asymmetric IO (§4): power capping barely affects reads but
//! cripples writes, so segregate write traffic onto a few uncapped devices
//! and cap the read-serving remainder.

use std::fmt;

/// Per-device characteristics in the two roles the policy assigns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsymmetricProfile {
    /// Write throughput of an uncapped device, in bytes/second.
    pub write_bw_bps: f64,
    /// Power of an uncapped device serving writes, in watts.
    pub write_power_w: f64,
    /// Read throughput of a capped device, in bytes/second (caps barely
    /// reduce this — the paper's Fig. 4b).
    pub read_bw_capped_bps: f64,
    /// Power of a capped device serving reads, in watts.
    pub read_power_capped_w: f64,
    /// Power of an uncapped device serving reads, in watts (the uniform
    /// baseline).
    pub read_power_uncapped_w: f64,
}

impl AsymmetricProfile {
    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.write_bw_bps <= 0.0 || self.read_bw_capped_bps <= 0.0 {
            return Err("bandwidths must be positive".into());
        }
        if self.write_power_w <= 0.0
            || self.read_power_capped_w <= 0.0
            || self.read_power_uncapped_w <= 0.0
        {
            return Err("powers must be positive".into());
        }
        if self.read_power_capped_w > self.read_power_uncapped_w {
            return Err("capped read power exceeds uncapped".into());
        }
        Ok(())
    }
}

/// A write-segregation plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsymmetricPlan {
    /// Devices dedicated to (uncapped) writes.
    pub write_devices: usize,
    /// Devices serving reads under a power cap.
    pub read_devices: usize,
    /// Estimated total power, in watts.
    pub power_w: f64,
    /// Power of the uniform alternative (everything uncapped), in watts.
    pub uniform_power_w: f64,
}

impl AsymmetricPlan {
    /// Power saved versus leaving every device uncapped.
    pub fn savings_w(&self) -> f64 {
        self.uniform_power_w - self.power_w
    }
}

impl fmt::Display for AsymmetricPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} write + {} capped read devices: {:.1} W (saves {:.1} W vs uniform)",
            self.write_devices,
            self.read_devices,
            self.power_w,
            self.savings_w()
        )
    }
}

/// Plans write segregation for `n` devices given read/write demand.
///
/// Dedicates the minimum number of devices to writes (writes must not be
/// capped), serves reads from the capped remainder, and reports the power
/// saved versus the uniform uncapped deployment.
///
/// Returns `None` when demand does not fit `n` devices under this split.
///
/// # Panics
///
/// Panics if the profile is invalid or demands are negative.
///
/// # Examples
///
/// ```
/// use powadapt_core::{plan_asymmetric, AsymmetricProfile};
///
/// let profile = AsymmetricProfile {
///     write_bw_bps: 3.3e9,
///     write_power_w: 15.0,
///     read_bw_capped_bps: 3.2e9,
///     read_power_capped_w: 7.0,
///     read_power_uncapped_w: 7.5,
/// };
/// let plan = plan_asymmetric(8, 4.0e9, 12.0e9, &profile).unwrap();
/// assert_eq!(plan.write_devices, 2);
/// assert!(plan.savings_w() > 0.0);
/// ```
pub fn plan_asymmetric(
    n: usize,
    write_demand_bps: f64,
    read_demand_bps: f64,
    profile: &AsymmetricProfile,
) -> Option<AsymmetricPlan> {
    if let Err(e) = profile.validate() {
        // powadapt-lint: allow(D5, reason = "documented contract: an invalid profile is a construction bug, not a runtime condition")
        panic!("invalid asymmetric profile: {e}");
    }
    assert!(
        write_demand_bps >= 0.0 && read_demand_bps >= 0.0,
        "demands must be non-negative"
    );
    let write_devices = if write_demand_bps == 0.0 {
        0
    } else {
        (write_demand_bps / profile.write_bw_bps).ceil() as usize
    };
    if write_devices > n {
        return None;
    }
    let read_devices = n - write_devices;
    if read_demand_bps > read_devices as f64 * profile.read_bw_capped_bps {
        return None;
    }
    let power_w = write_devices as f64 * profile.write_power_w
        + read_devices as f64 * profile.read_power_capped_w;
    // Uniform baseline: all devices uncapped, sharing both demand classes.
    // Write-active devices dominate power, so approximate the uniform cost
    // as the demand-weighted mix of write and uncapped-read power.
    let total_demand = write_demand_bps + read_demand_bps;
    let write_frac = if total_demand > 0.0 {
        write_demand_bps / total_demand
    } else {
        0.0
    };
    let per_dev_uniform =
        write_frac * profile.write_power_w + (1.0 - write_frac) * profile.read_power_uncapped_w;
    let uniform_power_w = n as f64 * per_dev_uniform;
    Some(AsymmetricPlan {
        write_devices,
        read_devices,
        power_w,
        uniform_power_w,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AsymmetricProfile {
        AsymmetricProfile {
            write_bw_bps: 3.0e9,
            write_power_w: 15.0,
            read_bw_capped_bps: 3.0e9,
            read_power_capped_w: 7.0,
            read_power_uncapped_w: 7.5,
        }
    }

    #[test]
    fn dedicates_minimum_write_devices() {
        let plan = plan_asymmetric(10, 7.0e9, 10.0e9, &profile()).unwrap();
        assert_eq!(plan.write_devices, 3);
        assert_eq!(plan.read_devices, 7);
    }

    #[test]
    fn zero_write_demand_caps_everything() {
        let plan = plan_asymmetric(4, 0.0, 6.0e9, &profile()).unwrap();
        assert_eq!(plan.write_devices, 0);
        assert_eq!(plan.power_w, 4.0 * 7.0);
    }

    #[test]
    fn infeasible_demand_returns_none() {
        // Writes alone need more devices than exist.
        assert!(plan_asymmetric(2, 9.0e9, 0.0, &profile()).is_none());
        // Reads overflow the capped remainder.
        assert!(plan_asymmetric(3, 3.0e9, 7.0e9, &profile()).is_none());
    }

    #[test]
    fn saves_power_for_read_heavy_mixes() {
        let plan = plan_asymmetric(16, 3.0e9, 30.0e9, &profile()).unwrap();
        assert!(
            plan.savings_w() > 0.0,
            "read-heavy mixes should benefit: {plan}"
        );
    }

    #[test]
    fn plan_display_mentions_savings() {
        let plan = plan_asymmetric(8, 3.0e9, 9.0e9, &profile()).unwrap();
        assert!(plan.to_string().contains("saves"));
    }

    #[test]
    #[should_panic(expected = "invalid asymmetric profile")]
    fn invalid_profile_panics() {
        let mut p = profile();
        p.read_power_capped_w = 9.0; // above uncapped
        let _ = plan_asymmetric(4, 1.0, 1.0, &p);
    }
}
